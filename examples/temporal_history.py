#!/usr/bin/env python3
"""Time versions: the paper's ASOF query on a versioned DEPARTMENTS table.

Section 5: "If Table 5 had been declared as a 'versioned table', the
following query would deliver all projects which department 314 has had on
January 15th, 1984."  This example declares exactly that table, evolves it
through 1984, and runs the paper's query at several points in time.

Run:  python examples/temporal_history.py
"""

import datetime

from repro import Database
from repro.datasets import paper


def main() -> None:
    db = Database()
    db.execute(
        """
        CREATE VERSIONED TABLE DEPARTMENTS (
            DNO INT, MGRNO INT,
            PROJECTS TABLE OF (PNO INT, PNAME STRING,
                               MEMBERS TABLE OF (EMPNO INT, FUNCTION STRING)),
            BUDGET INT,
            EQUIP TABLE OF (QU INT, TYPE STRING)
        )
        """
    )

    # 1984-01-01: the departments as in Table 5
    tids = {}
    for row in paper.DEPARTMENTS_ROWS:
        tids[row["DNO"]] = db.insert(
            "DEPARTMENTS", row, at=datetime.date(1984, 1, 1)
        )

    # 1984-02-01: department 314 starts project 29 'ROBO'
    tids[314] = db.update(
        "DEPARTMENTS",
        tids[314],
        lambda obj: obj.insert_element(
            [], "PROJECTS",
            {"PNO": 29, "PNAME": "ROBO",
             "MEMBERS": [{"EMPNO": 31000, "FUNCTION": "Leader"}]},
        ),
        at=datetime.date(1984, 2, 1),
    )

    # 1984-03-01: project 23 'HEAR' is cancelled
    tids[314] = db.update(
        "DEPARTMENTS",
        tids[314],
        lambda obj: obj.delete_element([], "PROJECTS", 1),
        at=datetime.date(1984, 3, 1),
    )

    # 1984-04-01: budget raise
    tids[314] = db.update(
        "DEPARTMENTS", tids[314], {"BUDGET": 410_000},
        at=datetime.date(1984, 4, 1),
    )

    paper_query = (
        "SELECT y.PNO, y.PNAME "
        "FROM x IN DEPARTMENTS ASOF '{}', y IN x.PROJECTS "
        "WHERE x.DNO = 314"
    )
    for day in ["1984-01-15", "1984-02-15", "1984-03-15"]:
        result = db.query(paper_query.format(day))
        projects = sorted(
            (row["PNO"], row["PNAME"]) for row in result
        )
        print(f"Projects of department 314 ASOF {day}: {projects}")

    now = db.query(
        "SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 314"
    )
    print(f"Current budget of department 314: {now.column('BUDGET')[0]:,}")

    store = db.catalog.table("DEPARTMENTS").version_store
    print(f"\nVersion store: {store.version_count} versions across "
          f"{len(store.current_roots())} current objects "
          f"({len(store.all_roots_ever())} stored object states in total).")


if __name__ == "__main__":
    main()
