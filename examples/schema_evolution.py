#!/usr/bin/env python3
"""Living with change: partial DML, schema evolution, and EXPLAIN.

The paper closes with "handling of schema changes" as future research and
demands "fast processing ... for arbitrary parts" of complex objects.  This
example runs a small office through a year of churn:

* sub-object DML straight from the language (hire/fire/promote without
  touching the rest of the department object);
* ALTER TABLE at nested levels, with old data migrated;
* EXPLAIN showing how access paths react.

Run:  python examples/schema_evolution.py
"""

from repro import Database
from repro.datasets import paper


def main() -> None:
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.execute("CREATE INDEX FN ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)")

    # -- partial DML: grow one project without rewriting the object -----------
    db.execute(
        "INSERT INTO y.MEMBERS "
        "FROM x IN DEPARTMENTS, y IN x.PROJECTS "
        "WHERE x.DNO = 314 AND y.PNO = 17 "
        "VALUES (40001, 'Staff'), (40002, 'Staff')"
    )
    print("Hired two staffers into project 17.")

    promoted = db.execute(
        "UPDATE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS "
        "SET FUNCTION = 'Consultant' WHERE z.EMPNO = 40001"
    )
    print(f"Promoted {promoted} member to Consultant "
          "(the FUNCTION index followed along):")
    consultants = db.query(
        "SELECT z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, "
        "z IN y.MEMBERS WHERE z.FUNCTION = 'Consultant' ORDER BY z.EMPNO"
    )
    print("  consultants now:", consultants.column("EMPNO"))

    fired = db.execute(
        "DELETE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS "
        "WHERE z.FUNCTION = 'Staff' AND x.DNO = 417"
    )
    print(f"Department 417 let {fired} staff members go.")

    # -- schema evolution: a new attribute inside PROJECTS ----------------------
    db.execute("ALTER TABLE DEPARTMENTS ADD PROJECTS.PRIORITY INT")
    print("\nAdded PROJECTS.PRIORITY; backfilled as NULL:")
    priorities = db.query(
        "SELECT y.PNO, y.PRIORITY FROM x IN DEPARTMENTS, y IN x.PROJECTS "
        "ORDER BY y.PNO"
    )
    for row in priorities:
        print(f"  project {row['PNO']}: priority {row['PRIORITY']}")
    db.execute(
        "UPDATE y FROM x IN DEPARTMENTS, y IN x.PROJECTS SET PRIORITY = 1 "
        "WHERE y.PNO = 17"
    )
    db.execute("ALTER TABLE DEPARTMENTS RENAME ATTRIBUTE BUDGET TO FUNDS")
    print("Renamed BUDGET to FUNDS; queries use the new name:")
    funds = db.query(
        "SELECT x.DNO, x.FUNDS FROM x IN DEPARTMENTS ORDER BY x.FUNDS DESC"
    )
    for row in funds:
        print(f"  dept {row['DNO']}: {row['FUNDS']:,}")

    # -- EXPLAIN: see the access-path decisions -----------------------------------
    print("\nEXPLAIN for the consultant query:")
    print(db.explain(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    ))


if __name__ == "__main__":
    main()
