#!/usr/bin/env python3
"""Quickstart: the paper's DEPARTMENTS table, end to end.

Creates the extended-NF2 DEPARTMENTS table (Table 5 of the paper), loads
the paper's data, and runs the queries of Section 3 — including the nest
(Fig 3) and unnest (Example 4/Table 7) operations.

Run:  python examples/quickstart.py
"""

from repro import Database, render_table
from repro.datasets import paper


def main() -> None:
    db = Database()  # in-memory; pass path="file.db" for a persistent store

    # -- DDL: nested structure declared directly -------------------------------
    db.execute(
        """
        CREATE TABLE DEPARTMENTS (
            DNO INT,
            MGRNO INT,
            PROJECTS TABLE OF (
                PNO INT,
                PNAME STRING,
                MEMBERS TABLE OF (EMPNO INT, FUNCTION STRING)
            ),
            BUDGET INT,
            EQUIP TABLE OF (QU INT, TYPE STRING)
        )
        """
    )

    # -- load the paper's Table 5 (plain nested Python data) --------------------
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)

    print("=== Table 5: the stored NF2 table ===")
    print(db.render("DEPARTMENTS"))

    # -- Example 1: SELECT * keeps the nested structure --------------------------
    result = db.query("SELECT * FROM x IN DEPARTMENTS")
    print(f"\nExample 1: SELECT * returned {len(result)} complex objects")

    # -- Example 4: unnest into a flat table (the paper's Table 7) ---------------
    flat = db.query(
        "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION "
        "FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS"
    )
    print("\n=== Table 7: the unnested view ===")
    print(render_table(flat, title="RESULT"))

    # -- Example 5: EXISTS over a subtable ----------------------------------------
    pcat = db.query(
        "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'"
    )
    print("\nDepartments using a PC/AT:", sorted(pcat.column("DNO")))

    # -- DML: the language's nested literals ({} relations, <> lists) ------------
    db.execute(
        "INSERT INTO DEPARTMENTS VALUES "
        "(520, 77001, {(41, 'DOCS', {(77002, 'Leader'), (77003, 'Staff')})}, "
        "150000, {(4, '3278')})"
    )
    db.execute("UPDATE DEPARTMENTS x SET BUDGET = 175000 WHERE x.DNO = 520")
    count = db.query(
        "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 520"
    )
    print("\nInserted department 520 with budget", count.column("BUDGET")[0])

    # -- indexes: the paper's FUNCTION index with hierarchical addresses ----------
    db.execute("CREATE INDEX FN ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)")
    consultants = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    )
    print(
        "Departments with a consultant (via index",
        db.last_plan.used_indexes if db.last_plan else "scan",
        "):",
        sorted(consultants.column("DNO")),
    )


if __name__ == "__main__":
    main()
