#!/usr/bin/env python3
"""Office automation: the REPORTS table with ordered author lists,
masked text search, and tuple names.

This is the paper's second example domain (Table 6): each report has an
*ordered* AUTHORS subtable (a list — author order matters!), a title, and
weighted descriptors.  Shows list subscripts (Example 8), the Section 5
text query with a word-fragment text index, and t-names (Section 4.3).

Run:  python examples/office_reports.py
"""

from repro import Database
from repro.datasets import ReportsGenerator, paper


def main() -> None:
    db = Database()
    db.execute(
        """
        CREATE TABLE REPORTS (
            REPNO STRING,
            AUTHORS LIST OF (NAME STRING),
            TITLE STRING,
            DESCRIPTORS TABLE OF (KEYWORD STRING, WEIGHT FLOAT)
        )
        """
    )
    db.insert_many("REPORTS", paper.REPORTS_ROWS)
    # plus a synthetic corpus so the text index has something to chew on
    extra = ReportsGenerator(reports=200, seed=42).rows()
    for row in extra:
        row["REPNO"] = "S" + row["REPNO"]
    db.insert_many("REPORTS", extra)

    print("=== Table 6 (the paper's reports, first row) ===")
    print(db.table_value("REPORTS").rows[0].to_plain())

    # -- Example 8: list subscript — first author matters -------------------------
    first_author = db.query(
        "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS "
        "WHERE x.AUTHORS[1] = 'Jones A'"
    )
    print(
        f"\nReports with 'Jones A' as FIRST author: "
        f"{sorted(first_author.column('REPNO'))}"
    )
    any_author = db.query(
        "SELECT x.REPNO FROM x IN REPORTS "
        "WHERE EXISTS y IN x.AUTHORS: y.NAME = 'Jones A'"
    )
    print(
        f"Reports with 'Jones A' as ANY author:   "
        f"{sorted(any_author.column('REPNO'))}"
    )

    # -- Section 5: masked search, accelerated by a text index ---------------------
    db.execute("CREATE TEXT INDEX TX ON REPORTS (TITLE)")
    query = (
        "SELECT x.REPNO, x.TITLE FROM x IN REPORTS "
        "WHERE x.TITLE CONTAINS '*comput*'"
    )
    hits = db.query(query)
    plan = db.last_plan
    print(f"\nMasked search '*comput*': {len(hits)} reports")
    for row in hits.rows[:5]:
        print(f"  {row['REPNO']}: {row['TITLE']}")
    print("Access path:", plan.used_indexes if plan else "full scan")

    # -- weighted descriptors: a cross-level condition ------------------------------
    heavy = db.query(
        "SELECT x.REPNO, x.TITLE FROM x IN REPORTS "
        "WHERE EXISTS d IN x.DESCRIPTORS: "
        "(d.KEYWORD = 'Recovery' AND d.WEIGHT >= 0.3)"
    )
    print(f"\nReports with descriptor Recovery >= 0.3: {heavy.column('REPNO')}")

    # -- tuple names: persistent system keys (Section 4.3) ---------------------------
    names = db.names("REPORTS")
    tid = db.tids("REPORTS")[0]
    obj = db.open_object("REPORTS", tid)
    report_name = names.name_of_object(tid)
    first_author_name = names.name_of_subobject(obj, [("AUTHORS", 0)])
    authors_table_name = names.name_of_subtable(obj, [], "AUTHORS")
    print("\nTuple names of report 0179:")
    print("  whole object :", report_name)
    print("  first author :", first_author_name)
    print("  AUTHORS list :", authors_table_name)
    resolved = db.resolve_name("REPORTS", first_author_name.encode())
    print("  resolving the author t-name ->", resolved.to_plain())


if __name__ == "__main__":
    main()
