#!/usr/bin/env python3
"""CAD/CAM: a robot-arm bill of materials as one complex object.

Section 1 motivates the extended NF2 model with CAD objects: "deeply
nested hierarchical structures" that must be clustered, partially updated,
and checked out to workstations.  This example models a robot arm as one
complex object (assembly → subassemblies → parts → features), then:

* retrieves single parts without materializing the assembly (navigation
  on the Mini Directory only);
* applies partial updates (a tolerance change on one feature);
* checks the design out at the *page level* (copy_object — no pointer
  inside the object changes, only the page list, Section 4.1);
* shows the clustering effect with buffer-manager counters.

Run:  python examples/cad_assembly.py
"""

from repro import Database

BOM_DDL = """
CREATE TABLE ASSEMBLIES (
    ASM_ID INT,
    NAME STRING,
    REVISION INT,
    SUBASSEMBLIES TABLE OF (
        SUB_ID INT,
        NAME STRING,
        PARTS TABLE OF (
            PART_ID INT,
            NAME STRING,
            MATERIAL STRING,
            FEATURES LIST OF (KIND STRING, TOLERANCE FLOAT)
        )
    ),
    DOCUMENTS TABLE OF (DOC STRING)
)
"""


def robot_arm() -> dict:
    def features(n):
        return [
            {"KIND": kind, "TOLERANCE": 0.05 * (i + 1)}
            for i, kind in enumerate(["bore", "thread", "chamfer", "face"][:n])
        ]

    def parts(sub_id, count):
        return [
            {
                "PART_ID": sub_id * 100 + i,
                "NAME": f"part-{sub_id}-{i}",
                "MATERIAL": ["steel", "aluminium", "pa66"][i % 3],
                "FEATURES": features(2 + i % 3),
            }
            for i in range(count)
        ]

    return {
        "ASM_ID": 7000,
        "NAME": "robot-arm",
        "REVISION": 1,
        "SUBASSEMBLIES": [
            {"SUB_ID": 1, "NAME": "shoulder", "PARTS": parts(1, 6)},
            {"SUB_ID": 2, "NAME": "elbow", "PARTS": parts(2, 8)},
            {"SUB_ID": 3, "NAME": "wrist", "PARTS": parts(3, 5)},
            {"SUB_ID": 4, "NAME": "gripper", "PARTS": parts(4, 10)},
        ],
        "DOCUMENTS": [{"DOC": f"drawing-{i}.dxf"} for i in range(5)],
    }


def main() -> None:
    db = Database()
    db.execute(BOM_DDL)
    tid = db.insert("ASSEMBLIES", robot_arm())

    schema = db.table_schema("ASSEMBLIES")
    print(f"Stored the robot arm: depth {schema.depth()} hierarchy,")
    obj = db.open_object("ASSEMBLIES", tid)
    pages = obj.space.pages
    print(f"clustered on {len(pages)} page(s): {pages}")

    # -- partial retrieval: one part, no full materialization ---------------------
    db.reset_io_stats()
    part_schema, part = obj.resolve([("SUBASSEMBLIES", 1), ("PARTS", 3)])
    atoms = obj.read_atoms(part_schema, part)
    print(f"\nPartial read of one part: {atoms}")
    print(f"  logical page reads: {db.io_stats.logical_reads}")

    # -- cross-level query: parts out of tolerance --------------------------------
    tight = db.query(
        "SELECT s.NAME AS SUB, p.PART_ID, p.NAME "
        "FROM a IN ASSEMBLIES, s IN a.SUBASSEMBLIES, p IN s.PARTS "
        "WHERE EXISTS f IN p.FEATURES: f.TOLERANCE <= 0.05"
    )
    print(f"\nParts with a <=0.05 tolerance feature: {len(tight)}")

    # -- partial update: tighten one feature's tolerance ----------------------------
    db.update(
        "ASSEMBLIES",
        tid,
        lambda o: o.update_atoms(
            [("SUBASSEMBLIES", 1), ("PARTS", 3), ("FEATURES", 0)],
            {"TOLERANCE": 0.01},
        ),
    )
    check = db.query(
        "SELECT f.TOLERANCE "
        "FROM a IN ASSEMBLIES, s IN a.SUBASSEMBLIES, p IN s.PARTS, "
        "     f IN p.FEATURES "
        "WHERE p.PART_ID = 203 AND f.KIND = 'bore'"
    )
    print(f"Tolerance of part 203's bore after the update: "
          f"{check.column('TOLERANCE')}")

    # -- check-out: page-level copy for the workstation ------------------------------
    entry = db.catalog.table("ASSEMBLIES")
    copy_tid = entry.manager.copy_object(tid, schema)
    copy = entry.manager.load(copy_tid, schema)
    print(f"\nChecked out a workstation copy at {copy_tid}; "
          f"{len(copy['SUBASSEMBLIES'])} subassemblies intact.")
    print("No D/C pointer was rewritten — only the page list differs "
          "(Mini TIDs are local).")

    # -- structural edit on the copy: add a part -------------------------------------
    copy_obj = entry.manager.open(copy_tid, schema)
    copy_obj.insert_element(
        [("SUBASSEMBLIES", 3)],
        "PARTS",
        {
            "PART_ID": 499,
            "NAME": "sensor-mount",
            "MATERIAL": "titanium",
            "FEATURES": [{"KIND": "bore", "TOLERANCE": 0.02}],
        },
    )
    master_parts = len(entry.manager.load(tid, schema)["SUBASSEMBLIES"][3]["PARTS"])
    copy_parts = len(entry.manager.load(copy_tid, schema)["SUBASSEMBLIES"][3]["PARTS"])
    print(f"Added part 499 to the checked-out copy: copy gripper has "
          f"{copy_parts} parts, master still has {master_parts}.")

    # -- true workstation check-out: ship the object to another database ------
    blob = db.checkout("ASSEMBLIES", tid)
    workstation = Database()
    workstation.execute(BOM_DDL)
    ws_tid = workstation.checkin("ASSEMBLIES", blob)
    ws_copy = workstation.catalog.table("ASSEMBLIES").manager.load(ws_tid, schema)
    print(f"\nShipped {len(blob):,} bytes to the workstation database; "
          f"rebuilt object has {len(ws_copy['SUBASSEMBLIES'])} subassemblies "
          "with every Mini TID intact (only the page list was rebuilt).")


if __name__ == "__main__":
    main()
