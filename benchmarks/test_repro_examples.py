"""Regenerate the results of Section 3's Examples 1-8 (the paper's worked
query walkthrough), timing each query through the full stack."""

from repro.datasets import paper
from repro.render import render_table

from _bench_utils import emit
from test_repro_tables import _query


def test_example_1_select_star(paper_db, benchmark):
    result = benchmark(_query, paper_db, "SELECT * FROM x IN DEPARTMENTS")
    assert result == paper.departments()
    emit("example_1", f"SELECT * over Table 5 -> {len(result)} complex objects; "
                      "result identical to the stored table.")


def test_example_2_explicit(paper_db, benchmark):
    query = (
        "SELECT x.DNO, x.MGRNO, "
        "PROJECTS = (SELECT y.PNO, y.PNAME, "
        "            MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS) "
        "            FROM y IN x.PROJECTS), "
        "x.BUDGET, "
        "EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP) "
        "FROM x IN DEPARTMENTS"
    )
    result = benchmark(_query, paper_db, query)
    assert result == paper.departments()
    emit("example_2", "explicit result structure == Table 5: True")


def test_example_3_nest(paper_db, benchmark):
    query = (
        "SELECT x.DNO, x.MGRNO, "
        "PROJECTS = (SELECT y.PNO, y.PNAME, "
        "            MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN MEMBERS-1NF "
        "                       WHERE z.DNO = x.DNO AND z.PNO = y.PNO) "
        "            FROM y IN PROJECTS-1NF WHERE y.DNO = x.DNO), "
        "x.BUDGET, "
        "EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP-1NF WHERE v.DNO = x.DNO) "
        "FROM x IN DEPARTMENTS-1NF"
    )
    result = benchmark(_query, paper_db, query)
    assert result == paper.departments()
    emit("example_3", "nest of Tables 1-4 == Table 5: True")


def test_example_4_unnest(paper_db, benchmark):
    query = (
        "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION "
        "FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS"
    )
    result = benchmark(_query, paper_db, query)
    assert len(result) == 17
    flat_query = (
        "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION "
        "FROM x IN DEPARTMENTS-1NF, y IN PROJECTS-1NF, z IN MEMBERS-1NF "
        "WHERE x.DNO = y.DNO AND y.PNO = z.PNO AND y.DNO = z.DNO"
    )
    assert paper_db.query(flat_query) == result
    emit("example_4", "unnest of Table 5 == 3-way flat join (17 rows): True\n"
                      "(hierarchical tables store pre-computed joins)")


def test_example_5_exists(paper_db, benchmark):
    query = (
        "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'"
    )
    result = benchmark(_query, paper_db, query)
    assert sorted(result.column("DNO")) == [218, 314, 417]
    emit("example_5", render_table(result, title="Departments using a PC/AT"))


def test_example_6_all(paper_db, benchmark):
    query = (
        "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS "
        "WHERE ALL y IN x.PROJECTS: ALL z IN y.MEMBERS: "
        "z.FUNCTION = 'Consultant'"
    )
    result = benchmark(_query, paper_db, query)
    assert len(result) == 0
    emit("example_6", "departments with only consultants: empty result "
                      "(exactly as the paper states)")


def test_example_7_join(paper_db, benchmark):
    query = (
        "SELECT x.DNO, x.MGRNO, "
        "EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION "
        "             FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF "
        "             WHERE z.EMPNO = u.EMPNO) "
        "FROM x IN DEPARTMENTS"
    )
    result = benchmark(_query, paper_db, query)
    totals = {row["DNO"]: len(row["EMPLOYEES"]) for row in result}
    assert totals == {314: 7, 218: 6, 417: 4}
    emit("example_7", render_table(result, title="Employees by department"))


def test_example_8_list_subscript(paper_db, benchmark):
    query = (
        "SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS "
        "WHERE x.AUTHORS[1] = 'Jones A'"
    )
    result = benchmark(_query, paper_db, query)
    assert len(result) == 1
    assert result[0]["AUTHORS"].ordered
    emit("example_8", render_table(result, title="Reports with Jones as first author"))
