"""Ablation A4 — Mini TIDs vs full TIDs (Section 4.1).

Two claimed advantages, both measured:

1. "Mini TIDs can be somewhat smaller than TIDs.  This saves storage
   space in the Mini Directory" — we compare the encoded pointer sizes and
   the resulting MD bytes per object.
2. "When a complex object has to be moved ... this can easily be done at
   the page level ... no changes are required for D and C pointers" — we
   time the page-level relocation (copy_object) against a logical
   re-store (delete + insert), which is what global pointers would force.
"""

from repro.datasets import DepartmentsGenerator, paper
from repro.model.values import TupleValue
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.constants import MINI_TID_SIZE, TID_SIZE
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment

from _bench_utils import emit

WORKLOAD = DepartmentsGenerator(
    departments=1, projects_per_department=8, members_per_project=25,
    equipment_per_department=10, seed=55,
)


def build():
    buffer = BufferManager(MemoryPagedFile(), capacity=1024)
    manager = ComplexObjectManager(Segment(buffer))
    value = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, WORKLOAD.rows()[0])
    root = manager.store(paper.DEPARTMENTS_SCHEMA, value)
    return buffer, manager, root, value


def count_pointers(manager, root):
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    total = 0

    def visit(element):
        nonlocal total
        total += 1  # the D pointer to its data subtuple
        for subtable in element.subtables:
            if subtable.md is not None:
                total += 1  # the C pointer to the subtable MD
            for child in subtable.elements:
                visit(child)

    visit(obj.decoded)
    return total


def test_pointer_space_saving(benchmark):
    buffer, manager, root, _value = build()
    pointers = benchmark(count_pointers, manager, root)
    stats = manager.statistics(root, paper.DEPARTMENTS_SCHEMA)
    mini_bytes = pointers * MINI_TID_SIZE
    full_bytes = pointers * TID_SIZE
    saving = 100.0 * (full_bytes - mini_bytes) / full_bytes
    lines = [
        f"pointers in the object's Mini Directory: {pointers}",
        f"encoded size: Mini TID = {MINI_TID_SIZE} bytes, TID = {TID_SIZE} bytes",
        f"MD pointer bytes: {mini_bytes} (Mini TIDs) vs {full_bytes} (TIDs) "
        f"-> {saving:.0f}% saved",
        f"total MD bytes as stored: {stats['md_bytes']}",
    ]
    assert mini_bytes < full_bytes
    emit("ablation_A4_pointer_space", "\n".join(lines))


def test_relocation_page_level_vs_restore(benchmark):
    import time

    buffer, manager, root, value = build()

    start = time.perf_counter()
    for _ in range(20):
        copy = manager.copy_object(root, paper.DEPARTMENTS_SCHEMA)
        manager.delete(copy, paper.DEPARTMENTS_SCHEMA)
    page_level = (time.perf_counter() - start) / 20

    start = time.perf_counter()
    for _ in range(20):
        restored = manager.store(paper.DEPARTMENTS_SCHEMA, value)
        manager.delete(restored, paper.DEPARTMENTS_SCHEMA)
    logical = (time.perf_counter() - start) / 20

    lines = [
        "relocating (checking out) one large complex object:",
        f"  page-level copy (page list rewritten only): {page_level * 1e3:7.2f} ms",
        f"  logical re-store (every pointer rebuilt):   {logical * 1e3:7.2f} ms",
        f"  speedup: {logical / page_level:.1f}x",
    ]
    assert page_level < logical
    emit("ablation_A4_relocation", "\n".join(lines))
    benchmark(lambda: manager.delete(
        manager.copy_object(root, paper.DEPARTMENTS_SCHEMA),
        paper.DEPARTMENTS_SCHEMA,
    ))
