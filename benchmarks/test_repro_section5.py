"""Section 5's closing examples: the masked-search text query and the
temporal ASOF query."""

import datetime

import pytest

from repro.database import Database
from repro.datasets import paper

from _bench_utils import build_paper_db, emit
from test_repro_tables import _query


def test_text_query(benchmark):
    """"List all reports co-authored by Jones with *comput* in the title"
    — empty on the paper's own Table 6 (no such title exists there), and
    served by the text index."""
    db = build_paper_db()
    db.create_text_index("TX_TITLE", "REPORTS", "TITLE")
    query = (
        "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS "
        "WHERE x.TITLE CONTAINS '*comput*' "
        "AND EXISTS y IN x.AUTHORS: y.NAME = 'Jones A'"
    )
    result = benchmark(_query, db, query)
    assert len(result) == 0
    # a pattern that does hit: report 0189
    hit = db.query(
        "SELECT x.REPNO FROM x IN REPORTS WHERE x.TITLE CONTAINS '*string*'"
    )
    assert hit.column("REPNO") == ["0189"]
    emit("section5_text_query",
         "'*comput*' AND Jones co-author over Table 6: empty (no such title "
         "in the paper's data)\n'*string*': report 0189 via text index "
         f"(plan: {db.last_plan.used_indexes if db.last_plan else 'scan'})")


def test_asof_query(benchmark):
    """"All projects which department 314 has had on January 15th, 1984"
    over a versioned DEPARTMENTS table."""
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True)
    tid = db.insert(
        "DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at=datetime.date(1984, 1, 1)
    )
    db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[1],
              at=datetime.date(1984, 1, 2))
    # Feb 1984: project 23 cancelled, project 29 started
    tid = db.update(
        "DEPARTMENTS", tid,
        lambda obj: obj.delete_element([], "PROJECTS", 1),
        at=datetime.date(1984, 2, 1),
    )
    tid = db.update(
        "DEPARTMENTS", tid,
        lambda obj: obj.insert_element(
            [], "PROJECTS",
            {"PNO": 29, "PNAME": "ROBO", "MEMBERS": []},
        ),
        at=datetime.date(1984, 2, 10),
    )
    query = (
        "SELECT y.PNO, y.PNAME "
        "FROM x IN DEPARTMENTS ASOF '1984-01-15', y IN x.PROJECTS "
        "WHERE x.DNO = 314"
    )
    result = benchmark(_query, db, query)
    assert sorted(result.column("PNO")) == [17, 23]
    current = db.query(
        "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE x.DNO = 314"
    )
    assert sorted(current.column("PNO")) == [17, 29]
    emit("section5_asof_query",
         f"projects of dept 314 ASOF 1984-01-15: {sorted(result.column('PNO'))} "
         "(the paper's example query)\n"
         f"projects of dept 314 today: {sorted(current.column('PNO'))}")
