"""Ablation A3 — index addressing schemes (Section 4.2).

The paper's argument, quantified on a synthetic DEPARTMENTS workload:

* DATA_TID entries cannot even reach the owning objects (the query falls
  back to a full scan);
* ROOT_TID entries restrict the objects but the matching *projects* must
  be found by scanning inside each candidate;
* HIERARCHICAL entries answer the conjunctive query "PNO=p AND a
  consultant in the same project" on index information alone.

We count objects materialized, subobjects scanned, and pages touched for
the paper's query under all three schemes.
"""

from repro.datasets import DepartmentsGenerator, paper
from repro.index.addresses import AddressingMode, HierarchicalAddress
from repro.index.manager import IndexDefinition, NF2Index
from repro.model.values import TupleValue
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment

from _bench_utils import emit, emit_json, metered

WORKLOAD = DepartmentsGenerator(
    departments=60, projects_per_department=3, members_per_project=4,
    consultant_share=0.08, seed=77,
)
TARGET_PNO = 12  # exists in every department; few have a consultant there


def build():
    rows = WORKLOAD.rows()
    buffer = BufferManager(MemoryPagedFile(), capacity=2048)
    manager = ComplexObjectManager(Segment(buffer))
    roots = []
    for row in rows:
        roots.append(
            manager.store(
                paper.DEPARTMENTS_SCHEMA,
                TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, row),
            )
        )
    indexes = {}
    for mode in AddressingMode:
        pno = NF2Index(IndexDefinition(
            f"PNO_{mode.value}", "D", ("PROJECTS", "PNO"), mode))
        fn = NF2Index(IndexDefinition(
            f"FN_{mode.value}", "D", ("PROJECTS", "MEMBERS", "FUNCTION"), mode))
        for root in roots:
            obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
            pno.index_object(obj)
            fn.index_object(obj)
        indexes[mode] = (pno, fn)
    return rows, buffer, manager, roots, indexes


def truth(rows):
    """Ground truth: DNOs with a consultant in a project numbered
    TARGET_PNO."""
    out = set()
    for row in rows:
        for project in row["PROJECTS"]:
            if project["PNO"] == TARGET_PNO and any(
                m["FUNCTION"] == "Consultant" for m in project["MEMBERS"]
            ):
                out.add(row["DNO"])
    return out


def run_data_tid(manager, roots, indexes):
    """DATA_TID: the index gives data subtuples with no way to the owning
    object — execution degenerates to scanning every object."""
    objects = subobjects = 0
    hits = set()
    for root in roots:
        objects += 1
        value = manager.load(root, paper.DEPARTMENTS_SCHEMA)
        for project in value["PROJECTS"]:
            subobjects += 1
            if project["PNO"] == TARGET_PNO and any(
                m["FUNCTION"] == "Consultant" for m in project["MEMBERS"]
            ):
                hits.add(value["DNO"])
    return hits, objects, subobjects


def run_root_tid(manager, roots, indexes):
    """ROOT_TID: intersect candidate objects, then scan their projects."""
    pno, fn = indexes[AddressingMode.ROOT_TID]
    candidates = set(pno.roots_for(TARGET_PNO)) & set(fn.roots_for("Consultant"))
    objects = subobjects = 0
    hits = set()
    for root in candidates:
        objects += 1
        value = manager.load(root, paper.DEPARTMENTS_SCHEMA)
        for project in value["PROJECTS"]:
            subobjects += 1
            if project["PNO"] == TARGET_PNO and any(
                m["FUNCTION"] == "Consultant" for m in project["MEMBERS"]
            ):
                hits.add(value["DNO"])
    return hits, objects, subobjects


def run_hierarchical(manager, roots, indexes):
    """HIERARCHICAL: prefix-join the two address lists; only the final
    result objects are touched, and only their DNO data subtuple."""
    pno, fn = indexes[AddressingMode.HIERARCHICAL]
    p_by_root: dict = {}
    for address in pno.search(TARGET_PNO):
        p_by_root.setdefault(address.root, []).append(address)
    matches = set()
    for address in fn.search("Consultant"):
        for p in p_by_root.get(address.root, ()):
            if p.shares_prefix(address, 1):
                matches.add(address.root)
    objects = subobjects = 0
    hits = set()
    for root in matches:
        objects += 1
        obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
        hits.add(obj.read_atoms(paper.DEPARTMENTS_SCHEMA, obj.decoded)["DNO"])
    return hits, objects, subobjects


def test_addressing_schemes(benchmark):
    rows, buffer, manager, roots, indexes = build()
    expected = truth(rows)
    runners = [
        ("DATA_TID (falls back to scan)", run_data_tid),
        ("ROOT_TID (object candidates)", run_root_tid),
        ("HIERARCHICAL (prefix join)", run_hierarchical),
    ]
    lines = [
        f"query: departments with a consultant in project PNO={TARGET_PNO} "
        f"({len(expected)} of {len(rows)} qualify)",
        f"{'scheme':>32} {'objects':>8} {'subobj scans':>13} {'pages':>6}",
    ]
    measured = {}
    engine_by_label = {}
    for label, runner in runners:
        with metered(buffer, engine=True) as meter:
            hits, objects, subobjects = runner(manager, roots, indexes)
        assert hits == expected, f"{label} gave a wrong answer"
        pages = meter.pages
        measured[label] = (objects, subobjects, pages)
        engine_by_label[label] = meter.metrics
        lines.append(f"{label:>32} {objects:>8} {subobjects:>13} {pages:>6}")
    data_objects = measured[runners[0][0]][0]
    root_objects = measured[runners[1][0]][0]
    hier_objects = measured[runners[2][0]][0]
    assert hier_objects < root_objects < data_objects
    assert hier_objects == len(expected)  # touches only true results
    assert measured[runners[2][0]][1] == 0  # no subobject scanning at all
    lines.append(
        "\nhierarchical addresses touch only the final result objects and "
        "scan no subobjects — the paper's claim, measured."
    )
    emit_json(
        "ablation_A3_index_addresses_metrics",
        {
            "measured": {
                label: {"objects": o, "subobject_scans": s, "pages": p}
                for label, (o, s, p) in measured.items()
            },
            "engine_counters": engine_by_label,
        },
    )
    emit("ablation_A3_index_addresses", "\n".join(lines))
    benchmark(run_hierarchical, manager, roots, indexes)
