"""Ablation A5 — hierarchical tables as materialized joins (Example 4).

Paper: "hierarchical tables can be used to store pre-computed
(materialized) joins as well", and the flat formulation "is more difficult
to formulate".  We time Example 4 both ways at growing scale: the NF2
unnest (one pass over clustered objects) against the flat 3-way join.
"""

import time

from repro.database import Database
from repro.datasets import DepartmentsGenerator, paper

from _bench_utils import emit

NF2_QUERY = (
    "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION "
    "FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS"
)
FLAT_QUERY = (
    "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION "
    "FROM x IN DEPARTMENTS-1NF, y IN PROJECTS-1NF, z IN MEMBERS-1NF "
    "WHERE x.DNO = y.DNO AND y.PNO = z.PNO AND y.DNO = z.DNO"
)


def build(departments):
    gen = DepartmentsGenerator(
        departments=departments, projects_per_department=3,
        members_per_project=4, seed=3,
    )
    db = Database(buffer_capacity=4096)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", gen.rows())
    flat = gen.flat_rows()
    for schema in (paper.DEPARTMENTS_1NF_SCHEMA, paper.PROJECTS_1NF_SCHEMA,
                   paper.MEMBERS_1NF_SCHEMA, paper.EQUIP_1NF_SCHEMA):
        db.create_table(schema)
        db.insert_many(schema.name, flat[schema.name])
    return db


def test_unnest_vs_flat_join(benchmark):
    lines = [
        "Example 4 at scale: NF2 unnest vs flat 3-way join",
        f"{'departments':>12} {'rows':>6} {'NF2 (ms)':>10} {'flat join (ms)':>15} "
        f"{'ratio':>6}",
    ]
    for departments in (5, 15, 30):
        db = build(departments)
        nf2_result = db.query(NF2_QUERY)
        flat_result = db.query(FLAT_QUERY)
        assert nf2_result == flat_result
        rows = len(nf2_result)

        start = time.perf_counter()
        for _ in range(5):
            db.query(NF2_QUERY)
        nf2_time = (time.perf_counter() - start) / 5
        start = time.perf_counter()
        for _ in range(5):
            db.query(FLAT_QUERY)
        flat_time = (time.perf_counter() - start) / 5
        lines.append(
            f"{departments:>12} {rows:>6} {nf2_time * 1e3:>10.2f} "
            f"{flat_time * 1e3:>15.2f} {flat_time / nf2_time:>6.1f}x"
        )
        assert nf2_time < flat_time, (
            "the materialized (pre-joined) hierarchy must beat the runtime join"
        )
    lines.append(
        "\nthe pre-computed join inside the NF2 object wins, and the gap "
        "widens with scale (nested-loop join cost grows superlinearly)"
    )
    emit("ablation_A5_materialized_join", "\n".join(lines))
    db = build(15)
    benchmark(db.query, NF2_QUERY)
