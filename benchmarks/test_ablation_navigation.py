"""Ablation A6 — separation of structural information and data.

Paper (Section 4.1): "'navigation' in a complex object (e.g. to retrieve a
certain element of a list) can be done on the structural information
without having to access the data at all", and "it should not be necessary
to scan a complex object more or less entirely if only one piece of data
in that object is needed".

We store one wide object whose data subtuples fill many pages and compare
pages touched / time for (a) counting the elements of every subtable
(pure structure), (b) reading one member's data, against (c) materializing
the whole object.
"""

from repro.datasets import DepartmentsGenerator, paper
from repro.model.values import TupleValue
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment

from _bench_utils import emit, emit_json, metered

WORKLOAD = DepartmentsGenerator(
    departments=1, projects_per_department=12, members_per_project=60,
    equipment_per_department=20, seed=99,
)


def build():
    buffer = BufferManager(MemoryPagedFile(), capacity=4096)
    manager = ComplexObjectManager(Segment(buffer))
    value = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, WORKLOAD.rows()[0])
    root = manager.store(paper.DEPARTMENTS_SCHEMA, value)
    return buffer, manager, root


def pages_for(buffer, action):
    with metered(buffer) as meter:
        action()
    return meter.pages


def test_structure_data_separation(benchmark):
    buffer, manager, root = build()
    total_pages = len(manager.object_pages(root))

    def navigate():
        obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
        return [len(p.subtables[0].elements)
                for p in obj.decoded.subtables[0].elements]

    def read_one():
        obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
        schema, member = obj.resolve([("PROJECTS", 7), ("MEMBERS", 30)])
        return obj.read_atoms(schema, member)

    def load_all():
        return manager.load(root, paper.DEPARTMENTS_SCHEMA)

    navigation_pages = pages_for(buffer, navigate)
    single_pages = pages_for(buffer, read_one)
    full_pages = pages_for(buffer, load_all)

    lines = [
        f"object occupies {total_pages} pages "
        f"({sum(len(p['MEMBERS']) for p in WORKLOAD.rows()[0]['PROJECTS'])} members)",
        f"pages touched:",
        f"  count all subtable elements (MD only):     {navigation_pages}",
        f"  read one member's data subtuple:           {single_pages}",
        f"  materialize the whole object:              {full_pages}",
    ]
    assert navigation_pages < full_pages
    assert single_pages < full_pages
    lines.append(
        "\nnavigation and point reads stay on a fraction of the object's "
        "pages — structure/data separation pays off."
    )
    # engine counters prove navigation is MD-only: no data-subtuple reads
    with metered(buffer, engine=True) as meter:
        navigate()
    assert meter.metrics.get("storage.data_subtuple_reads", 0) == 0
    assert meter.metrics.get("storage.md_subtuple_reads", 0) > 0
    emit_json(
        "ablation_A6_navigation_metrics",
        {
            "pages": {
                "navigate": navigation_pages,
                "read_one": single_pages,
                "load_all": full_pages,
            },
            "navigate_engine_counters": meter.metrics,
        },
    )
    emit("ablation_A6_navigation", "\n".join(lines))
    benchmark(navigate)
