"""Ablation A10 — bulk-load cost of the four storage organizations.

Loading N departments into: AIM-II clustered complex objects, the flat 1NF
decomposition, Lorie linked tuples, and the IMS hierarchic sequence.
Clustering and Mini Directories are not free at load time; this measures
what the paper's design pays up front for its retrieval wins (A1/A3/A6).
"""

import time

from repro.baselines import FlatRelationalBaseline, LorieComplexObjects
from repro.baselines.ims import IMSDatabase
from repro.datasets import DepartmentsGenerator, paper
from repro.model.values import TupleValue
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment

from _bench_utils import emit
from test_ablation_navigational import ims_shape

GEN = DepartmentsGenerator(departments=40, projects_per_department=4,
                           members_per_project=8, equipment_per_department=4,
                           seed=12)


def load_nf2(rows):
    buffer = BufferManager(MemoryPagedFile(), capacity=2048)
    manager = ComplexObjectManager(Segment(buffer))
    for row in rows:
        manager.store(
            paper.DEPARTMENTS_SCHEMA,
            TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, row),
        )
    return buffer.stats


def test_bulk_load(benchmark):
    rows = GEN.rows()
    timings = {}
    pages = {}

    start = time.perf_counter()
    load_nf2(rows)
    timings["AIM-II complex objects"] = time.perf_counter() - start
    buffer = BufferManager(MemoryPagedFile(), capacity=2048)
    manager = ComplexObjectManager(Segment(buffer))
    for row in rows:
        manager.store(paper.DEPARTMENTS_SCHEMA,
                      TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, row))
    pages["AIM-II complex objects"] = buffer._file.page_count

    start = time.perf_counter()
    flat = FlatRelationalBaseline(buffer_capacity=2048)
    flat.load(rows)
    timings["flat 1NF decomposition"] = time.perf_counter() - start
    pages["flat 1NF decomposition"] = flat.total_pages

    start = time.perf_counter()
    lorie = LorieComplexObjects(buffer_capacity=2048)
    lorie.load(rows)
    timings["Lorie linked tuples"] = time.perf_counter() - start
    pages["Lorie linked tuples"] = lorie.total_pages

    start = time.perf_counter()
    ims = IMSDatabase(buffer_capacity=2048)
    ims.load(ims_shape(rows))
    timings["IMS hierarchic sequence"] = time.perf_counter() - start
    pages["IMS hierarchic sequence"] = ims._segment.page_count

    tuples = sum(
        1 + len(d["PROJECTS"]) + len(d["EQUIP"])
        + sum(len(p["MEMBERS"]) for p in d["PROJECTS"])
        for d in rows
    )
    lines = [
        f"bulk load of {len(rows)} departments ({tuples} logical tuples):",
        f"{'organization':>26} {'time (ms)':>10} {'pages':>6}",
    ]
    for name in timings:
        lines.append(
            f"{name:>26} {timings[name] * 1e3:>10.1f} {pages[name]:>6}"
        )
    lines.append(
        "\nMini Directories cost load time; A1/A3/A6 show what that buys "
        "on the read side."
    )
    emit("ablation_A10_bulkload", "\n".join(lines))
    benchmark(load_nf2, rows)
