"""Ablation A1 — clustering on the complex-object level.

Paper (Section 4.1): "it is rather important that all its data are stored
on a relatively small page set and not distributed among too many database
pages".  We store the same synthetic departments three ways — AIM-II
clustered complex objects, the flat 1NF decomposition with index-nested-
loop joins, and Lorie-style linked tuples — and compare the distinct pages
touched (cold cache) to retrieve one whole object, plus wall-clock time.

Expected shape: AIM-II touches a small constant page set; the two layered
alternatives touch pages proportional to the object's fan-out spread.
"""

from repro.baselines import FlatRelationalBaseline, LorieComplexObjects
from repro.datasets import DepartmentsGenerator, paper
from repro.model.values import TupleValue
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment

from _bench_utils import emit, emit_json, metered

WORKLOAD = DepartmentsGenerator(
    departments=40, projects_per_department=5, members_per_project=12,
    equipment_per_department=6, seed=21,
)


def build_all():
    rows = WORKLOAD.rows()
    buffer = BufferManager(MemoryPagedFile(), capacity=1024)
    manager = ComplexObjectManager(Segment(buffer))
    roots = {
        row["DNO"]: manager.store(
            paper.DEPARTMENTS_SCHEMA,
            TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, row),
        )
        for row in rows
    }
    flat = FlatRelationalBaseline(buffer_capacity=1024)
    flat.load(rows)
    lorie = LorieComplexObjects(buffer_capacity=1024)
    lorie.load(rows)
    return rows, buffer, manager, roots, flat, lorie


def test_whole_object_retrieval_pages(benchmark):
    rows, buffer, manager, roots, flat, lorie = build_all()
    probes = [rows[i]["DNO"] for i in (5, 20, 35)]

    def nf2_pages(dno):
        with metered(buffer) as meter:
            manager.load(roots[dno], paper.DEPARTMENTS_SCHEMA)
        return meter.pages

    measurements = []
    for dno in probes:
        measurements.append(
            (dno, nf2_pages(dno), flat.pages_touched_for(dno),
             lorie.pages_touched_for(dno))
        )

    # a machine-readable snapshot with engine counters for one retrieval
    with metered(buffer, engine=True) as engine_meter:
        manager.load(roots[probes[0]], paper.DEPARTMENTS_SCHEMA)
    emit_json(
        "ablation_A1_clustering_metrics",
        {
            "measurements": [
                {"dno": dno, "aim2_pages": nf2, "flat_pages": flat_pages,
                 "lorie_pages": lorie_pages}
                for dno, nf2, flat_pages, lorie_pages in measurements
            ],
            "one_retrieval": {
                "buffer": engine_meter.buffer,
                "engine_counters": engine_meter.metrics,
            },
        },
    )

    # time the AIM-II whole-object retrieval
    benchmark(lambda: manager.load(roots[probes[0]], paper.DEPARTMENTS_SCHEMA))

    lines = [
        "pages touched to retrieve one whole department (cold cache)",
        f"{'DNO':>6} {'AIM-II':>8} {'flat join':>10} {'Lorie links':>12}",
    ]
    for dno, nf2, flat_pages, lorie_pages in measurements:
        lines.append(f"{dno:>6} {nf2:>8} {flat_pages:>10} {lorie_pages:>12}")
        assert nf2 < flat_pages, "clustered NF2 must beat the flat join"
        assert nf2 < lorie_pages, "clustered NF2 must beat Lorie linking"
    factor_flat = sum(m[2] for m in measurements) / sum(m[1] for m in measurements)
    factor_lorie = sum(m[3] for m in measurements) / sum(m[1] for m in measurements)
    lines.append(
        f"\nAIM-II advantage: {factor_flat:.1f}x fewer pages than the flat "
        f"join, {factor_lorie:.1f}x fewer than Lorie linking"
    )
    emit("ablation_A1_clustering", "\n".join(lines))


def test_whole_object_retrieval_time_flat(benchmark):
    rows, _buffer, _manager, _roots, flat, _lorie = build_all()
    dno = rows[20]["DNO"]
    benchmark(flat.retrieve, dno)


def test_whole_object_retrieval_time_lorie(benchmark):
    rows, _buffer, _manager, _roots, _flat, lorie = build_all()
    dno = rows[20]["DNO"]
    benchmark(lorie.retrieve, dno)
