"""Ablation A11 — concurrent sessions vs the serial engine.

The paper's AIM-II prototype was single-user; the reproduction adds a
hierarchical lock manager (table IS/IX/S/X + complex-object S/X), a
session layer, and a multi-client line-protocol server.  This ablation
measures what that buys on an interactive Section 4.2 read workload.

The workload models what motivates multi-user operation in the first
place: each *transaction* runs two queries with client **think time**
between them (the application examines the first result before issuing
the follow-up), all inside one strict-2PL transaction scope.  A fixed
budget of transactions is then executed by

* **1/2/4/8 sessions with shared locks** — readers take table-IS +
  object-S, which are mutually compatible, so their think times (and
  lock waits) overlap.  Aggregate throughput at 4 sessions must beat
  the single-session serial baseline by at least
  ``REPRO_CONCURRENCY_MIN_SPEEDUP`` (default ``1.0`` — four readers may
  never be *slower* than one; on an idle machine the measured figure is
  ~2x because the think time dominates and fully overlaps).
* **4 sessions with exclusive locks** — the ablation: every transaction
  takes table-X up front, which serializes the readers *including their
  think time*.  This is what a lock manager without shared modes would
  do, and it must not beat the shared-lock configuration.

A second section serves the same database from a ``python -m
repro.server`` subprocess to 1 and 4 client *processes* speaking the
line protocol (``BEGIN``/queries/``COMMIT`` with the same think time),
showing the overlap survives the wire.  Reported, not asserted — CI
boxes are noisy and the in-process numbers carry the floor.

Emits ``ablation_concurrency.txt`` and
``ablation_concurrency_metrics.json`` into ``benchmarks/out/``.
"""

import multiprocessing
import os
import re
import subprocess
import sys
import threading
import time

from repro.concurrency import LockMode
from repro.database import Database
from repro.datasets import DepartmentsGenerator, paper

from _bench_utils import emit, emit_json

# Section 4.2 shape, scaled up from the paper's 3 departments so a scan
# does real work (the knobs mirror the storage discussion's fan-outs).
GENERATOR = dict(
    departments=24,
    projects_per_department=4,
    members_per_project=5,
    equipment_per_department=3,
    consultant_share=0.25,
    seed=7,
)

#: one interactive transaction = QUERIES[0], think, QUERIES[1]
QUERIES = [
    "SELECT x.DNO FROM x IN DEPARTMENTS "
    "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
    "z.FUNCTION = 'Consultant'",
    "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS "
    "WHERE EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant'",
]

TXNS_TOTAL = 24             # fixed transaction budget per configuration
THINK_S = 0.06              # client think time inside each transaction
SESSION_COUNTS = (1, 2, 4, 8)
CLIENT_COUNTS = (1, 4)

MIN_SPEEDUP = float(os.environ.get("REPRO_CONCURRENCY_MIN_SPEEDUP", "1.0"))


def _build_dataset(path):
    db = Database(path=path)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", DepartmentsGenerator(**GENERATOR).rows())
    db.create_index("IDX_FUNCTION", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    db.save()
    db.close()


# -- part 1: in-process sessions ------------------------------------------


def _run_sessions(db, session_count, exclusive=False):
    """Split TXNS_TOTAL think-time transactions across reader sessions."""
    per_session = TXNS_TOTAL // session_count
    before = db.locks.stats()
    barrier = threading.Barrier(session_count + 1)
    errors = []

    def reader(index):
        with db.session(name=f"bench-reader-{index}") as session:
            barrier.wait()
            try:
                for _ in range(per_session):
                    with session.transaction():
                        if exclusive:
                            # ablation: no shared modes — serialize readers
                            session.lock(("table", "DEPARTMENTS"), LockMode.X)
                        session.query(QUERIES[0])
                        time.sleep(THINK_S)  # examine the first result
                        session.query(QUERIES[1])
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(i,), daemon=True)
        for i in range(session_count)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors
    after = db.locks.stats()
    ran = per_session * session_count
    return {
        "sessions": session_count,
        "locking": "exclusive" if exclusive else "shared",
        "transactions": ran,
        "elapsed_s": round(elapsed, 4),
        "txns_per_s": round(ran / elapsed, 2),
        "locks_granted": after["lock.grants"] - before["lock.grants"],
        "lock_waits": after["lock.waits"] - before["lock.waits"],
        "deadlocks": after["lock.deadlocks"] - before["lock.deadlocks"],
    }


# -- part 2: server + client processes ------------------------------------


def _client_worker(host, port, count, barrier, out_queue):
    """One reader client in its own process, speaking the line protocol."""
    from repro.server import LineClient

    with LineClient(host, port) as client:
        client.send(".tables")  # warm the connection + import paths
        barrier.wait()
        start = time.monotonic()
        for _ in range(count):
            for statement in ("BEGIN", QUERIES[0]):
                payload = client.send(statement)
                if payload.startswith("error:"):
                    raise RuntimeError(payload.strip())
            time.sleep(THINK_S)
            for statement in (QUERIES[1], "COMMIT"):
                payload = client.send(statement)
                if payload.startswith("error:"):
                    raise RuntimeError(payload.strip())
        end = time.monotonic()
    out_queue.put((start, end, count))


def _measure_clients(host, port, client_count):
    per_client = TXNS_TOTAL // client_count
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(client_count)
    out_queue = ctx.Queue()
    workers = [
        ctx.Process(
            target=_client_worker,
            args=(host, port, per_client, barrier, out_queue),
            daemon=True,
        )
        for _ in range(client_count)
    ]
    for worker in workers:
        worker.start()
    spans = [out_queue.get(timeout=120) for _ in workers]
    for worker in workers:
        worker.join(timeout=30)
    window = max(end for _, end, _ in spans) - min(start for start, _, _ in spans)
    total = sum(count for _, _, count in spans)
    return {
        "clients": client_count,
        "transactions": total,
        "elapsed_s": round(window, 4),
        "txns_per_s": round(total / window, 2),
    }


def _start_server(db_path):
    """Launch ``python -m repro.server`` on an ephemeral port."""
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", db_path, "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    banner = proc.stdout.readline()
    match = re.search(r"on ([\d.]+):(\d+)", banner)
    if not match:  # pragma: no cover - startup failure
        proc.kill()
        raise RuntimeError(f"server did not start: {banner!r}")
    return proc, match.group(1), int(match.group(2))


# -- the ablation ----------------------------------------------------------


def test_concurrency_ablation(tmp_path):
    db_path = str(tmp_path / "bench.db")
    _build_dataset(db_path)

    # part 1: in-process sessions over one shared engine
    db = Database(path=db_path)
    shared = [_run_sessions(db, n) for n in SESSION_COUNTS]
    exclusive = _run_sessions(db, 4, exclusive=True)
    assert db.verify() == []
    db.close()

    by_sessions = {row["sessions"]: row for row in shared}
    speedup = by_sessions[4]["txns_per_s"] / by_sessions[1]["txns_per_s"]

    # the readers really used the lock manager; shared locks meant no
    # deadlocks among pure readers, while the exclusive ablation blocked
    for row in shared:
        assert row["locks_granted"] > 0
        assert row["deadlocks"] == 0
    assert exclusive["lock_waits"] > 0

    # part 2: the server with client processes
    proc, host, port = _start_server(db_path)
    try:
        served = [_measure_clients(host, port, n) for n in CLIENT_COUNTS]
    finally:
        proc.terminate()
        proc.wait(timeout=15)
    served_by = {row["clients"]: row for row in served}
    served_speedup = (
        served_by[4]["txns_per_s"] / served_by[1]["txns_per_s"]
    )

    lines = [
        f"workload: {TXNS_TOTAL} transactions of 2 queries + "
        f"{THINK_S * 1000:.0f}ms think time, Section 4.2 dataset "
        f"({GENERATOR['departments']} departments)",
        "",
        "in-process sessions:",
        f"  {'sessions':>8} {'locking':>10} {'txns/s':>8} {'locks':>7} "
        f"{'waits':>6} {'deadlocks':>9}",
    ]
    for row in shared + [exclusive]:
        lines.append(
            f"  {row['sessions']:>8} {row['locking']:>10} "
            f"{row['txns_per_s']:>8} {row['locks_granted']:>7} "
            f"{row['lock_waits']:>6} {row['deadlocks']:>9}"
        )
    lines.append(
        f"\n4 shared-lock sessions vs serial: {speedup:.2f}x "
        f"(floor: {MIN_SPEEDUP}x); exclusive-lock ablation: "
        f"{exclusive['txns_per_s'] / by_sessions[1]['txns_per_s']:.2f}x"
    )
    lines.append("\nserver + client processes (line protocol):")
    lines.append(f"  {'clients':>8} {'txns/s':>8}")
    for row in served:
        lines.append(f"  {row['clients']:>8} {row['txns_per_s']:>8}")
    lines.append(
        f"\n4-client aggregate speedup over 1 client: {served_speedup:.2f}x"
    )
    emit("ablation_concurrency", "\n".join(lines))
    emit_json(
        "ablation_concurrency_metrics",
        {
            "generator": GENERATOR,
            "think_s": THINK_S,
            "transactions": TXNS_TOTAL,
            "in_process_shared": shared,
            "in_process_exclusive": exclusive,
            "server": served,
            "speedup_4_sessions": round(speedup, 3),
            "speedup_4_clients": round(served_speedup, 3),
            "min_speedup": MIN_SPEEDUP,
        },
    )

    # shared locks must pay: 4 readers >= the serial baseline times the
    # configured floor, and the exclusive-lock ablation must not win
    assert speedup >= MIN_SPEEDUP, (
        f"4 reader sessions reached only {speedup:.2f}x the 1-session "
        f"baseline (required {MIN_SPEEDUP}x)"
    )
    assert by_sessions[4]["txns_per_s"] >= exclusive["txns_per_s"], (
        "shared-lock readers were beaten by the exclusive-lock ablation"
    )
