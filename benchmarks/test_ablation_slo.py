"""Ablation A14 — the mixed-workload SLO gate.

ROADMAP item 2 asks for a YCSB-style mixed workload that "reports
p50/p99 ... and gates CI on SLO ceilings".  This benchmark drives four
operation types at configurable ratios through the full statement
pipeline — **point reads** (indexed key lookup), **nested navigation**
(EXISTS over the PROJECTS/MEMBERS hierarchy), **text search** (CONTAINS
through the fragment index), and **writes** (INSERT statements) — while
the PR 10 time-series recorder samples the latency histograms in the
background.

Quantiles come from the histograms themselves (the interpolated
``quantile_for`` per workload label), not from per-op stopwatch lists:
what the gate enforces is exactly what ``SYS.METRICS_HISTORY`` and the
SLO engine see in production.

The **gate**: after the workload, a p99 latency SLO with ceiling
``REPRO_SLO_P99_MS`` (default 250 ms/statement) and an error-budget SLO
(``REPRO_SLO_ERROR_RATE``, default 0.999) are installed and evaluated
over the recorded history; a FIRING alert fails the test.  A second arm
proves the gate *bites*: an artificially impossible ceiling must fire
and raise.  A third arm bounds the recorder's own cost: the workload
with the recorder sampling at high frequency must stay within the
``REPRO_OBS_MAX_OVERHEAD`` ceiling of the recorder-off run.

Snapshot: ``benchmarks/out/BENCH_slo.json`` (per-mix p50/p99, ratios,
gate verdicts) + a human-readable table.

Scale knobs: ``REPRO_SLO_SCALE`` (departments, default 24),
``REPRO_SLO_OPS`` (operations per workload run, default 400),
``REPRO_SLO_MIX`` (default ``point=40,nav=25,search=20,write=15``).
"""

import os
import random
import time

import pytest

from repro.database import Database
from repro.datasets import DepartmentsGenerator, paper
from repro.obs import LATENCY_BUCKETS_MS, METRICS, TRACER
from repro.obs.slo import FIRING

from _bench_utils import emit, emit_json

SCALE = int(os.environ.get("REPRO_SLO_SCALE", "24"))
OPS = int(os.environ.get("REPRO_SLO_OPS", "400"))
#: per-statement p99 ceiling (ms) — the CI gate; generous by default
#: because CI wall-clock is noisy, tighten locally to chase regressions
P99_CEILING_MS = float(os.environ.get("REPRO_SLO_P99_MS", "250.0"))
#: statement success objective (error budget = 1 - objective)
ERROR_OBJECTIVE = float(os.environ.get("REPRO_SLO_ERROR_RATE", "0.999"))
MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", "1.5"))
MIX_SPEC = os.environ.get(
    "REPRO_SLO_MIX", "point=40,nav=25,search=20,write=15"
)


def parse_mix(spec: str) -> dict:
    mix = {}
    for part in spec.split(","):
        name, _, weight = part.partition("=")
        mix[name.strip()] = int(weight)
    assert set(mix) == {"point", "nav", "search", "write"}, mix
    return mix


MIX = parse_mix(MIX_SPEC)

_TITLE_WORDS = (
    "Concurrency", "Recovery", "Clustering", "Hierarchies", "Relations",
    "Indexing", "Buffering", "Compilation", "Replication", "Histograms",
)


def build() -> Database:
    db = Database(buffer_capacity=2048)
    generator = DepartmentsGenerator(
        departments=SCALE, projects_per_department=3, members_per_project=4,
        consultant_share=0.1, seed=1014,
    )
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", generator.rows())
    db.create_index("DN", "DEPARTMENTS", "DNO")
    db.create_index("PN_HIER", "DEPARTMENTS", "PROJECTS.PNO")
    # a searchable corpus: the paper's reports plus synthesized titles
    db.create_table(paper.REPORTS_SCHEMA)
    db.insert_many("REPORTS", paper.REPORTS_ROWS)
    rng = random.Random(1014)
    db.insert_many(
        "REPORTS",
        (
            {
                "REPNO": f"9{n:03d}",
                "AUTHORS": [{"NAME": f"Author {n % 7}"}],
                "TITLE": " ".join(rng.sample(_TITLE_WORDS, 3)),
                "DESCRIPTORS": [],
            }
            for n in range(8 * SCALE)
        ),
    )
    db.create_text_index("TX_TITLE", "REPORTS", "TITLE")
    # the write target: an append-only flat event table
    db.execute("CREATE TABLE EVENTS (SEQ INT, NOTE STRING)")
    return db


def make_schedule(rng: random.Random, ops: int) -> list:
    """A shuffled operation tape honouring the MIX ratios exactly."""
    total = sum(MIX.values())
    tape = []
    for name, weight in sorted(MIX.items()):
        tape.extend([name] * round(ops * weight / total))
    while len(tape) < ops:
        tape.append("point")
    rng.shuffle(tape)
    return tape[:ops]


def run_workload(db: Database, ops: int, seed: int) -> dict:
    """Execute the mixed tape; per-op latencies land in the
    ``bench.latency_ms`` histogram labelled by workload mix."""
    rng = random.Random(seed)
    hist = METRICS.histogram(
        "bench.latency_ms", "mixed-workload per-operation latency (ms)",
        buckets=LATENCY_BUCKETS_MS,
    )
    counts = {name: 0 for name in MIX}
    seq = db.query("SELECT e.SEQ FROM e IN EVENTS").rows
    next_seq = len(seq)
    for op in make_schedule(rng, ops):
        counts[op] += 1
        if op == "point":
            dno = 100 + rng.randrange(SCALE)
            sql = (
                "SELECT x.DNO, x.BUDGET, x.PROJECTS FROM x IN DEPARTMENTS "
                f"WHERE x.DNO = {dno}"
            )
        elif op == "nav":
            pno = rng.randrange(3 * SCALE)
            sql = (
                "SELECT x.DNO FROM x IN DEPARTMENTS "
                f"WHERE EXISTS y IN x.PROJECTS (y.PNO = {pno} AND "
                "EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
            )
        elif op == "search":
            word = rng.choice(_TITLE_WORDS)
            sql = (
                "SELECT x.REPNO FROM x IN REPORTS "
                f"WHERE x.TITLE CONTAINS '*{word[:6].lower()}*'"
            )
        else:  # write
            next_seq += 1
            sql = f"INSERT INTO EVENTS VALUES ({next_seq}, 'op {op}')"
        start = time.perf_counter()
        db.execute(sql)
        hist.observe((time.perf_counter() - start) * 1000.0, op=op)
    return counts


def histogram_quantiles(name: str, label: str, keys) -> dict:
    """p50/p99 per label value, straight from the latency histogram."""
    hist = METRICS.histogram(name)
    out = {}
    for key in keys:
        out[key] = {
            "p50_ms": hist.quantile_for({label: key}, 0.50),
            "p99_ms": hist.quantile_for({label: key}, 0.99),
        }
    return out


def slo_gate(db: Database, p99_ceiling_ms: float, error_objective: float):
    """Install the gate SLOs over the recorded history and evaluate;
    raises AssertionError when an objective fires.  Returns the verdict
    rows for the artifact."""
    window = (3600.0,)  # one window spanning the whole workload run
    db.slo.define(
        name="gate-p99", kind="latency", metric="query.latency_ms",
        quantile=0.99, ceiling=p99_ceiling_ms, windows=window, for_ms=0.0,
    )
    db.slo.define(
        name="gate-errors", kind="error_rate", metric="query.errors",
        total_metric="query.statements", objective=error_objective,
        windows=window, for_ms=0.0,
    )
    db.ts.sample_once()  # final sample: evaluates both objectives
    verdicts = {}
    failures = []
    for name in ("gate-p99", "gate-errors"):
        state = db.slo.alert_state(name)
        value = db.slo._alerts[name].last_value
        verdicts[name] = {"state": state, "value": value}
        if state == FIRING:
            failures.append(f"{name}: value {value} (state {state})")
    if failures:
        raise AssertionError(
            "SLO gate breached — " + "; ".join(failures)
            + f" (ceiling {p99_ceiling_ms} ms, objective {error_objective})"
        )
    return verdicts


def test_mixed_workload_slo_gate(benchmark):
    assert not TRACER.enabled
    db = build()
    was_enabled = METRICS.enabled
    METRICS.enable()
    try:
        db.ts.sample_once()  # pre-workload baseline sample
        db.ts.period_ms = 50.0
        db.ts.start()  # the recorder rides along, as in --monitor serving
        try:
            counts = run_workload(db, OPS, seed=2024)
        finally:
            db.ts.stop()
        db.ts.sample_once()

        per_mix = histogram_quantiles("bench.latency_ms", "op", sorted(MIX))
        per_kind = histogram_quantiles(
            "query.latency_ms", "kind", ("SELECT", "INSERT")
        )
        errors = db.ts.windowed_delta("query.errors", {}, 3600.0) or 0.0
        statements = db.ts.windowed_delta("query.statements", {}, 3600.0)

        # the real gate: pinned ceilings from the environment
        verdicts = slo_gate(db, P99_CEILING_MS, ERROR_OBJECTIVE)

        # prove the gate bites: an impossible ceiling must fire + raise
        with pytest.raises(AssertionError, match="SLO gate breached"):
            slo_gate(db, 1e-9, ERROR_OBJECTIVE)
        db.slo.remove("gate-p99")
        db.slo.remove("gate-errors")

        history_rows = sum(1 for _ in db.ts.series_rows())

        # recorder-overhead arm: same read tape with the recorder off vs
        # sampling aggressively (metrics stay on in both)
        baseline = time.perf_counter()
        _read_tape(db, 120, seed=7)
        baseline = time.perf_counter() - baseline
        db.ts.period_ms = 5.0
        db.ts.start()
        try:
            sampled = time.perf_counter()
            _read_tape(db, 120, seed=7)
            sampled = time.perf_counter() - sampled
        finally:
            db.ts.stop()
        recorder_overhead = sampled / baseline - 1.0
    finally:
        METRICS.enabled = was_enabled
        db.close()

    payload = {
        "scale": SCALE,
        "ops": OPS,
        "mix": MIX,
        "op_counts": counts,
        "per_mix_quantiles": per_mix,
        "per_kind_quantiles": per_kind,
        "statements": statements,
        "errors": errors,
        "p99_ceiling_ms": P99_CEILING_MS,
        "error_objective": ERROR_OBJECTIVE,
        "gate_verdicts": verdicts,
        "history_series_rows": history_rows,
        "recorder_overhead_ratio": recorder_overhead,
        "max_overhead": MAX_OVERHEAD,
    }
    emit_json("BENCH_slo", payload)

    lines = [f"{'workload':<10} {'ops':>5} {'p50 ms':>9} {'p99 ms':>9}"]
    for name in sorted(MIX):
        q = per_mix[name]
        p50 = q["p50_ms"] or 0.0
        p99 = q["p99_ms"] or 0.0
        lines.append(f"{name:<10} {counts[name]:>5} {p50:>9.3f} {p99:>9.3f}")
    lines.append("")
    for kind in ("SELECT", "INSERT"):
        q = per_kind[kind]
        if q["p99_ms"] is not None:
            lines.append(
                f"statement {kind:<7} p50 {q['p50_ms']:.3f} ms  "
                f"p99 {q['p99_ms']:.3f} ms"
            )
    lines.append(
        f"\ngate: p99 <= {P99_CEILING_MS:g} ms "
        f"[{verdicts['gate-p99']['state']}], error budget "
        f"{1 - ERROR_OBJECTIVE:g} [{verdicts['gate-errors']['state']}]; "
        f"{statements:g} statements, {errors:g} errors; "
        f"{history_rows} history series; recorder overhead "
        f"{recorder_overhead:+.1%} (ceiling {MAX_OVERHEAD:+.0%})"
    )
    emit("BENCH_slo", "\n".join(lines))

    assert verdicts["gate-p99"]["state"] != FIRING
    assert verdicts["gate-errors"]["state"] != FIRING
    assert statements and statements >= OPS
    assert recorder_overhead <= MAX_OVERHEAD, (
        f"recorder-on run is {recorder_overhead:+.1%} slower than "
        f"recorder-off (ceiling {MAX_OVERHEAD:+.1%}) — background "
        "sampling got too expensive"
    )

    # pytest-benchmark record for trend tracking: the dominant op (a
    # point read) on a fresh database with the registry disabled
    db = build()
    sql = (
        "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS "
        f"WHERE x.DNO = {100 + SCALE // 2}"
    )
    try:
        benchmark(db.query, sql)
    finally:
        db.close()


def _read_tape(db: Database, ops: int, seed: int) -> None:
    rng = random.Random(seed)
    for _ in range(ops):
        dno = 100 + rng.randrange(SCALE)
        db.query(f"SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS "
                 f"WHERE x.DNO = {dno}")
