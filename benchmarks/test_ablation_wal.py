"""Ablation A7 — the price of durability.

The paper's AIM-II prototype ran with *no recovery component* (Section 5
leaves recovery to future work); the reproduction's WAL is an addition
beyond the paper.  This ablation quantifies its cost on a commit-heavy
workload: per-statement commit throughput and bytes logged with

* ``wal=off``                — the paper's configuration (save() persists),
* ``wal=on``                 — redo logging + commit fsync per statement,
* ``wal=on + checksums``     — additionally stamping/verifying page CRCs,
* ``wal=on (batched)``       — one transaction around the whole workload,
  showing that the fsync, not the logging, dominates.

Emits ``ablation_wal.txt`` and ``ablation_wal_metrics.json`` into
``benchmarks/out/``.
"""

import os
import time

from repro.database import Database
from repro.datasets import paper

from _bench_utils import emit, emit_json, metered

ROWS = 120  # inserts per configuration (plus updates)


def workload(db):
    """A commit-per-statement burst: inserts then point updates."""
    for i in range(ROWS):
        db.insert(
            "EMPLOYEES-1NF",
            {
                "EMPNO": 100_000 + i, "LNAME": f"emp-{i}",
                "FNAME": "A", "SEX": "F" if i % 2 else "M",
            },
        )
    for i in range(0, ROWS, 4):
        db.execute(
            f"UPDATE EMPLOYEES-1NF x SET FNAME = 'B' "
            f"WHERE x.EMPNO = {100_000 + i}"
        )


def batched_workload(db):
    with db.transaction():
        workload(db)


def run_config(tmp_dir, name, run, **db_kwargs):
    path = os.path.join(tmp_dir, f"{name}.db")
    db = Database(path=path, **db_kwargs)
    db.create_table(paper.EMPLOYEES_1NF_SCHEMA)
    started = time.perf_counter()
    with metered(db.buffer, cold=False, engine=True) as meter:
        run(db)
    elapsed = time.perf_counter() - started
    statements = ROWS + ROWS // 4
    wal_stats = db.wal.stats() if db.wal is not None else {}
    result = {
        "config": name,
        "statements": statements,
        "elapsed_s": round(elapsed, 4),
        "statements_per_s": round(statements / elapsed, 1),
        "wal_fsyncs": wal_stats.get("fsyncs", 0),
        "wal_commits": wal_stats.get("commits", 0),
        "wal_bytes_appended": wal_stats.get("bytes_appended", 0),
        "buffer": meter.buffer,
        "metrics": {
            k: v for k, v in meter.metrics.items() if k.startswith("wal.")
        },
    }
    db.close()
    return result


def test_wal_durability_cost(benchmark, tmp_path):
    tmp_dir = str(tmp_path)
    results = [
        run_config(tmp_dir, "wal_off", workload, wal=False),
        run_config(
            tmp_dir, "wal_on", workload, page_checksums=False
        ),
        run_config(
            tmp_dir, "wal_on_checksums", workload, page_checksums=True
        ),
        run_config(tmp_dir, "wal_on_batched", batched_workload),
    ]
    by_name = {r["config"]: r for r in results}

    # correctness of the accounting, not of timings (timings are reported,
    # not asserted — CI machines are noisy)
    assert by_name["wal_off"]["wal_commits"] == 0
    assert by_name["wal_on"]["wal_commits"] >= by_name["wal_off"]["statements"]
    # the batched run commits once per transaction scope, not per statement
    assert by_name["wal_on_batched"]["wal_commits"] < 10
    assert by_name["wal_on_batched"]["wal_fsyncs"] < by_name["wal_on"]["wal_fsyncs"]
    # durability writes real log bytes
    assert by_name["wal_on"]["wal_bytes_appended"] > 0

    lines = [
        f"{'config':<18} {'stmts/s':>10} {'commits':>8} {'fsyncs':>7} "
        f"{'log bytes':>10}",
    ]
    for r in results:
        lines.append(
            f"{r['config']:<18} {r['statements_per_s']:>10} "
            f"{r['wal_commits']:>8} {r['wal_fsyncs']:>7} "
            f"{r['wal_bytes_appended']:>10}"
        )
    lines.append(
        "\nper-statement commits pay one log fsync each; batching the "
        "workload in one transaction amortizes the fsyncs away while "
        "keeping crash atomicity."
    )
    emit("ablation_wal", "\n".join(lines))
    emit_json("ablation_wal_metrics", {"rows": ROWS, "configs": results})

    # a timed probe for pytest-benchmark's own reporting: one durable commit
    path = os.path.join(tmp_dir, "probe.db")
    db = Database(path=path)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    counter = [0]

    def one_commit():
        counter[0] += 1
        db.insert(
            "DEPARTMENTS",
            {
                "DNO": 1000 + counter[0], "MGRNO": 1, "PROJECTS": [],
                "BUDGET": 0, "EQUIP": [],
            },
        )

    benchmark(one_commit)
    db.close()
