"""Ablation A12 — cost-based vs first-match access-path selection.

A/B comparison on the Section 4.2 workloads, driven through the full
query pipeline (``Database.query``) with ``planner_mode`` as the switch:

* **first-match** — the pre-cost-model planner: the first index in
  catalog order answering a conjunct wins (even a ROOT_TID index
  shadowing a HIERARCHICAL twin), conjuncts intersect in WHERE order
  without early exit, and candidates are fully materialized;
* **cost** — statistics-scored selection (HIERARCHICAL preferred at
  equal selectivity), ascending-selectivity intersection with early
  exit, and streaming candidates.

The catalog deliberately registers ROOT_TID indexes *before* their
HIERARCHICAL twins — the ordering that used to shadow the better access
path.  We measure distinct pages touched (the paper's clustering metric)
and B+-tree work per query, and assert the cost-based planner wins.

Scale with ``REPRO_PLANNER_SCALE`` (departments; default 48 — the CI
smoke size).
"""

import os

from repro.database import Database
from repro.datasets import DepartmentsGenerator, paper
from repro.index.addresses import AddressingMode

from _bench_utils import emit, emit_json, metered

SCALE = int(os.environ.get("REPRO_PLANNER_SCALE", "48"))

WORKLOAD = DepartmentsGenerator(
    departments=SCALE, projects_per_department=3, members_per_project=4,
    consultant_share=0.08, seed=77,
)
TARGET_PNO = 12  # exists in every department; few have a consultant there

#: the Section 4.2 workload, through the language
QUERIES = {
    # conjunctive query anchored in the same project — the prefix-join
    # query; ROOT_TID shadowing loses the join and fetches false positives
    "prefix_join": (
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS "
        f"(y.PNO = {TARGET_PNO} AND "
        "EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
    ),
    # a zero-hit equality first kills the intersection under the cost
    # model (early exit); first-match probes every matched index.
    # the broad condition comes first in WHERE order on purpose.
    "early_exit": (
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant' AND x.BUDGET = 1"
    ),
    # single selective equality — both modes answer it from the index
    "point": (
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 101"
    ),
}


def build():
    db = Database(buffer_capacity=2048)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", WORKLOAD.rows())
    # ROOT_TID indexes registered first: catalog order shadows the
    # hierarchical twins under first-match selection
    db.create_index(
        "PN_ROOT", "DEPARTMENTS", "PROJECTS.PNO",
        mode=AddressingMode.ROOT_TID,
    )
    db.create_index(
        "FN_ROOT", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION",
        mode=AddressingMode.ROOT_TID,
    )
    db.create_index("PN_HIER", "DEPARTMENTS", "PROJECTS.PNO")
    db.create_index("FN_HIER", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    db.create_index("DN", "DEPARTMENTS", "DNO")
    return db


def run_mode(db: Database, mode: str) -> dict:
    """Run every workload query under one planner mode, metered."""
    db.planner_mode = mode
    out = {}
    for name, sql in QUERIES.items():
        with metered(db.buffer, cold=True, engine=True) as meter:
            result = db.query(sql)
        plan = db.last_plan
        # CI guard: an index answer exists for every workload query — a
        # cost-based plan that scans instead is a planner regression.
        assert plan is not None and plan.used_any, (
            f"{mode}/{name}: planner fell back to a scan although an "
            "index answer exists"
        )
        out[name] = {
            "rows": sorted(result.column("DNO")),
            "pages": meter.pages,
            "physical_reads": meter.buffer.get("physical_reads", 0),
            "candidates": plan.actual_candidates,
            "used_indexes": list(plan.used_indexes),
            "prefix_joins": plan.prefix_joins,
            "early_exit": plan.early_exit,
            "btree_node_visits": meter.metrics.get(
                "index.btree_node_visits", 0
            ),
            "index_probes": meter.metrics.get("index.probes", 0),
        }
    return out


def test_planner_ablation(benchmark):
    db = build()
    first_match = run_mode(db, "first-match")
    cost = run_mode(db, "cost")

    # correctness: both modes agree on every answer
    for name in QUERIES:
        assert cost[name]["rows"] == first_match[name]["rows"], name

    pj_cost, pj_first = cost["prefix_join"], first_match["prefix_join"]
    # the cost model recovers the shadowed hierarchical indexes...
    assert set(pj_cost["used_indexes"]) == {"PN_HIER", "FN_HIER"}
    assert set(pj_first["used_indexes"]) == {"PN_ROOT", "FN_ROOT"}
    # ...so the prefix join prunes to the true result set
    assert pj_cost["prefix_joins"] == 1 and pj_first["prefix_joins"] == 0
    assert pj_cost["candidates"] == len(pj_cost["rows"])
    assert pj_cost["candidates"] < pj_first["candidates"]
    # fewer objects fetched -> fewer distinct pages touched
    assert pj_cost["pages"] < pj_first["pages"]

    ee_cost, ee_first = cost["early_exit"], first_match["early_exit"]
    assert ee_cost["early_exit"] and not ee_first["early_exit"]
    assert ee_cost["candidates"] == 0
    # the zero-hit probe came first; the broad FUNCTION index was skipped
    assert ee_cost["index_probes"] < ee_first["index_probes"]
    assert ee_cost["btree_node_visits"] < ee_first["btree_node_visits"]

    lines = [
        f"workload: {SCALE} departments, "
        f"{WORKLOAD.projects_per_department} projects x "
        f"{WORKLOAD.members_per_project} members "
        f"(consultant share {WORKLOAD.consultant_share})",
        f"{'query':>12} {'mode':>12} {'cand':>5} {'pages':>6} "
        f"{'probes':>7} {'btree':>6}  indexes",
    ]
    for name in QUERIES:
        for mode, data in (("first-match", first_match), ("cost", cost)):
            d = data[name]
            lines.append(
                f"{name:>12} {mode:>12} {d['candidates']:>5} "
                f"{d['pages']:>6} {d['index_probes']:>7.0f} "
                f"{d['btree_node_visits']:>6.0f}  "
                f"{','.join(d['used_indexes'])}"
            )
    lines.append(
        "\ncost-based selection recovers the hierarchical indexes (prefix "
        "join prunes before fetching) and early-exits dead intersections "
        "— first-match pays for both."
    )
    emit_json(
        "ablation_A12_planner_metrics",
        {"scale": SCALE, "first_match": first_match, "cost": cost},
    )
    emit("ablation_A12_planner", "\n".join(lines))

    db.planner_mode = "cost"
    benchmark(db.query, QUERIES["prefix_join"])
