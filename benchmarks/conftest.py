"""Fixtures for the benchmark harness.

Every ``test_repro_*`` benchmark regenerates one table or figure of the
paper and writes its rendered output to ``benchmarks/out/<id>.txt`` (also
printed; run pytest with ``-s`` to see it inline).  ``test_ablation_*``
benchmarks measure the paper's comparative claims.  EXPERIMENTS.md
summarizes paper-vs-measured for every artifact.
"""

import pytest

from _bench_utils import build_paper_db
from repro.database import Database


@pytest.fixture(scope="module")
def paper_db() -> Database:
    return build_paper_db()
