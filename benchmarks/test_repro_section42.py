"""Section 4.2's three index queries, executed with the paper's preferred
hierarchical-address indexes through the planner."""

from repro.datasets import paper

from _bench_utils import build_paper_db, emit
from test_repro_tables import _query

import pytest


@pytest.fixture(scope="module")
def indexed_db():
    db = build_paper_db()
    db.create_index("IDX_FUNCTION", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    db.create_index("IDX_PNO", "DEPARTMENTS", "PROJECTS.PNO")
    return db


def test_query1_consultant_departments(indexed_db, benchmark):
    query = (
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    )
    result = benchmark(_query, indexed_db, query)
    assert sorted(result.column("DNO")) == [218, 314]
    plan = indexed_db.last_plan
    emit("section42_query1",
         f"departments with a consultant: {sorted(result.column('DNO'))} "
         f"(paper: 314 and 218)\nplan: indexes={plan.used_indexes}")


def test_query2_consultant_projects(indexed_db, benchmark):
    query = (
        "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS "
        "WHERE EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant'"
    )
    result = benchmark(_query, indexed_db, query)
    assert sorted(result.column("PNO")) == [17, 25]
    emit("section42_query2",
         f"projects with a consultant: {sorted(result.column('PNO'))} "
         "(paper: PNOs 17 and 25)")


def test_query3_pno17_and_consultant(indexed_db, benchmark):
    query = (
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS "
        "(y.PNO = 17 AND EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
    )
    result = benchmark(_query, indexed_db, query)
    assert result.column("DNO") == [314]
    plan = indexed_db.last_plan
    assert plan is not None and plan.prefix_joins == 1
    emit("section42_query3",
         f"PNO=17 with a consultant in the same project: {result.column('DNO')}\n"
         f"plan: indexes={plan.used_indexes}, prefix joins={plan.prefix_joins} "
         "(decided on index information alone — Fig 7b)")
