"""Regenerate the paper's Figures 1-8.

* Fig 1 — the DEPARTMENTS hierarchy (IMS-like schema tree);
* Figs 2-5 — the queries of Examples 2/3/7 (text + executed results);
* Fig 6 — the SS1/SS2/SS3 Mini Directory layouts of department 314,
  including the paper's MD-count ordering;
* Fig 7 — hierarchical index addresses P and F and the P2=F2 resolution;
* Fig 8 — the tuple names T, U, V, W, X.
"""

import pytest

from repro.database import Database
from repro.datasets import paper
from repro.index.addresses import AddressingMode
from repro.index.manager import IndexDefinition, NF2Index
from repro.model.values import TupleValue
from repro.render import render_schema_tree, render_table
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.mdrender import md_statistics_row, render_mini_directory
from repro.storage.minidirectory import StorageStructure
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment

from _bench_utils import emit
from test_repro_tables import _query


def test_fig1_hierarchy(paper_db, benchmark):
    text = benchmark(render_schema_tree, paper_db.table_schema("DEPARTMENTS"))
    assert "MEMBERS" in text
    emit("fig_1_hierarchy", text)


FIG2 = """
SELECT x.DNO, x.MGRNO,
       PROJECTS = (SELECT y.PNO, y.PNAME,
                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION
                                     FROM z IN y.MEMBERS)
                   FROM y IN x.PROJECTS),
       x.BUDGET,
       EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
FROM x IN DEPARTMENTS
"""


def test_fig2_explicit_structure(paper_db, benchmark):
    result = benchmark(_query, paper_db, FIG2)
    assert result == paper.departments()
    emit("fig_2_explicit_structure",
         f"Query:\n{FIG2}\nResult:\n{render_table(result, title='RESULT')}")


FIG3 = """
SELECT x.DNO, x.MGRNO,
       PROJECTS = (SELECT y.PNO, y.PNAME,
                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION
                                     FROM z IN MEMBERS-1NF
                                     WHERE z.DNO = x.DNO AND z.PNO = y.PNO)
                   FROM y IN PROJECTS-1NF WHERE y.DNO = x.DNO),
       x.BUDGET,
       EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP-1NF WHERE v.DNO = x.DNO)
FROM x IN DEPARTMENTS-1NF
"""


def test_fig3_nest(paper_db, benchmark):
    result = benchmark(_query, paper_db, FIG3)
    assert result == paper.departments()
    emit("fig_3_nest", f"Query (nest):\n{FIG3}\nResult == Table 5: True")


FIG4 = """
SELECT x.DNO, x.MGRNO,
       EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                    FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF
                    WHERE z.EMPNO = u.EMPNO)
FROM x IN DEPARTMENTS
"""


def test_fig4_join(paper_db, benchmark):
    result = benchmark(_query, paper_db, FIG4)
    assert len(result) == 3
    totals = {row["DNO"]: len(row["EMPLOYEES"]) for row in result}
    assert totals == {314: 7, 218: 6, 417: 4}
    emit("fig_4_join", f"Query:\n{FIG4}\nResult:\n{render_table(result)}")


FIG5 = """
SELECT x.DNO, m.LNAME, m.FNAME, m.SEX,
       EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                    FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES-1NF
                    WHERE z.EMPNO = u.EMPNO)
FROM x IN DEPARTMENTS, m IN EMPLOYEES-1NF
WHERE x.MGRNO = m.EMPNO
"""


def test_fig5_two_joins(paper_db, benchmark):
    result = benchmark(_query, paper_db, FIG5)
    managers = {row["DNO"]: row["LNAME"] for row in result}
    assert managers == {314: "Schmidt", 218: "Neumann", 417: "Richter"}
    emit("fig_5_two_joins", f"Query:\n{FIG5}\nResult:\n{render_table(result)}")


def test_fig6_storage_structures(benchmark):
    """Fig 6a/b/c for department 314 + the MD-count ordering."""

    def build():
        rendered = {}
        counts = {}
        for structure in StorageStructure:
            buffer = BufferManager(MemoryPagedFile(), capacity=128)
            manager = ComplexObjectManager(Segment(buffer), structure)
            root = manager.store(
                paper.DEPARTMENTS_SCHEMA,
                TupleValue.from_plain(
                    paper.DEPARTMENTS_SCHEMA, paper.DEPARTMENTS_ROWS[0]
                ),
            )
            rendered[structure] = (
                render_mini_directory(manager, root, paper.DEPARTMENTS_SCHEMA)
                + "\n"
                + md_statistics_row(manager, root, paper.DEPARTMENTS_SCHEMA)
            )
            counts[structure] = manager.statistics(
                root, paper.DEPARTMENTS_SCHEMA
            )["md_subtuples"]
        return rendered, counts

    rendered, counts = benchmark(build)
    # the paper's ordering: SS1 > SS3 > SS2
    assert counts[StorageStructure.SS1] > counts[StorageStructure.SS3]
    assert counts[StorageStructure.SS3] > counts[StorageStructure.SS2]
    assert counts == {
        StorageStructure.SS1: 7,
        StorageStructure.SS3: 5,
        StorageStructure.SS2: 3,
    }
    text = "\n\n".join(
        f"--- Fig 6{label}: {s.value} ---\n{rendered[s]}"
        for label, s in zip("abc", [StorageStructure.SS1, StorageStructure.SS2,
                                    StorageStructure.SS3])
    )
    text += (
        f"\n\nMD subtuple counts for department 314: "
        f"SS1={counts[StorageStructure.SS1]} > "
        f"SS3={counts[StorageStructure.SS3]} > "
        f"SS2={counts[StorageStructure.SS2]}  (paper's ordering holds)"
    )
    emit("fig_6_storage_structures", text)


def test_fig7_hierarchical_addresses(benchmark):
    """Fig 7b: P and F share their first component -> same project."""

    def build():
        buffer = BufferManager(MemoryPagedFile(), capacity=128)
        manager = ComplexObjectManager(Segment(buffer), StorageStructure.SS3)
        roots = [
            manager.store(
                paper.DEPARTMENTS_SCHEMA,
                TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, row),
            )
            for row in paper.DEPARTMENTS_ROWS
        ]
        pno = NF2Index(IndexDefinition(
            "PNO", "DEPARTMENTS", ("PROJECTS", "PNO"),
            AddressingMode.HIERARCHICAL,
        ))
        function = NF2Index(IndexDefinition(
            "FUNCTION", "DEPARTMENTS", ("PROJECTS", "MEMBERS", "FUNCTION"),
            AddressingMode.HIERARCHICAL,
        ))
        for root in roots:
            obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
            pno.index_object(obj)
            function.index_object(obj)
        return roots, pno, function

    roots, pno, function = benchmark(build)
    p_addresses = pno.search(17)
    f_addresses = function.search("Consultant")
    hits = [(p, f) for p in p_addresses for f in f_addresses
            if p.shares_prefix(f, 1)]
    assert len(hits) == 1 and hits[0][0].root == roots[0]
    lines = [
        "--- Fig 7a: the naive pointer-path addresses fail ---",
        "With SS3 pointers, the 2nd component of both paths is the",
        "PROJECTS *subtable* MD subtuple — shared by ALL projects of the",
        "department.  P2 = F2 then holds even when the PNO and the",
        "consultant sit in different projects: the equality carries no",
        "information, and the intermediate result must be scanned.",
        "(Address components must identify complex subobjects, never",
        "subtables — Section 4.2, rule 2.)",
        "",
        "--- Fig 7b: the final solution ---",
        "Index for PNO, key 17:",
        *(f"  P = {a}" for a in p_addresses),
        "Index for FUNCTION, key 'Consultant':",
        *(f"  F = {a}" for a in f_addresses),
        "",
        "P2 = F2 resolution (components are data-subtuple Mini TIDs):",
        *(f"  MATCH: P={p}  F={f}" for p, f in hits),
        "",
        "-> department 314 is in the final result set, decided purely on",
        "   index information; dept 218 (consultants, but PNO=25) and the",
        "   HEAR project (PNO=23, no consultant) never match.",
    ]
    # demonstrate 7a's ambiguity concretely: subtable-level components
    # cannot separate project 17 from project 23 within dept 314
    obj_roots = {a.root for a in f_addresses}
    assert roots[1] in obj_roots  # dept 218's consultants share the root...
    assert not any(
        p.shares_prefix(f, 1)
        for p in p_addresses for f in f_addresses
        if f.root == roots[1]
    )  # ...but never the project-level component
    emit("fig_7_hierarchical_addresses", "\n".join(lines))


def test_fig8_tuple_names(benchmark):
    """Fig 8: T, U, V, W, X for department 314."""

    def build():
        buffer = BufferManager(MemoryPagedFile(), capacity=128)
        manager = ComplexObjectManager(Segment(buffer), StorageStructure.SS3)
        root = manager.store(
            paper.DEPARTMENTS_SCHEMA,
            TupleValue.from_plain(
                paper.DEPARTMENTS_SCHEMA, paper.DEPARTMENTS_ROWS[0]
            ),
        )
        from repro.names.tuple_names import TupleNameService

        service = TupleNameService(manager, paper.DEPARTMENTS_SCHEMA)
        obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
        return service, obj, root

    service, obj, root = benchmark(build)
    u = service.name_of_object(root)
    v = service.name_of_subobject(obj, [("PROJECTS", 0)])
    t = service.name_of_subobject(obj, [("PROJECTS", 0), ("MEMBERS", 1)])
    w = service.name_of_subtable(obj, [], "PROJECTS")
    x = service.name_of_subtable(obj, [("PROJECTS", 0)], "MEMBERS")
    # resolve each and check what the paper says they denote
    assert service.resolve(u)["DNO"] == 314
    assert service.resolve(v)["PNO"] == 17
    assert service.resolve(t)["EMPNO"] == 56019
    assert sorted(service.resolve(w).column("PNO")) == [17, 23]
    assert service.resolve(x).column("EMPNO") == [39582, 56019, 69011]
    lines = [
        f"U (dept 314 as a whole, ROOT MD address)      = {u}",
        f"V (project 17, via its '17 CGA' data subtuple) = {v}",
        f"T (flat tuple '56019 Consultant')              = {t}",
        f"W (PROJECTS subtable, ends at an MD subtuple)  = {w}",
        f"X (MEMBERS subtable of project 17)             = {x}",
        "",
        "W and X address MD subtuples: allowed as t-names, forbidden as",
        "i-addresses (Section 4.3's closing distinction).",
    ]
    emit("fig_8_tuple_names", "\n".join(lines))
