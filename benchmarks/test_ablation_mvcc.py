"""Ablation A12 — MVCC snapshot reads vs 2PL under a steady writer.

The MVCC subsystem's pitch is *readers never block writers* (and vice
versa): committed statements version tuples with commit-sequence stamps,
and snapshot reads resolve visibility from version intervals instead of
S-locks.  This ablation measures what that buys on the workload the
design targets — an update transaction stream holding table-X locks
while interactive readers scan the same table.

One configuration = a writer thread committing small update transactions
(an explicit transaction takes table-X, held for ``HOLD_S`` — the
multi-statement transaction shape that makes 2PL readers wait) plus N
reader sessions draining a fixed budget of full scans:

* **2PL** (``Database(mvcc=False)``): readers take table-IS + object-S
  and block whenever the writer's transaction holds table-X.
* **MVCC** (``Database(mvcc=True)``): readers take **zero locks**; the
  run asserts every MVCC reader finished with no ``Lock/*`` wait events
  and no lock requests at all.

At 4 readers, MVCC aggregate read throughput must beat 2PL by at least
``REPRO_MVCC_MIN_SPEEDUP`` (default 2.0).  Both engines must return only
committed data (every scan sees a consistent row count) and pass
``CHECK TABLE`` afterwards.

Emits ``ablation_mvcc.txt`` and ``BENCH_mvcc.json`` into
``benchmarks/out/``.
"""

import os
import threading
import time

from repro.database import Database

from _bench_utils import emit, emit_json

ROWS = 120                  # table cardinality (a scan does real work)
READS_TOTAL = 32            # fixed scan budget per configuration
HOLD_S = 0.03               # how long each writer txn holds its X lock
PAUSE_S = 0.005             # writer think time *between* transactions —
                            # lock grants have no queue fairness, so this
                            # window is what lets blocked readers in
THINK_S = 0.005             # reader think time between scans (the gaps
                            # that let the writer back in under 2PL)
READER_COUNTS = (1, 2, 4, 8)

MIN_SPEEDUP = float(os.environ.get("REPRO_MVCC_MIN_SPEEDUP", "2.0"))

SCAN = "SELECT t.K, t.PAYLOAD FROM t IN HOT"


def _build(mvcc: bool) -> Database:
    db = Database(mvcc=mvcc)
    db.execute("CREATE TABLE HOT (K INT, GEN INT, PAYLOAD STRING)")
    for i in range(ROWS):
        db.execute(f"INSERT INTO HOT VALUES ({i}, 0, 'payload-{i:04d}')")
    return db


def _run(db: Database, readers: int) -> dict:
    """Fixed scan budget across *readers* sessions, writer running
    throughout; returns aggregate reader throughput + blocking stats."""
    per_reader = READS_TOTAL // readers
    stop = threading.Event()
    barrier = threading.Barrier(readers + 2)
    errors: list = []
    lock_requests = [0] * readers
    lock_waits: list[dict] = [{} for _ in range(readers)]
    writer_commits = [0]

    def writer() -> None:
        with db.session(name="bench-writer", lock_timeout=60.0) as session:
            barrier.wait()
            gen = 0
            try:
                while not stop.is_set():
                    gen += 1
                    with session.transaction():
                        # an explicit transaction takes table-X (its
                        # rollback is table-granular), so under 2PL every
                        # scan that starts now blocks until commit...
                        session.execute(
                            f"UPDATE HOT t SET GEN = {gen} WHERE t.K = 0"
                        )
                        # ...and the lock is held while the client decides
                        time.sleep(HOLD_S)
                    writer_commits[0] += 1
                    time.sleep(PAUSE_S)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

    def reader(index: int) -> None:
        with db.session(name=f"bench-reader-{index}", lock_timeout=60.0) as s:
            barrier.wait()
            try:
                for _ in range(per_reader):
                    result = s.execute(SCAN)
                    # snapshot consistency: never a torn row count
                    assert len(result) == ROWS, len(result)
                    lock_requests[index] += s.last_lock_requests
                    time.sleep(THINK_S)  # examine the result
                summary = s.wait_summary()
                lock_waits[index] = {
                    event: stats
                    for event, stats in summary.items()
                    if event.startswith("Lock/")
                }
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

    threads = [threading.Thread(target=writer, daemon=True)] + [
        threading.Thread(target=reader, args=(i,), daemon=True)
        for i in range(readers)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads[1:]:
        thread.join()
    elapsed = time.perf_counter() - started
    stop.set()
    threads[0].join()
    assert not errors, errors
    ran = per_reader * readers
    waited_ms = sum(
        ms for waits in lock_waits for _count, ms in waits.values()
    )
    return {
        "readers": readers,
        "reads": ran,
        "elapsed_s": round(elapsed, 4),
        "reads_per_s": round(ran / elapsed, 2),
        "reader_lock_requests": sum(lock_requests),
        "reader_lock_wait_ms": round(waited_ms, 2),
        "reader_lock_wait_events": sorted(
            {event for waits in lock_waits for event in waits}
        ),
        "writer_commits": writer_commits[0],
    }


def test_mvcc_ablation():
    results: dict[str, list[dict]] = {}
    gc_backlog_after = None
    for mode, mvcc in (("2pl", False), ("mvcc", True)):
        db = _build(mvcc)
        rows = [_run(db, n) for n in READER_COUNTS]
        assert db.verify() == []
        if mvcc:
            # one more commit drains the GC queue (no snapshots remain;
            # an INSERT creates no dead version of its own)
            db.execute(f"INSERT INTO HOT VALUES ({ROWS}, 0, 'drain')")
            gc_backlog_after = db.mvcc.gc_backlog()
        db.close()
        results[mode] = rows

    by = {
        mode: {row["readers"]: row for row in rows}
        for mode, rows in results.items()
    }
    speedup = {
        n: by["mvcc"][n]["reads_per_s"] / by["2pl"][n]["reads_per_s"]
        for n in READER_COUNTS
    }

    lines = [
        f"workload: {READS_TOTAL} scans of {ROWS} rows per configuration, "
        f"steady writer holding table-X {HOLD_S * 1000:.0f}ms per txn with "
        f"{PAUSE_S * 1000:.0f}ms between txns, "
        f"{THINK_S * 1000:.0f}ms reader think time",
        "",
        f"  {'mode':>6} {'readers':>8} {'reads/s':>9} {'lock reqs':>10} "
        f"{'wait ms':>8} {'writer txns':>12}",
    ]
    for mode in ("2pl", "mvcc"):
        for row in results[mode]:
            lines.append(
                f"  {mode:>6} {row['readers']:>8} {row['reads_per_s']:>9} "
                f"{row['reader_lock_requests']:>10} "
                f"{row['reader_lock_wait_ms']:>8} {row['writer_commits']:>12}"
            )
    lines.append("")
    for n in READER_COUNTS:
        lines.append(f"mvcc vs 2pl at {n} reader(s): {speedup[n]:.2f}x")
    lines.append(f"floor at 4 readers: {MIN_SPEEDUP}x")
    lines.append(f"mvcc gc backlog after final commit: {gc_backlog_after}")
    emit("ablation_mvcc", "\n".join(lines))
    emit_json(
        "BENCH_mvcc",
        {
            "rows": ROWS,
            "reads_total": READS_TOTAL,
            "writer_hold_s": HOLD_S,
            "writer_pause_s": PAUSE_S,
            "reader_think_s": THINK_S,
            "results": results,
            "speedup": {str(n): round(s, 3) for n, s in speedup.items()},
            "min_speedup": MIN_SPEEDUP,
            "gc_backlog_after": gc_backlog_after,
        },
    )

    # the headline guarantee: snapshot readers take no locks and never
    # wait, while the 2PL readers demonstrably did both
    for row in results["mvcc"]:
        assert row["reader_lock_requests"] == 0, row
        assert row["reader_lock_wait_events"] == [], row
    assert any(row["reader_lock_wait_ms"] > 0 for row in results["2pl"]), (
        "the 2PL baseline never blocked; the workload is not contended "
        "enough to measure anything"
    )
    assert gc_backlog_after == 0
    assert speedup[4] >= MIN_SPEEDUP, (
        f"MVCC readers reached only {speedup[4]:.2f}x the 2PL baseline at "
        f"4 sessions (required {MIN_SPEEDUP}x)"
    )
