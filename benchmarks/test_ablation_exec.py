"""Ablation A14 — compiled execution vs the interpreted AST walker.

ROADMAP item 2: the interpreted executor re-walks the statement AST for
every row.  The compiled core (``repro.query.compile``) turns each
statement into Python closures once — cached by AST fingerprint — and
adds three structural wins on top:

* **columnar flat scans** — a flat-table scan decodes heap tuples in
  batches (``Database.scan_chunks``) and builds tuple objects only for
  qualifying rows;
* **settled conjuncts** — WHERE conjuncts the planner answered from
  index information alone (Section 4.2) are dropped from the residual
  predicate instead of being re-tested per row;
* **lazy object decode** — NF2 candidates materialize data subtuples on
  first touch, so a settled predicate plus a root-atomic projection
  never reads the nested hierarchy's data pages.

Three workloads, one per win, at scale ``REPRO_EXEC_SCALE`` (default 32):

* **A1-style** — flat scan + filter + ORDER BY over ``scale * 100``
  heap tuples (the columnar path).
* **A3-style** — the Section 4.2 conjunctive query ("project *p* with a
  consultant in project *p*") over DEPARTMENTS, answered by two
  hierarchical indexes whose shared binding prefix settles *both*
  conjuncts.
* **A6-style** — nested-predicate candidates + root-atomic projection:
  an indexed root predicate settles, and lazy decode skips both
  subtable hierarchies entirely.

Both engines must return identical results (values *and* row order);
each workload's compiled/interpreted speedup must be at least
``REPRO_EXEC_MIN_SPEEDUP`` (default 3.0).  Emits ``ablation_exec.txt``
and ``BENCH_exec.json`` into ``benchmarks/out/``.
"""

import os
import time

from repro.database import Database
from repro.datasets import DepartmentsGenerator, paper

from _bench_utils import emit, emit_json

SCALE = int(os.environ.get("REPRO_EXEC_SCALE", "32"))
ITERATIONS = int(os.environ.get("REPRO_EXEC_ITERATIONS", "10"))
ROUNDS = int(os.environ.get("REPRO_EXEC_ROUNDS", "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_EXEC_MIN_SPEEDUP", "3.0"))

FLAT_ROWS = SCALE * 100

WORKLOAD = DepartmentsGenerator(
    departments=SCALE * 4, projects_per_department=4, members_per_project=6,
    consultant_share=0.08, seed=77,
)

QUERIES = {
    "a1_flat_scan": (
        "SELECT e.ID, e.SAL FROM e IN EMPFLAT "
        "WHERE e.GRP = 'g3' AND e.SAL > 1500 ORDER BY e.SAL DESC"
    ),
    "a3_conjunctive": (
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS (y.PNO = 12 AND "
        "EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
    ),
    "a6_root_projection": (
        "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS "
        "WHERE x.BUDGET >= 300000 ORDER BY x.DNO"
    ),
}


def build() -> Database:
    db = Database(buffer_capacity=4096)
    db.execute("CREATE TABLE EMPFLAT (ID INT, GRP STRING, SAL INT)")
    db.insert_many(
        "EMPFLAT",
        (
            {"ID": i, "GRP": f"g{i % 7}", "SAL": 1000 + (i * 37) % 2000}
            for i in range(FLAT_ROWS)
        ),
    )
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", WORKLOAD.rows())
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    db.create_index("PN_HIER", "DEPARTMENTS", "PROJECTS.PNO")
    db.create_index("FN_HIER", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    return db


def _canonical(result) -> list:
    """Row order matters: the engines must agree on it, not just on the
    multiset of rows."""
    return [row.canonical() for row in result.rows]


def time_queries(db: Database, mode: str) -> tuple[dict, dict]:
    """min-of-rounds ms/query per workload, plus canonical results."""
    db.exec_mode = mode
    timings = {}
    outputs = {}
    for name, sql in QUERIES.items():
        outputs[name] = _canonical(db.query(sql))  # warm + capture
        best = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            for _ in range(ITERATIONS):
                db.query(sql)
            best = min(best, time.perf_counter() - start)
        timings[name] = best / ITERATIONS * 1000.0
    return timings, outputs


def test_exec_ablation():
    db = Database()  # results/plumbing probe before the timed run
    try:
        db = build()
        interp_ms, interp_out = time_queries(db, "interpreted")
        compiled_ms, compiled_out = time_queries(db, "compiled")

        # identical results — values and order — before any speed claims
        for name in QUERIES:
            assert compiled_out[name] == interp_out[name], (
                f"{name}: compiled and interpreted engines disagree"
            )
            assert interp_out[name], f"{name}: empty result measures nothing"

        # the compiled engine must actually be exercising its machinery
        report = db._executor.exec_report
        assert report is not None and report.mode == "compiled"

        speedup = {
            name: interp_ms[name] / compiled_ms[name] for name in QUERIES
        }

        lines = [
            f"scale {SCALE}: {FLAT_ROWS} flat tuples, "
            f"{WORKLOAD.departments} departments x "
            f"{WORKLOAD.projects_per_department} projects x "
            f"{WORKLOAD.members_per_project} members; "
            f"{ITERATIONS} iterations x {ROUNDS} rounds (min)",
            "",
            f"  {'workload':>20} {'interp ms':>10} {'compiled ms':>12} "
            f"{'speedup':>8} {'rows':>6}",
        ]
        for name in QUERIES:
            lines.append(
                f"  {name:>20} {interp_ms[name]:>10.3f} "
                f"{compiled_ms[name]:>12.3f} {speedup[name]:>7.2f}x "
                f"{len(interp_out[name]):>6}"
            )
        lines.append("")
        lines.append(f"floor per workload: {MIN_SPEEDUP}x")
        emit("ablation_exec", "\n".join(lines))
        emit_json(
            "BENCH_exec",
            {
                "scale": SCALE,
                "flat_rows": FLAT_ROWS,
                "iterations": ITERATIONS,
                "rounds": ROUNDS,
                "interpreted_ms": {k: round(v, 4) for k, v in interp_ms.items()},
                "compiled_ms": {k: round(v, 4) for k, v in compiled_ms.items()},
                "speedup": {k: round(v, 3) for k, v in speedup.items()},
                "min_speedup": MIN_SPEEDUP,
            },
        )

        for name in QUERIES:
            assert speedup[name] >= MIN_SPEEDUP, (
                f"{name}: compiled engine reached only {speedup[name]:.2f}x "
                f"the interpreted baseline (required {MIN_SPEEDUP}x)"
            )
    finally:
        db.close()
