"""Helpers shared by the benchmark harness (imported by the benches)."""

import os

from repro.database import Database
from repro.datasets import paper

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(artifact_id: str, text: str) -> None:
    """Record one regenerated artifact (stdout + benchmarks/out/)."""
    os.makedirs(OUT_DIR, exist_ok=True)
    banner = f"==== {artifact_id} " + "=" * max(0, 60 - len(artifact_id))
    print(f"\n{banner}\n{text}")
    with open(os.path.join(OUT_DIR, f"{artifact_id}.txt"), "w") as handle:
        handle.write(text + "\n")


def build_paper_db() -> Database:
    """A database loaded with the paper's Tables 1-8 (both views)."""
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.create_table(paper.REPORTS_SCHEMA)
    db.insert_many("REPORTS", paper.REPORTS_ROWS)
    for schema, value in [
        (paper.DEPARTMENTS_1NF_SCHEMA, paper.departments_1nf()),
        (paper.PROJECTS_1NF_SCHEMA, paper.projects_1nf()),
        (paper.MEMBERS_1NF_SCHEMA, paper.members_1nf()),
        (paper.EQUIP_1NF_SCHEMA, paper.equip_1nf()),
        (paper.EMPLOYEES_1NF_SCHEMA, paper.employees_1nf()),
    ]:
        db.create_table(schema)
        db.insert_many(schema.name, (row.to_plain() for row in value))
    return db
