"""Helpers shared by the benchmark harness (imported by the benches)."""

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.database import Database
from repro.datasets import paper
from repro.obs import METRICS

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(artifact_id: str, text: str) -> None:
    """Record one regenerated artifact (stdout + benchmarks/out/)."""
    os.makedirs(OUT_DIR, exist_ok=True)
    banner = f"==== {artifact_id} " + "=" * max(0, 60 - len(artifact_id))
    print(f"\n{banner}\n{text}")
    with open(os.path.join(OUT_DIR, f"{artifact_id}.txt"), "w") as handle:
        handle.write(text + "\n")


def emit_json(artifact_id: str, payload: dict) -> str:
    """Record one machine-readable metric snapshot (benchmarks/out/)."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{artifact_id}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
    return path


@dataclass
class Meter:
    """What one :func:`metered` window observed."""

    #: buffer-manager counter deltas (logical/physical reads, distinct
    #: pages, hit ratio, ...)
    buffer: dict = field(default_factory=dict)
    #: engine counter deltas from the metrics registry (only when the
    #: window ran with ``engine=True``)
    metrics: dict = field(default_factory=dict)

    @property
    def pages(self) -> int:
        """Distinct pages touched during the window (the paper's
        clustering metric)."""
        return self.buffer.get("distinct_pages", 0)


@contextmanager
def metered(buffer, cold: bool = True, engine: bool = False):
    """Measure one operation against a buffer manager.

    Replaces the old reset-then-snapshot boilerplate::

        with metered(buffer) as meter:
            manager.load(root, schema)
        print(meter.pages, meter.buffer["physical_reads"])

    ``cold=True`` (default) empties the pool first so physical I/O is
    measured from a cold cache; ``engine=True`` additionally enables the
    process-wide metrics registry for the window (restoring its previous
    state) and reports counter deltas in ``meter.metrics``.
    """
    if cold:
        buffer.invalidate_cache()
    buffer.stats.reset()
    was_enabled = METRICS.enabled
    before_totals = None
    if engine:
        METRICS.enable()
        before_totals = METRICS.totals()
    meter = Meter()
    try:
        yield meter
    finally:
        meter.buffer = buffer.stats.snapshot()
        if engine:
            meter.metrics = METRICS.delta(before_totals)
            METRICS.enabled = was_enabled


def build_paper_db() -> Database:
    """A database loaded with the paper's Tables 1-8 (both views)."""
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.create_table(paper.REPORTS_SCHEMA)
    db.insert_many("REPORTS", paper.REPORTS_ROWS)
    for schema, value in [
        (paper.DEPARTMENTS_1NF_SCHEMA, paper.departments_1nf()),
        (paper.PROJECTS_1NF_SCHEMA, paper.projects_1nf()),
        (paper.MEMBERS_1NF_SCHEMA, paper.members_1nf()),
        (paper.EQUIP_1NF_SCHEMA, paper.equip_1nf()),
        (paper.EMPLOYEES_1NF_SCHEMA, paper.employees_1nf()),
    ]:
        db.create_table(schema)
        db.insert_many(schema.name, (row.to_plain() for row in value))
    return db
