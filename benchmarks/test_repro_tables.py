"""Regenerate the paper's Tables 1-8.

Tables 1-4 and 8 are the flat (1NF) views, Table 5 the NF2 DEPARTMENTS
table, Table 6 the REPORTS table with an ordered AUTHORS list, and Table 7
the unnest result of Example 4.  Each benchmark times the query that
produces the table and asserts the contents match the paper's data.
"""

from repro.datasets import paper
from repro.render import render_table

from _bench_utils import emit


def _query(db, text):
    return db.query(text)


def test_tables_1_to_4(paper_db, benchmark):
    def run():
        return [
            paper_db.query(f"SELECT * FROM x IN {name}")
            for name in ("DEPARTMENTS-1NF", "PROJECTS-1NF",
                         "MEMBERS-1NF", "EQUIP-1NF")
        ]

    tables = benchmark(run)
    assert tables[0] == paper.departments_1nf()
    assert tables[1] == paper.projects_1nf()
    assert tables[2] == paper.members_1nf()
    assert tables[3] == paper.equip_1nf()
    text = "\n\n".join(
        render_table(t, title=name)
        for t, name in zip(
            tables,
            ["Table 1: DEPARTMENTS-1NF", "Table 2: PROJECTS-1NF",
             "Table 3: MEMBERS-1NF", "Table 4: EQUIP-1NF"],
        )
    )
    emit("table_1_to_4", text)


def test_table_5(paper_db, benchmark):
    result = benchmark(_query, paper_db, "SELECT * FROM x IN DEPARTMENTS")
    assert result == paper.departments()
    emit("table_5", render_table(result, title="Table 5: DEPARTMENTS (NF2)"))


def test_table_6(paper_db, benchmark):
    result = benchmark(_query, paper_db, "SELECT * FROM x IN REPORTS")
    assert result == paper.reports()
    # AUTHORS kept its list semantics through storage and query
    assert result[0]["AUTHORS"].ordered
    emit("table_6", render_table(result, title="Table 6: REPORTS"))


def test_table_7(paper_db, benchmark):
    """Example 4's unnest of Table 5 (the paper prints an excerpt; we
    regenerate all 17 rows)."""
    query = (
        "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION "
        "FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS"
    )
    result = benchmark(_query, paper_db, query)
    assert len(result) == 17
    assert result.schema.is_flat
    emit("table_7", render_table(result, title="Table 7: unnested (Example 4)"))


def test_table_8(paper_db, benchmark):
    result = benchmark(_query, paper_db, "SELECT * FROM x IN EMPLOYEES-1NF")
    assert result == paper.employees_1nf()
    # the paper's stated property: one tuple per member and manager
    empnos = set(result.column("EMPNO"))
    for dept in paper.DEPARTMENTS_ROWS:
        assert dept["MGRNO"] in empnos
        for project in dept["PROJECTS"]:
            for member in project["MEMBERS"]:
                assert member["EMPNO"] in empnos
    emit("table_8", render_table(result, title="Table 8: EMPLOYEES-1NF"))
