"""Ablation A13 — the price of watching: observability on vs off.

The PR 5 instrumentation (metrics registry, latency histograms, query
ring) must be cheap enough to leave on in production and *free* when
disabled.  This benchmark drives the A1/A3 workloads through the full
query pipeline twice — once with the registry disabled (the default) and
once with metrics + histograms enabled — and reports the wall-clock
overhead ratio, plus the cost of scraping the ``SYS`` views themselves.

* **A1 workload** — whole-object retrieval: fetch one complete
  department (root tuple plus both subtable hierarchies) by key.
* **A3 workload** — the Section 4.2 conjunctive query: "project *p* with
  a consultant in the same project", answered via hierarchical indexes.

PR 6 adds a third pair of arms: the same A1/A3 workloads driven through
a :class:`~repro.concurrency.session.Session` with the active-session-
history sampler (``SYS.ASH``) off vs on, bounding what continuous
background sampling plus wait-event bookkeeping costs a foreground
query stream.

The overhead ceiling is configurable: the test fails when the enabled
(or sampler-on) run is more than ``REPRO_OBS_MAX_OVERHEAD`` (default
1.5 = +150 %) slower than its baseline.  Timings use min-of-rounds to
shave scheduler noise; the snapshot lands in
``benchmarks/out/BENCH_observability.json``.

Scale knobs: ``REPRO_OBS_SCALE`` (departments, default 32),
``REPRO_OBS_ITERATIONS`` (queries per round, default 30),
``REPRO_OBS_ROUNDS`` (default 5).
"""

import os
import time

from repro.database import Database
from repro.datasets import DepartmentsGenerator, paper
from repro.obs import METRICS, TRACER

from _bench_utils import emit, emit_json

SCALE = int(os.environ.get("REPRO_OBS_SCALE", "32"))
ITERATIONS = int(os.environ.get("REPRO_OBS_ITERATIONS", "30"))
ROUNDS = int(os.environ.get("REPRO_OBS_ROUNDS", "5"))
#: maximum tolerated (enabled/disabled - 1); generous by default because
#: CI wall-clock is noisy — tighten locally to chase regressions
MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", "1.5"))

WORKLOAD = DepartmentsGenerator(
    departments=SCALE, projects_per_department=3, members_per_project=4,
    consultant_share=0.08, seed=77,
)
TARGET_PNO = 12  # exists in every department; few have a consultant there

QUERIES = {
    # A1: one whole complex object, root + both hierarchies
    "a1_whole_object": (
        "SELECT x.DNO, x.BUDGET, x.PROJECTS, x.EQUIP "
        f"FROM x IN DEPARTMENTS WHERE x.DNO = {100 + SCALE // 2}"
    ),
    # A3: the conjunctive index query of Section 4.2
    "a3_conjunctive": (
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        f"WHERE EXISTS y IN x.PROJECTS (y.PNO = {TARGET_PNO} AND "
        "EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
    ),
}


def build() -> Database:
    db = Database(buffer_capacity=2048)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", WORKLOAD.rows())
    db.create_index("DN", "DEPARTMENTS", "DNO")
    db.create_index("PN_HIER", "DEPARTMENTS", "PROJECTS.PNO")
    db.create_index("FN_HIER", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    return db


def time_workload(db: Database, enabled: bool) -> dict:
    """min-of-rounds wall clock for ITERATIONS runs of each query."""
    assert not TRACER.enabled  # tracing stays off in both arms
    if enabled:
        METRICS.enable()
    else:
        METRICS.disable()
    try:
        per_query = {}
        for name, sql in QUERIES.items():
            db.query(sql)  # warm the buffer pool: measure CPU, not I/O
            best = float("inf")
            for _ in range(ROUNDS):
                start = time.perf_counter()
                for _ in range(ITERATIONS):
                    db.query(sql)
                best = min(best, time.perf_counter() - start)
            per_query[name] = best / ITERATIONS * 1000.0  # ms/query
        return per_query
    finally:
        METRICS.disable()


def time_session_workload(db: Database, session, sampler: bool) -> dict:
    """min-of-rounds for the same queries through a session, with the
    ASH sampler running (``sampler=True``) or stopped.  Metrics stay off
    in both arms: the delta isolates the sampler + wait-event cost."""
    assert not TRACER.enabled and not METRICS.enabled
    if sampler:
        db.ash.start()
    else:
        db.ash.stop()
    try:
        per_query = {}
        for name, sql in QUERIES.items():
            session.query(sql)  # warm
            best = float("inf")
            for _ in range(ROUNDS):
                start = time.perf_counter()
                for _ in range(ITERATIONS):
                    session.query(sql)
                best = min(best, time.perf_counter() - start)
            per_query[name] = best / ITERATIONS * 1000.0  # ms/query
        return per_query
    finally:
        db.ash.stop()


def time_scrape(db: Database) -> dict:
    """How long one observability read itself takes (metrics enabled)."""
    METRICS.enable()
    try:
        for sql in QUERIES.values():  # populate histograms + query ring
            db.query(sql)
        timings = {}
        acceptance = (
            "SELECT m.NAME, (SELECT b.BOUND, b.COUNT FROM b IN m.BUCKETS) "
            "FROM m IN SYS.METRICS WHERE m.NAME CONTAINS 'latency'"
        )
        for name, thunk in {
            "sys_metrics_nested_query": lambda: db.query(acceptance),
            "sys_queries_tail": lambda: db.query(
                "SELECT q.KIND, q.LATENCY_MS FROM q IN SYS.QUERIES"
            ),
            "prometheus_render": METRICS.to_prometheus,
        }.items():
            start = time.perf_counter()
            result = thunk()
            timings[name] = (time.perf_counter() - start) * 1000.0
            assert result  # every scrape returns data
        return timings
    finally:
        METRICS.disable()


def test_observability_overhead(benchmark):
    db = build()
    was_enabled = METRICS.enabled
    session = db.session(name="bench")
    try:
        disabled = time_workload(db, enabled=False)
        enabled = time_workload(db, enabled=True)
        sampler_off = time_session_workload(db, session, sampler=False)
        sampler_on = time_session_workload(db, session, sampler=True)
        ash_samples = len(db.ash.samples)
        scrape = time_scrape(db)
    finally:
        session.close()
        METRICS.enabled = was_enabled

    overhead = {
        name: enabled[name] / disabled[name] - 1.0 for name in QUERIES
    }
    sampler_overhead = {
        name: sampler_on[name] / sampler_off[name] - 1.0 for name in QUERIES
    }
    payload = {
        "scale": SCALE,
        "iterations": ITERATIONS,
        "rounds": ROUNDS,
        "max_overhead": MAX_OVERHEAD,
        "disabled_ms_per_query": disabled,
        "enabled_ms_per_query": enabled,
        "overhead_ratio": overhead,
        "sampler_off_ms_per_query": sampler_off,
        "sampler_on_ms_per_query": sampler_on,
        "sampler_overhead_ratio": sampler_overhead,
        "ash_period_ms": db.ash.period_ms,
        "ash_samples_taken": ash_samples,
        "scrape_ms": scrape,
    }
    emit_json("BENCH_observability", payload)

    lines = [
        f"{'workload':<18} {'off ms':>9} {'on ms':>9} {'overhead':>9}",
    ]
    for name in QUERIES:
        lines.append(
            f"{name:<18} {disabled[name]:>9.3f} {enabled[name]:>9.3f} "
            f"{overhead[name]:>+8.1%}"
        )
    lines.append("")
    lines.append(
        f"{'session workload':<18} {'ash off':>9} {'ash on':>9} {'overhead':>9}"
    )
    for name in QUERIES:
        lines.append(
            f"{name:<18} {sampler_off[name]:>9.3f} {sampler_on[name]:>9.3f} "
            f"{sampler_overhead[name]:>+8.1%}"
        )
    lines.append(
        f"  (sampler period {db.ash.period_ms:g} ms, "
        f"{ash_samples} samples captured)"
    )
    lines.append("")
    lines.append("scrape cost (metrics enabled):")
    for name, ms in scrape.items():
        lines.append(f"  {name:<26} {ms:>9.3f} ms")
    lines.append(
        f"\nceiling REPRO_OBS_MAX_OVERHEAD={MAX_OVERHEAD:+.0%}; the "
        "disabled path must stay (near) free — it is a plain-attribute "
        "check, no locks, no allocation."
    )
    emit("BENCH_observability", "\n".join(lines))

    for name, ratio in overhead.items():
        assert ratio <= MAX_OVERHEAD, (
            f"{name}: metrics-enabled run is {ratio:+.1%} slower than "
            f"disabled (ceiling {MAX_OVERHEAD:+.1%}) — instrumentation "
            "got too expensive"
        )
    for name, ratio in sampler_overhead.items():
        assert ratio <= MAX_OVERHEAD, (
            f"{name}: ASH-sampler-on run is {ratio:+.1%} slower than "
            f"sampler-off (ceiling {MAX_OVERHEAD:+.1%}) — background "
            "sampling got too expensive"
        )

    # pytest-benchmark record for trend tracking: the A3 query with the
    # registry disabled (the default production configuration)
    benchmark(db.query, QUERIES["a3_conjunctive"])
