"""Ablation A12 — pipelined async server vs thread-per-connection.

The PR 9 server rewrite keeps statement execution on threads (the
``Session`` layer is unchanged) but moves connection handling onto an
asyncio event loop with request **pipelining**: a client may write many
statements before reading any reply; the per-connection responder
executes whatever has queued up behind the head statement in one worker
hop and ships the framed replies back in one coalesced write, strictly
in order.  The thread-per-connection baseline forces one statement per
round-trip.

Three measured arms, same workload (plan-cache-friendly indexed point
SELECTs, 8 client *processes* so client-side work stays off the
server's GIL):

* ``threaded / round-trip`` — the baseline engine, one statement per
  round-trip.
* ``async / round-trip`` — the new engine driven exactly like the old
  one (reported: an unpipelined client pays the event-loop hop per
  statement, so this arm trails the baseline — pipelining is where the
  async engine earns its keep).
* ``async / pipelined`` — the headline.  Must reach at least
  ``REPRO_SERVER_MIN_SPEEDUP`` times the baseline throughput (default
  ``1.0`` locally; CI pins ``1.2``).

Ceiling note: with 8 concurrent clients both servers are bounded by the
engine's per-statement CPU cost (~200us for this workload after the
statement-text parse cache), because the GIL serializes execution.  The
pipelined arm measures at that raw ceiling — per-round-trip socket and
thread-wakeup overhead (~100us/statement for the baseline) is fully
amortized — which on this box is ~1.4x the baseline.  Ratios beyond
that require the per-round-trip overhead to exceed the engine cost
(real network RTTs, or a faster engine), not a better server.

A fourth, reported-only section measures replication overhead: a
disk-backed primary takes a burst of INSERTs while a log-shipping
replica tails it, and we report primary throughput plus the time for
the replica to drain its lag to zero.

Emits ``ablation_server.txt`` and ``ablation_server_metrics.json`` into
``benchmarks/out/``.
"""

import multiprocessing
import os
import time

from repro.database import Database
from repro.server import AsyncDatabaseServer, DatabaseServer

from _bench_utils import emit, emit_json

ROWS = 512                  # table size; point SELECTs hit the ID index
CLIENTS = 8                 # concurrent client processes per arm
STATEMENTS_PER_CLIENT = 150 # statement budget per connection
PIPELINE_BATCH = 30         # statements in flight per pipelined write
DISTINCT_STATEMENTS = 16    # statement texts cycle: parse/plan cache hits
REPLICATED_INSERTS = 200    # burst size for the replication section

MIN_SPEEDUP = float(os.environ.get("REPRO_SERVER_MIN_SPEEDUP", "1.0"))

STATEMENTS = [
    f"SELECT t.NAME FROM t IN T WHERE t.ID = {i * 31 % ROWS}"
    for i in range(DISTINCT_STATEMENTS)
]


def _build_db(path=None):
    db = Database(path=path)
    db.execute("CREATE TABLE T (ID INT, NAME STRING)")
    db.insert_many(
        "T", [{"ID": i, "NAME": f"name-{i}"} for i in range(ROWS)]
    )
    db.create_index("IDX_T_ID", "T", "ID")
    return db


def _client_worker(host, port, pipelined, barrier, out_queue):
    """One client in its own process, off the server's GIL."""
    from repro.server import LineClient

    with LineClient(host, port) as client:
        client.send(".tables")  # connection + import warm-up
        statements = [
            STATEMENTS[i % DISTINCT_STATEMENTS]
            for i in range(STATEMENTS_PER_CLIENT)
        ]
        barrier.wait()
        started = time.monotonic()
        if pipelined:
            for at in range(0, len(statements), PIPELINE_BATCH):
                for reply in client.pipeline(
                    statements[at:at + PIPELINE_BATCH]
                ):
                    if reply.startswith("error:"):
                        raise RuntimeError(reply.strip())
        else:
            for statement in statements:
                reply = client.send(statement)
                if reply.startswith("error:"):
                    raise RuntimeError(reply.strip())
        out_queue.put((started, time.monotonic()))


def _drive(host, port, pipelined):
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(CLIENTS)
    out_queue = ctx.Queue()
    workers = [
        ctx.Process(
            target=_client_worker,
            args=(host, port, pipelined, barrier, out_queue),
            daemon=True,
        )
        for _ in range(CLIENTS)
    ]
    for worker in workers:
        worker.start()
    spans = [out_queue.get(timeout=180) for _ in workers]
    for worker in workers:
        worker.join(timeout=30)
    window = max(end for _, end in spans) - min(start for start, _ in spans)
    total = CLIENTS * STATEMENTS_PER_CLIENT
    return {
        "clients": CLIENTS,
        "statements": total,
        "elapsed_s": round(window, 4),
        "stmts_per_s": round(total / window, 1),
    }


def _measure(engine, pipelined):
    db = _build_db()
    if engine == "async":
        # admission sized to the offered load: this arm measures
        # pipelining, not load shedding
        server = AsyncDatabaseServer(
            db, port=0, max_queue=CLIENTS * PIPELINE_BATCH + 16
        )
    else:
        server = DatabaseServer(db, port=0)
    server.serve_background()
    host, port = server.address
    try:
        row = _drive(host, port, pipelined)
    finally:
        server.shutdown()
        server.server_close()
        db.close()
    row["engine"] = engine
    row["mode"] = "pipelined" if pipelined else "round-trip"
    return row


def _measure_replication(tmp_path):
    """Primary INSERT burst while one replica tails; lag drain time."""
    from repro.replication import open_replica

    db = _build_db(path=str(tmp_path / "repl-primary.db"))
    server = AsyncDatabaseServer(db, port=0)
    server.serve_background()
    host, port = server.address
    replica = open_replica(f"{host}:{port}")
    try:
        deadline = time.monotonic() + 30
        while db.replication is None and time.monotonic() < deadline:
            time.sleep(0.02)
        assert db.replication is not None, "replica never attached"
        started = time.perf_counter()
        for i in range(REPLICATED_INSERTS):
            db.execute(f"INSERT INTO T VALUES ({ROWS + i}, 'burst')")
        primary_elapsed = time.perf_counter() - started
        target = db.replication.seq
        assert replica.replication.wait_for_seq(target, timeout=60)
        drained = time.perf_counter() - started
        return {
            "inserts": REPLICATED_INSERTS,
            "primary_elapsed_s": round(primary_elapsed, 4),
            "primary_inserts_per_s": round(
                REPLICATED_INSERTS / primary_elapsed, 1
            ),
            "drain_after_last_commit_s": round(
                max(0.0, drained - primary_elapsed), 4
            ),
            "shipped_batches": target,
        }
    finally:
        replica.close()
        server.shutdown()
        db.close()


def test_server_ablation(tmp_path):
    # paired rounds: machine-wide jitter (forked clients + scheduler)
    # moves both arms together, so the asserted figure is the best
    # *per-round* ratio, not a ratio of bests from different moments
    rounds = []
    for _ in range(3):
        base = _measure("threaded", pipelined=False)
        head = _measure("async", pipelined=True)
        rounds.append(
            (head["stmts_per_s"] / base["stmts_per_s"], base, head)
        )
    speedup, baseline, headline = max(rounds, key=lambda r: r[0])
    parity = _measure("async", pipelined=False)
    replication = _measure_replication(tmp_path)

    parity_ratio = parity["stmts_per_s"] / baseline["stmts_per_s"]

    lines = [
        f"workload: {CLIENTS} client processes x {STATEMENTS_PER_CLIENT} "
        f"indexed point SELECTs ({DISTINCT_STATEMENTS} distinct texts) "
        f"over {ROWS} rows, pipeline batch {PIPELINE_BATCH}",
        "",
        f"  {'engine':>8} {'mode':>11} {'stmts/s':>9} {'elapsed':>8}",
    ]
    for row in (baseline, parity, headline):
        lines.append(
            f"  {row['engine']:>8} {row['mode']:>11} "
            f"{row['stmts_per_s']:>9} {row['elapsed_s']:>7}s"
        )
    lines.append(
        f"\nasync pipelined vs threaded round-trip: {speedup:.2f}x "
        f"(floor: {MIN_SPEEDUP}x); async round-trip (unpipelined) "
        f"ratio: {parity_ratio:.2f}x"
    )
    lines.append(
        f"\nreplication: {replication['inserts']} inserts at "
        f"{replication['primary_inserts_per_s']} inserts/s on the "
        f"primary; replica lag drained "
        f"{replication['drain_after_last_commit_s']}s after the last "
        f"commit ({replication['shipped_batches']} shipped batches)"
    )
    emit("ablation_server", "\n".join(lines))
    emit_json(
        "ablation_server_metrics",
        {
            "clients": CLIENTS,
            "statements_per_client": STATEMENTS_PER_CLIENT,
            "pipeline_batch": PIPELINE_BATCH,
            "distinct_statements": DISTINCT_STATEMENTS,
            "rows": ROWS,
            "arms": [baseline, parity, headline],
            "round_ratios": [round(r[0], 3) for r in rounds],
            "replication": replication,
            "speedup_pipelined": round(speedup, 3),
            "ratio_async_round_trip": round(parity_ratio, 3),
            "min_speedup": MIN_SPEEDUP,
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"pipelined async server reached only {speedup:.2f}x the "
        f"thread-per-connection baseline (required {MIN_SPEEDUP}x)"
    )
