"""Ablation A7 — word-fragment text index vs full scan (Section 5).

The paper's masked search "will be supported by the text index in case
that one has been created on TITLE".  We measure the same CONTAINS query
over a synthetic report corpus with and without the fragment index.
"""

import time

from repro.database import Database
from repro.datasets import ReportsGenerator, paper

from _bench_utils import emit

QUERY = (
    "SELECT x.REPNO FROM x IN REPORTS WHERE x.TITLE CONTAINS '*comput*'"
)


def build(reports):
    db = Database(buffer_capacity=4096)
    db.create_table(paper.REPORTS_SCHEMA)
    db.insert_many("REPORTS", ReportsGenerator(reports=reports, seed=6).rows())
    return db


def test_text_index_vs_scan(benchmark):
    lines = [
        "masked search '*comput*' over synthetic reports",
        f"{'reports':>8} {'hits':>5} {'scan (ms)':>10} {'index (ms)':>11} "
        f"{'speedup':>8} {'fragments':>10}",
    ]
    for reports in (100, 400, 1000):
        db = build(reports)
        scan_result = db.query(QUERY)

        start = time.perf_counter()
        for _ in range(3):
            db.query(QUERY)
        scan_time = (time.perf_counter() - start) / 3

        db.create_text_index("TX", "REPORTS", "TITLE")
        indexed_result = db.query(QUERY)
        assert indexed_result == scan_result
        assert db.last_plan is not None and db.last_plan.used_indexes == ["TX"]

        start = time.perf_counter()
        for _ in range(3):
            db.query(QUERY)
        index_time = (time.perf_counter() - start) / 3

        fragments = db.catalog.index("TX").fragment_count
        lines.append(
            f"{reports:>8} {len(scan_result):>5} {scan_time * 1e3:>10.2f} "
            f"{index_time * 1e3:>11.2f} {scan_time / index_time:>7.1f}x "
            f"{fragments:>10}"
        )
        assert index_time < scan_time
    lines.append("\nthe fragment index narrows CONTAINS to verified candidates")
    emit("ablation_A7_text_index", "\n".join(lines))
    db = build(400)
    db.create_text_index("TX", "REPORTS", "TITLE")
    benchmark(db.query, QUERY)
