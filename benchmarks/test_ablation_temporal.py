"""Ablation A8 — time-version support: overhead and ASOF cost (Section 5).

The paper integrates temporal support "as an integral - but optional -
part of a DBMS" with emphasis on its storage cost.  We measure (a) the
update-path overhead of a versioned table vs an unversioned one, (b) the
storage growth with history length, and (c) ASOF reconstruction cost.
"""

import time

from repro.database import Database
from repro.datasets import DepartmentsGenerator, paper

from _bench_utils import emit

GEN = DepartmentsGenerator(departments=10, projects_per_department=3,
                           members_per_project=5, seed=4)


def build(versioned):
    db = Database(buffer_capacity=4096)
    db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=versioned)
    tids = db.insert_many("DEPARTMENTS", GEN.rows())
    return db, tids


def test_update_overhead_and_history_growth(benchmark):
    updates = 20
    results = {}
    for versioned in (False, True):
        db, tids = build(versioned)
        pages_before = db._file.page_count
        start = time.perf_counter()
        tid = tids[0]
        for round_ in range(updates):
            tid = db.update("DEPARTMENTS", tid, {"BUDGET": 1000 * round_})
        elapsed = (time.perf_counter() - start) / updates
        pages_after = db._file.page_count
        results[versioned] = (elapsed, pages_after - pages_before, db)
    unversioned_time, unversioned_growth, _ = results[False]
    versioned_time, versioned_growth, versioned_db = results[True]
    store = versioned_db.catalog.table("DEPARTMENTS").version_store
    lines = [
        f"{updates} budget updates on one department object:",
        f"  unversioned: {unversioned_time * 1e3:6.2f} ms/update, "
        f"{unversioned_growth} new pages",
        f"  versioned:   {versioned_time * 1e3:6.2f} ms/update, "
        f"{versioned_growth} new pages "
        f"({store.version_count} stored versions)",
        f"  overhead: {versioned_time / max(unversioned_time, 1e-9):.1f}x time, "
        f"history keeps every prior object state (object-level COW)",
    ]
    assert versioned_growth >= unversioned_growth
    assert store.version_count == updates + len(GEN.rows())
    emit("ablation_A8_versioning_overhead", "\n".join(lines))
    db, tids = build(True)
    counter = iter(range(10_000))
    benchmark(lambda: db.update(
        "DEPARTMENTS", db.tids("DEPARTMENTS")[1], {"BUDGET": next(counter)}
    ))


def test_object_vs_subtuple_versioning(benchmark):
    """The paper's motivation for subtuple-level versions: an update
    should cost one small version record, not a whole-object copy.  We
    compare the two strategies on update time and storage growth."""
    updates = 25
    results = {}
    for strategy in ("object", "subtuple"):
        db = Database(buffer_capacity=4096)
        db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True,
                        versioning=strategy)
        tids = db.insert_many("DEPARTMENTS", GEN.rows())
        pages_before = db._file.page_count
        start = time.perf_counter()
        tid = tids[0]
        for round_ in range(updates):
            tid = db.update("DEPARTMENTS", tid, {"BUDGET": round_})
        elapsed = (time.perf_counter() - start) / updates
        growth = db._file.page_count - pages_before
        results[strategy] = (elapsed, growth)
    object_time, object_growth = results["object"]
    subtuple_time, subtuple_growth = results["subtuple"]
    lines = [
        f"{updates} budget updates on one department, by temporal strategy:",
        f"  object-level COW:  {object_time * 1e3:6.2f} ms/update, "
        f"{object_growth} new pages",
        f"  subtuple versions: {subtuple_time * 1e3:6.2f} ms/update, "
        f"{subtuple_growth} new pages",
        f"  space advantage:   {object_growth / max(subtuple_growth, 1):.0f}x "
        "fewer pages of history — the paper's rationale for versioning at "
        "the subtuple manager",
    ]
    assert subtuple_growth < object_growth
    emit("ablation_A8_strategies", "\n".join(lines))
    db = Database(buffer_capacity=4096)
    db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True,
                    versioning="subtuple")
    tids = db.insert_many("DEPARTMENTS", GEN.rows())
    counter = iter(range(100_000))
    benchmark(lambda: db.update("DEPARTMENTS", tids[1],
                                {"BUDGET": next(counter)}))


def test_asof_reconstruction_cost(benchmark):
    db, tids = build(True)
    tid = tids[0]
    for round_ in range(30):
        tid = db.update("DEPARTMENTS", tid, {"BUDGET": round_}, at=1000 + round_)
    query_now = "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS"

    start = time.perf_counter()
    for _ in range(10):
        db.query(query_now)
    now_time = (time.perf_counter() - start) / 10

    query_asof = (
        "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS ASOF '0003-09-30'"
    )  # ordinal(0003-09-30) = 1003 -> mid-history
    asof_result = db.query(query_asof)
    start = time.perf_counter()
    for _ in range(10):
        db.query(query_asof)
    asof_time = (time.perf_counter() - start) / 10

    budgets = {row["DNO"]: row["BUDGET"] for row in asof_result}
    target_dno = GEN.rows()[0]["DNO"]
    assert budgets[target_dno] == 3  # the version written at t=1003
    lines = [
        "ASOF reconstruction vs current-state query (10 objects, 30-deep "
        "history on one):",
        f"  current: {now_time * 1e3:6.2f} ms",
        f"  ASOF:    {asof_time * 1e3:6.2f} ms "
        f"({asof_time / now_time:.1f}x — version-chain lookup + load of "
        "historical roots)",
    ]
    emit("ablation_A8_asof_cost", "\n".join(lines))
    benchmark(db.query, query_asof)
