"""Ablation A2 — SS1 vs SS2 vs SS3 (Fig 6's alternatives).

Paper: "an order SS1 > SS3 > SS2 can be established concerning the number
of MD subtuples required", but "it cannot be the only goal just to minimize
the number of nodes ... storage space, access time, etc. have to be
considered as well".  We measure all of it: MD subtuple counts, MD bytes,
pages, whole-object load time, and structural navigation time, across a
fan-out sweep.
"""

import time

from repro.datasets import DepartmentsGenerator, paper
from repro.model.values import TupleValue
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.minidirectory import StorageStructure
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment

from _bench_utils import emit

SWEEP = [
    ("narrow", dict(projects_per_department=2, members_per_project=3)),
    ("medium", dict(projects_per_department=5, members_per_project=10)),
    ("wide", dict(projects_per_department=10, members_per_project=40)),
]


def store_one(structure, params):
    gen = DepartmentsGenerator(departments=1, seed=33, **params)
    buffer = BufferManager(MemoryPagedFile(), capacity=1024)
    manager = ComplexObjectManager(Segment(buffer), structure)
    value = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, gen.rows()[0])
    root = manager.store(paper.DEPARTMENTS_SCHEMA, value)
    return buffer, manager, root


def test_md_size_sweep(benchmark):
    lines = [
        "Mini Directory cost per storage structure (one department object)",
        f"{'shape':>8} {'SS':>4} {'#MD':>5} {'MD bytes':>9} {'data bytes':>10} "
        f"{'pages':>6}",
    ]
    counts = {}
    for label, params in SWEEP:
        for structure in StorageStructure:
            _buffer, manager, root = store_one(structure, params)
            stats = manager.statistics(root, paper.DEPARTMENTS_SCHEMA)
            counts[(label, structure)] = stats["md_subtuples"]
            lines.append(
                f"{label:>8} {structure.value:>4} {stats['md_subtuples']:>5} "
                f"{stats['md_bytes']:>9} {stats['data_bytes']:>10} "
                f"{stats['pages']:>6}"
            )
    for label, _params in SWEEP:
        assert counts[(label, StorageStructure.SS1)] > counts[(label, StorageStructure.SS3)]
        assert counts[(label, StorageStructure.SS3)] > counts[(label, StorageStructure.SS2)]
    lines.append("\nordering #MD(SS1) > #MD(SS3) > #MD(SS2) holds at every shape")
    emit("ablation_A2_md_sizes", "\n".join(lines))
    # time one representative store
    benchmark(store_one, StorageStructure.SS3, dict(SWEEP[1][1]))


def _navigate(manager, root):
    """Pure structural navigation: count members per project without
    reading member data subtuples."""
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    return [
        len(project.subtables[0].elements)
        for project in obj.decoded.subtables[0].elements
    ]


def test_navigation_time_per_structure(benchmark):
    params = dict(SWEEP[2][1])
    built = {s: store_one(s, params) for s in StorageStructure}
    timings = {}
    for structure, (_buffer, manager, root) in built.items():
        start = time.perf_counter()
        for _ in range(200):
            _navigate(manager, root)
        timings[structure] = (time.perf_counter() - start) / 200
    lines = ["structural navigation time (wide object, mean of 200 runs)"]
    for structure, seconds in timings.items():
        lines.append(f"  {structure.value}: {seconds * 1e6:8.1f} us")
    lines.append(
        "\nSS2 folds subtable lists upward (fewest reads); SS1 pays one "
        "extra MD hop per complex subobject."
    )
    emit("ablation_A2_navigation_time", "\n".join(lines))
    _buffer, manager, root = built[StorageStructure.SS3]
    benchmark(_navigate, manager, root)


def test_partial_insert_time_per_structure(benchmark):
    """Section 4.1's third demand: fast processing for *arbitrary parts*.
    Cost of inserting one member into one project, per storage layout."""
    import time

    params = dict(SWEEP[1][1])
    results = {}
    for structure in StorageStructure:
        buffer, manager, root = store_one(structure, params)
        start = time.perf_counter()
        for index in range(50):
            obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
            obj.insert_element(
                [("PROJECTS", 0)], "MEMBERS",
                {"EMPNO": 90_000 + index, "FUNCTION": "Staff"},
            )
        results[structure] = (time.perf_counter() - start) / 50
    lines = ["partial insert (one member into one project), mean of 50:"]
    for structure, seconds in results.items():
        lines.append(f"  {structure.value}: {seconds * 1e3:8.3f} ms")
    lines.append(
        "\nstructural edits rewrite only MD subtuples; data subtuples are "
        "untouched in every layout"
    )
    emit("ablation_A2_partial_insert", "\n".join(lines))
    buffer, manager, root = store_one(StorageStructure.SS3, params)
    counter = iter(range(100_000))
    benchmark(lambda: manager.open(root, paper.DEPARTMENTS_SCHEMA).insert_element(
        [("PROJECTS", 0)], "MEMBERS",
        {"EMPNO": next(counter), "FUNCTION": "Staff"},
    ))


def test_load_time_per_structure(benchmark):
    params = dict(SWEEP[1][1])
    results = {}
    for structure in StorageStructure:
        _buffer, manager, root = store_one(structure, params)
        start = time.perf_counter()
        for _ in range(50):
            manager.load(root, paper.DEPARTMENTS_SCHEMA)
        results[structure] = (time.perf_counter() - start) / 50
    lines = ["whole-object load time (medium object, mean of 50 runs)"]
    for structure, seconds in results.items():
        lines.append(f"  {structure.value}: {seconds * 1e3:8.2f} ms")
    emit("ablation_A2_load_time", "\n".join(lines))
    _buffer, manager, root = store_one(StorageStructure.SS3, params)
    benchmark(manager.load, root, paper.DEPARTMENTS_SCHEMA)
