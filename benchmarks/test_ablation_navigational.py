"""Ablation A9 — navigational (IMS) vs declarative (NF2) access.

Section 2: against an IMS database, "'navigational' language constructs
like 'get next' (GN) and 'get next within parent' (GNP) etc. have usually
to be used which are completely different from the high level language
constructs used in relational database systems."

We run the same question — departments employing a consultant — both ways
on the same data: a GN/GNP navigation program over hierarchic-sequence
storage, and the one-statement NF2 query (with and without an index), and
report records visited / program size.
"""

from repro.baselines.ims import IMSDatabase
from repro.database import Database
from repro.datasets import DepartmentsGenerator, paper

from _bench_utils import emit

GEN = DepartmentsGenerator(departments=25, projects_per_department=4,
                           members_per_project=6, consultant_share=0.1, seed=31)

NF2_QUERY = (
    "SELECT x.DNO FROM x IN DEPARTMENTS "
    "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
    "z.FUNCTION = 'Consultant'"
)


def ims_shape(rows):
    out = []
    for dept in rows:
        out.append({
            "DNO": dept["DNO"], "MGRNO": dept["MGRNO"], "BUDGET": dept["BUDGET"],
            "PROJECT": [
                {"PNO": p["PNO"], "PNAME": p["PNAME"],
                 "MEMBER": [{"EMPNO": m["EMPNO"], "FUNCTION": m["FUNCTION"]}
                            for m in p["MEMBERS"]]}
                for p in dept["PROJECTS"]
            ],
            "EQUIPMENT": [{"QU": e["QU"], "TYPE": e["TYPE"]}
                          for e in dept["EQUIP"]],
        })
    return out


def navigational_program(ims: IMSDatabase) -> list[int]:
    """The GN/GNP program — note how much control flow one question
    takes (the paper's Section 2 point, in executable form)."""
    ims.reset()
    answers = []
    department = ims.gn("DEPARTMENT")
    while department is not None:
        dno = department.values["DNO"]
        ims.set_parentage()
        if ims.gnp("MEMBER", {"FUNCTION": "Consultant"}) is not None:
            answers.append(dno)
            ims.gu("DEPARTMENT", {"DNO": dno})  # re-position after the dive
        department = ims.gn("DEPARTMENT")
    return answers


def test_navigational_vs_declarative(benchmark):
    rows = GEN.rows()
    ims = IMSDatabase()
    ims.load(ims_shape(rows))
    db = Database(buffer_capacity=2048)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", rows)

    ims_answers = navigational_program(ims)
    nf2_answers = db.query(NF2_QUERY).column("DNO")
    assert sorted(ims_answers) == sorted(nf2_answers)
    visited_scan = ims.records_visited

    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    indexed_answers = db.query(NF2_QUERY).column("DNO")
    assert sorted(indexed_answers) == sorted(ims_answers)

    import inspect

    program_lines = len(inspect.getsource(navigational_program).splitlines())
    lines = [
        "question: departments employing a consultant "
        f"({len(ims_answers)} of {len(rows)})",
        "",
        f"IMS navigation (GN/GNP program):    {visited_scan} records visited, "
        f"{program_lines}-line program",
        "NF2 declarative:                    1 statement "
        f"({len(NF2_QUERY)} chars); with the FUNCTION index the planner "
        f"touches only {len(db.query(NF2_QUERY))} candidate objects",
        "",
        "same answers, one data model, no 'special animal' — the paper's "
        "integration argument.",
    ]
    emit("ablation_A9_navigational", "\n".join(lines))
    benchmark(navigational_program, ims)
