"""Shared fixtures: databases loaded with the paper's tables."""

import pytest

from repro.database import Database
from repro.datasets import paper


def load_paper_tables(db: Database) -> None:
    """Create and populate Tables 1-8 (both the NF2 and the 1NF views)."""
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.create_table(paper.REPORTS_SCHEMA)
    db.insert_many("REPORTS", paper.REPORTS_ROWS)
    for schema, value in [
        (paper.DEPARTMENTS_1NF_SCHEMA, paper.departments_1nf()),
        (paper.PROJECTS_1NF_SCHEMA, paper.projects_1nf()),
        (paper.MEMBERS_1NF_SCHEMA, paper.members_1nf()),
        (paper.EQUIP_1NF_SCHEMA, paper.equip_1nf()),
        (paper.EMPLOYEES_1NF_SCHEMA, paper.employees_1nf()),
    ]:
        db.create_table(schema)
        db.insert_many(schema.name, (row.to_plain() for row in value))


@pytest.fixture
def paper_db() -> Database:
    db = Database()
    load_paper_tables(db)
    return db
