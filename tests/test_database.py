"""Tests for the Database facade: DDL/DML statements, index maintenance,
planner integration, versioned tables + ASOF, and error paths."""

import datetime

import pytest

from repro.database import Database
from repro.datasets import paper
from repro.errors import (
    AccessPathError,
    BindError,
    DataError,
    DuplicateTableError,
    ExecutionError,
    QueryError,
    TemporalError,
    UnknownIndexError,
    UnknownTableError,
)
from repro.index.addresses import AddressingMode
from repro.model.values import TableValue


def test_ddl_through_execute():
    db = Database()
    schema = db.execute(
        "CREATE TABLE T (A INT, S TABLE OF (B INT), C STRING)"
    )
    assert schema.name == "T"
    assert db.table_schema("T").attribute("S").is_table
    db.execute("DROP TABLE T")
    with pytest.raises(UnknownTableError):
        db.table_schema("T")


def test_duplicate_table_rejected():
    db = Database()
    db.execute("CREATE TABLE T (A INT)")
    with pytest.raises(DuplicateTableError):
        db.execute("CREATE TABLE T (A INT)")


def test_insert_statement_nested_literals():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    count = db.execute(
        "INSERT INTO DEPARTMENTS VALUES "
        "(99, 1, {(5, 'P5', {(7, 'Leader')})}, 1000, {(1, 'PC'), (2, '3278')})"
    )
    assert count == 1
    result = db.query("SELECT * FROM x IN DEPARTMENTS")
    assert result[0]["PROJECTS"][0]["MEMBERS"][0]["EMPNO"] == 7
    assert len(result[0]["EQUIP"]) == 2


def test_insert_statement_bracket_kind_checked():
    db = Database()
    db.create_table(paper.REPORTS_SCHEMA)
    with pytest.raises(DataError):
        # AUTHORS is a list: '{...}' is the wrong bracket
        db.execute("INSERT INTO REPORTS VALUES ('1', {('X')}, 'T', {})")
    db.execute("INSERT INTO REPORTS VALUES ('1', <('X')>, 'T', {})")
    assert len(db.table_value("REPORTS")) == 1


def test_insert_statement_arity_checked():
    db = Database()
    db.execute("CREATE TABLE T (A INT, B INT)")
    with pytest.raises(DataError):
        db.execute("INSERT INTO T VALUES (1)")


def test_update_statement(paper_db):
    count = paper_db.execute(
        "UPDATE DEPARTMENTS x SET BUDGET = 111111 WHERE x.DNO = 314"
    )
    assert count == 1
    result = paper_db.query(
        "SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 314"
    )
    assert result.column("BUDGET") == [111111]
    # other departments untouched
    rest = paper_db.query(
        "SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 218"
    )
    assert rest.column("BUDGET") == [440000]


def test_update_statement_rejects_subtable_assignment(paper_db):
    with pytest.raises(ExecutionError):
        paper_db.execute("UPDATE DEPARTMENTS x SET PROJECTS = 1 WHERE x.DNO = 314")


def test_delete_statement(paper_db):
    count = paper_db.execute("DELETE FROM DEPARTMENTS x WHERE x.DNO = 218")
    assert count == 1
    remaining = paper_db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    assert sorted(remaining.column("DNO")) == [314, 417]
    # delete everything
    assert paper_db.execute("DELETE FROM DEPARTMENTS") == 2
    assert len(paper_db.table_value("DEPARTMENTS")) == 0


def test_update_flat_table(paper_db):
    count = paper_db.execute(
        "UPDATE EMPLOYEES-1NF e SET LNAME = 'Renamed' WHERE e.EMPNO = 39582"
    )
    assert count == 1
    result = paper_db.query(
        "SELECT e.LNAME FROM e IN EMPLOYEES-1NF WHERE e.EMPNO = 39582"
    )
    assert result.column("LNAME") == ["Renamed"]


def test_query_requires_select(paper_db):
    with pytest.raises(QueryError):
        paper_db.query("DELETE FROM DEPARTMENTS")


def test_programmatic_partial_update_with_index_maintenance(paper_db):
    paper_db.create_index(
        "FN", "DEPARTMENTS", ("PROJECTS", "MEMBERS", "FUNCTION")
    )
    (tid_314,) = [
        t
        for t in paper_db.tids("DEPARTMENTS")
        if paper_db.open_object("DEPARTMENTS", t).read_atoms(
            paper_db.table_schema("DEPARTMENTS"),
            paper_db.open_object("DEPARTMENTS", t).decoded,
        )["DNO"]
        == 314
    ]
    # promote member 56019 from Consultant to Leader through the callable API
    paper_db.update(
        "DEPARTMENTS",
        tid_314,
        lambda obj: obj.update_atoms(
            [("PROJECTS", 0), ("MEMBERS", 1)], {"FUNCTION": "Leader"}
        ),
    )
    index = paper_db.catalog.index("FN")
    assert len(index.search("Consultant")) == 2  # only dept 218's remain


def test_index_maintenance_on_insert_and_delete():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    tids = db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    index = db.catalog.index("FN")
    assert len(index.search("Consultant")) == 3
    db.delete("DEPARTMENTS", tids[1])  # dept 218
    assert len(index.search("Consultant")) == 1


def test_create_index_through_sql(paper_db):
    paper_db.execute("CREATE INDEX FN ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)")
    paper_db.execute("CREATE TEXT INDEX TX ON REPORTS (TITLE)")
    assert paper_db.catalog.index("FN") is not None
    paper_db.execute("DROP INDEX FN")
    with pytest.raises(UnknownIndexError):
        paper_db.catalog.index("FN")


def test_planner_uses_hierarchical_index(paper_db):
    paper_db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    result = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    )
    assert sorted(result.column("DNO")) == [218, 314]
    assert paper_db.last_plan is not None
    assert paper_db.last_plan.used_indexes == ["FN"]


def test_planner_prefix_join(paper_db):
    paper_db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    paper_db.create_index("PN", "DEPARTMENTS", "PROJECTS.PNO")
    result = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS "
        "(y.PNO = 25 AND EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
    )
    assert result.column("DNO") == [218]
    assert paper_db.last_plan.prefix_joins == 1
    # PNO=23 (project HEAR) has no consultant: prefix join empties the set
    empty = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS "
        "(y.PNO = 23 AND EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
    )
    assert len(empty) == 0


def test_planner_disabled_gives_same_answers(paper_db):
    paper_db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    query = (
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    )
    with_index = paper_db.query(query)
    paper_db.use_access_paths = False
    without = paper_db.query(query)
    assert with_index == without


def test_planner_flat_index(paper_db):
    paper_db.create_index("EMP", "EMPLOYEES-1NF", ("EMPNO",))
    result = paper_db.query(
        "SELECT e.LNAME FROM e IN EMPLOYEES-1NF WHERE e.EMPNO = 39582"
    )
    assert result.column("LNAME") == ["Krueger"]
    assert paper_db.last_plan.used_indexes == ["EMP"]


def test_data_tid_index_never_planned(paper_db):
    paper_db.create_index(
        "FN_DATA",
        "DEPARTMENTS",
        "PROJECTS.MEMBERS.FUNCTION",
        mode=AddressingMode.DATA_TID,
    )
    result = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    )
    assert sorted(result.column("DNO")) == [218, 314]
    assert paper_db.last_plan is None  # fell back to a scan — Section 4.2


def test_bind_errors_surface(paper_db):
    with pytest.raises(BindError):
        paper_db.query("SELECT x.NOPE FROM x IN DEPARTMENTS")
    with pytest.raises(BindError):
        paper_db.query("SELECT y.DNO FROM x IN DEPARTMENTS")
    with pytest.raises(BindError):
        paper_db.query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 'abc'")
    with pytest.raises(BindError):
        paper_db.query("SELECT * FROM x IN DEPARTMENTS, y IN x.PROJECTS")
    with pytest.raises(BindError):
        paper_db.query(
            "SELECT x.DNO, x.DNO FROM x IN DEPARTMENTS"
        )


# -- versioned tables -------------------------------------------------------------


def make_versioned_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True)
    return db


def test_versioned_insert_update_asof():
    db = make_versioned_db()
    tid = db.insert(
        "DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at=datetime.date(1984, 1, 1)
    )
    db.update(
        "DEPARTMENTS",
        tid,
        {"BUDGET": 500_000},
        at=datetime.date(1984, 2, 1),
    )
    old = db.query(
        "SELECT x.BUDGET FROM x IN DEPARTMENTS ASOF '1984-01-15'"
    )
    assert old.column("BUDGET") == [320_000]
    new = db.query("SELECT x.BUDGET FROM x IN DEPARTMENTS")
    assert new.column("BUDGET") == [500_000]


def test_paper_asof_projects_query():
    """Section 5's example: the projects department 314 had on Jan 15, 1984."""
    db = make_versioned_db()
    tid = db.insert(
        "DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at=datetime.date(1984, 1, 1)
    )
    # later, project 23 is cancelled
    db.update(
        "DEPARTMENTS",
        tid,
        lambda obj: obj.delete_element([], "PROJECTS", 1),
        at=datetime.date(1984, 3, 1),
    )
    asof = db.query(
        "SELECT y.PNO, y.PNAME "
        "FROM x IN DEPARTMENTS ASOF '1984-01-15', y IN x.PROJECTS "
        "WHERE x.DNO = 314"
    )
    assert sorted(asof.column("PNO")) == [17, 23]
    now = db.query(
        "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE x.DNO = 314"
    )
    assert now.column("PNO") == [17]


def test_versioned_delete_keeps_history():
    db = make_versioned_db()
    tid = db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at=10)
    db.delete("DEPARTMENTS", tid, at=20)
    assert len(db.table_value("DEPARTMENTS")) == 0
    # before the insert: empty ('0001-01-05' = axis point 5 < 10)
    assert db.query("SELECT x.DNO FROM x IN DEPARTMENTS ASOF '0001-01-05'").rows == []
    # during the object's lifetime: visible
    asof_alive = db.query("SELECT x.DNO FROM x IN DEPARTMENTS ASOF '0001-01-15'")
    assert asof_alive.column("DNO") == [314]
    entry = db.catalog.table("DEPARTMENTS")
    assert entry.version_store.roots_asof(15) == [tid]
    # the historical bytes are still readable
    old = entry.manager.load(tid, entry.schema)
    assert old["DNO"] == 314


def test_asof_on_unversioned_table_rejected(paper_db):
    with pytest.raises((BindError, TemporalError)):
        paper_db.query("SELECT x.DNO FROM x IN DEPARTMENTS ASOF '1984-01-15'")


def test_render(paper_db):
    text = paper_db.render("DEPARTMENTS")
    assert "{ DEPARTMENTS }" in text
    assert "Consultant" in text


def test_context_manager(tmp_path):
    path = str(tmp_path / "db.pages")
    with Database(path=path) as db:
        db.execute("CREATE TABLE T (A INT)")
        db.execute("INSERT INTO T VALUES (7)")
        assert db.query("SELECT t.A FROM t IN T").column("A") == [7]
    import os

    assert os.path.getsize(path) > 0
