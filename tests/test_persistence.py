"""Tests for database persistence: save / reopen across processes'
lifetimes, with indexes, versions, and complex objects intact."""

import datetime

import pytest

from repro.database import Database
from repro.datasets import paper
from repro.errors import StorageError


def test_save_requires_disk_backing():
    db = Database()
    with pytest.raises(StorageError):
        db.save()


def test_save_and_reopen_flat_and_nested(tmp_path):
    path = str(tmp_path / "aim2.db")
    with Database(path=path) as db:
        db.create_table(paper.DEPARTMENTS_SCHEMA)
        db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
        db.create_table(paper.EMPLOYEES_1NF_SCHEMA)
        db.insert_many(
            "EMPLOYEES-1NF", (r.to_plain() for r in paper.employees_1nf())
        )
        db.save()

    with Database(path=path) as again:
        departments = again.table_value("DEPARTMENTS")
        assert departments == paper.departments()
        employees = again.table_value("EMPLOYEES-1NF")
        assert employees == paper.employees_1nf()
        # and the reopened database is fully operational
        result = again.query(
            "SELECT x.DNO FROM x IN DEPARTMENTS "
            "WHERE EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'"
        )
        assert sorted(result.column("DNO")) == [218, 314, 417]


def test_indexes_rebuilt_on_reopen(tmp_path):
    path = str(tmp_path / "indexed.db")
    with Database(path=path) as db:
        db.create_table(paper.DEPARTMENTS_SCHEMA)
        db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
        db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
        db.create_table(paper.REPORTS_SCHEMA)
        db.insert_many("REPORTS", paper.REPORTS_ROWS)
        db.create_text_index("TX", "REPORTS", "TITLE")
        db.save()

    with Database(path=path) as again:
        result = again.query(
            "SELECT x.DNO FROM x IN DEPARTMENTS "
            "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
            "z.FUNCTION = 'Consultant'"
        )
        assert sorted(result.column("DNO")) == [218, 314]
        assert again.last_plan is not None
        assert again.last_plan.used_indexes == ["FN"]
        hit = again.query(
            "SELECT x.REPNO FROM x IN REPORTS WHERE x.TITLE CONTAINS '*string*'"
        )
        assert hit.column("REPNO") == ["0189"]


def test_versioned_history_survives_reopen(tmp_path):
    path = str(tmp_path / "versioned.db")
    with Database(path=path) as db:
        db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True)
        tid = db.insert(
            "DEPARTMENTS", paper.DEPARTMENTS_ROWS[0],
            at=datetime.date(1984, 1, 1),
        )
        db.update(
            "DEPARTMENTS", tid, {"BUDGET": 999},
            at=datetime.date(1984, 2, 1),
        )
        db.save()

    with Database(path=path) as again:
        old = again.query(
            "SELECT x.BUDGET FROM x IN DEPARTMENTS ASOF '1984-01-15'"
        )
        assert old.column("BUDGET") == [320_000]
        now = again.query("SELECT x.BUDGET FROM x IN DEPARTMENTS")
        assert now.column("BUDGET") == [999]
        tid = again.tids("DEPARTMENTS")[0]
        history = again.history("DEPARTMENTS", tid)
        assert [v[2]["BUDGET"] for v in history] == [320_000, 999]


def test_mutations_after_reopen(tmp_path):
    path = str(tmp_path / "mutate.db")
    with Database(path=path) as db:
        db.create_table(paper.DEPARTMENTS_SCHEMA)
        db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
        db.save()

    with Database(path=path) as again:
        again.execute("DELETE FROM DEPARTMENTS x WHERE x.DNO = 218")
        again.execute(
            "INSERT INTO DEPARTMENTS VALUES (900, 1, {}, 5, {(1, 'PC')})"
        )
        again.save()

    with Database(path=path) as third:
        result = third.query("SELECT x.DNO FROM x IN DEPARTMENTS")
        assert sorted(result.column("DNO")) == [314, 417, 900]


def test_save_load_roundtrip_is_stable(tmp_path):
    path = str(tmp_path / "stable.db")
    with Database(path=path) as db:
        db.create_table(paper.REPORTS_SCHEMA)
        db.insert_many("REPORTS", paper.REPORTS_ROWS)
        db.save()
    for _ in range(3):  # repeated open/save cycles must not corrupt
        with Database(path=path) as db:
            assert db.table_value("REPORTS") == paper.reports()
            db.save()
