"""Tests for complex-object storage: Mini Directories, local address
spaces, clustering, partial access, relocation — across SS1/SS2/SS3."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import DepartmentsGenerator, paper
from repro.errors import RecordNotFoundError, StorageError
from repro.model.values import TupleValue
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.minidirectory import StorageStructure, get_codec
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment

ALL_STRUCTURES = list(StorageStructure)


def make_manager(structure=StorageStructure.SS3, capacity=256):
    buffer = BufferManager(MemoryPagedFile(), capacity=capacity)
    return ComplexObjectManager(Segment(buffer), structure)


def dept_value(index=0) -> TupleValue:
    return TupleValue.from_plain(
        paper.DEPARTMENTS_SCHEMA, paper.DEPARTMENTS_ROWS[index]
    )


@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_store_load_roundtrip(structure):
    manager = make_manager(structure)
    value = dept_value()
    root = manager.store(paper.DEPARTMENTS_SCHEMA, value)
    assert manager.load(root, paper.DEPARTMENTS_SCHEMA) == value


@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_store_load_all_three_departments(structure):
    manager = make_manager(structure)
    roots = [
        manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(i)) for i in range(3)
    ]
    for i, root in enumerate(roots):
        assert manager.load(root, paper.DEPARTMENTS_SCHEMA) == dept_value(i)


@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_ordered_subtable_preserves_order(structure):
    manager = make_manager(structure)
    value = TupleValue.from_plain(paper.REPORTS_SCHEMA, paper.REPORTS_ROWS[2])
    root = manager.store(paper.REPORTS_SCHEMA, value)
    loaded = manager.load(root, paper.REPORTS_SCHEMA)
    assert loaded["AUTHORS"].column("NAME") == ["Pool A", "Meyer P", "Jones A"]


def test_md_subtuple_counts_match_paper_fig6():
    """Department 314: SS1 has 7 MD subtuples, SS3 has 5, SS2 has 3."""
    counts = {}
    for structure in ALL_STRUCTURES:
        manager = make_manager(structure)
        root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(0))
        stats = manager.statistics(root, paper.DEPARTMENTS_SCHEMA)
        counts[structure] = stats["md_subtuples"]
    assert counts[StorageStructure.SS1] == 7
    assert counts[StorageStructure.SS3] == 5
    assert counts[StorageStructure.SS2] == 3


@given(
    departments=st.integers(1, 3),
    projects=st.integers(0, 4),
    members=st.integers(0, 4),
    equipment=st.integers(0, 4),
)
@settings(max_examples=25, deadline=None)
def test_property_md_count_ordering(departments, projects, members, equipment):
    """#MD(SS1) >= #MD(SS3) >= #MD(SS2), strict when complex subobjects
    exist (the paper's ordering)."""
    gen = DepartmentsGenerator(
        departments=departments,
        projects_per_department=projects,
        members_per_project=members,
        equipment_per_department=equipment,
        seed=5,
    )
    rows = gen.rows()
    counts = {}
    for structure in ALL_STRUCTURES:
        manager = make_manager(structure)
        total = 0
        for row in rows:
            value = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, row)
            root = manager.store(paper.DEPARTMENTS_SCHEMA, value)
            total += manager.statistics(root, paper.DEPARTMENTS_SCHEMA)["md_subtuples"]
        counts[structure] = total
    assert counts[StorageStructure.SS1] >= counts[StorageStructure.SS3]
    assert counts[StorageStructure.SS3] >= counts[StorageStructure.SS2]
    if projects > 0:  # complex subobjects exist
        assert counts[StorageStructure.SS1] > counts[StorageStructure.SS3]
        assert counts[StorageStructure.SS3] > counts[StorageStructure.SS2]


@given(
    departments=st.integers(1, 2),
    projects=st.integers(0, 3),
    members=st.integers(0, 5),
    structure=st.sampled_from(ALL_STRUCTURES),
)
@settings(max_examples=25, deadline=None)
def test_property_store_load_roundtrip(departments, projects, members, structure):
    gen = DepartmentsGenerator(
        departments=departments,
        projects_per_department=projects,
        members_per_project=members,
        seed=11,
    )
    manager = make_manager(structure)
    for row in gen.rows():
        value = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, row)
        root = manager.store(paper.DEPARTMENTS_SCHEMA, value)
        assert manager.load(root, paper.DEPARTMENTS_SCHEMA) == value


@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_clustering_object_occupies_few_pages(structure):
    manager = make_manager(structure)
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(0))
    assert len(manager.object_pages(root)) <= 2


def test_navigation_reads_no_data_pages():
    """Separation of structure and data: open() must not read any data
    subtuple."""
    manager = make_manager(StorageStructure.SS3)
    # big data subtuples on their own pages
    gen = DepartmentsGenerator(departments=1, projects_per_department=8,
                               members_per_project=20)
    value = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, gen.rows()[0])
    root = manager.store(paper.DEPARTMENTS_SCHEMA, value)
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    # count elements without touching data subtuples
    members = sum(
        len(p.subtables[0].elements)
        for p in obj.decoded.subtables[0].elements
    )
    assert members == 160


@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_update_atoms_in_place(structure):
    manager = make_manager(structure)
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(0))
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    obj.update_atoms([], {"BUDGET": 999_999})
    obj.update_atoms([("PROJECTS", 0)], {"PNAME": "CGA-RENAMED"})
    obj.update_atoms([("PROJECTS", 0), ("MEMBERS", 1)], {"FUNCTION": "Adviser"})
    loaded = manager.load(root, paper.DEPARTMENTS_SCHEMA)
    assert loaded["BUDGET"] == 999_999
    assert loaded["PROJECTS"][0]["PNAME"] == "CGA-RENAMED"
    assert loaded["PROJECTS"][0]["MEMBERS"][1]["FUNCTION"] == "Adviser"


@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_update_atoms_rejects_table_attribute(structure):
    manager = make_manager(structure)
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(0))
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    with pytest.raises(StorageError):
        obj.update_atoms([], {"PROJECTS": []})


@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_insert_element_flat_and_complex(structure):
    manager = make_manager(structure)
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(0))
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    # flat subobject into EQUIP
    obj.insert_element([], "EQUIP", {"QU": 9, "TYPE": "3290"})
    # complex subobject into PROJECTS, with its own MEMBERS subtable
    obj.insert_element(
        [],
        "PROJECTS",
        {
            "PNO": 99,
            "PNAME": "NEW",
            "MEMBERS": [{"EMPNO": 11111, "FUNCTION": "Leader"}],
        },
    )
    # member into an existing project
    obj.insert_element([("PROJECTS", 0)], "MEMBERS", {"EMPNO": 22222, "FUNCTION": "Staff"})
    loaded = manager.load(root, paper.DEPARTMENTS_SCHEMA)
    assert len(loaded["EQUIP"]) == 4
    assert len(loaded["PROJECTS"]) == 3
    new_project = [p for p in loaded["PROJECTS"] if p["PNO"] == 99][0]
    assert new_project["MEMBERS"][0]["EMPNO"] == 11111
    project17 = [p for p in loaded["PROJECTS"] if p["PNO"] == 17][0]
    assert 22222 in project17["MEMBERS"].column("EMPNO")


@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_insert_element_at_position_in_list(structure):
    manager = make_manager(structure)
    value = TupleValue.from_plain(paper.REPORTS_SCHEMA, paper.REPORTS_ROWS[0])
    root = manager.store(paper.REPORTS_SCHEMA, value)
    obj = manager.open(root, paper.REPORTS_SCHEMA)
    obj.insert_element([], "AUTHORS", {"NAME": "Newfirst Z"}, position=0)
    loaded = manager.load(root, paper.REPORTS_SCHEMA)
    assert loaded["AUTHORS"].column("NAME")[0] == "Newfirst Z"


@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_delete_element(structure):
    manager = make_manager(structure)
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(0))
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    obj.delete_element([], "PROJECTS", 1)  # drop project 23 and its members
    loaded = manager.load(root, paper.DEPARTMENTS_SCHEMA)
    assert loaded["PROJECTS"].column("PNO") == [17]
    with pytest.raises(RecordNotFoundError):
        obj.delete_element([], "PROJECTS", 5)


@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_delete_object_releases_pages(structure):
    manager = make_manager(structure)
    segment = manager.segment
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(0))
    pages_before = segment.page_count
    assert pages_before > 0
    manager.delete(root, paper.DEPARTMENTS_SCHEMA)
    with pytest.raises(RecordNotFoundError):
        manager.load(root, paper.DEPARTMENTS_SCHEMA)
    assert segment.page_count == 0  # every page returned to the free pool
    # the freed pages are recycled for the next object
    root2 = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(1))
    assert segment.page_count <= pages_before + 1
    assert manager.load(root2, paper.DEPARTMENTS_SCHEMA) == dept_value(1)


@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_copy_object_page_level(structure):
    """Relocation/check-out: the copy is identical and no pointer inside
    changed (verified by loading through new page list)."""
    manager = make_manager(structure)
    value = dept_value(0)
    root = manager.store(paper.DEPARTMENTS_SCHEMA, value)
    copy_root = manager.copy_object(root, paper.DEPARTMENTS_SCHEMA)
    assert copy_root != root
    assert manager.load(copy_root, paper.DEPARTMENTS_SCHEMA) == value
    # original untouched
    assert manager.load(root, paper.DEPARTMENTS_SCHEMA) == value
    # page sets disjoint
    assert not set(manager.object_pages(root)) & set(manager.object_pages(copy_root))
    # mutating the copy leaves the original alone
    obj = manager.open(copy_root, paper.DEPARTMENTS_SCHEMA)
    obj.update_atoms([], {"BUDGET": 1})
    assert manager.load(root, paper.DEPARTMENTS_SCHEMA)["BUDGET"] == 320_000


def test_large_object_spans_pages_and_roundtrips():
    manager = make_manager(StorageStructure.SS3)
    gen = DepartmentsGenerator(
        departments=1, projects_per_department=10, members_per_project=50,
        equipment_per_department=10,
    )
    value = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, gen.rows()[0])
    root = manager.store(paper.DEPARTMENTS_SCHEMA, value)
    assert len(manager.object_pages(root)) > 1
    assert manager.load(root, paper.DEPARTMENTS_SCHEMA) == value


def test_mini_tids_survive_many_structural_edits():
    """Pointer stability: the data Mini TID of member 0 stays readable
    across many inserts/deletes elsewhere in the object."""
    manager = make_manager(StorageStructure.SS3)
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(0))
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    _schema, member0 = obj.resolve([("PROJECTS", 0), ("MEMBERS", 0)])
    pinned_mini = member0.data
    for i in range(40):
        obj.insert_element([], "EQUIP", {"QU": i, "TYPE": f"T{i}"})
    for _ in range(20):
        obj.delete_element([], "EQUIP", 3)
    # re-open from disk state and read through the pinned Mini TID
    obj2 = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    payload = obj2.space.read(pinned_mini)
    from repro.storage.subtuple import decode_data_subtuple

    values = decode_data_subtuple(paper.MEMBERS_SCHEMA.attributes, payload)
    assert values == (39582, "Leader")


def test_open_non_root_tid_rejected():
    manager = make_manager(StorageStructure.SS3)
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(0))
    from repro.storage.tid import TID

    bad = TID(root.page, root.slot + 1) if root.slot else TID(root.page, root.slot + 1)
    try:
        manager.open(bad, paper.DEPARTMENTS_SCHEMA)
    except (StorageError, RecordNotFoundError):
        pass
    else:
        pytest.fail("expected an error opening a non-root TID")


def test_huge_subtable_md_spans_pages():
    """A subtable with thousands of tuples (the paper: subtables "may
    consist of thousands of tuples") — its MD subtuple exceeds one page
    and is chained transparently."""
    manager = make_manager(StorageStructure.SS3, capacity=2048)
    gen = DepartmentsGenerator(
        departments=1, projects_per_department=1, members_per_project=2000,
    )
    value = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, gen.rows()[0])
    root = manager.store(paper.DEPARTMENTS_SCHEMA, value)
    loaded = manager.load(root, paper.DEPARTMENTS_SCHEMA)
    assert len(loaded["PROJECTS"][0]["MEMBERS"]) == 2000
    assert loaded == value
    # partial access still works
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    schema, member = obj.resolve([("PROJECTS", 0), ("MEMBERS", 1500)])
    atoms = obj.read_atoms(schema, member)
    assert atoms["EMPNO"] == value["PROJECTS"][0]["MEMBERS"][1500]["EMPNO"]


def test_subtable_grows_past_page_incrementally():
    """Insert elements one at a time until the MEMBERS MD subtuple must
    chain; every intermediate state stays consistent."""
    manager = make_manager(StorageStructure.SS3, capacity=2048)
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(0))
    for index in range(900):
        obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
        obj.insert_element(
            [("PROJECTS", 0)], "MEMBERS",
            {"EMPNO": 100_000 + index, "FUNCTION": "Staff"},
        )
    loaded = manager.load(root, paper.DEPARTMENTS_SCHEMA)
    members = loaded["PROJECTS"][0]["MEMBERS"]
    assert len(members) == 903  # 3 original + 900 inserted
    assert members.column("EMPNO")[-1] == 100_899
