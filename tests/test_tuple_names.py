"""Tests for tuple names (Section 4.3, Fig 8)."""

import pytest

from repro.datasets import paper
from repro.errors import TupleNameError
from repro.model.values import TupleValue, TableValue
from repro.names.tuple_names import TupleName, TupleNameKind, TupleNameService
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.minidirectory import StorageStructure
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment


def service(structure=StorageStructure.SS3):
    buffer = BufferManager(MemoryPagedFile(), capacity=256)
    manager = ComplexObjectManager(Segment(buffer), structure)
    root = manager.store(
        paper.DEPARTMENTS_SCHEMA,
        TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, paper.DEPARTMENTS_ROWS[0]),
    )
    return TupleNameService(manager, paper.DEPARTMENTS_SCHEMA), manager, root


def test_object_tname_u():
    """Fig 8's U: the t-name of department 314 as a whole."""
    svc, _manager, root = service()
    name = svc.name_of_object(root)
    assert name.kind is TupleNameKind.OBJECT
    value = svc.resolve(name)
    assert value["DNO"] == 314


def test_subobject_tname_v():
    """Fig 8's V: the t-name of project 17 (a complex subobject)."""
    svc, manager, root = service()
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    name = svc.name_of_subobject(obj, [("PROJECTS", 0)])
    assert name.kind is TupleNameKind.SUBOBJECT
    assert len(name.components) == 1
    value = svc.resolve(name)
    assert (value["PNO"], value["PNAME"]) == (17, "CGA")


def test_flat_subobject_tname_t():
    """Fig 8's T: the t-name of the '56019 Consultant' tuple."""
    svc, manager, root = service()
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    name = svc.name_of_subobject(obj, [("PROJECTS", 0), ("MEMBERS", 1)])
    assert len(name.components) == 2
    value = svc.resolve(name)
    assert (value["EMPNO"], value["FUNCTION"]) == (56019, "Consultant")


def test_subtable_tnames_w_and_x():
    """Fig 8's W (PROJECTS subtable) and X (MEMBERS of project 17)."""
    svc, manager, root = service()
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    w = svc.name_of_subtable(obj, [], "PROJECTS")
    assert w.kind is TupleNameKind.SUBTABLE
    projects = svc.resolve(w)
    assert isinstance(projects, TableValue)
    assert sorted(projects.column("PNO")) == [17, 23]
    x = svc.name_of_subtable(obj, [("PROJECTS", 0)], "MEMBERS")
    members = svc.resolve(x)
    assert members.column("EMPNO") == [39582, 56019, 69011]


def test_subtable_tnames_unavailable_under_ss2():
    """SS2 gives subtables no MD subtuples — no subtable t-names."""
    svc, manager, root = service(StorageStructure.SS2)
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    with pytest.raises(TupleNameError):
        svc.name_of_subtable(obj, [], "PROJECTS")
    # subobject t-names still work
    name = svc.name_of_subobject(obj, [("PROJECTS", 1)])
    assert svc.resolve(name)["PNO"] == 23


def test_tname_encode_decode_roundtrip():
    svc, manager, root = service()
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    for name in [
        svc.name_of_object(root),
        svc.name_of_subobject(obj, [("PROJECTS", 0), ("MEMBERS", 2)]),
        svc.name_of_subtable(obj, [], "EQUIP"),
    ]:
        text = name.encode()
        assert TupleName.decode(text) == name
    with pytest.raises(TupleNameError):
        TupleName.decode("not-a-name")
    with pytest.raises(TupleNameError):
        TupleName.decode("@banana/1:2")


def test_tnames_survive_unrelated_edits():
    """A t-name stays valid across inserts elsewhere in the object —
    the stability property that makes t-names usable as persistent keys."""
    svc, manager, root = service()
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    name = svc.name_of_subobject(obj, [("PROJECTS", 0), ("MEMBERS", 1)])
    for i in range(30):
        obj.insert_element([], "EQUIP", {"QU": i, "TYPE": f"X{i}"})
    value = svc.resolve(name)
    assert value["EMPNO"] == 56019


def test_dangling_tname_detected():
    svc, manager, root = service()
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    name = svc.name_of_subobject(obj, [("PROJECTS", 1)])
    obj.delete_element([], "PROJECTS", 1)
    with pytest.raises(TupleNameError):
        svc.resolve(name)
