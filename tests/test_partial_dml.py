"""Tests for language-level partial DML (sub-object insert/update/delete)."""

import pytest

from repro.database import Database
from repro.datasets import paper
from repro.errors import ExecutionError


def fresh_db(versioned=False, versioning="object"):
    db = Database()
    db.create_table(
        paper.DEPARTMENTS_SCHEMA, versioned=versioned, versioning=versioning
    )
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    return db


def test_sub_insert_into_selected_project():
    db = fresh_db()
    count = db.execute(
        "INSERT INTO y.MEMBERS "
        "FROM x IN DEPARTMENTS, y IN x.PROJECTS "
        "WHERE x.DNO = 314 AND y.PNO = 17 "
        "VALUES (77001, 'Staff'), (77002, 'Staff')"
    )
    assert count == 2
    members = db.query(
        "SELECT z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, "
        "z IN y.MEMBERS WHERE y.PNO = 17"
    )
    assert 77001 in members.column("EMPNO") and 77002 in members.column("EMPNO")
    # other projects untouched
    hear = db.query(
        "SELECT z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, "
        "z IN y.MEMBERS WHERE y.PNO = 23"
    )
    assert len(hear) == 4


def test_sub_insert_top_level_subtable():
    db = fresh_db()
    db.execute(
        "INSERT INTO x.EQUIP FROM x IN DEPARTMENTS WHERE x.DNO = 417 "
        "VALUES (9, '3290')"
    )
    equip = db.query(
        "SELECT v.TYPE FROM x IN DEPARTMENTS, v IN x.EQUIP WHERE x.DNO = 417"
    )
    assert "3290" in equip.column("TYPE")
    assert len(equip) == 8


def test_sub_insert_nested_literal():
    db = fresh_db()
    db.execute(
        "INSERT INTO x.PROJECTS FROM x IN DEPARTMENTS WHERE x.DNO = 218 "
        "VALUES (31, 'DOCS', {(88001, 'Leader'), (88002, 'Staff')})"
    )
    members = db.query(
        "SELECT z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, "
        "z IN y.MEMBERS WHERE y.PNO = 31"
    )
    assert sorted(members.column("EMPNO")) == [88001, 88002]


def test_sub_update_member_function():
    db = fresh_db()
    count = db.execute(
        "UPDATE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS "
        "SET FUNCTION = 'Adviser' WHERE z.EMPNO = 56019"
    )
    assert count == 1
    check = db.query(
        "SELECT z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, "
        "z IN y.MEMBERS WHERE z.EMPNO = 56019"
    )
    assert check.column("FUNCTION") == ["Adviser"]


def test_sub_update_with_expression_referencing_outer_vars():
    db = fresh_db()
    db.execute(
        "UPDATE y FROM x IN DEPARTMENTS, y IN x.PROJECTS "
        "SET PNO = x.DNO WHERE y.PNO = 37"
    )
    check = db.query(
        "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS "
        "WHERE x.DNO = 417"
    )
    assert check.column("PNO") == [417]


def test_sub_delete_all_staff():
    db = fresh_db()
    count = db.execute(
        "DELETE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS "
        "WHERE z.FUNCTION = 'Staff'"
    )
    assert count == 6  # 58912, 98902, 89211, 72723, 75913, 96001
    remaining = db.query(
        "SELECT z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, "
        "z IN y.MEMBERS"
    )
    assert "Staff" not in remaining.column("FUNCTION")


def test_sub_delete_whole_projects():
    db = fresh_db()
    db.execute(
        "DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE x.DNO = 314"
    )
    check = db.query(
        "SELECT COUNT(x.PROJECTS) AS N FROM x IN DEPARTMENTS WHERE x.DNO = 314"
    )
    assert check[0]["N"] == 0
    # dept 218's project untouched
    other = db.query(
        "SELECT COUNT(x.PROJECTS) AS N FROM x IN DEPARTMENTS WHERE x.DNO = 218"
    )
    assert other[0]["N"] == 1


def test_sub_delete_positions_stay_valid():
    """Deleting several elements of the same subtable must not be confused
    by shifting positions."""
    db = fresh_db()
    # dept 218's project 25 has two Consultants at positions 1 and 3
    db.execute(
        "DELETE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS "
        "WHERE x.DNO = 218 AND z.FUNCTION = 'Consultant'"
    )
    members = db.query(
        "SELECT z.EMPNO, z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, "
        "z IN y.MEMBERS WHERE x.DNO = 218"
    )
    assert sorted(members.column("EMPNO")) == [72723, 89211, 92100, 99023]


def test_sub_delete_var_over_stored_table_is_whole_delete():
    db = fresh_db()
    db.execute("DELETE x FROM x IN DEPARTMENTS WHERE x.DNO = 218")
    assert sorted(
        db.query("SELECT x.DNO FROM x IN DEPARTMENTS").column("DNO")
    ) == [314, 417]


def test_partial_dml_maintains_indexes():
    db = fresh_db()
    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    db.execute(
        "DELETE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS "
        "WHERE z.FUNCTION = 'Consultant'"
    )
    index = db.catalog.index("FN")
    assert index.search("Consultant") == []


def test_partial_dml_on_subtuple_versioned_table():
    db = fresh_db(versioned=True, versioning="subtuple")
    db.execute(
        "UPDATE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS "
        "SET FUNCTION = 'Adviser' WHERE z.EMPNO = 56019"
    )
    now = db.query(
        "SELECT z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, "
        "z IN y.MEMBERS WHERE z.EMPNO = 56019"
    )
    assert now.column("FUNCTION") == ["Adviser"]
    # ... and the history still shows the consultant
    old = db.query(
        "SELECT z.FUNCTION FROM x IN DEPARTMENTS ASOF '0001-01-02', "
        "y IN x.PROJECTS, z IN y.MEMBERS WHERE z.EMPNO = 56019"
    )
    assert old.column("FUNCTION") == ["Consultant"]


def test_partial_dml_error_paths():
    db = fresh_db()
    with pytest.raises(ExecutionError):
        db.execute(
            "INSERT INTO x.PROJECTS.MEMBERS FROM x IN DEPARTMENTS VALUES (1, 'x')"
        )
    with pytest.raises(ExecutionError):
        db.execute(
            "DELETE q FROM x IN DEPARTMENTS WHERE x.DNO = 314"
        )
    with pytest.raises(ExecutionError):
        db.execute(
            "UPDATE y FROM x IN DEPARTMENTS, y IN x.PROJECTS SET MEMBERS = 1"
        )
    with pytest.raises(ExecutionError):
        db.execute(
            "DELETE z FROM x IN DEPARTMENTS, z IN x.PROJECTS ASOF '1984-01-01'"
        )
