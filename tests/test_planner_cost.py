"""Regression tests for cost-based access-path selection.

Covers the three access-path bugs fixed alongside the cost model:

* index *preference* — with a ROOT_TID and a HIERARCHICAL index on the
  same attribute path, the first-match planner let catalog (dict) order
  decide and could silently lose prefix joins; the cost model prefers
  HIERARCHICAL at equal selectivity;
* CONTAINS fallback — a text index that could not narrow the pattern
  aborted the whole lookup instead of letting another text index answer;
* ``_sortable`` collapsed ``datetime.datetime`` to ``toordinal()``,
  making all timestamps of one day compare equal.

Plus the new machinery: range-probe bound inclusivity through
``_index_hits``, ascending-selectivity intersection with early exit,
ORDER BY sort elision, and statistics persistence.
"""

import datetime
import json

import pytest

from repro import obs
from repro.database import Database
from repro.datasets import paper
from repro.index.addresses import AddressingMode, address_root
from repro.index.manager import IndexDefinition, NF2Index
from repro.obs import METRICS
from repro.query.executor import _sortable
from repro.query.planner import IndexCondition, _index_hits


def make_departments_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    return db


# ---------------------------------------------------------------------------
# bug (a): index preference must not depend on catalog order
# ---------------------------------------------------------------------------


PREFIX_JOIN_SQL = (
    "SELECT x.DNO FROM x IN DEPARTMENTS "
    "WHERE EXISTS y IN x.PROJECTS "
    "(y.PNO = 17 AND EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
)


def make_shadowed_db():
    """ROOT_TID indexes registered *before* HIERARCHICAL ones on the same
    paths — the catalog order that used to shadow the better indexes."""
    db = make_departments_db()
    db.create_index(
        "FN_ROOT", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION",
        mode=AddressingMode.ROOT_TID,
    )
    db.create_index(
        "PN_ROOT", "DEPARTMENTS", "PROJECTS.PNO",
        mode=AddressingMode.ROOT_TID,
    )
    db.create_index("FN_HIER", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    db.create_index("PN_HIER", "DEPARTMENTS", "PROJECTS.PNO")
    return db


def test_hierarchical_preferred_over_root_tid_on_same_path():
    db = make_shadowed_db()
    result = db.query(PREFIX_JOIN_SQL)
    assert result.column("DNO") == [314]
    plan = db.last_plan
    assert plan is not None
    # the cost model picked the hierarchical twins, not the first-created
    # ROOT_TID indexes — so the prefix join stayed available
    assert set(plan.used_indexes) == {"FN_HIER", "PN_HIER"}
    assert plan.prefix_joins == 1


def test_first_match_baseline_reproduces_the_shadowing_bug():
    """The ablation baseline pins the seed behaviour the fix removes."""
    db = make_shadowed_db()
    db.planner_mode = "first-match"
    result = db.query(PREFIX_JOIN_SQL)
    assert result.column("DNO") == [314]  # re-verification saves correctness
    plan = db.last_plan
    assert plan is not None
    assert set(plan.used_indexes) == {"FN_ROOT", "PN_ROOT"}
    assert plan.prefix_joins == 0  # the structural information was lost


def test_cost_plan_prunes_more_candidates_than_first_match():
    db = make_shadowed_db()
    # dept 314 has PNO 23 and a consultant — but in *different* projects:
    # the prefix join (hierarchical addresses) rejects it on index
    # information alone, while ROOT_TID intersection must fetch it.
    sql = (
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS "
        "(y.PNO = 23 AND EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
    )
    assert len(db.query(sql)) == 0
    cost_candidates = db.last_plan.actual_candidates
    db.planner_mode = "first-match"
    assert len(db.query(sql)) == 0  # re-verification saves correctness
    first_match_candidates = db.last_plan.actual_candidates
    assert cost_candidates == 0
    assert first_match_candidates == 1  # the false positive was fetched


# ---------------------------------------------------------------------------
# bug (b): CONTAINS must try the next text index, not abort
# ---------------------------------------------------------------------------


def make_reports_db():
    db = Database()
    db.create_table(paper.REPORTS_SCHEMA)
    db.insert_many("REPORTS", paper.REPORTS_ROWS)
    return db


def test_contains_falls_through_to_narrowing_text_index():
    db = make_reports_db()
    # the long-fragment index is registered first; '*consist*' has no
    # 8-char literal run, so it cannot narrow the pattern
    db.create_text_index("TX_LONG", "REPORTS", "TITLE", fragment_length=8)
    db.create_text_index("TX3", "REPORTS", "TITLE", fragment_length=3)
    result = db.query(
        "SELECT x.REPNO FROM x IN REPORTS WHERE x.TITLE CONTAINS '*consist*'"
    )
    assert result.column("REPNO") == ["0179"]
    plan = db.last_plan
    assert plan is not None and plan.used_indexes == ["TX3"]


def test_first_match_baseline_reproduces_the_contains_abort():
    db = make_reports_db()
    db.create_text_index("TX_LONG", "REPORTS", "TITLE", fragment_length=8)
    db.create_text_index("TX3", "REPORTS", "TITLE", fragment_length=3)
    db.planner_mode = "first-match"
    result = db.query(
        "SELECT x.REPNO FROM x IN REPORTS WHERE x.TITLE CONTAINS '*consist*'"
    )
    assert result.column("REPNO") == ["0179"]  # the scan still answers
    assert db.last_plan is None  # ...but no index plan was made


# ---------------------------------------------------------------------------
# bug (c): _sortable must keep a timestamp's time of day
# ---------------------------------------------------------------------------


def test_sortable_keeps_time_of_day():
    morning = datetime.datetime(2020, 1, 1, 9, 0, 0)
    evening = datetime.datetime(2020, 1, 1, 18, 30, 0)
    assert _sortable(morning) != _sortable(evening)
    assert _sortable(morning) < _sortable(evening)


def test_sortable_timestamp_order_is_total():
    stamps = [
        datetime.datetime(2020, 1, 2, 0, 0, 0),
        datetime.datetime(2020, 1, 1, 23, 59, 59, 999999),
        datetime.datetime(2020, 1, 1, 0, 0, 1),
        datetime.datetime(2020, 1, 1, 0, 0, 0),
    ]
    assert sorted(stamps, key=_sortable) == sorted(stamps)


def test_sortable_date_sorts_as_midnight():
    day = datetime.date(2020, 1, 1)
    assert _sortable(day) == _sortable(datetime.datetime(2020, 1, 1, 0, 0))
    assert _sortable(day) < _sortable(datetime.datetime(2020, 1, 1, 0, 0, 1))
    assert _sortable(datetime.date(2019, 12, 31)) < _sortable(day)


# ---------------------------------------------------------------------------
# range-probe bound inclusivity (through _index_hits)
# ---------------------------------------------------------------------------


def _flat_range_values(db, op, bound):
    entry = db.catalog.table("T")
    index = entry.indexes["IA"]
    condition = IndexCondition(("A",), (), "range", (op, bound))
    return sorted(
        entry.heap.fetch(tid)["A"] for tid in _index_hits(index, condition)
    )


@pytest.mark.parametrize(
    "op,expected",
    [
        ("<", [1, 2]),
        ("<=", [1, 2, 3]),
        (">", [4, 5]),
        (">=", [3, 4, 5]),
    ],
)
def test_flat_index_range_bounds(op, expected):
    db = Database()
    db.create_table("CREATE TABLE T (A INT)")
    db.insert_many("T", ({"A": value} for value in [3, 1, 5, 2, 4]))
    db.create_index("IA", "T", "A")
    assert _flat_range_values(db, op, 3) == expected


@pytest.mark.parametrize(
    "op,bound,expected",
    [
        ("<", 360_000, [320_000]),
        ("<=", 360_000, [320_000, 360_000]),
        (">", 360_000, [440_000]),
        (">=", 360_000, [360_000, 440_000]),
    ],
)
def test_nf2_index_range_bounds(op, bound, expected):
    db = make_departments_db()
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    entry = db.catalog.table("DEPARTMENTS")
    index = entry.indexes["BUD"]
    condition = IndexCondition(("BUDGET",), (), "range", (op, bound))
    budgets = sorted(
        db._fetch(entry, address_root(address))["BUDGET"]
        for address in _index_hits(index, condition)
    )
    assert budgets == expected


def test_mirrored_range_operand_through_query():
    db = make_departments_db()
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    result = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE 360000 > x.BUDGET"
    )
    assert result.column("DNO") == [314]
    assert db.last_plan is not None and db.last_plan.used_indexes == ["BUD"]
    result = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE 360000 <= x.BUDGET"
    )
    assert sorted(result.column("DNO")) == [218, 417]


# ---------------------------------------------------------------------------
# ascending-selectivity intersection + early exit
# ---------------------------------------------------------------------------


def test_most_selective_index_probes_first():
    db = make_departments_db()
    # BUD: 3 entries / 3 keys -> eq estimate 1.0
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    # FN: 9 member FUNCTION entries over few distinct values -> larger
    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE x.BUDGET = 320000 AND EXISTS y IN x.PROJECTS "
        "EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant'"
    )
    plan = db.last_plan
    assert plan is not None
    assert plan.used_indexes == ["BUD", "FN"]  # selectivity order
    fn_stats = db.catalog.table("DEPARTMENTS").indexes["FN"].stats
    bud_stats = db.catalog.table("DEPARTMENTS").indexes["BUD"].stats
    assert bud_stats.estimate_eq() < fn_stats.estimate_eq()
    assert plan.estimated_candidates == bud_stats.estimate_eq()


def test_early_exit_skips_remaining_index_probes():
    db = make_departments_db()
    db.create_index("A_BUD", "DEPARTMENTS", "BUDGET")
    db.create_index("B_MGR", "DEPARTMENTS", "MGRNO")
    METRICS.clear()  # the registry is process-global
    with obs.profiled(tracing=False):
        db.query(
            "SELECT x.DNO FROM x IN DEPARTMENTS "
            "WHERE x.BUDGET = 999 AND x.MGRNO = 56194"
        )
        probes = METRICS.counter("index.probes")
        assert probes.value(index="A_BUD") == 1
        assert probes.value(index="B_MGR") == 0  # never touched
        assert METRICS.counter("planner.early_exits").total == 1
    METRICS.clear()
    plan = db.last_plan
    assert plan is not None
    assert plan.early_exit is True
    assert plan.actual_candidates == 0


def test_intersection_reports_actual_candidates():
    db = make_departments_db()
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    result = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET = 440000"
    )
    assert result.column("DNO") == [218]
    plan = db.last_plan
    assert plan is not None
    assert plan.actual_candidates == 1
    assert plan.early_exit is False


# ---------------------------------------------------------------------------
# ORDER BY sort elision
# ---------------------------------------------------------------------------


ORDERED_SQL = (
    "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 0 "
    "ORDER BY x.BUDGET"
)


def test_order_by_elided_on_matching_index():
    db = make_departments_db()
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    METRICS.clear()  # the registry is process-global
    with obs.profiled(tracing=False):
        result = db.query(ORDERED_SQL)
        assert METRICS.counter("query.sorts_elided").total == 1
    METRICS.clear()
    assert result.column("DNO") == [314, 417, 218]  # ascending budgets
    plan = db.last_plan
    assert plan is not None and plan.sort_elided is True


def test_order_by_elision_matches_full_sort():
    db = make_departments_db()
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    elided = db.query(ORDERED_SQL)
    db.use_access_paths = False
    sorted_ = db.query(ORDERED_SQL)
    db.use_access_paths = True
    assert elided.column("DNO") == sorted_.column("DNO")


@pytest.mark.parametrize(
    "sql",
    [
        # descending: the index streams ascending
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 0 "
        "ORDER BY x.BUDGET DESC",
        # multi-key: a second key needs a real sort
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 0 "
        "ORDER BY x.BUDGET, x.DNO",
        # ORDER BY a different attribute than the chosen index
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 0 "
        "ORDER BY x.DNO",
    ],
)
def test_order_by_not_elided(sql):
    db = make_departments_db()
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    result = db.query(sql)
    plan = db.last_plan
    assert plan is not None and plan.sort_elided is False
    db.use_access_paths = False
    assert result.column("DNO") == db.query(sql).column("DNO")


def test_order_by_not_elided_under_multi_index_plan():
    db = make_departments_db()
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    db.create_index("MGR", "DEPARTMENTS", "MGRNO")
    result = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE x.BUDGET > 0 AND x.MGRNO > 0 ORDER BY x.BUDGET"
    )
    assert result.column("DNO") == [314, 417, 218]
    plan = db.last_plan
    assert plan is not None and plan.sort_elided is False


# ---------------------------------------------------------------------------
# statistics: maintenance and persistence
# ---------------------------------------------------------------------------


def test_stats_track_inserts_and_deletes():
    db = make_departments_db()
    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    stats = db.catalog.table("DEPARTMENTS").indexes["FN"].stats
    assert stats.entry_count == 17  # one per project member occurrence
    assert stats.distinct_keys == 4  # the four FUNCTION values
    tid = db.tids("DEPARTMENTS")[0]
    db.delete("DEPARTMENTS", tid)
    after = db.catalog.table("DEPARTMENTS").indexes["FN"].stats
    assert after.entry_count < 17


def test_stats_persisted_in_catalog_sidecar(tmp_path):
    path = str(tmp_path / "stats.db")
    with Database(path=path) as db:
        db.create_table(paper.DEPARTMENTS_SCHEMA)
        db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
        db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
        db.save()
        expected = db.catalog.table("DEPARTMENTS").indexes["FN"].stats

    with open(path + ".catalog.json") as handle:
        state = json.load(handle)
    (table_state,) = state["tables"]
    (index_state,) = table_state["indexes"]
    assert index_state["stats"] == expected.snapshot()

    with Database(path=path) as again:
        rebuilt = again.catalog.table("DEPARTMENTS").indexes["FN"].stats
        assert rebuilt.entry_count == expected.entry_count
        assert rebuilt.distinct_keys == expected.distinct_keys


def test_catalog_entry_index_stats_helper():
    db = make_departments_db()
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    db.create_table(paper.REPORTS_SCHEMA)
    db.insert_many("REPORTS", paper.REPORTS_ROWS)
    db.create_text_index("TX", "REPORTS", "TITLE")
    stats = db.catalog.table("DEPARTMENTS").index_stats()
    assert stats["BUD"].entry_count == 3
    text_stats = db.catalog.table("REPORTS").index_stats()
    assert text_stats["TX"].entry_count == 3  # one TITLE per report
    assert text_stats["TX"].distinct_keys > 0  # fragments


# ---------------------------------------------------------------------------
# streaming: candidates flow without full materialization
# ---------------------------------------------------------------------------


def test_candidate_stream_is_lazy():
    db = make_departments_db()
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    query = "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 0"
    from repro.query.parser import parse_query

    iterator = db.iterate_table_for_query(
        "DEPARTMENTS", None, parse_query(query), "x"
    )
    first = next(iterator)  # plan + first fetch happen here
    assert first["DNO"] in (314, 218, 417)
    plan = db.last_plan
    assert plan is not None
    # only what has streamed so far is counted
    assert plan.actual_candidates <= 3
    rest = list(iterator)
    assert plan.actual_candidates == 3
    assert len(rest) == 2


def test_explain_surfaces_cost_model(paper_db):
    paper_db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    paper_db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    plan = paper_db.explain(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE x.BUDGET = 320000 AND EXISTS y IN x.PROJECTS "
        "EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant'"
    )
    assert "index (BUD, FN)" in plan
    assert "cost model: estimated" in plan
    assert "ascending-selectivity order" in plan


def test_explain_analyze_reports_planner_block(paper_db):
    paper_db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    text = paper_db.execute(
        "EXPLAIN ANALYZE SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE x.BUDGET > 0 ORDER BY x.BUDGET"
    )
    assert "planner (analyzed):" in text
    assert "indexes (selectivity order): BUD" in text
    assert "estimated candidates:" in text
    assert "actual candidates: 3" in text
    assert "sort elided: yes" in text
    assert "query.sorts_elided" in text
