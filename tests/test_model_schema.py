"""Unit tests for the logical data model: schemas."""

import pytest

from repro.errors import SchemaError
from repro.model.schema import TableSchema, atomic, list_of, nested, table
from repro.model.types import AtomicType
from repro.datasets import paper


def test_atomic_builder_accepts_strings_and_enum():
    a = atomic("DNO", "INT")
    assert a.is_atomic and a.atomic_type is AtomicType.INT
    b = atomic("NAME", AtomicType.STRING)
    assert b.atomic_type is AtomicType.STRING


def test_atomic_type_aliases():
    assert AtomicType.parse("integer") is AtomicType.INT
    assert AtomicType.parse("VARCHAR") is AtomicType.STRING
    assert AtomicType.parse("double") is AtomicType.FLOAT


def test_unknown_type_rejected():
    with pytest.raises(Exception):
        atomic("X", "BLOB")


def test_table_requires_attributes():
    with pytest.raises(SchemaError):
        table("EMPTY")


def test_duplicate_attribute_rejected():
    with pytest.raises(SchemaError):
        table("T", atomic("A", "INT"), atomic("A", "INT"))


def test_invalid_identifier_rejected():
    with pytest.raises(SchemaError):
        table("T", atomic("1BAD", "INT"))
    with pytest.raises(SchemaError):
        table("", atomic("A", "INT"))


def test_nested_attribute_renames_inner_schema():
    inner = table("SOMETHING", atomic("X", "INT"))
    attr = nested("PROJECTS", inner)
    assert attr.is_table
    assert attr.table.name == "PROJECTS"


def test_departments_schema_shape():
    schema = paper.DEPARTMENTS_SCHEMA
    assert schema.attribute_names == ("DNO", "MGRNO", "PROJECTS", "BUDGET", "EQUIP")
    assert not schema.ordered
    assert schema.depth() == 3
    assert not schema.is_flat
    assert [a.name for a in schema.atomic_attributes] == ["DNO", "MGRNO", "BUDGET"]
    assert [a.name for a in schema.table_attributes] == ["PROJECTS", "EQUIP"]


def test_flat_schema_is_flat():
    assert paper.DEPARTMENTS_1NF_SCHEMA.is_flat
    assert paper.DEPARTMENTS_1NF_SCHEMA.depth() == 1


def test_ordered_list_schema():
    authors = paper.REPORTS_SCHEMA.attribute("AUTHORS")
    assert authors.is_table and authors.table.ordered


def test_resolve_path():
    schema = paper.DEPARTMENTS_SCHEMA
    attr = schema.resolve_path(("PROJECTS", "MEMBERS", "FUNCTION"))
    assert attr.is_atomic and attr.atomic_type is AtomicType.STRING
    with pytest.raises(SchemaError):
        schema.resolve_path(("DNO", "X"))
    with pytest.raises(SchemaError):
        schema.resolve_path(("NOPE",))
    with pytest.raises(SchemaError):
        schema.resolve_path(())


def test_walk_yields_every_path():
    paths = [p for p, _ in paper.DEPARTMENTS_SCHEMA.walk()]
    assert ("PROJECTS", "MEMBERS", "EMPNO") in paths
    assert ("EQUIP", "TYPE") in paths
    assert ("DNO",) in paths


def test_subtable_paths():
    subtables = paper.DEPARTMENTS_SCHEMA.subtable_paths()
    assert subtables == [("PROJECTS",), ("PROJECTS", "MEMBERS"), ("EQUIP",)]


def test_describe_round_trips_names():
    text = paper.DEPARTMENTS_SCHEMA.describe()
    assert "PROJECTS TABLE OF" in text
    assert text.startswith("TABLE DEPARTMENTS")


def test_list_of_builder():
    schema = list_of("AUTHORS", atomic("NAME", "STRING"))
    assert schema.ordered


def test_attribute_lookup_errors():
    schema = paper.EQUIP_SCHEMA
    with pytest.raises(SchemaError):
        schema.attribute("MISSING")
    assert schema.has_attribute("QU")
    assert not schema.has_attribute("MISSING")
