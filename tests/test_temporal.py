"""Tests for the time-version support."""

import datetime

import pytest

from repro.errors import TemporalError
from repro.storage.tid import TID
from repro.temporal.versions import VersionStore, canonical_timestamp


def test_canonical_timestamps():
    assert canonical_timestamp(5) == 5.0
    assert canonical_timestamp(datetime.date(1984, 1, 15)) == float(
        datetime.date(1984, 1, 15).toordinal()
    )
    with pytest.raises(TemporalError):
        canonical_timestamp("yesterday")
    with pytest.raises(TemporalError):
        canonical_timestamp(True)


def test_insert_update_delete_chain():
    store = VersionStore()
    t1, t2, t3 = TID(1, 0), TID(2, 0), TID(3, 0)
    oid = store.record_insert(t1, at=10)
    assert store.current_roots() == [t1]
    store.record_update(oid, t2, at=20)
    assert store.current_roots() == [t2]
    store.record_delete(oid, at=30)
    assert store.current_roots() == []
    # ASOF reconstruction at every epoch
    assert store.roots_asof(5) == []
    assert store.roots_asof(10) == [t1]
    assert store.roots_asof(15) == [t1]
    assert store.roots_asof(20) == [t2]
    assert store.roots_asof(29) == [t2]
    assert store.roots_asof(30) == []
    assert store.version_count == 2
    assert set(store.all_roots_ever()) == {t1, t2}


def test_asof_with_dates():
    store = VersionStore()
    old = TID(1, 0)
    new = TID(2, 0)
    oid = store.record_insert(old, at=datetime.date(1984, 1, 1))
    store.record_update(oid, new, at=datetime.date(1984, 2, 1))
    assert store.roots_asof(datetime.date(1984, 1, 15)) == [old]
    assert store.roots_asof(datetime.date(1984, 2, 15)) == [new]


def test_logical_clock_defaults():
    store = VersionStore()
    a = store.record_insert(TID(1, 0))
    b = store.record_insert(TID(2, 0))
    assert a != b
    assert len(store.current_roots()) == 2


def test_backwards_timestamps_rejected():
    store = VersionStore()
    oid = store.record_insert(TID(1, 0), at=100)
    with pytest.raises(TemporalError):
        store.record_update(oid, TID(2, 0), at=50)


def test_update_unknown_object_rejected():
    store = VersionStore()
    with pytest.raises(TemporalError):
        store.record_update(42, TID(1, 0))


def test_history_and_object_id_lookup():
    store = VersionStore()
    t1, t2 = TID(1, 0), TID(2, 0)
    oid = store.record_insert(t1, at=1)
    store.record_update(oid, t2, at=2)
    history = store.history(oid)
    assert [v.root_tid for v in history] == [t1, t2]
    assert history[0].valid_to == history[1].valid_from
    assert store.object_id_of(t2) == oid
    with pytest.raises(TemporalError):
        store.object_id_of(t1)  # no longer current
    with pytest.raises(TemporalError):
        store.history(999)
