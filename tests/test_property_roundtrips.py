"""Property tests over *random* nested schemas and data: the whole stack
(schema -> storage -> query) round-trips arbitrary extended-NF2 values."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import Database
from repro.model.ddl import parse_create_table, schema_to_ddl
from repro.model.schema import AttributeSchema, TableSchema, atomic, nested, table
from repro.model.types import AtomicType
from repro.model.values import TableValue
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.minidirectory import StorageStructure
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment

# -- schema strategy -----------------------------------------------------------

_NAMES = [f"A{c}" for c in string.ascii_uppercase[:12]]


@st.composite
def schemas(draw, depth=2, name_pool=None):
    """A random table schema with unique attribute names per level."""
    pool = list(name_pool or _NAMES)
    draw(st.randoms())  # decouple shrinking
    count = draw(st.integers(1, 4))
    names = draw(
        st.lists(st.sampled_from(pool), min_size=count, max_size=count, unique=True)
    )
    attributes = []
    for attr_name in names:
        make_table = depth > 0 and draw(st.booleans()) and draw(st.booleans())
        if make_table:
            inner = draw(schemas(depth=depth - 1, name_pool=[
                n for n in pool if n not in names
            ] or ["Z1", "Z2", "Z3"]))
            attributes.append(nested(attr_name, inner.rename(attr_name)))
        else:
            type_ = draw(st.sampled_from(list(AtomicType)))
            attributes.append(atomic(attr_name, type_))
    ordered = draw(st.booleans())
    return TableSchema(name="T", attributes=tuple(attributes), ordered=ordered)


@st.composite
def values_for(draw, schema, max_rows=3):
    """Random plain rows conforming to *schema*."""
    rows = []
    for _ in range(draw(st.integers(0, max_rows))):
        row = {}
        for attr in schema.attributes:
            if attr.is_table:
                row[attr.name] = draw(values_for(attr.table, max_rows=2))
            else:
                row[attr.name] = draw(_atom_strategy(attr.atomic_type))
        rows.append(row)
    return rows


def _atom_strategy(type_):
    base = {
        AtomicType.INT: st.integers(-2**40, 2**40),
        AtomicType.FLOAT: st.floats(allow_nan=False, allow_infinity=False,
                                    width=32),
        AtomicType.STRING: st.text(max_size=30),
        AtomicType.BOOL: st.booleans(),
        AtomicType.DATE: st.dates(),
    }[type_]
    return st.one_of(st.none(), base)


# -- properties -------------------------------------------------------------------


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_property_ddl_roundtrip_random_schema(data):
    schema = data.draw(schemas())
    assert parse_create_table(schema_to_ddl(schema)) == schema


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_property_storage_roundtrip_random_schema(data):
    schema = data.draw(schemas())
    rows = data.draw(values_for(schema, max_rows=2))
    structure = data.draw(st.sampled_from(list(StorageStructure)))
    manager = ComplexObjectManager(
        Segment(BufferManager(MemoryPagedFile(), capacity=256)), structure
    )
    value_table = TableValue.from_plain(schema, rows)
    for row in value_table:
        root = manager.store(schema, row)
        assert manager.load(root, schema) == row


@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_property_database_select_star_roundtrip(data):
    schema = data.draw(schemas())
    rows = data.draw(values_for(schema, max_rows=3))
    db = Database()
    db.create_table(schema)
    db.insert_many("T", rows)
    result = db.query("SELECT * FROM x IN T")
    expected = TableValue.from_plain(schema, rows)
    # SELECT * preserves contents; ordering matters iff the table is a list
    assert len(result) == len(expected)
    assert result.canonical()[1:] == expected.canonical()[1:]


@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_property_persistence_roundtrip(tmp_path_factory, data):
    schema = data.draw(schemas(depth=1))
    rows = data.draw(values_for(schema, max_rows=2))
    path = str(tmp_path_factory.mktemp("prop") / "db.pages")
    with Database(path=path) as db:
        db.create_table(schema)
        db.insert_many("T", rows)
        expected = db.table_value("T")
        db.save()
    with Database(path=path) as again:
        assert again.table_value("T") == expected
