"""Tests for the CREATE TABLE / CREATE LIST DDL parser."""

import pytest

from repro.errors import DDLError
from repro.model.ddl import parse_create_table, schema_to_ddl
from repro.datasets import paper

DEPARTMENTS_DDL = """
CREATE TABLE DEPARTMENTS (
    DNO INT,
    MGRNO INT,
    PROJECTS TABLE OF (
        PNO INT,
        PNAME STRING,
        MEMBERS TABLE OF (EMPNO INT, FUNCTION STRING)
    ),
    BUDGET INT,
    EQUIP TABLE OF (QU INT, TYPE STRING)
)
"""


def test_parse_departments_matches_paper_schema():
    schema = parse_create_table(DEPARTMENTS_DDL)
    assert schema == paper.DEPARTMENTS_SCHEMA


def test_parse_reports_with_nested_list():
    schema = parse_create_table(
        "CREATE TABLE REPORTS (REPNO STRING, "
        "AUTHORS LIST OF (NAME STRING), TITLE STRING, "
        "DESCRIPTORS TABLE OF (KEYWORD STRING, WEIGHT FLOAT))"
    )
    assert schema == paper.REPORTS_SCHEMA


def test_create_list_is_ordered():
    schema = parse_create_table("CREATE LIST QUEUE (ITEM STRING)")
    assert schema.ordered


def test_keywords_case_insensitive():
    schema = parse_create_table("create table t (a int, b table of (c string))")
    assert schema.attribute("b").is_table


def test_ddl_round_trip():
    for schema in (paper.DEPARTMENTS_SCHEMA, paper.REPORTS_SCHEMA,
                   paper.MEMBERS_1NF_SCHEMA):
        assert parse_create_table(schema_to_ddl(schema)) == schema


@pytest.mark.parametrize(
    "text",
    [
        "CREATE TABLE",                            # no name
        "CREATE TABLE T",                          # no attributes
        "CREATE TABLE T ()",                       # empty attribute list
        "CREATE TABLE T (A INT",                   # unbalanced paren
        "CREATE TABLE T (A BLOB)",                 # unknown type
        "CREATE TABLE T (A INT) extra",            # trailing tokens
        "CREATE TABLE T (A TABLE (B INT))",        # missing OF
        "MAKE TABLE T (A INT)",                    # wrong verb
        "CREATE TABLE T (A INT,, B INT)",          # stray comma
        "CREATE TABLE T (A INT) ; DROP",           # bad character
    ],
)
def test_invalid_ddl_rejected(text):
    with pytest.raises(DDLError):
        parse_create_table(text)
