"""Tests for repro.obs — metrics registry, tracer, and the guarantee
that observability-off costs (almost) nothing."""

import json
import time
import tracemalloc

import pytest

from repro import obs
from repro.database import Database
from repro.datasets import paper
from repro.obs import METRICS, TRACER
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Trace, Tracer


@pytest.fixture(autouse=True)
def _clean_observability():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    METRICS.clear()
    TRACER.traces.clear()
    TRACER.last_trace = None
    yield
    obs.disable()
    METRICS.clear()
    TRACER.traces.clear()
    TRACER.last_trace = None


def make_paper_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    return db


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


def test_counter_inc_and_totals():
    registry = MetricsRegistry(enabled=True)
    registry.inc("a.b")
    registry.inc("a.b", 4)
    registry.inc("c.d", 2)
    assert registry.totals() == {"a.b": 5, "c.d": 2}


def test_counter_labels_coexist_with_unlabeled():
    registry = MetricsRegistry(enabled=True)
    registry.inc("index.probes")
    registry.inc("index.probes", index="FN")
    registry.inc("index.probes", 2, index="PN")
    counter = registry.counter("index.probes")
    assert counter.total == 4
    assert counter.value(index="FN") == 1
    assert counter.value(index="PN") == 2
    assert counter.value() == 1
    by_label = counter.by_label()
    assert by_label["index=FN"] == 1


def test_delta_omits_unmoved_counters():
    registry = MetricsRegistry(enabled=True)
    registry.inc("x", 3)
    registry.inc("y", 1)
    before = registry.totals()
    registry.inc("x", 2)
    assert registry.delta(before) == {"x": 2}


def test_gauge_set_and_histogram_summary():
    registry = MetricsRegistry(enabled=True)
    registry.set_gauge("frames", 7)
    assert registry.gauge("frames").value() == 7
    for value in (1, 3, 3, 40, 2000):
        registry.observe("touched", value)
    summary = registry.histogram("touched").summary()
    assert summary["count"] == 5
    assert summary["min"] == 1
    assert summary["max"] == 2000
    assert summary["sum"] == 2047
    assert summary["buckets"]["1"] == 1
    assert summary["buckets"]["5"] == 2  # the two 3s
    assert summary["buckets"]["+Inf"] == 1  # the 2000


def test_registry_disabled_records_nothing():
    registry = MetricsRegistry()  # starts disabled
    registry.inc("a")
    registry.observe("h", 1)
    registry.set_gauge("g", 1)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {}
    assert snapshot["gauges"] == {}
    assert snapshot["histograms"] == {}


def test_snapshot_is_json_serializable():
    registry = MetricsRegistry(enabled=True)
    registry.inc("a.b", 2, table="T")
    registry.observe("h", 12)
    json.dumps(registry.snapshot())


def test_reset_keeps_metrics_clears_values():
    registry = MetricsRegistry(enabled=True)
    registry.inc("a", 5)
    registry.reset()
    assert registry.totals() == {"a": 0}


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------


def test_span_nesting_builds_a_tree():
    tracer = Tracer(enabled=True)
    with tracer.span("statement") as root:
        with tracer.span("parse"):
            pass
        with tracer.span("execute") as ex:
            ex.annotate(rows=3)
            with tracer.span("plan"):
                pass
    trace = tracer.last_trace
    assert trace is not None and trace.name == "statement"
    assert [c.name for c in trace.root.children] == ["parse", "execute"]
    assert trace.find("plan") is not None
    assert trace.find("execute").attrs["rows"] == 3
    assert trace.duration_ms >= 0


def test_tracer_disabled_yields_none_and_keeps_nothing():
    tracer = Tracer()
    with tracer.span("x") as span:
        assert span is None
    assert tracer.last_trace is None
    assert len(tracer.traces) == 0


def test_trace_json_round_trip():
    tracer = Tracer(enabled=True)
    with tracer.span("root", query="SELECT 1"):
        with tracer.span("child"):
            time.sleep(0.001)
    trace = tracer.last_trace
    data = trace.to_dict()
    restored = Trace.from_dict(json.loads(json.dumps(data)))
    assert restored.name == "root"
    assert restored.root.attrs == {"query": "SELECT 1"}
    assert [c.name for c in restored.root.children] == ["child"]
    with pytest.raises(ValueError):
        Trace.from_dict({"format": "nope"})


def test_chrome_export_shape(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("root"):
        with tracer.span("inner", detail={"k": "v"}):
            pass
    path = str(tmp_path / "trace.json")
    tracer.export_chrome(path)
    with open(path) as handle:
        payload = json.load(handle)
    events = payload["traceEvents"]
    assert [e["name"] for e in events] == ["root", "inner"]
    assert all(e["ph"] == "X" for e in events)
    assert events[0]["ts"] == 0


def test_profiled_restores_previous_state():
    assert not METRICS.enabled and not TRACER.enabled
    with obs.profiled():
        assert METRICS.enabled and TRACER.enabled
    assert not METRICS.enabled and not TRACER.enabled
    obs.enable()
    with obs.profiled():
        pass
    assert METRICS.enabled and TRACER.enabled


# ---------------------------------------------------------------------------
# end-to-end: the engine reports into the registry / tracer
# ---------------------------------------------------------------------------


def test_query_reports_engine_counters():
    db = make_paper_db()
    with obs.profiled(tracing=False):
        db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    totals = METRICS.totals()
    assert totals["storage.objects_opened"] == 3
    assert totals["query.rows_emitted"] == 3
    assert totals["storage.md_subtuple_reads"] > 0
    assert totals["storage.d_pointer_derefs"] > 0
    assert totals["buffer.logical_reads"] > 0


def test_index_probe_counters_with_labels():
    db = make_paper_db()
    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    with obs.profiled(tracing=False):
        db.query(
            "SELECT x.DNO FROM x IN DEPARTMENTS "
            "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
            "z.FUNCTION = 'Consultant'"
        )
    probes = METRICS.counter("index.probes")
    assert probes.value(index="FN") >= 1
    assert METRICS.totals()["index.btree_node_visits"] >= 1


def test_statement_trace_has_phases():
    db = make_paper_db()
    with obs.profiled():
        db.query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 0")
    trace = TRACER.last_trace
    assert trace is not None and trace.name == "statement"
    for phase in ("parse", "bind", "execute"):
        assert trace.find(phase) is not None, phase
    execute = trace.find("execute")
    assert execute.attrs["rows_emitted"] == 3
    assert execute.attrs["rows_scanned"] == {"x": 3}


def test_executor_profile_rows_per_range():
    db = make_paper_db()
    with obs.profiled(tracing=False):
        db.query(
            "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS"
        )
    profile = db._executor.last_profile
    assert profile is not None
    assert profile.rows_scanned["x"] == 3
    assert profile.rows_scanned["y"] == sum(
        len(row["PROJECTS"]) for row in paper.DEPARTMENTS_ROWS
    )


# ---------------------------------------------------------------------------
# the disabled hot path stays cheap
# ---------------------------------------------------------------------------


def test_disabled_run_records_nothing_and_makes_no_profile():
    db = make_paper_db()
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    assert METRICS.totals() == {}
    assert db._executor.last_profile is None
    assert TRACER.last_trace is None


def test_disabled_hot_path_does_not_allocate_in_obs(tmp_path):
    """With observability off, the obs modules must not allocate anything
    while a query runs — the instrumentation is one attribute check."""
    db = make_paper_db()
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS")  # warm caches
    import repro.obs.metrics as metrics_mod
    import repro.obs.trace as trace_mod

    tracemalloc.start()
    try:
        db.query(
            "SELECT x.DNO FROM x IN DEPARTMENTS "
            "WHERE EXISTS y IN x.PROJECTS y.PNO > 0"
        )
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    obs_files = {metrics_mod.__file__, trace_mod.__file__}
    offending = [
        stat
        for stat in snapshot.statistics("filename")
        if stat.traceback[0].filename in obs_files and stat.count > 0
    ]
    assert offending == [], f"obs allocated on a disabled run: {offending}"


def test_disabled_overhead_is_small():
    """Micro-benchmark: instrumented-but-disabled execution stays within a
    generous factor of itself across runs (smoke guard against accidental
    per-tuple work being added to the disabled path)."""
    db = make_paper_db()
    query = (
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS y.PNO > 0"
    )
    db.query(query)  # warm

    def timed(runs: int = 30) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(runs):
                db.query(query)
            best = min(best, time.perf_counter() - start)
        return best

    disabled = timed()
    obs.enable()
    try:
        enabled = timed()
    finally:
        obs.disable()
    # enabled profiling costs something, but the *disabled* path must not
    # be the slow one; allow generous noise either way.
    assert disabled < enabled * 3 + 0.05
