"""Tests for page-level check-out / check-in of complex objects."""

import pytest

from repro.database import Database
from repro.datasets import DepartmentsGenerator, paper
from repro.errors import ExecutionError, StorageError
from repro.model.values import TupleValue
from repro.storage.complex_object import ObjectBundle


def server_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    return db


def workstation_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    return db


def test_checkout_checkin_roundtrip_across_databases():
    server = server_db()
    workstation = workstation_db()
    tid = server.tids("DEPARTMENTS")[0]
    blob = server.checkout("DEPARTMENTS", tid)
    assert isinstance(blob, bytes) and blob[:4] == b"NF2B"
    new_tid = workstation.checkin("DEPARTMENTS", blob)
    original = server.catalog.table("DEPARTMENTS").manager.load(
        tid, paper.DEPARTMENTS_SCHEMA
    )
    imported = workstation.catalog.table("DEPARTMENTS").manager.load(
        new_tid, paper.DEPARTMENTS_SCHEMA
    )
    assert imported == original
    # the workstation copy is a first-class object: queryable and editable
    result = workstation.query(
        "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS"
    )
    assert sorted(result.column("PNO")) == [17, 23]
    workstation.update(
        "DEPARTMENTS", new_tid,
        lambda obj: obj.insert_element([], "EQUIP", {"QU": 1, "TYPE": "CAD"}),
    )
    # the server master is untouched
    assert len(server.query(
        "SELECT v.TYPE FROM x IN DEPARTMENTS, v IN x.EQUIP WHERE x.DNO = 314"
    )) == 3


def test_checkout_large_object():
    gen = DepartmentsGenerator(departments=1, projects_per_department=8,
                               members_per_project=40)
    server = Database()
    server.create_table(paper.DEPARTMENTS_SCHEMA)
    tid = server.insert("DEPARTMENTS", gen.rows()[0])
    blob = server.checkout("DEPARTMENTS", tid)
    workstation = workstation_db()
    new_tid = workstation.checkin("DEPARTMENTS", blob)
    value = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, gen.rows()[0])
    assert workstation.catalog.table("DEPARTMENTS").manager.load(
        new_tid, paper.DEPARTMENTS_SCHEMA
    ) == value


def test_checkin_maintains_indexes():
    server = server_db()
    workstation = workstation_db()
    workstation.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    blob = server.checkout("DEPARTMENTS", server.tids("DEPARTMENTS")[0])
    workstation.checkin("DEPARTMENTS", blob)
    assert len(workstation.catalog.index("FN").search("Consultant")) == 1
    assert workstation.verify() == []


def test_bundle_serialization_roundtrip():
    server = server_db()
    entry = server.catalog.table("DEPARTMENTS")
    bundle = entry.manager.export_object(entry.tids[1])
    blob = bundle.to_bytes()
    again = ObjectBundle.from_bytes(blob)
    assert again.page_images == bundle.page_images
    assert again.page_roles == bundle.page_roles
    assert again.root_local_page == bundle.root_local_page
    assert again.groups_blob == bundle.groups_blob
    with pytest.raises(StorageError):
        ObjectBundle.from_bytes(b"JUNKJUNK")


def test_checkout_on_flat_table_rejected():
    db = Database()
    db.create_table(paper.EMPLOYEES_1NF_SCHEMA)
    tid = db.insert("EMPLOYEES-1NF", (1, "A", "B", "male"))
    with pytest.raises(ExecutionError):
        db.checkout("EMPLOYEES-1NF", tid)
