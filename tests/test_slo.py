"""Tests for PR 10's self-monitoring subsystem: the metric time-series
recorder (SYS.METRICS_HISTORY), the SLO engine with burn-rate alerting
(SYS.SLOS / SYS.ALERTS, shell .health/.alerts, server HEALTH verb), and
background-thread hygiene on Database.close()."""

import io
import threading
import time

import pytest

from repro import obs
from repro.database import Database
from repro.datasets import paper
from repro.obs import METRICS, TRACER
from repro.obs.metrics import MetricsRegistry, interpolated_quantile
from repro.obs.slo import FIRING, OK, PENDING, RESOLVED, SloObjective, render_health
from repro.obs.timeseries import TIER_FACTORS


@pytest.fixture(autouse=True)
def _clean_observability():
    obs.disable()
    METRICS.clear()
    TRACER.traces.clear()
    TRACER.last_trace = None
    yield
    obs.disable()
    METRICS.clear()
    TRACER.traces.clear()
    TRACER.last_trace = None


def make_paper_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    return db


# ---------------------------------------------------------------------------
# satellite: interpolated histogram quantiles
# ---------------------------------------------------------------------------


def test_interpolated_quantile_mid_bucket():
    # observations 1,2,2,100 in buckets (1,2,5): counts [1,2,0,1]
    assert interpolated_quantile((1, 2, 5), [1, 2, 0, 1], 4, 1, 100, 0.5) == 1.5
    # overflow bucket interpolates toward the observed max, never inf
    assert interpolated_quantile(
        (1, 2, 5), [1, 2, 0, 1], 4, 1, 100, 0.95
    ) == pytest.approx(81.0)
    assert interpolated_quantile((1, 2, 5), [0, 0, 0, 0], 0, None, None, 0.5) is None


def test_quantile_clamped_to_observed_envelope():
    registry = MetricsRegistry(enabled=True)
    histogram = registry.histogram("h", buckets=(10, 100))
    histogram.observe(7)
    # one observation in the (0, 10] bucket: every quantile is 7, not
    # an interpolated point of the bucket span
    assert histogram.quantile(0.01) == 7
    assert histogram.quantile(0.99) == 7


def test_quantile_for_targets_one_labeled_series():
    registry = MetricsRegistry(enabled=True)
    histogram = registry.histogram("h", buckets=(10, 100, 1000))
    for v in (5, 5, 5, 5):
        histogram.observe(v, kind="fast")
    for v in (500, 500, 500, 500):
        histogram.observe(v, kind="slow")
    assert histogram.quantile_for({"kind": "fast"}, 0.5) == 5
    assert histogram.quantile_for({"kind": "slow"}, 0.5) == 500
    # combined view straddles both populations
    combined = histogram.quantile(0.5)
    assert 5 <= combined <= 500
    assert histogram.quantile_for({"kind": "absent"}, 0.5) is None


# ---------------------------------------------------------------------------
# tentpole 1: the time-series recorder
# ---------------------------------------------------------------------------


def test_recorder_samples_deltas_and_rates():
    db = Database()
    METRICS.enable()
    METRICS.inc("work.done", 10)
    db.ts.sample_once(now=100.0)
    METRICS.inc("work.done", 30)
    db.ts.sample_once(now=110.0)
    rows = list(db.ts.series_rows())
    row = next(r for r in rows if r["NAME"] == "work.done" and r["TIER"] == "1s")
    assert row["POINTS"] == 2
    assert row["LAST_VALUE"] == 40.0
    samples = row["SAMPLES"]
    assert samples[0]["DELTA"] is None  # first sample has no predecessor
    assert samples[1]["DELTA"] == 30.0
    assert samples[1]["RATE"] == pytest.approx(3.0)  # 30 over 10 s
    db.close()


def test_recorder_downsamples_into_tiers():
    db = Database()
    METRICS.enable()
    for tick in range(61):
        METRICS.inc("work.done")
        db.ts.sample_once(now=1000.0 + tick)
    rows = [r for r in db.ts.series_rows() if r["NAME"] == "work.done"]
    by_tier = {r["TIER"]: r for r in rows}
    assert set(by_tier) == {"1s", "10s", "60s"}
    assert by_tier["1s"]["POINTS"] == 61
    assert by_tier["10s"]["POINTS"] == 6   # ticks 10, 20, ..., 60
    assert by_tier["60s"]["POINTS"] == 1   # tick 60
    # a 10s-tier delta covers ten raw increments
    assert by_tier["10s"]["SAMPLES"][-1]["DELTA"] == 10.0
    assert TIER_FACTORS == (1, 10, 60)
    db.close()


def test_recorder_ring_is_bounded():
    db = Database()
    db.ts.keep = 5
    db.ts._series.clear()
    METRICS.enable()
    for tick in range(20):
        METRICS.inc("work.done")
        db.ts.sample_once(now=float(tick))
    row = next(
        r for r in db.ts.series_rows()
        if r["NAME"] == "work.done" and r["TIER"] == "1s"
    )
    assert row["POINTS"] == 5
    assert row["SAMPLES"][0]["TS"] == 15.0
    db.close()


def test_metrics_history_view_full_pipeline():
    db = make_paper_db()
    METRICS.enable()
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    db.ts.sample_once(now=100.0)
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    db.ts.sample_once(now=101.0)
    result = db.query(
        "SELECT h.NAME, h.TIER, h.POINTS, "
        "S = (SELECT s.TS, s.VALUE, s.DELTA FROM s IN h.SAMPLES) "
        "FROM h IN SYS.METRICS_HISTORY "
        "WHERE h.NAME = 'query.latency_ms' ORDER BY h.TIER"
    )
    assert len(result.rows) >= 1
    nested = result.rows[0]["S"]
    assert len(nested.rows) == 2
    assert nested.rows[1]["DELTA"] is not None
    plan = db.execute("EXPLAIN SELECT h.NAME FROM h IN SYS.METRICS_HISTORY")
    assert "access: system view" in plan
    db.close()


def test_recorder_background_thread_lifecycle():
    db = Database()
    db.ts.period_ms = 5
    METRICS.enable()
    db.ts.start()
    assert db.ts.running
    assert any(t.name == "repro-ts" for t in threading.enumerate())
    deadline = time.monotonic() + 5
    while db.ts.ticks < 3 and time.monotonic() < deadline:
        METRICS.inc("work.done")
        time.sleep(0.005)
    assert db.ts.ticks >= 3
    db.ts.stop()
    assert not db.ts.running
    db.close()


def test_windowed_delta_rate_and_gauge():
    db = Database()
    METRICS.enable()
    METRICS.inc("c", 5, kind="a")
    METRICS.inc("c", 5, kind="b")
    METRICS.set_gauge("g", 3.0)
    db.ts.sample_once(now=100.0)
    METRICS.inc("c", 10, kind="a")
    METRICS.set_gauge("g", 9.0)
    db.ts.sample_once(now=110.0)
    METRICS.set_gauge("g", 4.0)
    db.ts.sample_once(now=120.0)
    # empty labels aggregate every label combination of the counter
    assert db.ts.windowed_delta("c", {}, 15.0, now=120.0) == 10.0
    assert db.ts.windowed_delta("c", {"kind": "b"}, 15.0, now=120.0) == 0.0
    assert db.ts.windowed_delta("c", {}, 1000.0, now=120.0) == 20.0
    assert db.ts.windowed_gauge("g", {}, 15.0, agg="max", now=120.0) == 9.0
    assert db.ts.windowed_gauge("g", {}, 15.0, agg="last", now=120.0) == 4.0
    assert db.ts.windowed_delta("missing", {}, 15.0, now=120.0) is None
    db.close()


def test_windowed_quantile_sees_only_window_observations():
    db = Database()
    METRICS.enable()
    histogram = METRICS.histogram("lat", buckets=(1, 10, 100))
    for _ in range(100):
        histogram.observe(0.5, kind="x")  # old, fast population
    db.ts.sample_once(now=100.0)
    for _ in range(10):
        histogram.observe(50, kind="x")   # recent, slow population
    db.ts.sample_once(now=110.0)
    # lifetime p50 is fast; the window (whose baseline is the sample at
    # t=100) only saw the slow observations
    lifetime = db.ts.windowed_quantile("lat", {}, 1000.0, 0.5, now=110.0)
    windowed = db.ts.windowed_quantile("lat", {}, 10.0, 0.5, now=110.0)
    assert lifetime < 1.0
    assert windowed > 10.0
    db.close()


# ---------------------------------------------------------------------------
# tentpole 2: the SLO engine + alert state machine
# ---------------------------------------------------------------------------


def _breach_latency_db():
    """A database whose p99 latency SLO is deliberately breached."""
    db = make_paper_db()
    METRICS.enable()
    db.ts.sample_once(now=100.0)
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    db.ts.sample_once(now=110.0)
    return db


def test_alert_pending_then_firing_after_for_ms():
    db = _breach_latency_db()
    db.slo.define(
        name="p99", kind="latency", metric="query.latency_ms",
        quantile=0.99, ceiling=1e-9, windows=(60.0,), for_ms=5000.0,
    )
    events = db.slo.evaluate(now=110.0)
    assert [e.to_state for e in events] == [PENDING]
    assert db.slo.alert_state("p99") == PENDING
    # still inside the debounce window: no escalation
    events = db.slo.evaluate(now=112.0)
    assert events == []
    # past for_ms: FIRING
    events = db.slo.evaluate(now=116.0)
    assert [e.to_state for e in events] == [FIRING]
    assert db.slo.alert_state("p99") == FIRING
    assert db.slo.firing() == ["p99"]
    db.close()


def test_alert_resolves_then_returns_to_ok():
    db = _breach_latency_db()
    db.slo.define(
        name="p99", kind="latency", metric="query.latency_ms",
        quantile=0.99, ceiling=1e-9, windows=(60.0,), for_ms=0.0,
    )
    events = db.slo.evaluate(now=110.0)
    # for_ms=0 escalates within one evaluation
    assert [e.to_state for e in events] == [PENDING, FIRING]
    db.slo.objectives["p99"].ceiling = 1e9  # recovery
    events = db.slo.evaluate(now=111.0)
    assert [e.to_state for e in events] == [RESOLVED]
    events = db.slo.evaluate(now=112.0)
    assert events == []  # RESOLVED decays to OK silently
    assert db.slo.alert_state("p99") == OK
    db.close()


def test_pending_recovery_returns_to_ok_without_firing():
    db = _breach_latency_db()
    db.slo.define(
        name="p99", kind="latency", metric="query.latency_ms",
        quantile=0.99, ceiling=1e-9, windows=(60.0,), for_ms=60000.0,
    )
    db.slo.evaluate(now=110.0)
    assert db.slo.alert_state("p99") == PENDING
    db.slo.objectives["p99"].ceiling = 1e9
    events = db.slo.evaluate(now=111.0)
    assert [e.to_state for e in events] == [OK]
    assert db.slo._alerts["p99"].fired_count == 0
    db.close()


def test_error_rate_slo_burns_budget():
    db = make_paper_db()
    METRICS.enable()
    db.ts.sample_once(now=100.0)
    db.slo.define(
        name="errs", kind="error_rate", metric="query.errors",
        total_metric="query.statements", objective=0.5,
        windows=(60.0,), for_ms=0.0,
    )
    for _ in range(3):
        with pytest.raises(Exception):
            db.execute("SELECT nope FROM x IN NO_SUCH_TABLE")
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    db.ts.sample_once(now=110.0)  # evaluates the SLO on the sampling clock
    assert db.slo.alert_state("errs") == FIRING
    state = db.slo._alerts["errs"]
    assert state.last_value == pytest.approx(0.75)  # 3 of 4 failed
    assert state.last_burn == pytest.approx(1.5)    # 0.75 / 0.5 budget
    db.close()


def test_multi_window_requires_all_windows_breached():
    db = make_paper_db()
    METRICS.enable()
    db.ts.sample_once(now=0.0)
    for _ in range(4):
        with pytest.raises(Exception):
            db.execute("SELECT nope FROM x IN NO_SUCH_TABLE")
    db.ts.sample_once(now=100.0)
    # a long clean stretch afterwards: the short window recovers
    for _ in range(500):
        METRICS.inc("query.statements", kind="SELECT")
    db.ts.sample_once(now=280.0)
    db.slo.define(
        name="errs", kind="error_rate", metric="query.errors",
        total_metric="query.statements", objective=0.99,
        windows=(300.0, 60.0), for_ms=0.0,
    )
    db.slo.evaluate(now=280.0)
    # long window still over budget, short window clean → no alert
    assert db.slo.alert_state("errs") == OK
    db.close()


def test_gauge_slo_falls_back_to_live_gauge():
    db = Database()
    METRICS.enable()
    METRICS.set_gauge("server.queue_depth", 99.0)
    db.slo.define(
        name="queue", kind="gauge", metric="server.queue_depth",
        ceiling=10.0, windows=(60.0,), for_ms=0.0,
    )
    # no recorder samples at all: the live gauge still drives the probe
    db.slo.evaluate(now=100.0)
    assert db.slo.alert_state("queue") == FIRING
    db.close()


def test_default_objectives_cover_the_standard_contract(monkeypatch):
    monkeypatch.setenv("REPRO_SLO_P99_MS", "123.0")
    db = Database()
    installed = db.slo.install_default_objectives()
    names = {o.name for o in installed}
    assert names == {
        "statement-p99", "statement-errors", "replica-lag", "server-queue"
    }
    assert db.slo.objectives["statement-p99"].ceiling == 123.0
    assert db.slo.objectives["statement-errors"].budget == pytest.approx(0.001)
    db.close()


def test_invalid_objectives_rejected():
    with pytest.raises(ValueError):
        SloObjective("x", "nonsense", "m")
    with pytest.raises(ValueError):
        SloObjective("x", "latency", "m")  # no quantile/ceiling
    with pytest.raises(ValueError):
        SloObjective("x", "error_rate", "m")  # no objective/total
    with pytest.raises(ValueError):
        SloObjective("x", "gauge", "m")  # no ceiling


# ---------------------------------------------------------------------------
# the four alert surfaces: SQL, shell, HEALTH verb, Prometheus
# ---------------------------------------------------------------------------


def _fired_db():
    db = _breach_latency_db()
    db.slo.define(
        name="p99", kind="latency", metric="query.latency_ms",
        quantile=0.99, ceiling=1e-9, windows=(60.0,), for_ms=0.0,
    )
    db.slo.evaluate(now=110.0)
    assert db.slo.alert_state("p99") == FIRING
    return db


def test_firing_alert_visible_via_sql():
    db = _fired_db()
    result = db.query(
        "SELECT s.NAME, s.STATE, s.VALUE, "
        "W = (SELECT w.WINDOW_S, w.BREACHED FROM w IN s.WINDOWS) "
        "FROM s IN SYS.SLOS WHERE s.STATE = 'FIRING'"
    )
    assert len(result.rows) == 1
    assert result.rows[0]["NAME"] == "p99"
    assert result.rows[0]["W"].rows[0]["BREACHED"] is True
    transitions = db.query(
        "SELECT a.SLO, a.FROM_STATE, a.TO_STATE "
        "FROM a IN SYS.ALERTS ORDER BY a.SEQ"
    )
    states = [(r["FROM_STATE"], r["TO_STATE"]) for r in transitions.rows]
    assert states == [("OK", "PENDING"), ("PENDING", "FIRING")]
    plan = db.execute("EXPLAIN SELECT s.NAME FROM s IN SYS.SLOS")
    assert "access: system view" in plan
    db.close()


def test_firing_alert_visible_via_shell_dot_commands():
    from repro.shell import dot_command

    db = _fired_db()
    out = io.StringIO()
    dot_command(db, ".health", out=out)
    text = out.getvalue()
    assert text.startswith("health: alerting")
    assert "p99 FIRING" in text
    out = io.StringIO()
    dot_command(db, ".alerts", out=out)
    text = out.getvalue()
    assert "[FIRING  ] p99 (latency)" in text
    assert "PENDING -> FIRING" in text
    db.close()


def test_firing_alert_visible_via_prometheus_scrape():
    db = _fired_db()
    prom = METRICS.to_prometheus()
    assert 'repro_slo_breached{slo="p99"} 1' in prom
    assert "repro_alert_firing 1" in prom
    assert 'repro_alert_transitions_total{slo="p99",to="FIRING"} 1' in prom
    assert 'repro_slo_value{slo="p99"}' in prom
    db.close()


def test_render_health_ok_database():
    db = Database()
    assert render_health(db).startswith("health: ok")
    db.close()


def test_health_verb_and_alerts_over_tcp_while_workload_runs():
    """HEALTH + SYS.ALERTS answer over TCP while other clients churn."""
    from repro.server import DatabaseServer, LineClient

    db = _fired_db()
    server = DatabaseServer(db, port=0)
    server.serve_background()
    host, port = server.address
    stop = threading.Event()
    worker_errors = []

    def churn():
        try:
            with LineClient(host, port) as client:
                while not stop.is_set():
                    out = client.send("SELECT x.DNO FROM x IN DEPARTMENTS")
                    if out.startswith("error"):
                        worker_errors.append(out)
                        return
        except Exception as exc:  # pragma: no cover - failure reporting
            worker_errors.append(repr(exc))

    workers = [threading.Thread(target=churn) for _ in range(2)]
    for w in workers:
        w.start()
    try:
        with LineClient(host, port) as client:
            health = client.send("HEALTH")
            assert health.splitlines()[0] == "health: alerting"
            assert "p99 FIRING" in health
            alerts = client.send(
                "SELECT a.SLO, a.TO_STATE FROM a IN SYS.ALERTS "
                "WHERE a.TO_STATE = 'FIRING'"
            )
            assert "p99" in alerts
            prom = client.send("METRICS")
            assert "repro_alert_firing 1" in prom
    finally:
        stop.set()
        for w in workers:
            w.join(timeout=10)
        server.shutdown()
        server.server_close()
        db.close()
    assert not worker_errors


# ---------------------------------------------------------------------------
# satellite: background-thread hygiene on close
# ---------------------------------------------------------------------------


def test_no_repro_threads_survive_close():
    db = Database()
    db.ts.period_ms = 5
    db.ash.period_ms = 5
    METRICS.enable()
    db.ts.start()
    db.ash.start()
    names = {t.name for t in threading.enumerate()}
    assert "repro-ts" in names and "repro-ash" in names
    db.close()
    leaked = [
        t.name for t in threading.enumerate()
        if t.name.startswith("repro-") and t.is_alive()
    ]
    assert leaked == []
    assert not db.ts.running and not db.ash.running


def test_close_is_idempotent_with_idle_samplers():
    db = Database()
    db.close()  # never-started samplers must not block close
    leaked = [
        t.name for t in threading.enumerate() if t.name.startswith("repro-")
    ]
    assert leaked == []
