"""Tests for multi-page (chained) records."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RecordNotFoundError
from repro.storage.buffer import BufferManager
from repro.storage.constants import MAX_RECORD_SIZE, PAGE_SIZE
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment


def make_segment(capacity=256):
    return Segment(BufferManager(MemoryPagedFile(), capacity=capacity))


def test_oversized_insert_and_read():
    segment = make_segment()
    payload = bytes(range(256)) * 64  # 16 KiB > one page
    tid = segment.insert_record(payload)
    assert segment.read_record(tid) == payload


def test_various_sizes_roundtrip():
    segment = make_segment()
    for size in (MAX_RECORD_SIZE - 1, MAX_RECORD_SIZE, MAX_RECORD_SIZE + 1,
                 PAGE_SIZE, 3 * PAGE_SIZE, 10 * PAGE_SIZE + 17):
        payload = (b"\xab\xcd" * ((size // 2) + 1))[:size]
        tid = segment.insert_record(payload)
        assert segment.read_record(tid) == payload, size


def test_update_small_to_large_and_back():
    segment = make_segment()
    tid = segment.insert_record(b"small")
    big = b"B" * (3 * PAGE_SIZE)
    segment.update_record(tid, big)
    assert segment.read_record(tid) == big  # same TID
    bigger = b"C" * (5 * PAGE_SIZE)
    segment.update_record(tid, bigger)
    assert segment.read_record(tid) == bigger
    segment.update_record(tid, b"tiny again")
    assert segment.read_record(tid) == b"tiny again"


def test_update_large_while_forwarded():
    segment = make_segment()
    tid = segment.insert_record(b"x")
    # force forwarding first
    while segment.free_space_on(tid.page) > 300:
        segment.insert_record_on(tid.page, b"f" * 250)
    segment.update_record(tid, b"y" * 2000)       # forwarded remote
    segment.update_record(tid, b"z" * 9000)       # remote becomes a chain
    assert segment.read_record(tid) == b"z" * 9000
    segment.update_record(tid, b"w" * 8000)       # chain replaced
    assert segment.read_record(tid) == b"w" * 8000


def test_delete_chain_releases_space():
    segment = make_segment()
    tid = segment.insert_record(b"D" * (4 * PAGE_SIZE))
    pages_used = segment.page_count
    segment.delete_record(tid)
    with pytest.raises(RecordNotFoundError):
        segment.read_record(tid)
    # the chain's records are gone: inserting the same again reuses space
    tid2 = segment.insert_record(b"E" * (4 * PAGE_SIZE))
    assert segment.page_count <= pages_used + 1
    assert segment.read_record(tid2) == b"E" * (4 * PAGE_SIZE)


def test_scan_sees_chained_record_once():
    segment = make_segment()
    big = b"S" * (2 * PAGE_SIZE)
    tid_small = segment.insert_record(b"small")
    tid_big = segment.insert_record(big)
    records = dict(segment.scan())
    assert records[tid_big] == big
    assert records[tid_small] == b"small"
    assert len(records) == 2  # chain parts not surfaced


@given(st.integers(1, 6 * PAGE_SIZE), st.integers(1, 6 * PAGE_SIZE))
@settings(max_examples=20, deadline=None)
def test_property_update_any_size_to_any_size(first, second):
    segment = make_segment()
    tid = segment.insert_record(b"a" * first)
    segment.update_record(tid, b"b" * second)
    assert segment.read_record(tid) == b"b" * second
