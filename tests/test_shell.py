"""Tests for the interactive shell's statement / dot-command handling."""

import io
import json

from repro import obs
from repro.database import Database
from repro.datasets import paper
from repro.shell import dot_command, execute_line, run_script


def make_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    return db


def test_execute_query_prints_table():
    db = make_db()
    out = io.StringIO()
    execute_line(db, "SELECT x.DNO FROM x IN DEPARTMENTS", out=out)
    text = out.getvalue()
    assert "314" in text and "(3 tuples)" in text


def test_execute_dml_prints_count():
    db = make_db()
    out = io.StringIO()
    execute_line(db, "DELETE FROM DEPARTMENTS x WHERE x.DNO = 218", out=out)
    assert "1 tuple affected" in out.getvalue()


def test_execute_error_is_reported_not_raised():
    db = make_db()
    out = io.StringIO()
    execute_line(db, "SELECT x.NOPE FROM x IN DEPARTMENTS", out=out)
    assert "error:" in out.getvalue()
    execute_line(db, "THIS IS NOT SQL", out=out)
    assert "error:" in out.getvalue()


def test_dot_tables_and_schema():
    db = make_db()
    out = io.StringIO()
    assert dot_command(db, ".tables", out=out)
    assert "DEPARTMENTS" in out.getvalue() and "NF2" in out.getvalue()
    out = io.StringIO()
    dot_command(db, ".schema DEPARTMENTS", out=out)
    assert "CREATE TABLE DEPARTMENTS" in out.getvalue()
    out = io.StringIO()
    dot_command(db, ".schema NOPE", out=out)
    assert "error" in out.getvalue()


def test_dot_indexes_and_stats():
    db = make_db()
    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    out = io.StringIO()
    dot_command(db, ".indexes", out=out)
    assert "FN ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)" in out.getvalue()
    out = io.StringIO()
    dot_command(db, ".stats", out=out)
    assert "logical_reads" in out.getvalue()


def test_dot_quit_and_unknown():
    db = make_db()
    out = io.StringIO()
    assert not dot_command(db, ".quit", out=out)
    assert dot_command(db, ".nonsense", out=out)
    assert "unknown command" in out.getvalue()


def test_run_script_multiple_statements():
    db = Database()
    out = io.StringIO()
    run_script(
        db,
        """
        CREATE TABLE T (A INT, S TABLE OF (B INT));
        INSERT INTO T VALUES (1, {(10), (20)});
        SELECT t.A, SUM(t.S.B) AS TOTAL FROM t IN T;
        """,
        out=out,
    )
    text = out.getvalue()
    assert "ok" in text
    assert "30" in text  # the SUM


def test_save_on_memory_database_reports_error():
    db = Database()
    out = io.StringIO()
    dot_command(db, ".save", out=out)
    assert "error" in out.getvalue()


# ---------------------------------------------------------------------------
# observability dot-commands
# ---------------------------------------------------------------------------


def test_execute_explain_prints_plan_text():
    db = make_db()
    out = io.StringIO()
    execute_line(db, "EXPLAIN SELECT x.DNO FROM x IN DEPARTMENTS", out=out)
    text = out.getvalue()
    assert "query plan:" in text
    assert "loop 1: x IN DEPARTMENTS" in text


def test_execute_explain_analyze_prints_actuals():
    db = make_db()
    out = io.StringIO()
    execute_line(
        db, "EXPLAIN ANALYZE SELECT x.DNO FROM x IN DEPARTMENTS", out=out
    )
    text = out.getvalue()
    assert "query plan (analyzed):" in text
    assert "timings:" in text
    obs.METRICS.clear()


def test_dot_profile_toggles_observability():
    db = make_db()
    out = io.StringIO()
    assert dot_command(db, ".profile on", out=out)
    assert "profiling on" in out.getvalue()
    assert obs.METRICS.enabled and obs.TRACER.enabled
    out = io.StringIO()
    dot_command(db, ".profile", out=out)
    assert "currently on" in out.getvalue()
    out = io.StringIO()
    dot_command(db, ".profile off", out=out)
    assert "profiling off" in out.getvalue()
    assert not obs.METRICS.enabled and not obs.TRACER.enabled


def test_dot_stats_includes_engine_counters_when_profiled():
    db = make_db()
    out = io.StringIO()
    dot_command(db, ".profile on", out=out)
    try:
        execute_line(db, "SELECT x.DNO FROM x IN DEPARTMENTS", out=out)
        out = io.StringIO()
        dot_command(db, ".stats", out=out)
        text = out.getvalue()
        assert "engine counters:" in text
        assert "storage.objects_opened" in text
    finally:
        dot_command(db, ".profile off", out=io.StringIO())
        obs.METRICS.clear()
        obs.TRACER.traces.clear()
        obs.TRACER.last_trace = None


def test_dot_trace_requires_a_finished_trace(tmp_path):
    db = make_db()
    out = io.StringIO()
    dot_command(db, ".trace nope.json", out=out)
    assert "no finished trace" in out.getvalue()
    dot_command(db, ".profile on", out=io.StringIO())
    try:
        execute_line(db, "SELECT x.DNO FROM x IN DEPARTMENTS", out=io.StringIO())
        path = tmp_path / "trace.json"
        out = io.StringIO()
        dot_command(db, f".trace {path}", out=out)
        assert "wrote" in out.getvalue()
        payload = json.loads(path.read_text())
        names = [event["name"] for event in payload["traceEvents"]]
        assert "statement" in names
    finally:
        dot_command(db, ".profile off", out=io.StringIO())
        obs.METRICS.clear()
        obs.TRACER.traces.clear()
        obs.TRACER.last_trace = None
