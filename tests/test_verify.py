"""Tests for the database integrity checker (Database.verify)."""

import pytest

from repro.database import Database
from repro.datasets import paper


def healthy_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.create_table(paper.EMPLOYEES_1NF_SCHEMA)
    db.insert_many("EMPLOYEES-1NF", (r.to_plain() for r in paper.employees_1nf()))
    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    db.create_index("EMP", "EMPLOYEES-1NF", ("EMPNO",))
    return db


def test_healthy_database_verifies_clean():
    db = healthy_db()
    assert db.verify() == []
    assert db.verify("DEPARTMENTS") == []


def test_verify_after_heavy_dml_still_clean():
    db = healthy_db()
    db.execute(
        "INSERT INTO y.MEMBERS FROM x IN DEPARTMENTS, y IN x.PROJECTS "
        "WHERE y.PNO = 17 VALUES (50001, 'Staff')"
    )
    db.execute(
        "UPDATE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS "
        "SET FUNCTION = 'Adviser' WHERE z.EMPNO = 56019"
    )
    db.execute("DELETE FROM DEPARTMENTS x WHERE x.DNO = 417")
    db.execute("UPDATE EMPLOYEES-1NF e SET LNAME = 'Zz' WHERE e.EMPNO = 39582")
    assert db.verify() == []


def test_verify_detects_index_drift():
    db = healthy_db()
    # sabotage: remove an entry from the index behind the database's back
    index = db.catalog.index("FN")
    key_entries = index.search("Consultant")
    assert key_entries
    index.tree.remove("Consultant", key_entries[0])
    problems = db.verify("DEPARTMENTS")
    assert problems and "misses" in problems[0]


def test_verify_detects_flat_index_drift():
    db = healthy_db()
    index = db.catalog.index("EMP")
    tid = index.search(39582)[0]
    index.tree.remove(39582, tid)
    problems = db.verify("EMPLOYEES-1NF")
    assert problems and "EMP" in problems[0]


def test_verify_detects_corrupted_root_record():
    db = healthy_db()
    entry = db.catalog.table("DEPARTMENTS")
    tid = entry.tids[0]
    # stomp on the root record's bytes
    page = db.buffer.fetch(tid.page)
    try:
        flag, payload = page.read(tid.slot)
        page.update(tid.slot, b"\x00" * len(payload), flag)
    finally:
        db.buffer.unpin(tid.page, dirty=True)
    problems = db.verify("DEPARTMENTS")
    assert any("failed to load" in p or "unreadable" in p for p in problems)


def test_verify_detects_lost_heap_tuple():
    db = healthy_db()
    entry = db.catalog.table("EMPLOYEES-1NF")
    victim = entry.tids[0]
    entry.heap.delete(victim)  # bypass the catalog
    problems = db.verify("EMPLOYEES-1NF")
    assert any("failed to load" in p or "lost" in p for p in problems)


def test_verify_on_subtuple_versioned_table():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True,
                    versioning="subtuple")
    tid = db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at=1)
    db.update("DEPARTMENTS", tid, {"BUDGET": 7}, at=2)
    db.update(
        "DEPARTMENTS", tid,
        lambda m: m.insert_element([], "EQUIP", {"QU": 1, "TYPE": "X"}),
        at=3,
    )
    assert db.verify() == []
