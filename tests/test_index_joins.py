"""Tests for index-nested-loop joins (inner ranges answered via indexes)."""

import pytest

from repro.database import Database
from repro.datasets import DepartmentsGenerator, paper


def indexed_paper_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.create_table(paper.EMPLOYEES_1NF_SCHEMA)
    db.insert_many(
        "EMPLOYEES-1NF", (r.to_plain() for r in paper.employees_1nf())
    )
    db.create_index("EMP", "EMPLOYEES-1NF", ("EMPNO",))
    return db

JOIN_QUERY = (
    "SELECT x.DNO, e.LNAME FROM x IN DEPARTMENTS, e IN EMPLOYEES-1NF "
    "WHERE x.MGRNO = e.EMPNO"
)


def test_join_through_flat_index_same_answer():
    db = indexed_paper_db()
    with_index = db.query(JOIN_QUERY)
    db.use_access_paths = False
    without = db.query(with_index and JOIN_QUERY)
    assert with_index == without
    assert {r["LNAME"] for r in with_index} == {"Schmidt", "Neumann", "Richter"}


def test_join_through_flat_index_reads_fewer_rows():
    gen = DepartmentsGenerator(departments=40, projects_per_department=1,
                               members_per_project=1, seed=8)
    db = Database(buffer_capacity=4096)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", gen.rows())
    db.create_table(paper.EMPLOYEES_1NF_SCHEMA)
    db.insert_many("EMPLOYEES-1NF", gen.employees_rows())
    db.create_index("EMP", "EMPLOYEES-1NF", ("EMPNO",))

    db.reset_io_stats()
    db.query(JOIN_QUERY)
    indexed_reads = db.io_stats.logical_reads

    db.use_access_paths = False
    db.reset_io_stats()
    db.query(JOIN_QUERY)
    scan_reads = db.io_stats.logical_reads

    assert indexed_reads < scan_reads


def test_join_lookup_in_exists_over_stored_table():
    db = indexed_paper_db()
    result = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS e IN EMPLOYEES-1NF: "
        "(e.EMPNO = x.MGRNO AND e.SEX = 'female')"
    )
    assert result.column("DNO") == [417]


def test_join_lookup_on_nf2_table_root_index():
    """The inner table can be an NF2 table with a top-level index."""
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.create_table(paper.EMPLOYEES_1NF_SCHEMA)
    db.insert_many("EMPLOYEES-1NF", (r.to_plain() for r in paper.employees_1nf()))
    db.create_index("DNO_IDX", "DEPARTMENTS", ("DNO",))
    # join the other way round: EMPLOYEES outer, DEPARTMENTS inner by DNO
    result = db.query(
        "SELECT e.LNAME, d.BUDGET FROM e IN EMPLOYEES-1NF, d IN DEPARTMENTS "
        "WHERE d.DNO = 314 AND e.EMPNO = d.MGRNO"
    )
    assert [(r["LNAME"], r["BUDGET"]) for r in result] == [("Schmidt", 320_000)]


def test_all_quantifier_not_restricted_by_lookup():
    """ALL must see every row — the equality shortcut applies to EXISTS
    only."""
    db = indexed_paper_db()
    # ALL employees have EMPNO = 39582? certainly not
    result = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE ALL e IN EMPLOYEES-1NF: e.EMPNO = 39582"
    )
    assert len(result) == 0
