"""Tests for PR 5's self-observability subsystem.

Covers the SYS.* virtual catalog (embedded and over TCP), the
query-latency histogram + slow-query log, Prometheus text rendering, the
thread-local tracer stack, and the locked metric mutation paths (the
8-thread exact-total regression)."""

import json
import threading
import time

import pytest

from repro import obs
from repro.database import Database
from repro.datasets import paper
from repro.errors import ExecutionError, ReproError
from repro.obs import METRICS, TRACER
from repro.obs.metrics import LATENCY_BUCKETS_MS, MetricsRegistry
from repro.obs.promtext import render_prometheus
from repro.obs.querylog import QueryLog, QueryRecord, fingerprint
from repro.obs.sysviews import SYS_VIEW_NAMES, is_sys_table, sys_view_schema


@pytest.fixture(autouse=True)
def _clean_observability():
    obs.disable()
    METRICS.clear()
    TRACER.traces.clear()
    TRACER.last_trace = None
    yield
    obs.disable()
    METRICS.clear()
    TRACER.traces.clear()
    TRACER.last_trace = None


def make_paper_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    return db


# ---------------------------------------------------------------------------
# satellite: locked metric mutation (exact totals under 8 threads)
# ---------------------------------------------------------------------------


def _hammer(fn, threads=8, per_thread=2000):
    barrier = threading.Barrier(threads)

    def work():
        barrier.wait()
        for _ in range(per_thread):
            fn()

    pool = [threading.Thread(target=work) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    return threads * per_thread


def test_counter_inc_exact_total_under_8_threads():
    registry = MetricsRegistry(enabled=True)
    counter = registry.counter("hammered")
    expected = _hammer(lambda: counter.inc())
    assert counter.total == expected


def test_labeled_counter_exact_totals_under_8_threads():
    registry = MetricsRegistry(enabled=True)
    expected = _hammer(lambda: registry.inc("hammered", kind="x"))
    assert registry.counter("hammered").value(kind="x") == expected


def test_gauge_inc_exact_total_under_8_threads():
    registry = MetricsRegistry(enabled=True)
    gauge = registry.gauge("level")
    expected = _hammer(lambda: gauge.inc())
    assert gauge.value() == expected


def test_histogram_observe_exact_count_under_8_threads():
    registry = MetricsRegistry(enabled=True)
    histogram = registry.histogram("dist")
    expected = _hammer(lambda: histogram.observe(3))
    summary = histogram.summary()
    assert summary["count"] == expected
    assert summary["sum"] == 3 * expected
    assert histogram.summary()["buckets"]["5"] == expected


# ---------------------------------------------------------------------------
# satellite: thread-local tracer stacks
# ---------------------------------------------------------------------------


def test_tracer_stacks_are_thread_local():
    tracer = obs.Tracer(enabled=True, keep=64)
    errors = []
    barrier = threading.Barrier(4)

    def work(tag):
        barrier.wait()
        for i in range(50):
            with tracer.span(f"root-{tag}") as root:
                with tracer.span(f"child-{tag}") as child:
                    pass
                if tracer.current_span is not root:
                    errors.append(f"{tag}: stack corrupted at {i}")
                if child not in root.children or len(root.children) != 1:
                    errors.append(f"{tag}: wrong children {root.children}")

    pool = [threading.Thread(target=work, args=(n,)) for n in range(4)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert errors == []
    # every finished trace is a consistent single-thread tree
    assert len(tracer.traces) == 64
    for trace in tracer.traces:
        tag = trace.root.name.split("-")[1]
        assert [c.name for c in trace.root.children] == [f"child-{tag}"]
        assert trace.thread_id is not None


def test_trace_records_thread_and_session():
    tracer = obs.Tracer(enabled=True)
    tracer.set_session("client-42")
    with tracer.span("statement"):
        pass
    trace = tracer.last_trace
    assert trace.session == "client-42"
    assert trace.thread_name == threading.current_thread().name
    data = trace.to_dict()
    assert data["session"] == "client-42"
    restored = obs.Trace.from_dict(data)
    assert restored.session == "client-42"
    tracer.set_session(None)
    with tracer.span("statement"):
        pass
    assert tracer.last_trace.session is None


def test_session_statements_tag_traces():
    db = make_paper_db()
    TRACER.enable()
    with db.session(name="abc") as session:
        session.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    assert TRACER.last_trace.session == "abc"


def test_concurrent_sessions_no_tracer_corruption():
    """The acceptance stress: traced statements from many sessions must
    produce one well-formed trace per statement, tagged per session."""
    db = make_paper_db()
    obs.enable()
    TRACER.traces = type(TRACER.traces)(maxlen=512)
    errors = []
    barrier = threading.Barrier(4)

    def work(n):
        name = f"s{n}"
        try:
            with db.session(name=name) as session:
                barrier.wait()
                for _ in range(25):
                    session.query(
                        "SELECT x.DNO FROM x IN DEPARTMENTS "
                        "WHERE EXISTS y IN x.PROJECTS y.PNO > 0"
                    )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(f"{name}: {exc}")

    pool = [threading.Thread(target=work, args=(n,)) for n in range(4)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert errors == []
    statements = [t for t in TRACER.traces if t.root.name == "statement"]
    assert len(statements) == 100
    for trace in statements:
        assert trace.session in {"s0", "s1", "s2", "s3"}
        # parse is recorded once per statement; no foreign children leaked
        names = [c.name for c in trace.root.children]
        assert names.count("parse") == 1


# ---------------------------------------------------------------------------
# SYS.* schemas + resolution
# ---------------------------------------------------------------------------


def test_is_sys_table_and_schemas():
    assert is_sys_table("SYS.METRICS")
    assert is_sys_table("sys.metrics")
    assert not is_sys_table("SYSTEMS")
    assert not is_sys_table("SYS.NOPE")
    for view in SYS_VIEW_NAMES:
        schema = sys_view_schema(f"SYS.{view}")
        assert schema.name == f"SYS_{view}"


def test_sys_tables_and_indexes_views():
    db = make_paper_db()
    db.create_index("PN", "DEPARTMENTS", ("PROJECTS", "PNO"))
    rows = db.query(
        "SELECT t.NAME, t.KIND, t.TUPLES, t.DEPTH, t.INDEXES "
        "FROM t IN SYS.TABLES"
    ).to_plain()
    assert rows == [
        {
            "NAME": "DEPARTMENTS",
            "KIND": "nested",
            "TUPLES": 3,
            "DEPTH": 3,
            "INDEXES": 1,
        }
    ]
    idx = db.query(
        "SELECT i.NAME, i.TABLE_NAME, i.MODE, i.PATH, i.ENTRY_COUNT "
        "FROM i IN SYS.INDEXES"
    ).to_plain()
    assert idx[0]["NAME"] == "PN"
    assert idx[0]["TABLE_NAME"] == "DEPARTMENTS"
    assert idx[0]["PATH"] == "PROJECTS.PNO"
    assert idx[0]["ENTRY_COUNT"] > 0


def test_sys_metrics_histogram_buckets_nested_query():
    db = make_paper_db()
    METRICS.enable()
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    result = db.query(
        "SELECT m.NAME, B = (SELECT b.BOUND, b.COUNT FROM b IN m.BUCKETS) "
        "FROM m IN SYS.METRICS WHERE m.NAME CONTAINS 'latency'"
    ).to_plain()
    assert len(result) >= 1
    row = result[0]
    assert row["NAME"] == "query.latency_ms"
    bounds = [b["BOUND"] for b in row["B"]]
    assert bounds[: len(LATENCY_BUCKETS_MS)] == list(LATENCY_BUCKETS_MS)
    assert bounds[-1] == float("inf")
    assert sum(b["COUNT"] for b in row["B"]) >= 1


def test_sys_metrics_labels_subtable_and_kinds():
    db = make_paper_db()
    METRICS.enable()
    METRICS.inc("index.probes", index="FN")
    rows = db.query(
        "SELECT m.NAME, m.KIND, m.VALUE, "
        "L = (SELECT l.NAME, l.VALUE FROM l IN m.LABELS) "
        "FROM m IN SYS.METRICS "
        "WHERE EXISTS l IN m.LABELS: l.VALUE = 'FN'"
    ).to_plain()
    assert rows == [
        {
            "NAME": "index.probes",
            "KIND": "counter",
            "VALUE": 1.0,
            "L": [{"NAME": "index", "VALUE": "FN"}],
        }
    ]


def test_sys_metrics_bucket_subscripting():
    """1-based subscripts reach into the BUCKETS list like any NF² list."""
    db = make_paper_db()
    METRICS.enable()
    histogram = METRICS.histogram("work", buckets=(1, 10))
    histogram.observe(5)
    rows = db.query(
        "SELECT m.BUCKETS[2].COUNT AS MID FROM m IN SYS.METRICS "
        "WHERE m.NAME = 'work'"
    ).to_plain()
    assert rows == [{"MID": 1}]


def test_sys_queries_ring_and_counter_deltas():
    db = make_paper_db()
    METRICS.enable()
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 314")
    rows = db.query(
        "SELECT q.KIND, q.TUPLES, q.FINGERPRINT, "
        "C = (SELECT c.NAME, c.DELTA FROM c IN q.COUNTERS) "
        "FROM q IN SYS.QUERIES WHERE q.KIND = 'SELECT'"
    ).to_plain()
    assert rows, "the ring must hold the finished SELECT"
    first = rows[0]
    assert first["TUPLES"] == 1
    assert len(first["FINGERPRINT"]) == 12
    deltas = {c["NAME"]: c["DELTA"] for c in first["C"]}
    assert deltas.get("query.rows_scanned", 0) > 0


def test_sys_sessions_and_locks_views():
    db = make_paper_db()
    with db.session(name="watcher") as session:
        rows = session.query(
            "SELECT s.NAME, s.IN_TXN, s.STATEMENTS FROM s IN SYS.SESSIONS"
        ).to_plain()
        assert rows == [{"NAME": "watcher", "IN_TXN": False, "STATEMENTS": 1}]
        with session.transaction():
            session.execute("UPDATE DEPARTMENTS x SET BUDGET = 1 WHERE x.DNO = 314")
            locks = session.query(
                "SELECT k.TXN_NAME, k.LEVEL, k.MODE, k.GRANTED "
                "FROM k IN SYS.LOCKS WHERE k.LEVEL = 'table'"
            ).to_plain()
            held = {(r["TXN_NAME"], r["MODE"]) for r in locks}
            # UPDATE escalates to a table-level exclusive lock
            assert ("watcher", "X") in held
            assert all(r["GRANTED"] for r in locks)
    assert db.query("SELECT s.NAME FROM s IN SYS.SESSIONS").to_plain() == []


def test_sys_wal_view(tmp_path):
    mem = Database()
    assert mem.query("SELECT w.PATH FROM w IN SYS.WAL").to_plain() == []
    db = Database(path=str(tmp_path / "db.aim"))
    try:
        db.execute("CREATE TABLE T (A INT)")
        db.execute("INSERT INTO T VALUES (1)")
        rows = db.query(
            "SELECT w.PATH, w.COMMITS, w.IN_TXN FROM w IN SYS.WAL"
        ).to_plain()
        assert len(rows) == 1
        assert rows[0]["PATH"].endswith(".wal")
        assert rows[0]["COMMITS"] >= 2
        assert rows[0]["IN_TXN"] is False
    finally:
        db.close()


def test_sys_views_are_read_only():
    db = make_paper_db()
    with pytest.raises(ExecutionError, match="read-only system view"):
        db.insert("SYS.METRICS", {})
    with pytest.raises(ExecutionError, match="read-only system view"):
        db.drop_table("SYS.QUERIES")
    with pytest.raises(ExecutionError, match="read-only system view"):
        db.create_index("X", "SYS.LOCKS", ("TXN",))
    with pytest.raises(ReproError):
        db.update("SYS.WAL", None, {})
    with pytest.raises(ReproError):  # ASOF needs a versioned table
        db.query("SELECT m.NAME FROM m IN SYS.METRICS ASOF '1984-01-15'")


def test_explain_over_sys_table():
    db = make_paper_db()
    plan = db.explain("SELECT m.NAME FROM m IN SYS.METRICS")
    assert "m IN SYS.METRICS" in plan
    assert "system view" in plan
    analyzed = db.execute("EXPLAIN ANALYZE SELECT t.NAME FROM t IN SYS.TABLES")
    assert "system view" in analyzed


def test_sys_join_with_user_table():
    """SYS rows join against ordinary tables like any other relation."""
    db = make_paper_db()
    rows = db.query(
        "SELECT x.DNO, t.TUPLES FROM x IN DEPARTMENTS, t IN SYS.TABLES "
        "WHERE x.DNO = 314"
    ).to_plain()
    assert rows == [{"DNO": 314, "TUPLES": 3}]


# ---------------------------------------------------------------------------
# query latency histogram + slow-query log
# ---------------------------------------------------------------------------


def test_latency_histogram_labels_kind_and_table():
    db = make_paper_db()
    METRICS.enable()
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    db.execute("CREATE TABLE T2 (A INT)")
    db.execute("INSERT INTO T2 VALUES (1)")
    histogram = METRICS.histogram("query.latency_ms")
    assert histogram.buckets == LATENCY_BUCKETS_MS
    assert (
        histogram.summary(kind="SELECT", table="DEPARTMENTS")["count"] == 1
    )
    assert histogram.summary(kind="INSERT", table="T2")["count"] == 1
    # DDL carries no table name; it lands in the '-' series
    assert histogram.summary(kind="CREATE", table="-")["count"] == 1


def test_latency_histogram_not_recorded_when_disabled():
    db = make_paper_db()
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    assert METRICS.snapshot()["histograms"] == {}


def test_query_ring_records_errors_and_is_bounded():
    db = make_paper_db()
    with pytest.raises(ReproError):
        db.execute("SELECT nope FROM nothing IN NOWHERE")
    records = db.query_log.tail()
    assert records[-1].error is not None
    assert records[-1].kind == "SELECT"
    db.query_log.clear()
    for i in range(300):
        db.query(f"SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = {i}")
    assert len(db.query_log) == 128  # bounded ring
    assert db.query_log.recorded == 300
    # all 300 share one literal-normalized fingerprint
    assert len({r.fingerprint for r in db.query_log.tail()}) == 1


def test_fingerprint_normalizes_literals():
    a = fingerprint("SELECT x.A FROM x IN T WHERE x.A = 1")
    b = fingerprint("select x.a from x in t where x.a = 999")
    c = fingerprint("SELECT x.B FROM x IN T WHERE x.B = 1")
    assert a == b
    assert a != c
    assert fingerprint("... WHERE s = 'abc'") == fingerprint("... WHERE s = 'z'")


def test_slow_query_log_threshold(tmp_path):
    sink = tmp_path / "slow.jsonl"
    db = make_paper_db()
    db.query_log.configure(slow_ms=10_000, slow_log_path=str(sink))
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    assert not sink.exists(), "fast statements stay out of the sink"
    db.query_log.configure(slow_ms=0.0, slow_log_path=str(sink))
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 314")
    lines = sink.read_text().strip().splitlines()
    assert len(lines) == 1
    entry = json.loads(lines[0])
    assert entry["kind"] == "SELECT"
    assert entry["rows"] == 1
    assert entry["latency_ms"] >= 0
    assert entry["fingerprint"]
    assert db.query_log.slow_logged == 1


def test_slow_query_env_configuration(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "2.5")
    monkeypatch.setenv("REPRO_SLOW_QUERY_LOG", str(tmp_path / "s.jsonl"))
    log = QueryLog()
    assert log.slow_ms == 2.5
    assert log.slow_log_path == str(tmp_path / "s.jsonl")
    monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "not-a-number")
    assert QueryLog().slow_ms is None


# ---------------------------------------------------------------------------
# Prometheus text rendering
# ---------------------------------------------------------------------------


def test_prometheus_golden_output():
    registry = MetricsRegistry(enabled=True)
    registry.inc("buffer.hits", 5)
    registry.inc("index.probes", 2, index="FN")
    registry.set_gauge("buffer.frames_in_use", 3)
    histogram = registry.histogram("md.subtuples", "MD subtuples", buckets=(1, 5))
    histogram.observe(1)
    histogram.observe(4)
    histogram.observe(99)
    assert registry.to_prometheus() == (
        "# HELP repro_buffer_hits_total buffer.hits\n"
        "# TYPE repro_buffer_hits_total counter\n"
        "repro_buffer_hits_total 5\n"
        "# HELP repro_index_probes_total index.probes\n"
        "# TYPE repro_index_probes_total counter\n"
        'repro_index_probes_total{index="FN"} 2\n'
        "# HELP repro_buffer_frames_in_use buffer.frames_in_use\n"
        "# TYPE repro_buffer_frames_in_use gauge\n"
        "repro_buffer_frames_in_use 3\n"
        "# HELP repro_md_subtuples MD subtuples\n"
        "# TYPE repro_md_subtuples histogram\n"
        'repro_md_subtuples_bucket{le="1"} 1\n'
        'repro_md_subtuples_bucket{le="5"} 2\n'
        'repro_md_subtuples_bucket{le="+Inf"} 3\n'
        "repro_md_subtuples_sum 104\n"
        "repro_md_subtuples_count 3\n"
    )
    assert render_prometheus(registry) == registry.to_prometheus()


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry(enabled=True)
    registry.inc("odd", 1, text='say "hi"\nthere\\')
    line = registry.to_prometheus().splitlines()[2]
    assert line == 'repro_odd_total{text="say \\"hi\\"\\nthere\\\\"} 1'


def test_prometheus_empty_registry_renders_empty():
    assert MetricsRegistry().to_prometheus() == ""


# ---------------------------------------------------------------------------
# histogram summaries (shell .stats backing)
# ---------------------------------------------------------------------------


def test_histogram_combined_and_quantile():
    registry = MetricsRegistry(enabled=True)
    histogram = registry.histogram("h", buckets=(1, 2, 5))
    for value, kind in [(1, "a"), (2, "a"), (2, "b"), (100, "b")]:
        histogram.observe(value, kind=kind)
    combined = histogram.combined()
    assert combined["count"] == 4
    assert combined["sum"] == 105
    assert combined["min"] == 1
    assert combined["max"] == 100
    # interpolated: q=0.5 lands mid-bucket (1, 2]; q=0.95 falls in the
    # overflow bucket, clamped to the observed max instead of inf
    assert histogram.quantile(0.5) == 1.5
    assert histogram.quantile(0.95) == pytest.approx(81.0)
    assert registry.histogram("empty").quantile(0.5) is None
    # per-label quantile targets one series only
    assert histogram.quantile_for({"kind": "a"}, 1.0) == 2.0
    assert histogram.quantile_for({"kind": "missing"}, 0.5) is None


def test_shell_stats_queries_and_metrics(capsys):
    import io

    from repro.shell import dot_command

    db = make_paper_db()
    METRICS.enable()
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    out = io.StringIO()
    dot_command(db, ".stats", out=out)
    text = out.getvalue()
    assert "histograms:" in text
    assert "query.latency_ms" in text and "p95<=" in text
    out = io.StringIO()
    dot_command(db, ".queries 5", out=out)
    assert "SELECT" in out.getvalue()
    out = io.StringIO()
    dot_command(db, ".metrics", out=out)
    assert "# TYPE repro_query_latency_ms histogram" in out.getvalue()
    out = io.StringIO()
    dot_command(db, ".slowlog 5", out=out)
    assert ">= 5 ms" in out.getvalue()
    assert db.query_log.slow_ms == 5.0
    out = io.StringIO()
    dot_command(db, ".slowlog off", out=out)
    assert "off" in out.getvalue()


def test_shell_metrics_export(tmp_path):
    import io

    from repro.shell import dot_command

    db = make_paper_db()
    METRICS.enable()
    db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    target = tmp_path / "metrics.prom"
    out = io.StringIO()
    dot_command(db, f".metrics {target}", out=out)
    assert "wrote" in out.getvalue()
    assert "repro_query_latency_ms_count" in target.read_text()


# ---------------------------------------------------------------------------
# over TCP: the acceptance criterion
# ---------------------------------------------------------------------------


def _start_server(db):
    from repro.server import DatabaseServer

    server = DatabaseServer(db, port=0)
    server.serve_background()
    return server


def test_sys_metrics_over_tcp_while_other_sessions_run():
    """`SELECT ... FROM m IN SYS.METRICS` over a TCP connection returns
    live histogram data while other clients run queries concurrently."""
    from repro.server import LineClient

    db = make_paper_db()
    obs.enable()  # metrics + tracing on: exercise tracer isolation too
    server = _start_server(db)
    host, port = server.address
    stop = threading.Event()
    worker_errors = []

    def churn():
        try:
            with LineClient(host, port) as client:
                while not stop.is_set():
                    out = client.send(
                        "SELECT x.DNO FROM x IN DEPARTMENTS "
                        "WHERE EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'"
                    )
                    if out.startswith("error"):
                        worker_errors.append(out)
                        return
        except Exception as exc:  # pragma: no cover - failure reporting
            worker_errors.append(repr(exc))

    workers = [threading.Thread(target=churn) for _ in range(2)]
    for w in workers:
        w.start()
    try:
        with LineClient(host, port) as client:
            deadline = time.monotonic() + 10
            seen = False
            while time.monotonic() < deadline and not seen:
                out = client.send(
                    "SELECT m.NAME, B = (SELECT b.BOUND, b.COUNT "
                    "FROM b IN m.BUCKETS) FROM m IN SYS.METRICS "
                    "WHERE m.NAME CONTAINS 'latency'"
                )
                assert not out.startswith("error"), out
                seen = "query.latency_ms" in out
            assert seen, "live latency histogram must be visible over TCP"
            # the scrape verb answers on the same wire
            prom = client.send("METRICS")
            assert "# TYPE repro_query_latency_ms histogram" in prom
            assert "repro_query_latency_ms_bucket" in prom
            # per-session attribution is visible while clients are on
            sessions = client.send("SELECT s.NAME FROM s IN SYS.SESSIONS")
            assert "client-" in sessions
    finally:
        stop.set()
        for w in workers:
            w.join(timeout=10)
        server.shutdown()
        server.server_close()
    assert worker_errors == []
    # tracer-stack integrity: every finished statement trace is a tree
    # rooted at "statement" with exactly one parse child
    statements = [t for t in TRACER.traces if t.root.name == "statement"]
    assert statements, "traced statements must have been recorded"
    for trace in statements:
        names = [c.name for c in trace.root.children]
        assert names.count("parse") == 1
        assert trace.session is None or trace.session.startswith("client-")


def test_sys_queries_over_tcp_shows_other_sessions():
    from repro.server import LineClient

    db = make_paper_db()
    server = _start_server(db)
    host, port = server.address
    try:
        with LineClient(host, port) as a, LineClient(host, port) as b:
            a.send("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 314")
            out = b.send(
                "SELECT q.KIND, q.SESSION FROM q IN SYS.QUERIES "
                "WHERE q.SESSION CONTAINS 'client'"
            )
            assert "SELECT" in out
    finally:
        server.shutdown()
        server.server_close()


# ---------------------------------------------------------------------------
# misc regression: recording survives odd inputs
# ---------------------------------------------------------------------------


def test_query_record_to_dict_roundtrips_through_json():
    record = QueryRecord(
        text="SELECT x.A FROM x IN T",
        kind="SELECT",
        latency_ms=1.25,
        rows=3,
        tables=["T"],
        counters={"buffer.hits": 2.0},
        session="s1",
    )
    data = json.loads(json.dumps(record.to_dict()))
    assert data["kind"] == "SELECT"
    assert data["tables"] == ["T"]
    assert data["counters"]["buffer.hits"] == 2.0


def test_sys_query_does_not_self_deadlock():
    """Reading SYS.QUERIES from inside a session must not trip over the
    statement currently being recorded."""
    db = make_paper_db()
    with db.session() as session:
        for _ in range(3):
            session.query("SELECT q.KIND FROM q IN SYS.QUERIES")
    assert len(db.query_log) >= 3
