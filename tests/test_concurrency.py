"""Concurrent sessions: lock manager semantics, session isolation, the
multi-client server, and the executor/buffer regression fixes that rode
along with the concurrency work.

The multi-threaded tests follow one discipline: every cross-thread
ordering is enforced with events/joins (never sleeps alone), and every
assertion is about a *serializable outcome* — some serial order of the
committed statements must explain the observed state.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.concurrency.locks import Latch, LockManager, LockMode, compatible
from repro.database import Database
from repro.errors import (
    ConcurrencyError,
    DeadlockError,
    ExecutionError,
    LockTimeoutError,
)
from repro.query.executor import _aggregate, compare, masked_match
from repro.storage.pagedfile import DiskPagedFile
from repro.wal.faults import CrashClock, CrashPoint, FaultyPagedFile, FaultyWalIO


# ---------------------------------------------------------------------------
# LockManager unit semantics
# ---------------------------------------------------------------------------


def test_compatibility_matrix():
    IS, IX, S, X = LockMode.IS, LockMode.IX, LockMode.S, LockMode.X
    assert compatible(IS, IS) and compatible(IS, IX) and compatible(IS, S)
    assert not compatible(IS, X)
    assert compatible(IX, IS) and compatible(IX, IX)
    assert not compatible(IX, S) and not compatible(IX, X)
    assert compatible(S, IS) and compatible(S, S)
    assert not compatible(S, IX) and not compatible(S, X)
    for held in (IS, IX, S, X):
        assert not compatible(X, held)


def test_lock_grant_covering_and_reacquire():
    lm = LockManager()
    txn = lm.begin("t")
    resource = ("table", "T")
    assert lm.acquire(txn, resource, LockMode.X) is False  # no wait
    # X covers everything: re-acquires are immediate no-waits
    for mode in LockMode:
        assert lm.acquire(txn, resource, mode) is False
    lm.release_all(txn)
    assert lm.stats()["lock.granted"] == 0


def test_shared_locks_coexist_exclusive_blocks():
    lm = LockManager(default_timeout=0.2)
    a, b = lm.begin("a"), lm.begin("b")
    resource = ("object", "T", 1)
    lm.acquire(a, resource, LockMode.S)
    lm.acquire(b, resource, LockMode.S)  # S + S coexist
    with pytest.raises(LockTimeoutError):
        lm.acquire(b, resource, LockMode.X)  # upgrade blocked by a's S
    lm.release_all(a)
    lm.acquire(b, resource, LockMode.X)  # now grantable
    lm.release_all(b)


def test_lock_timeout_is_execution_error_with_clear_message():
    lm = LockManager()
    a, b = lm.begin("holder"), lm.begin("waiter")
    lm.acquire(a, ("table", "T"), LockMode.X)
    with pytest.raises(ExecutionError) as info:
        lm.acquire(b, ("table", "T"), LockMode.S, timeout=0.05)
    assert "timeout" in str(info.value)
    assert isinstance(info.value, LockTimeoutError)
    lm.release_all(a)
    lm.release_all(b)


def test_deadlock_aborts_youngest():
    lm = LockManager(default_timeout=5.0)
    old, young = lm.begin("old"), lm.begin("young")
    assert young > old  # monotonic ids: the later begin is younger
    r1, r2 = ("table", "T1"), ("table", "T2")
    lm.acquire(old, r1, LockMode.X)
    lm.acquire(young, r2, LockMode.X)

    outcome = {}

    def cross(txn, resource, key):
        try:
            lm.acquire(txn, resource, LockMode.X)
            outcome[key] = "granted"
        except DeadlockError:
            outcome[key] = "deadlock"
            lm.release_all(txn)

    t_old = threading.Thread(target=cross, args=(old, r2, "old"))
    t_young = threading.Thread(target=cross, args=(young, r1, "young"))
    t_old.start()
    time.sleep(0.05)  # let the older txn enqueue its wait first
    t_young.start()
    t_young.join(timeout=5)
    t_old.join(timeout=5)
    assert outcome == {"young": "deadlock", "old": "granted"}
    assert lm.deadlocks == 1
    lm.release_all(old)


def test_lock_snapshot_and_stats():
    lm = LockManager()
    txn = lm.begin("snap")
    lm.acquire(txn, ("table", "T"), LockMode.IX)
    rows = lm.snapshot()
    assert len(rows) == 1 and rows[0].granted
    assert "IX" in rows[0].describe() and "snap" in rows[0].describe()
    stats = lm.stats()
    assert stats["lock.granted"] == 1 and stats["lock.waiting"] == 0
    lm.release_all(txn)


def test_latch_counts_contention():
    latch = Latch("probe")
    with latch:
        with latch:  # re-entrant, no contention with itself
            pass
    assert latch.contention == 0
    entered = threading.Event()
    release = threading.Event()

    def holder():
        with latch:
            entered.set()
            release.wait(5)

    thread = threading.Thread(target=holder)
    thread.start()
    entered.wait(5)
    waited = threading.Thread(target=lambda: latch.__enter__() and None)

    def contender():
        with latch:
            pass

    contender_thread = threading.Thread(target=contender)
    contender_thread.start()
    time.sleep(0.05)
    release.set()
    contender_thread.join(timeout=5)
    thread.join(timeout=5)
    assert latch.contention >= 1


# ---------------------------------------------------------------------------
# Sessions on one shared engine
# ---------------------------------------------------------------------------


def _make_db():
    db = Database()
    db.execute("CREATE TABLE T (ID INT, NAME STRING, KIDS TABLE OF (V INT))")
    for i in range(4):
        db.insert("T", {"ID": i, "NAME": f"n{i}", "KIDS": [{"V": i * 10}]})
    return db


def test_session_autocommit_matches_single_user():
    db = _make_db()
    with db.session() as session:
        tid = session.insert("T", {"ID": 9, "NAME": "nine", "KIDS": []})
        assert tid is not None
        rows = session.query("SELECT x.NAME FROM x IN T WHERE x.ID = 9").rows
        assert [r.to_plain() for r in rows] == [{"NAME": "nine"}]
        assert session.locks_held() == []  # autocommit released everything


def test_writer_x_blocks_reader_until_commit():
    db = _make_db()
    writer = db.session(name="writer")
    reader = db.session(name="reader")
    in_txn = threading.Event()
    release = threading.Event()
    result = {}

    def write():
        with writer.transaction():
            writer.execute("UPDATE T x SET NAME = 'held' WHERE x.ID = 0")
            in_txn.set()
            release.wait(5)
        result["committed_at"] = time.monotonic()

    def read():
        in_txn.wait(5)
        rows = reader.query("SELECT x.NAME FROM x IN T WHERE x.ID = 0").rows
        result["read_at"] = time.monotonic()
        result["value"] = rows[0].to_plain()["NAME"]
        result["waited"] = reader.last_lock_waits

    t1 = threading.Thread(target=write)
    t2 = threading.Thread(target=read)
    t1.start()
    t2.start()
    time.sleep(0.15)  # the reader is now blocked behind the writer's X
    release.set()
    t1.join(timeout=10)
    t2.join(timeout=10)
    assert result["value"] == "held"  # read after the commit, never torn
    assert result["read_at"] >= result["committed_at"]
    assert result["waited"] >= 1  # the wait is visible to EXPLAIN accounting
    writer.close()
    reader.close()


def test_two_sessions_deadlock_picks_youngest():
    db = _make_db()
    db.execute("CREATE TABLE U (ID INT)")
    db.insert("U", {"ID": 0})

    older = db.session(name="older")
    younger = db.session(name="younger")
    outcome = {}
    older_read = threading.Event()
    younger_read = threading.Event()

    def run_older():
        try:
            with older.transaction():
                older.query("SELECT x.ID FROM x IN T")  # S locks on T
                older_read.set()
                younger_read.wait(5)
                # needs X on U, held-S by the younger session -> waits
                older.execute("UPDATE U x SET ID = 1 WHERE x.ID = 0")
            outcome["older"] = "committed"
        except ConcurrencyError:
            outcome["older"] = "aborted"

    def run_younger():
        try:
            with younger.transaction():
                younger.query("SELECT x.ID FROM x IN U")  # S locks on U
                younger_read.set()
                older_read.wait(5)
                time.sleep(0.1)  # let the older session start waiting first
                # needs the WAL token, held by the older session -> cycle
                younger.execute("UPDATE T x SET NAME = 'y' WHERE x.ID = 0")
            outcome["younger"] = "committed"
        except ConcurrencyError:
            outcome["younger"] = "aborted"

    t1 = threading.Thread(target=run_older)
    t2 = threading.Thread(target=run_younger)
    t1.start()
    t2.start()
    t1.join(timeout=15)
    t2.join(timeout=15)
    assert outcome == {"older": "committed", "younger": "aborted"}
    # the victim's work was rolled back; the survivor's commit is visible
    assert [r.to_plain() for r in db.query("SELECT x.ID FROM x IN U").rows] == [
        {"ID": 1}
    ]
    assert db.query("SELECT x.NAME FROM x IN T WHERE x.NAME = 'y'").rows == []
    older.close()
    younger.close()


def test_lock_timeout_surfaces_as_execution_error():
    db = _make_db()
    holder = db.session(name="holder")
    waiter = db.session(name="waiter", lock_timeout=0.1)
    entered = threading.Event()
    release = threading.Event()

    def hold():
        with holder.transaction():
            holder.execute("UPDATE T x SET NAME = 'h' WHERE x.ID = 1")
            entered.set()
            release.wait(5)

    thread = threading.Thread(target=hold)
    thread.start()
    entered.wait(5)
    with pytest.raises(ExecutionError) as info:
        waiter.query("SELECT x.NAME FROM x IN T")
    assert "timeout" in str(info.value)
    release.set()
    thread.join(timeout=10)
    # after the holder commits the waiter retries successfully
    assert len(waiter.query("SELECT x.NAME FROM x IN T").rows) == 4
    holder.close()
    waiter.close()


def test_aborted_transaction_must_be_left_before_reuse():
    db = _make_db()
    holder = db.session(name="holder")
    victim = db.session(name="victim", lock_timeout=0.1)
    entered = threading.Event()
    release = threading.Event()

    def hold():
        with holder.transaction():
            holder.execute("UPDATE T x SET NAME = 'h' WHERE x.ID = 2")
            entered.set()
            release.wait(5)

    thread = threading.Thread(target=hold)
    thread.start()
    entered.wait(5)
    with pytest.raises(ConcurrencyError):
        with victim.transaction():
            victim.query("SELECT x.NAME FROM x IN T")  # timeout -> abort
    release.set()
    thread.join(timeout=10)
    # outside the dead scope the session works again
    assert len(victim.query("SELECT x.ID FROM x IN T").rows) == 4
    holder.close()
    victim.close()


def test_explain_analyze_reports_lock_accounting():
    db = _make_db()
    with db.session() as session:
        plan = session.execute("EXPLAIN ANALYZE SELECT x.ID FROM x IN T")
        assert "locks:" in plan
        assert "requests:" in plan


def test_session_transaction_commit_and_rollback():
    db = _make_db()
    session = db.session()
    with session.transaction():
        session.insert("T", {"ID": 100, "NAME": "tx", "KIDS": []})
        session.execute("DELETE FROM T x WHERE x.ID = 0")
    plain = [r.to_plain()["ID"] for r in db.query("SELECT x.ID FROM x IN T").rows]
    assert 100 in plain and 0 not in plain
    with pytest.raises(KeyError):
        with session.transaction():
            session.insert("T", {"ID": 200, "NAME": "doomed", "KIDS": []})
            raise KeyError("rollback")
    plain = [r.to_plain()["ID"] for r in db.query("SELECT x.ID FROM x IN T").rows]
    assert 200 not in plain
    assert session.locks_held() == []
    session.close()


# ---------------------------------------------------------------------------
# Multi-threaded smoke: serial-schedule invariants
# ---------------------------------------------------------------------------


def test_multithreaded_writers_and_readers_smoke():
    db = Database()
    db.execute("CREATE TABLE S (W INT, SEQ INT, KIDS TABLE OF (V INT))")
    writers, per_writer, readers = 4, 12, 3
    errors = []
    observed = []

    def write(worker):
        try:
            with db.session(name=f"w{worker}") as session:
                for seq in range(per_writer):
                    session.insert(
                        "S",
                        {"W": worker, "SEQ": seq, "KIDS": [{"V": seq}]},
                    )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def read(worker):
        try:
            with db.session(name=f"r{worker}") as session:
                for _ in range(8):
                    rows = session.query("SELECT x.W, x.SEQ FROM x IN S").rows
                    seen = [r.to_plain() for r in rows]
                    # no torn rows: every visible row is fully formed
                    assert all(
                        r["W"] is not None and r["SEQ"] is not None for r in seen
                    )
                    observed.append(len(seen))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [
        threading.Thread(target=write, args=(i,)) for i in range(writers)
    ] + [threading.Thread(target=read, args=(i,)) for i in range(readers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert errors == []
    rows = [r.to_plain() for r in db.query("SELECT x.W, x.SEQ FROM x IN S").rows]
    assert len(rows) == writers * per_writer
    assert {(r["W"], r["SEQ"]) for r in rows} == {
        (w, s) for w in range(writers) for s in range(per_writer)
    }
    assert db.verify() == []
    # readers only ever saw monotonically completable prefixes
    assert all(0 <= count <= writers * per_writer for count in observed)


def test_interleaved_transactions_commit_durably_on_disk(tmp_path):
    path = str(tmp_path / "two.db")
    db = Database(path=path)
    db.execute("CREATE TABLE D (ID INT, TAG STRING)")
    barrier = threading.Barrier(2, timeout=10)
    errors = []

    def work(worker):
        try:
            with db.session(name=f"s{worker}") as session:
                barrier.wait()
                for round_no in range(5):
                    with session.transaction():
                        session.insert(
                            "D", {"ID": worker * 100 + round_no, "TAG": "a"}
                        )
                        session.insert(
                            "D", {"ID": worker * 100 + round_no + 50, "TAG": "b"}
                        )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert errors == []
    db.save()
    db.close()

    recovered = Database(path=path)
    try:
        ids = sorted(
            r.to_plain()["ID"]
            for r in recovered.query("SELECT x.ID FROM x IN D").rows
        )
        expected = sorted(
            w * 100 + r + off for w in range(2) for r in range(5) for off in (0, 50)
        )
        assert ids == expected
        assert recovered.verify() == []
    finally:
        recovered.close()


def test_concurrent_crash_recovers_only_committed_work(tmp_path):
    """Two sessions write under fault injection; the crash kills the
    'process'; recovery must replay exactly the acknowledged commits."""
    path = str(tmp_path / "crash.db")
    clock = CrashClock(countdown=None)
    setup = Database(
        path=path,
        pagedfile=FaultyPagedFile(DiskPagedFile(path), clock),
        wal_io=FaultyWalIO(path + ".wal", clock),
    )
    setup.execute("CREATE TABLE C (ID INT)")
    warmup = clock.ops
    setup.close()

    clock = CrashClock(countdown=warmup + 40)
    faulty = FaultyPagedFile(DiskPagedFile(path), clock)
    wal_io = FaultyWalIO(path + ".wal", clock)
    db = Database(path=path, pagedfile=faulty, wal_io=wal_io)
    acked: set[int] = set()
    attempted: set[int] = set()
    acked_latch = threading.Lock()

    def write(worker):
        try:
            with db.session(name=f"c{worker}") as session:
                for seq in range(200):
                    rowid = worker * 1000 + seq
                    with acked_latch:
                        attempted.add(rowid)
                    session.insert("C", {"ID": rowid})
                    with acked_latch:
                        acked.add(rowid)
        except (CrashPoint, ExecutionError):
            pass  # the process died under this session

    threads = [threading.Thread(target=write, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert clock.dead, "the workload should have hit the crash point"
    faulty.abandon()
    wal_io.abandon()

    recovered = Database(path=path)
    try:
        assert recovered.verify() == []
        got = {
            r.to_plain()["ID"]
            for r in recovered.query("SELECT x.ID FROM x IN C").rows
        }
        # every acknowledged insert survived; nothing appears that was
        # never attempted; in-flight rows may go either way
        assert acked <= got, f"lost acknowledged rows: {sorted(acked - got)}"
        assert got <= attempted, f"phantom rows: {sorted(got - acked)}"
    finally:
        recovered.close()


# ---------------------------------------------------------------------------
# The server
# ---------------------------------------------------------------------------


def _start_server(db):
    from repro.server import DatabaseServer

    server = DatabaseServer(db, port=0)
    server.serve_background()
    return server


def test_server_two_clients_share_one_database():
    from repro.server import LineClient

    db = _make_db()
    server = _start_server(db)
    host, port = server.address
    try:
        with LineClient(host, port) as a, LineClient(host, port) as b:
            assert "affected" in a.send("INSERT INTO T VALUES (7, 'seven', {})")
            out = b.send("SELECT x.NAME FROM x IN T WHERE x.ID = 7")
            assert "seven" in out
            # dot-commands ride the same wire
            assert "lock.waits" in a.send(".locks")
            assert "T" in b.send(".tables")
            # errors keep the connection usable
            assert a.send("SELEKT nope").startswith("error:")
            assert "affected" in a.send("DELETE FROM T x WHERE x.ID = 7")
    finally:
        server.shutdown()
        server.server_close()


def test_server_transactions_roll_back_on_disconnect():
    from repro.server import LineClient

    db = _make_db()
    server = _start_server(db)
    host, port = server.address
    try:
        client = LineClient(host, port)
        assert client.send("BEGIN").strip() == "begin"
        client.send("INSERT INTO T VALUES (42, 'ghost', {})")
        client.close()  # vanish mid-transaction
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            rows = db.query("SELECT x.ID FROM x IN T WHERE x.ID = 42").rows
            if rows == [] and db.locks.stats()["lock.granted"] == 0:
                break
            time.sleep(0.05)
        assert db.query("SELECT x.ID FROM x IN T WHERE x.ID = 42").rows == []
        with LineClient(host, port) as other:
            assert "begin" in other.send("BEGIN")
            assert "affected" in other.send(
                "INSERT INTO T VALUES (43, 'kept', {})"
            )
            assert "commit" in other.send("COMMIT")
        assert len(db.query("SELECT x.ID FROM x IN T WHERE x.ID = 43").rows) == 1
    finally:
        server.shutdown()
        server.server_close()


def test_lock_metrics_exported():
    obs.enable()
    try:
        db = _make_db()
        holder = db.session(name="m-holder")
        waiter = db.session(name="m-waiter", lock_timeout=0.05)
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with holder.transaction():
                holder.execute("UPDATE T x SET NAME = 'm' WHERE x.ID = 3")
                entered.set()
                release.wait(5)

        thread = threading.Thread(target=hold)
        thread.start()
        entered.wait(5)
        with pytest.raises(ExecutionError):
            waiter.query("SELECT x.NAME FROM x IN T")
        release.set()
        thread.join(timeout=10)
        totals = obs.METRICS.totals()
        assert totals.get("lock.waits", 0) >= 1
        assert totals.get("lock.timeouts", 0) >= 1
        holder.close()
        waiter.close()
    finally:
        obs.disable()


# ---------------------------------------------------------------------------
# Satellite regressions: executor comparison / aggregate / masked match
# ---------------------------------------------------------------------------


def test_compare_incomparable_operands_two_valued():
    # bool vs number: distinct types are never equal, so <> must hold
    assert compare("<>", True, 1) is True
    assert compare("<>", False, 0) is True
    assert compare("=", True, 1) is False
    # NULLs stay absorbing for every operator
    assert compare("<>", None, 1) is False
    assert compare("=", None, None) is False


def test_compare_table_vs_atom_not_equal(paper_db):
    from repro.model.values import TableValue

    dept = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 417"
    )
    assert isinstance(dept, TableValue)
    assert compare("<>", dept, 417) is True
    assert compare("=", dept, 417) is False
    # table-vs-table comparison is untouched
    assert compare("=", dept, dept) is True


def test_compare_same_type_semantics_unchanged():
    assert compare("=", 1, 1.0) is True
    assert compare("<>", "a", "b") is True
    assert compare("<", 1, 2) is True
    with pytest.raises(ExecutionError):
        compare("<", 1, "x")


def test_aggregate_heterogeneous_raises_execution_error():
    with pytest.raises(ExecutionError) as info:
        _aggregate("SUM", [1, "two", 3])
    assert "SUM" in str(info.value)
    with pytest.raises(ExecutionError):
        _aggregate("MIN", [1, "two"])
    with pytest.raises(ExecutionError):
        _aggregate("MAX", ["a", 2])
    # homogeneous inputs still work
    assert _aggregate("SUM", [1, 2, 3]) == 6
    assert _aggregate("MIN", ["a", "b"]) == "a"


def test_masked_match_non_string_subject_does_not_match():
    assert masked_match("*x*", 42) is False
    assert masked_match("*", None) is False
    assert masked_match("?", True) is False
    assert masked_match("*x*", "prefix") is True


def test_contains_full_query_path_with_nulls():
    db = Database()
    db.execute("CREATE TABLE W (ID INT, TXT STRING)")
    db.insert("W", {"ID": 1, "TXT": "alpha particle"})
    db.insert("W", {"ID": 2, "TXT": None})
    rows = db.query(
        "SELECT x.ID FROM x IN W WHERE x.TXT CONTAINS '*alpha*'"
    ).rows
    assert [r.to_plain() for r in rows] == [{"ID": 1}]
    # negated CONTAINS on a NULL subject: no match either way (two-valued)
    rows = db.query(
        "SELECT x.ID FROM x IN W WHERE x.TXT NOT CONTAINS '*alpha*'"
    ).rows
    assert {r.to_plain()["ID"] for r in rows} == {2}


# ---------------------------------------------------------------------------
# Satellite regression: buffer page() must not dirty untouched frames
# ---------------------------------------------------------------------------


def test_buffer_page_exception_before_mutation_stays_clean(tmp_path):
    from repro.storage.buffer import BufferManager
    from repro.storage.pagedfile import MemoryPagedFile
    from repro.wal.manager import WalManager

    file = MemoryPagedFile()
    wal = WalManager(str(tmp_path / "probe.wal"))
    buffer = BufferManager(file, capacity=4, wal=wal)
    page_no, page = buffer.new_page()
    buffer.unpin(page_no, dirty=True)
    wal.begin()
    wal.log_commit(None, buffer.image_for_log)
    buffer.flush_all()
    assert wal.protected_pages == set()

    with pytest.raises(RuntimeError):
        with buffer.page(page_no, dirty=True) as page:
            raise RuntimeError("failed before touching the page")
    # the frame was never mutated: it must not be dirty, and it must not
    # have entered the WAL's protected (no-steal) set
    assert page_no not in wal.protected_pages
    writes_before = buffer.stats.physical_writes
    buffer.flush_all()
    assert buffer.stats.physical_writes == writes_before
    wal.close()


def test_buffer_page_exception_after_mutation_still_dirty(tmp_path):
    from repro.storage.buffer import BufferManager
    from repro.storage.pagedfile import MemoryPagedFile
    from repro.wal.manager import WalManager

    file = MemoryPagedFile()
    wal = WalManager(str(tmp_path / "probe.wal"))
    buffer = BufferManager(file, capacity=4, wal=wal)
    page_no, page = buffer.new_page()
    buffer.unpin(page_no, dirty=True)
    wal.begin()
    wal.log_commit(None, buffer.image_for_log)
    buffer.flush_all()

    with pytest.raises(RuntimeError):
        with buffer.page(page_no, dirty=True) as page:
            page.buffer[100] = 0xAB  # a real mutation...
            raise RuntimeError("...then a failure")
    # the mutation happened: the frame must stay protected until logged
    assert page_no in wal.protected_pages
    wal.begin()
    wal.log_commit(None, buffer.image_for_log)
    buffer.flush_all()
    assert bytes(file.read_page(page_no))[100] == 0xAB
    wal.close()
