"""Unit tests for the binder: scoping, typing, result-schema inference."""

import pytest

from repro.errors import BindError
from repro.model.types import AtomicType
from repro.query.binder import Binder, Scope
from repro.query.parser import parse_query
from repro.datasets import paper


class _Provider:
    """A minimal SchemaProvider over the paper's schemas."""

    _TABLES = {
        "DEPARTMENTS": paper.DEPARTMENTS_SCHEMA,
        "REPORTS": paper.REPORTS_SCHEMA,
        "EMPLOYEES-1NF": paper.EMPLOYEES_1NF_SCHEMA,
    }
    _VERSIONED = {"DEPARTMENTS"}

    def table_schema(self, name):
        from repro.errors import UnknownTableError

        if name not in self._TABLES:
            raise UnknownTableError(name)
        return self._TABLES[name]

    def is_versioned(self, name):
        return name in self._VERSIONED


def bind(sql):
    return Binder(_Provider()).bind_query(parse_query(sql))


def test_result_schema_flat():
    schema = bind("SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS")
    assert schema.attribute_names == ("DNO", "BUDGET")
    assert schema.is_flat and not schema.ordered


def test_result_schema_nested_subquery():
    schema = bind(
        "SELECT x.DNO, P = (SELECT y.PNO FROM y IN x.PROJECTS) "
        "FROM x IN DEPARTMENTS"
    )
    attr = schema.attribute("P")
    assert attr.is_table
    assert attr.table.attribute_names == ("PNO",)


def test_result_carries_table_attribute():
    schema = bind("SELECT x.AUTHORS FROM x IN REPORTS")
    assert schema.attribute("AUTHORS").table.ordered


def test_ordered_result_from_ordered_source():
    schema = bind(
        "SELECT y.NAME FROM x IN REPORTS, y IN x.AUTHORS"
    )
    # two ranges: result unordered despite the list source
    assert not schema.ordered
    schema = bind("SELECT x.REPNO FROM x IN REPORTS ORDER BY x.REPNO")
    assert schema.ordered


def test_variable_shadowing_rejected():
    with pytest.raises(BindError):
        bind("SELECT x.DNO FROM x IN DEPARTMENTS, x IN DEPARTMENTS")


def test_quantifier_introduces_inner_scope():
    # y is visible only inside the quantifier body
    bind(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS: y.PNO = 1"
    )
    with pytest.raises(BindError):
        bind(
            "SELECT y.PNO FROM x IN DEPARTMENTS "
            "WHERE EXISTS y IN x.PROJECTS: y.PNO = 1"
        )


def test_quantifier_may_range_over_stored_table():
    bind(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS e IN EMPLOYEES-1NF: e.EMPNO = x.MGRNO"
    )


def test_range_variable_cannot_be_source():
    with pytest.raises(BindError):
        bind("SELECT y.DNO FROM x IN DEPARTMENTS, y IN x")


def test_subscript_type_propagates():
    schema = bind("SELECT x.AUTHORS[1].NAME AS FIRST FROM x IN REPORTS")
    assert schema.attribute("FIRST").atomic_type is AtomicType.STRING


def test_single_attribute_row_unwraps_in_select():
    schema = bind("SELECT x.AUTHORS[1] AS FIRST FROM x IN REPORTS")
    assert schema.attribute("FIRST").atomic_type is AtomicType.STRING


def test_multi_attribute_row_in_select_rejected():
    with pytest.raises(BindError):
        bind(
            "SELECT y.DESCRIPTORS[1] FROM y IN REPORTS"
        )  # DESCRIPTORS unordered -> also a subscript error; check message path


def test_asof_requires_versioned():
    bind("SELECT x.DNO FROM x IN DEPARTMENTS ASOF '1984-01-15'")
    with pytest.raises(BindError):
        bind("SELECT x.REPNO FROM x IN REPORTS ASOF '1984-01-15'")


def test_asof_on_path_rejected():
    with pytest.raises(BindError):
        bind(
            "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS ASOF '1984-01-15'"
        )


def test_contains_needs_string():
    with pytest.raises(BindError):
        bind("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO CONTAINS '*1*'")


def test_comparison_type_mismatch():
    with pytest.raises(BindError):
        bind("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = x.PROJECTS")
    with pytest.raises(BindError):
        bind("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET = TRUE")


def test_null_literal_compares_with_anything():
    bind("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = NULL")
    bind("SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.MGRNO <> NULL")


def test_aggregate_binding():
    schema = bind(
        "SELECT COUNT(x.PROJECTS) AS N, SUM(x.EQUIP.QU) AS Q, "
        "AVG(x.EQUIP.QU) AS A, MAX(x.BUDGET) AS M "
        "FROM x IN DEPARTMENTS"
    )
    assert schema.attribute("N").atomic_type is AtomicType.INT
    assert schema.attribute("Q").atomic_type is AtomicType.INT
    assert schema.attribute("A").atomic_type is AtomicType.FLOAT
    assert schema.attribute("M").atomic_type is AtomicType.INT


def test_scope_helper():
    scope = Scope()
    scope.define("x", paper.DEPARTMENTS_SCHEMA)
    child = scope.child()
    child.define("y", paper.REPORTS_SCHEMA)
    assert child.lookup("x") is paper.DEPARTMENTS_SCHEMA
    assert scope.lookup("y") is None
    with pytest.raises(BindError):
        child.define("x", paper.REPORTS_SCHEMA)
