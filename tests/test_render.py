"""Tests for the paper-style ASCII table renderer."""

from repro.datasets import paper
from repro.model.values import TableValue
from repro.render import format_atom, render_schema_tree, render_table


def test_render_flat_table():
    text = render_table(paper.departments_1nf())
    assert "{ DEPARTMENTS-1NF }" in text
    assert "314" in text and "320000" in text
    # grid lines present
    assert text.count("+") > 4


def test_render_nested_table_contains_inner_grid():
    text = render_table(paper.departments())
    assert "{ PROJECTS }" in text
    assert "{ MEMBERS }" in text
    assert "Consultant" in text


def test_render_ordered_table_uses_angle_brackets():
    reports = paper.reports()
    text = render_table(reports)
    assert "< AUTHORS >" in text
    assert "{ DESCRIPTORS }" in text


def test_render_empty_table():
    empty = TableValue(paper.EQUIP_SCHEMA)
    text = render_table(empty)
    assert "QU" in text and "TYPE" in text


def test_format_atom():
    import datetime

    assert format_atom(None) == "-"
    assert format_atom(True) == "true"
    assert format_atom(3.0) == "3"
    assert format_atom(3.5) == "3.5"
    assert format_atom(datetime.date(1984, 1, 15)) == "1984-01-15"


def test_render_schema_tree_shows_hierarchy():
    text = render_schema_tree(paper.DEPARTMENTS_SCHEMA)
    lines = text.splitlines()
    assert lines[0].startswith("DEPARTMENTS")
    assert any("MEMBERS" in line for line in lines)
    # MEMBERS is indented deeper than PROJECTS
    projects_indent = next(l for l in lines if "PROJECTS" in l).index("P")
    members_indent = next(l for l in lines if "MEMBERS" in l).index("M")
    assert members_indent > projects_indent
