"""Tests for the comparison baselines (flat joins, Lorie linked tuples) —
and the clustering claim of Section 4.1 measured against them."""

import pytest

from repro.baselines import FlatRelationalBaseline, LorieComplexObjects
from repro.datasets import DepartmentsGenerator, paper
from repro.model.values import TupleValue
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment


def normalize(dept: dict) -> TupleValue:
    return TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, dept)


@pytest.mark.parametrize("with_indexes", [True, False])
def test_flat_baseline_roundtrip(with_indexes):
    baseline = FlatRelationalBaseline(with_indexes=with_indexes)
    baseline.load(paper.DEPARTMENTS_ROWS)
    for dept in paper.DEPARTMENTS_ROWS:
        assert normalize(baseline.retrieve(dept["DNO"])) == normalize(dept)
    assert baseline.retrieve(999) is None


def test_lorie_baseline_roundtrip():
    baseline = LorieComplexObjects()
    baseline.load(paper.DEPARTMENTS_ROWS)
    for dept in paper.DEPARTMENTS_ROWS:
        got = baseline.retrieve(dept["DNO"])
        assert normalize(got) == normalize(dept)
        # ordered reconstruction matches insertion order exactly
        assert [p["PNO"] for p in got["PROJECTS"]] == [
            p["PNO"] for p in dept["PROJECTS"]
        ]
    assert baseline.retrieve(999) is None


def test_lorie_baseline_larger_workload():
    rows = DepartmentsGenerator(
        departments=20, projects_per_department=4, members_per_project=6,
        equipment_per_department=4, seed=9,
    ).rows()
    baseline = LorieComplexObjects()
    baseline.load(rows)
    for dept in rows[::5]:
        assert normalize(baseline.retrieve(dept["DNO"])) == normalize(dept)


def test_clustering_claim_nf2_touches_fewer_pages():
    """Section 4.1's motivation: a whole-object retrieval in AIM-II touches
    few pages; the flat join and the Lorie linking touch more once objects
    are large enough to be scattered."""
    rows = DepartmentsGenerator(
        departments=30, projects_per_department=5, members_per_project=10,
        equipment_per_department=5, seed=13,
    ).rows()
    # AIM-II clustered storage
    buffer = BufferManager(MemoryPagedFile(), capacity=512)
    manager = ComplexObjectManager(Segment(buffer))
    roots = {}
    for row in rows:
        roots[row["DNO"]] = manager.store(
            paper.DEPARTMENTS_SCHEMA, normalize(row)
        )
    flat = FlatRelationalBaseline()
    flat.load(rows)
    lorie = LorieComplexObjects()
    lorie.load(rows)

    probe = rows[len(rows) // 2]["DNO"]

    buffer.invalidate_cache()
    buffer.stats.reset()
    manager.load(roots[probe], paper.DEPARTMENTS_SCHEMA)
    nf2_pages = len(buffer.stats.pages_touched)

    flat_pages = flat.pages_touched_for(probe)
    lorie_pages = lorie.pages_touched_for(probe)

    assert nf2_pages < flat_pages
    assert nf2_pages < lorie_pages
