"""Tests for subtuple byte codecs and heap files."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import paper
from repro.errors import StorageError
from repro.model.schema import atomic, table
from repro.model.values import TupleValue
from repro.storage.buffer import BufferManager
from repro.storage.heap import HeapFile
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment
from repro.storage.subtuple import (
    KIND_DATA,
    POINTER_C,
    POINTER_D,
    decode_data_subtuple,
    decode_md_subtuple,
    decode_root_md,
    encode_data_subtuple,
    encode_md_subtuple,
    encode_root_md,
    subtuple_kind,
)
from repro.storage.tid import MiniTID, TID, decode_optional_mini, encode_optional_mini

ALL_TYPES = table(
    "T",
    atomic("I", "INT"),
    atomic("F", "FLOAT"),
    atomic("S", "STRING"),
    atomic("B", "BOOL"),
    atomic("D", "DATE"),
)


def test_data_subtuple_roundtrip_all_types():
    values = (-42, 3.25, "héllo wörld", True, datetime.date(1986, 5, 1))
    payload = encode_data_subtuple(ALL_TYPES.attributes, values)
    assert subtuple_kind(payload) == KIND_DATA
    assert decode_data_subtuple(ALL_TYPES.attributes, payload) == values


def test_data_subtuple_nulls():
    values = (None, None, None, None, None)
    payload = encode_data_subtuple(ALL_TYPES.attributes, values)
    assert decode_data_subtuple(ALL_TYPES.attributes, payload) == values


def test_data_subtuple_mixed_nulls():
    values = (7, None, "x", None, datetime.date(2000, 1, 1))
    payload = encode_data_subtuple(ALL_TYPES.attributes, values)
    assert decode_data_subtuple(ALL_TYPES.attributes, payload) == values


def test_data_subtuple_skips_table_attributes():
    schema = paper.DEPARTMENTS_SCHEMA
    payload = encode_data_subtuple(schema.attributes, (314, 56194, 320000))
    assert decode_data_subtuple(schema.attributes, payload) == (314, 56194, 320000)


def test_data_subtuple_arity_mismatch():
    with pytest.raises(StorageError):
        encode_data_subtuple(ALL_TYPES.attributes, (1, 2))


def test_decode_wrong_kind_rejected():
    md = encode_md_subtuple([[(POINTER_D, MiniTID(0, 0))]])
    with pytest.raises(StorageError):
        decode_data_subtuple(ALL_TYPES.attributes, md)
    data = encode_data_subtuple(ALL_TYPES.attributes, (1, 1.0, "s", False, None))
    with pytest.raises(StorageError):
        decode_md_subtuple(data)
    with pytest.raises(StorageError):
        decode_root_md(data)


def test_md_subtuple_roundtrip():
    groups = [
        [(POINTER_D, MiniTID(0, 1)), (POINTER_C, MiniTID(0, 2)), (POINTER_C, MiniTID(1, 0))],
        [(POINTER_D, MiniTID(2, 5))],
        [],
    ]
    payload = encode_md_subtuple(groups)
    assert decode_md_subtuple(payload) == groups


def test_root_md_roundtrip_with_gaps():
    page_list = [17, None, 23, None, 99]
    groups = [[(POINTER_D, MiniTID(0, 0)), (POINTER_C, MiniTID(2, 3))]]
    payload = encode_root_md(page_list, groups)
    decoded_pages, decoded_groups, decoded_roles = decode_root_md(payload)
    assert decoded_pages == page_list
    assert decoded_groups == groups
    assert decoded_roles == [False] * 5


def test_root_md_roundtrip_with_page_roles():
    page_list = [4, None, 9]
    roles = [True, False, False]
    payload = encode_root_md(page_list, [[]], roles)
    decoded_pages, _groups, decoded_roles = decode_root_md(payload)
    assert decoded_pages == page_list
    assert decoded_roles[0] is True and decoded_roles[2] is False


def test_invalid_pointer_tag_rejected():
    with pytest.raises(StorageError):
        encode_md_subtuple([[(0x77, MiniTID(0, 0))]])


def test_tid_encoding_roundtrip():
    tid = TID(123456, 42)
    assert TID.decode(tid.encode()) == tid
    mini = MiniTID(7, 99)
    assert MiniTID.decode(mini.encode()) == mini
    assert decode_optional_mini(encode_optional_mini(None)) is None
    assert decode_optional_mini(encode_optional_mini(mini)) == mini


def test_mini_tid_smaller_than_tid():
    """The paper's space argument for Mini TIDs."""
    assert len(MiniTID(0, 0).encode()) < len(TID(0, 0).encode())


@given(
    st.tuples(
        st.one_of(st.none(), st.integers(-2**40, 2**40)),
        st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
        st.one_of(st.none(), st.text(max_size=200)),
        st.one_of(st.none(), st.booleans()),
        st.one_of(st.none(), st.dates()),
    )
)
@settings(max_examples=80)
def test_property_data_subtuple_roundtrip(values):
    payload = encode_data_subtuple(ALL_TYPES.attributes, values)
    assert decode_data_subtuple(ALL_TYPES.attributes, payload) == values


# -- heap files --------------------------------------------------------------------


def make_heap(schema):
    buffer = BufferManager(MemoryPagedFile(), capacity=64)
    return HeapFile(Segment(buffer), schema)


def test_heap_rejects_nested_schema():
    buffer = BufferManager(MemoryPagedFile(), capacity=8)
    with pytest.raises(ValueError):
        HeapFile(Segment(buffer), paper.DEPARTMENTS_SCHEMA)


def test_heap_crud_and_scan():
    heap = make_heap(paper.MEMBERS_1NF_SCHEMA)
    source = paper.members_1nf()
    tids = [heap.insert(row) for row in source]
    assert heap.count() == 17
    fetched = heap.fetch(tids[0])
    assert fetched == source.rows[0]
    heap.update(tids[0], fetched.replace(FUNCTION="Emeritus"))
    assert heap.fetch(tids[0])["FUNCTION"] == "Emeritus"
    heap.delete(tids[1])
    assert heap.count() == 16
    scanned = {tid: row for tid, row in heap.scan()}
    assert tids[1] not in scanned
    assert scanned[tids[0]]["FUNCTION"] == "Emeritus"


def test_heap_many_rows_span_pages():
    heap = make_heap(paper.EMPLOYEES_1NF_SCHEMA)
    rows = [
        TupleValue.from_plain(
            paper.EMPLOYEES_1NF_SCHEMA, (i, "L" * 50, "F" * 30, "male")
        )
        for i in range(500)
    ]
    tids = [heap.insert(row) for row in rows]
    assert len({t.page for t in tids}) > 1
    assert heap.count() == 500
    assert heap.fetch(tids[250])["EMPNO"] == 250
