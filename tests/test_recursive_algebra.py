"""Tests for the recursive NF2 algebra (/Jae85b/)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    apply_at,
    nest_at,
    project_at,
    select_at,
    unnest,
    unnest_at,
)
from repro.datasets import paper
from repro.errors import SchemaError
from repro.model.values import TableValue


def departments():
    return paper.departments()


def test_apply_at_empty_path_is_plain_application():
    result = apply_at(departments(), [], lambda t: t)
    assert result == departments()


def test_select_at_filters_inside_projects():
    """Keep only consultant members inside every project — departments and
    projects stay intact."""
    result = select_at(
        departments(),
        ["PROJECTS", "MEMBERS"],
        lambda member: member["FUNCTION"] == "Consultant",
    )
    assert len(result) == 3  # departments untouched
    by_dno = {row["DNO"]: row for row in result}
    # project 17 keeps exactly 56019
    assert by_dno[314]["PROJECTS"][0]["MEMBERS"].column("EMPNO") == [56019]
    # project 23 keeps nobody but still exists
    assert len(by_dno[314]["PROJECTS"][1]["MEMBERS"]) == 0
    assert by_dno[314]["PROJECTS"].column("PNO") == [17, 23]


def test_project_at_inside_members():
    result = project_at(departments(), ["PROJECTS", "MEMBERS"], ["EMPNO"])
    members = result[0]["PROJECTS"][0]["MEMBERS"]
    assert members.schema.attribute_names == ("EMPNO",)
    assert members.column("EMPNO") == [39582, 56019, 69011]


def test_unnest_at_flattens_members_within_departments():
    """Flatten MEMBERS into PROJECTS per department: each department then
    holds a flat PROJECTS subtable with one row per member."""
    result = unnest_at(departments(), ["PROJECTS"], "MEMBERS")
    by_dno = {row["DNO"]: row for row in result}
    projects_314 = by_dno[314]["PROJECTS"]
    assert projects_314.schema.attribute_names == (
        "PNO", "PNAME", "EMPNO", "FUNCTION",
    )
    assert len(projects_314) == 7
    # top level untouched
    assert len(result) == 3


def test_nest_at_regroups_members_by_function():
    flat = unnest_at(departments(), ["PROJECTS"], "MEMBERS")
    regrouped = nest_at(
        flat, ["PROJECTS"], ["PNO", "PNAME", "EMPNO"], "WHO"
    )
    by_dno = {row["DNO"]: row for row in regrouped}
    functions = by_dno[314]["PROJECTS"].column("FUNCTION")
    assert sorted(set(functions)) == ["Consultant", "Leader", "Secretary", "Staff"]


def test_apply_at_preserves_empty_subtables():
    rows = [dict(paper.DEPARTMENTS_ROWS[0], PROJECTS=[])]
    table = TableValue.from_plain(paper.DEPARTMENTS_SCHEMA, rows)
    result = select_at(table, ["PROJECTS", "MEMBERS"], lambda m: True)
    assert len(result[0]["PROJECTS"]) == 0


def test_apply_at_rejects_atomic_path():
    with pytest.raises(SchemaError):
        select_at(departments(), ["DNO"], lambda r: True)


def test_recursive_equals_manual_composition():
    """unnest_at over PROJECTS == unnesting each department's PROJECTS by
    hand."""
    recursive = unnest_at(departments(), ["PROJECTS"], "MEMBERS")
    for row, original in zip(recursive, departments()):
        manual = unnest(original["PROJECTS"], "MEMBERS")
        assert row["PROJECTS"].canonical()[1:] == manual.canonical()[1:]


@given(keep=st.sampled_from(["Leader", "Consultant", "Secretary", "Staff"]))
@settings(max_examples=8, deadline=None)
def test_property_select_at_is_sound_and_complete(keep):
    result = select_at(
        departments(), ["PROJECTS", "MEMBERS"],
        lambda m: m["FUNCTION"] == keep,
    )
    kept = [
        (p["PNO"], m["EMPNO"])
        for d in result for p in d["PROJECTS"] for m in p["MEMBERS"]
    ]
    expected = [
        (p["PNO"], m["EMPNO"])
        for d in paper.DEPARTMENTS_ROWS
        for p in d["PROJECTS"]
        for m in p["MEMBERS"]
        if m["FUNCTION"] == keep
    ]
    assert sorted(kept) == sorted(expected)
