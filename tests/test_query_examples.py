"""End-to-end reproduction of the paper's Section 3 examples (1-8) plus the
Section 4.2 index queries and the Section 5 text query — executed through
the full stack (parser → binder → planner → executor → storage engine).
"""

import pytest

from repro.algebra import project, unnest
from repro.datasets import paper

# Fig 3 — constructing Table 5 from Tables 1 to 4 ("nest" operation).
FIG3_NEST_QUERY = """
SELECT x.DNO, x.MGRNO,
       PROJECTS = (SELECT y.PNO, y.PNAME,
                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION
                                     FROM z IN MEMBERS-1NF
                                     WHERE z.DNO = x.DNO AND z.PNO = y.PNO)
                   FROM y IN PROJECTS-1NF
                   WHERE y.DNO = x.DNO),
       x.BUDGET,
       EQUIP = (SELECT v.QU, v.TYPE
                FROM v IN EQUIP-1NF
                WHERE v.DNO = x.DNO)
FROM x IN DEPARTMENTS-1NF
"""

# Fig 2 — retrieving Table 5 with the result structure made explicit.
FIG2_EXPLICIT_QUERY = """
SELECT x.DNO, x.MGRNO,
       PROJECTS = (SELECT y.PNO, y.PNAME,
                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION
                                     FROM z IN y.MEMBERS)
                   FROM y IN x.PROJECTS),
       x.BUDGET,
       EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
FROM x IN DEPARTMENTS
"""


def test_example_1_select_star(paper_db):
    """Example 1: implicit result structure."""
    result = paper_db.query("SELECT * FROM x IN DEPARTMENTS")
    assert result == paper.departments()
    long_form = paper_db.query(
        "SELECT x.DNO, x.MGRNO, x.PROJECTS, x.BUDGET, x.EQUIP "
        "FROM x IN DEPARTMENTS"
    )
    assert long_form == paper.departments()


def test_example_2_explicit_structure(paper_db):
    """Example 2 / Fig 2: explicit result structure equals the source."""
    result = paper_db.query(FIG2_EXPLICIT_QUERY)
    assert result == paper.departments()


def test_example_3_nest_from_flat_tables(paper_db):
    """Example 3 / Fig 3: Table 5 reconstructed from Tables 1-4."""
    result = paper_db.query(FIG3_NEST_QUERY)
    assert result == paper.departments()


def test_example_4_unnest_gives_table7(paper_db):
    """Example 4: flattening Table 5 into Table 7 (and the equivalent flat
    three-way join gives the same rows)."""
    result = paper_db.query(
        "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION "
        "FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS"
    )
    assert len(result) == 17
    # cross-check against the algebraic unnest of Table 5
    expected = project(
        unnest(unnest(paper.departments(), "PROJECTS"), "MEMBERS"),
        ["DNO", "MGRNO", "PNO", "PNAME", "EMPNO", "FUNCTION"],
        name="RESULT",
    )
    assert result == expected
    # the paper's flat formulation (more difficult to write, same answer)
    flat = paper_db.query(
        "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION "
        "FROM x IN DEPARTMENTS-1NF, y IN PROJECTS-1NF, z IN MEMBERS-1NF "
        "WHERE x.DNO = y.DNO AND y.PNO = z.PNO AND y.DNO = z.DNO"
    )
    assert flat == result


def test_example_5_exists(paper_db):
    """Example 5: departments using a PC/AT."""
    result = paper_db.query(
        "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'"
    )
    # all three of the paper's departments own a PC/AT
    assert sorted(result.column("DNO")) == [218, 314, 417]
    assert result.schema.is_flat


def test_example_6_all_quantifier_empty_result(paper_db):
    """Example 6: departments with only consultants — empty, as the paper
    states."""
    result = paper_db.query(
        "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS "
        "WHERE ALL y IN x.PROJECTS: ALL z IN y.MEMBERS: "
        "z.FUNCTION = 'Consultant'"
    )
    assert len(result) == 0


def test_example_7_join_members_employees(paper_db):
    """Example 7 / Fig 4: employees grouped by department via a join
    between MEMBERS (inside DEPARTMENTS) and EMPLOYEES-1NF."""
    result = paper_db.query(
        """
        SELECT x.DNO, x.MGRNO,
               EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX,
                                   z.FUNCTION
                            FROM y IN x.PROJECTS, z IN y.MEMBERS,
                                 u IN EMPLOYEES-1NF
                            WHERE z.EMPNO = u.EMPNO)
        FROM x IN DEPARTMENTS
        """
    )
    assert len(result) == 3
    by_dno = {row["DNO"]: row for row in result}
    employees_314 = by_dno[314]["EMPLOYEES"]
    assert len(employees_314) == 7  # 3 members of project 17 + 4 of 23
    krueger = [r for r in employees_314 if r["EMPNO"] == 39582][0]
    assert krueger["LNAME"] == "Krueger"


def test_example_7b_two_joins_manager_name(paper_db):
    """Fig 5: the same query with a second join retrieving the manager's
    name and sex instead of MGRNO."""
    result = paper_db.query(
        """
        SELECT x.DNO, m.LNAME, m.SEX,
               EMPLOYEES = (SELECT z.EMPNO, u.LNAME, z.FUNCTION
                            FROM y IN x.PROJECTS, z IN y.MEMBERS,
                                 u IN EMPLOYEES-1NF
                            WHERE z.EMPNO = u.EMPNO)
        FROM x IN DEPARTMENTS, m IN EMPLOYEES-1NF
        WHERE x.MGRNO = m.EMPNO
        """
    )
    by_dno = {row["DNO"]: row for row in result}
    assert by_dno[314]["LNAME"] == "Schmidt"
    assert by_dno[417]["SEX"] == "female"


def test_example_8_list_subscript(paper_db):
    """Example 8: reports with 'Jones A' as the first author."""
    result = paper_db.query(
        "SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS "
        "WHERE x.AUTHORS[1] = 'Jones A'"
    )
    assert len(result) == 1
    # the result is not flat: AUTHORS is carried over as a list
    authors = result[0]["AUTHORS"]
    assert authors.ordered
    assert authors.column("NAME") == ["Jones A"]
    # report 0291 has Jones as *third* author: correctly excluded


def test_section42_query1_consultant_departments(paper_db):
    result = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    )
    assert sorted(result.column("DNO")) == [218, 314]


def test_section42_query2_consultant_projects(paper_db):
    result = paper_db.query(
        "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS "
        "WHERE EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant'"
    )
    assert sorted(result.column("PNO")) == [17, 25]


def test_section42_query3_pno_and_consultant(paper_db):
    result = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS "
        "(y.PNO = 17 AND EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
    )
    assert result.column("DNO") == [314]


def test_section5_text_query(paper_db):
    """Section 5: masked search + list membership.  Against the paper's
    Table 6 the '*comput*' pattern matches nothing; '*string*' finds 0189."""
    empty = paper_db.query(
        "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS "
        "WHERE x.TITLE CONTAINS '*comput*' "
        "AND EXISTS y IN x.AUTHORS: y.NAME = 'Jones A'"
    )
    assert len(empty) == 0
    found = paper_db.query(
        "SELECT x.REPNO FROM x IN REPORTS "
        "WHERE x.TITLE CONTAINS '*string*search*'"
    )
    assert found.column("REPNO") == ["0189"]
