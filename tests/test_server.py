"""Wire-protocol tests for both server engines (PR 9).

Covers the async pipelined server (ordering, admission control, the
``Server/Queue`` wait event) and the protocol regressions fixed in this
PR: ``_frame``/``readline`` desync on ``str.splitlines`` specials,
silent truncation on mid-payload EOF, executing statements for a dead
client, and case-sensitive ``.quit``.
"""

import socket
import threading
import time

import pytest

from repro import obs
from repro.concurrency import LockMode
from repro.database import Database
from repro.server import (
    AsyncDatabaseServer,
    DatabaseServer,
    LineClient,
    _frame,
)


def _make_db():
    db = Database()
    db.execute("CREATE TABLE T (ID INT, NAME STRING)")
    return db


@pytest.fixture(params=["async", "threaded"])
def served(request):
    """One in-memory database behind either server engine."""
    db = _make_db()
    if request.param == "async":
        server = AsyncDatabaseServer(db, port=0)
        server.serve_background()
    else:
        server = DatabaseServer(db, port=0)
        server.serve_background()
    try:
        yield db, server
    finally:
        server.shutdown()
        server.server_close()
        db.close()


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


# -- framing ---------------------------------------------------------------


def test_frame_counts_newlines_only():
    # str.splitlines would split these into phantom payload lines the
    # reader (readline, \n only) could never find — desyncing the stream
    for sneaky in ("\x0b", "\x0c", "\x1c", "\x1d", "\x1e", "\x85",
                   " ", " "):
        text = f"a{sneaky}b"
        framed = _frame(text + "\n")
        assert framed.startswith(b"#1\n"), repr(sneaky)
        assert framed.decode("utf-8").count("\n") == 2  # header + 1 line
    assert _frame("") == b"#0\n"
    assert _frame("x\ny\n") == b"#2\nx\ny\n"
    assert _frame("x\ny") == b"#2\nx\ny\n"


def test_vertical_tab_value_roundtrips(served):
    db, server = served
    host, port = server.address
    with LineClient(host, port) as client:
        assert "affected" in client.send(
            "INSERT INTO T VALUES (1, 'above\x0bbelow')"
        )
        reply = client.send("SELECT t.NAME FROM t IN T WHERE t.ID = 1")
        # the value crosses the wire inside ONE payload line...
        assert "above\x0bbelow" in reply
        # ...and the stream stays in sync for the next exchange
        assert "1 tuple affected" in client.send(
            "INSERT INTO T VALUES (2, 'plain')"
        )


# -- client EOF handling ---------------------------------------------------


def test_line_client_raises_on_mid_payload_eof():
    """A server dying mid-payload must raise, not truncate silently."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()

    def half_reply():
        conn, _ = listener.accept()
        conn.recv(4096)  # the statement
        conn.sendall(b"#5\nonly one line arrives\n")
        conn.close()

    thread = threading.Thread(target=half_reply, daemon=True)
    thread.start()
    try:
        client = LineClient(host, port, timeout=5)
        with pytest.raises(ConnectionError, match="mid-payload"):
            client.send("SELECT t.ID FROM t IN T")
        client.close()
    finally:
        listener.close()
        thread.join(timeout=5)


def test_line_client_raises_on_missing_header():
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()

    def no_reply():
        conn, _ = listener.accept()
        conn.recv(4096)
        conn.close()  # EOF where the #<n> header should be

    thread = threading.Thread(target=no_reply, daemon=True)
    thread.start()
    try:
        client = LineClient(host, port, timeout=5)
        with pytest.raises(ConnectionError, match="no header"):
            client.send("SELECT t.ID FROM t IN T")
        client.close()
    finally:
        listener.close()
        thread.join(timeout=5)


# -- dead clients ----------------------------------------------------------


def test_dead_client_rolls_back_and_stops(served):
    """A client that vanishes (RST) mid-pipeline must not keep its
    transaction's locks, and the server must stop serving the corpse."""
    db, server = served
    host, port = server.address
    sock = socket.create_connection((host, port), timeout=5)
    payload = "BEGIN\n" + "".join(
        f"INSERT INTO T VALUES ({i}, 'ghost')\n" for i in range(20)
    )
    sock.sendall(payload.encode("utf-8"))
    time.sleep(0.2)  # let some statements execute
    # RST on close: the server's next write (or read) fails immediately
    sock.setsockopt(
        socket.SOL_SOCKET, socket.SO_LINGER,
        # onoff=1, linger=0 -> abortive close
        b"\x01\x00\x00\x00\x00\x00\x00\x00",
    )
    sock.close()
    assert _wait_for(lambda: not db.active_sessions())
    assert _wait_for(lambda: db.locks.stats()["lock.granted"] == 0)
    # the explicit transaction was rolled back: no ghost rows survive
    assert db.query("SELECT t.ID FROM t IN T").to_plain() == []
    # and the server still serves new clients
    with LineClient(host, port) as client:
        assert "affected" in client.send("INSERT INTO T VALUES (99, 'alive')")


# -- dot-command case ------------------------------------------------------


@pytest.mark.parametrize("verb", [".quit", ".QUIT", ".Exit"])
def test_quit_matches_case_insensitively(served, verb):
    db, server = served
    host, port = server.address
    client = LineClient(host, port)
    assert client.send(verb).strip() == "bye"
    with pytest.raises(ConnectionError):
        client.send("SELECT t.ID FROM t IN T")
    client.close()
    assert _wait_for(lambda: not db.active_sessions())


def test_dot_commands_match_case_insensitively(served):
    db, server = served
    host, port = server.address
    with LineClient(host, port) as client:
        lower = client.send(".tables")
        upper = client.send(".TABLES")
        assert upper == lower and "T" in upper


# -- pipelining ------------------------------------------------------------


def test_pipelined_responses_come_back_in_order():
    db = _make_db()
    server = AsyncDatabaseServer(db, port=0)
    server.serve_background()
    host, port = server.address
    try:
        with LineClient(host, port) as client:
            inserts = [
                f"INSERT INTO T VALUES ({i}, 'row-{i}')" for i in range(20)
            ]
            assert all("affected" in r for r in client.pipeline(inserts))
            selects = [
                f"SELECT t.NAME FROM t IN T WHERE t.ID = {i}"
                for i in range(20)
            ]
            replies = client.pipeline(selects)
            for i, reply in enumerate(replies):
                assert f"row-{i}" in reply, f"reply {i} out of order"
    finally:
        server.shutdown()
        db.close()


def test_pipeline_works_on_threaded_server_too():
    # the baseline engine is slower (one statement per loop turn) but
    # must not corrupt a pipelined stream
    db = _make_db()
    server = DatabaseServer(db, port=0)
    server.serve_background()
    host, port = server.address
    try:
        with LineClient(host, port) as client:
            replies = client.pipeline(
                [f"INSERT INTO T VALUES ({i}, 'x')" for i in range(5)]
                + ["SELECT t.ID FROM t IN T WHERE t.ID = 3"]
            )
            assert all("affected" in r for r in replies[:5])
            assert "3" in replies[5]
    finally:
        server.shutdown()
        server.server_close()
        db.close()


# -- admission control -----------------------------------------------------


def test_admission_control_sheds_load_in_order():
    db = _make_db()
    db.execute("INSERT INTO T VALUES (1, 'one')")
    server = AsyncDatabaseServer(db, port=0, workers=1, max_queue=2)
    server.serve_background()
    host, port = server.address
    obs.METRICS.enable()
    obs.METRICS.reset()  # counters are process-global
    try:
        holder = db.session(name="blocker")
        txn = holder.transaction()
        txn.__enter__()
        try:
            with holder._statement("<test> hold table-X"):
                holder.lock(("table", "T"), LockMode.X)

                client = LineClient(host, port)
                total = 8
                for _ in range(total):
                    client._write_statement("SELECT t.ID FROM t IN T")
                client._file.flush()
                # all 8 arrive; 2 admitted (1 running + 1 queued), 6 shed
                assert _wait_for(
                    lambda: obs.METRICS.totals().get("server.rejected", 0)
                    >= total - 2
                )
            exc = RuntimeError("release")
            txn.__exit__(type(exc), exc, None)
        finally:
            holder.close()

        replies = [client._read_reply() for _ in range(total)]
        client.close()
        # in-order shedding: the admitted statements answer first, every
        # shed statement reports the overload instead of hanging
        assert all("(1 tuple)" in r for r in replies[:2])
        assert all("server overloaded" in r for r in replies[2:])
        totals = obs.METRICS.totals()
        assert totals.get("server.rejected") == total - 2
        assert totals.get("server.requests", 0) >= total
        # queued time is attributed to the Server/Queue wait event
        assert totals.get("wait.count", 0) > 0
        assert obs.WAITS.totals().get("Server/Queue", (0, 0))[0] >= 1
    finally:
        obs.METRICS.disable()
        server.shutdown()
        db.close()


def test_server_queue_metrics_and_wait_on_normal_load():
    db = _make_db()
    server = AsyncDatabaseServer(db, port=0)
    server.serve_background()
    host, port = server.address
    obs.METRICS.enable()
    obs.METRICS.reset()  # counters are process-global
    try:
        with LineClient(host, port) as client:
            client.pipeline(
                [f"INSERT INTO T VALUES ({i}, 'x')" for i in range(10)]
            )
        totals = obs.METRICS.totals()
        assert totals.get("server.requests", 0) >= 10
        assert totals.get("server.rejected", 0) == 0
        waits = obs.WAITS.totals()
        assert waits.get("Server/Queue", (0, 0))[0] >= 10
    finally:
        obs.METRICS.disable()
        server.shutdown()
        db.close()


# -- replication handshake guards -----------------------------------------


def test_threaded_server_refuses_replicate():
    db = _make_db()
    server = DatabaseServer(db, port=0)
    server.serve_background()
    host, port = server.address
    try:
        with LineClient(host, port) as client:
            reply = client.send("REPLICATE 0")
            assert "error" in reply and "async" in reply
    finally:
        server.shutdown()
        server.server_close()
        db.close()


def test_async_server_refuses_replicate_without_wal():
    db = _make_db()  # in-memory: no WAL to ship
    server = AsyncDatabaseServer(db, port=0)
    server.serve_background()
    host, port = server.address
    try:
        with LineClient(host, port) as client:
            reply = client.send("REPLICATE 0")
            assert "error" in reply and "WAL" in reply
    finally:
        server.shutdown()
        db.close()
