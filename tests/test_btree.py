"""Unit + property tests for the B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AccessPathError
from repro.index.btree import BPlusTree


def test_insert_and_search():
    tree = BPlusTree(order=4)
    tree.insert("b", 2)
    tree.insert("a", 1)
    tree.insert("c", 3)
    assert tree.search("a") == [1]
    assert tree.search("missing") == []
    assert len(tree) == 3


def test_posting_lists_accumulate():
    tree = BPlusTree(order=4)
    tree.insert("Consultant", "t1")
    tree.insert("Consultant", "t2")
    tree.insert("Consultant", "t3")
    assert tree.search("Consultant") == ["t1", "t2", "t3"]
    assert len(tree) == 1


def test_remove():
    tree = BPlusTree(order=4)
    tree.insert("k", 1)
    tree.insert("k", 2)
    assert tree.remove("k", 1)
    assert tree.search("k") == [2]
    assert tree.remove("k", 2)
    assert tree.search("k") == []
    assert len(tree) == 0
    assert not tree.remove("k", 3)
    assert not tree.remove("absent", 1)


def test_range_scan():
    tree = BPlusTree(order=4)
    for key in [5, 1, 9, 3, 7, 2, 8, 4, 6, 0]:
        tree.insert(key, f"v{key}")
    keys = [k for k, _ in tree.range(3, 7)]
    assert keys == [3, 4, 5, 6, 7]
    keys = [k for k, _ in tree.range(3, 7, include_low=False, include_high=False)]
    assert keys == [4, 5, 6]
    keys = [k for k, _ in tree.range(high=2)]
    assert keys == [0, 1, 2]
    keys = [k for k, _ in tree.range(low=8)]
    assert keys == [8, 9]


def test_items_sorted_after_many_inserts():
    tree = BPlusTree(order=4)
    values = list(range(500))
    random.Random(3).shuffle(values)
    for v in values:
        tree.insert(v, v)
    assert [k for k, _ in tree.items()] == list(range(500))
    tree.validate()


def test_contains():
    tree = BPlusTree(order=4)
    tree.insert("x", 1)
    assert "x" in tree
    assert "y" not in tree


def test_order_too_small_rejected():
    with pytest.raises(AccessPathError):
        BPlusTree(order=2)


@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(0, 50), st.integers(0, 5)),
        max_size=200,
    ),
    st.sampled_from([4, 5, 8, 32]),
)
@settings(max_examples=60, deadline=None)
def test_property_btree_model_conformance(operations, order):
    """The tree behaves like dict[key, list] under random insert/remove."""
    tree = BPlusTree(order=order)
    model: dict[int, list[int]] = {}
    for is_insert, key, value in operations:
        if is_insert:
            tree.insert(key, value)
            model.setdefault(key, []).append(value)
        else:
            removed = tree.remove(key, value)
            expected = key in model and value in model[key]
            assert removed == expected
            if expected:
                model[key].remove(value)
                if not model[key]:
                    del model[key]
    for key, values in model.items():
        assert sorted(tree.search(key)) == sorted(values)
    assert [k for k, _ in tree.items()] == sorted(model)
    tree.validate()
