"""Tests for the MD/data page-pool separation and MD rendering."""

import pytest

from repro.datasets import DepartmentsGenerator, paper
from repro.model.values import TupleValue
from repro.storage.address_space import DATA_POOL, MD_POOL, LocalAddressSpace
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.mdrender import md_statistics_row, render_mini_directory
from repro.storage.minidirectory import StorageStructure
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment
from repro.storage.subtuple import KIND_DATA, KIND_MD, subtuple_kind


def make_space():
    segment = Segment(BufferManager(MemoryPagedFile(), capacity=64))
    return LocalAddressSpace(segment)


def test_pools_use_disjoint_pages():
    space = make_space()
    data_minis = [space.insert(b"\xd1data" + bytes([i])) for i in range(5)]
    md_minis = [space.insert(b"\xe1md" + bytes([i]), pool=MD_POOL) for i in range(5)]
    data_pages = {space.translate(m).page for m in data_minis}
    md_pages = {space.translate(m).page for m in md_minis}
    assert data_pages.isdisjoint(md_pages)
    assert set(space.pages_of(DATA_POOL)) == data_pages
    assert set(space.pages_of(MD_POOL)) == md_pages


def test_pool_respected_on_forwarded_update():
    space = make_space()
    mini = space.insert(b"\xe1small", pool=MD_POOL)
    # fill the MD page so the grown record must move
    fillers = [space.insert(b"\xe1" + b"f" * 500, pool=MD_POOL) for _ in range(7)]
    space.update(mini, b"\xe1" + b"G" * 1200)
    assert space.read(mini) == b"\xe1" + b"G" * 1200
    # the relocated body stayed in the MD pool
    md_pages = set(space.pages_of(MD_POOL))
    data_pages = set(space.pages_of(DATA_POOL))
    assert not data_pages  # nothing leaked into the data pool


def test_stored_object_pages_hold_one_kind_each():
    buffer = BufferManager(MemoryPagedFile(), capacity=256)
    manager = ComplexObjectManager(Segment(buffer), StorageStructure.SS3)
    gen = DepartmentsGenerator(departments=1, projects_per_department=6,
                               members_per_project=20)
    value = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, gen.rows()[0])
    root = manager.store(paper.DEPARTMENTS_SCHEMA, value)
    obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
    for page_no, is_md in zip(obj.space.page_list, obj.space.page_roles):
        if page_no is None:
            continue
        page = buffer.fetch(page_no)
        try:
            kinds = {subtuple_kind(payload) for _s, _f, payload in page.slots()}
        finally:
            buffer.unpin(page_no)
        if is_md:
            assert KIND_DATA not in kinds
        else:
            assert kinds <= {KIND_DATA}


def test_gap_reuse_may_change_pool():
    space = make_space()
    mini = space.insert(b"\xd1victim")
    victim_page = space.translate(mini).page
    space.delete(mini)  # page empties -> gap
    assert None in space.page_list
    new = space.insert(b"\xe1newcomer", pool=MD_POOL)
    # the gap was reused and its role updated
    assert space.page_list[new.local_page] is not None
    assert space.page_roles[new.local_page] is MD_POOL


# -- MD rendering ----------------------------------------------------------------


def test_render_mini_directory_all_structures():
    for structure in StorageStructure:
        buffer = BufferManager(MemoryPagedFile(), capacity=64)
        manager = ComplexObjectManager(Segment(buffer), structure)
        root = manager.store(
            paper.DEPARTMENTS_SCHEMA,
            TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, paper.DEPARTMENTS_ROWS[0]),
        )
        text = render_mini_directory(manager, root, paper.DEPARTMENTS_SCHEMA)
        assert f"structure={structure.value}" in text
        assert "(314 56194 320000)" in text
        assert "(56019 Consultant)" in text
        if structure is StorageStructure.SS2:
            assert "(no MD subtuple)" in text
        else:
            assert "[MD subtable PROJECTS" in text
        stats = md_statistics_row(manager, root, paper.DEPARTMENTS_SCHEMA)
        assert "MD subtuples" in stats
