"""Tests for Database.storage_report and the shell's .storage/.verify."""

import io

from repro.database import Database
from repro.datasets import DepartmentsGenerator, paper
from repro.shell import dot_command


def test_storage_report_shape(paper_db):
    report = paper_db.storage_report()
    assert report["total_pages"] > 0
    departments = report["tables"]["DEPARTMENTS"]
    assert departments["kind"] == "NF2"
    assert departments["tuples"] == 3
    assert departments["md_pages"] >= 1
    assert departments["data_pages"] >= 1
    # SS3: dept 314 has 5 MD subtuples (2 projects), 218 and 417 have 4 each
    assert departments["md_subtuples"] == 13
    employees = report["tables"]["EMPLOYEES-1NF"]
    assert employees["kind"] == "1NF"
    assert employees["tuples"] == 20
    assert 0 < employees["fill_factor"] <= 1


def test_storage_report_scales_with_data():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    small = db.storage_report()["total_pages"]
    db.insert_many(
        "DEPARTMENTS",
        DepartmentsGenerator(departments=20, projects_per_department=4,
                             members_per_project=10).rows(),
    )
    large = db.storage_report()
    assert large["total_pages"] > small
    assert large["tables"]["DEPARTMENTS"]["pages"] > 2


def test_storage_report_subtuple_versioned():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True,
                    versioning="subtuple")
    tid = db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at=1)
    db.update("DEPARTMENTS", tid, {"BUDGET": 5}, at=2)
    report = db.storage_report()["tables"]["DEPARTMENTS"]
    assert report["tuples"] == 1
    assert "md_pages" in report


def test_shell_storage_and_verify(paper_db):
    out = io.StringIO()
    dot_command(paper_db, ".storage", out=out)
    text = out.getvalue()
    assert "DEPARTMENTS" in text and "MD" in text
    out = io.StringIO()
    dot_command(paper_db, ".verify", out=out)
    assert "consistent" in out.getvalue()
