"""Unit + property tests for the NF2 algebra (nest/unnest/project/join)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import nest, unnest, project, select_rows, natural_join
from repro.datasets import paper
from repro.errors import DataError, SchemaError
from repro.model.schema import atomic, list_of, table
from repro.model.values import TableValue


def test_unnest_departments_projects():
    departments = paper.departments()
    flat = unnest(departments, "PROJECTS")
    assert flat.schema.attribute_names == (
        "DNO", "MGRNO", "PNO", "PNAME", "MEMBERS", "BUDGET", "EQUIP",
    )
    assert len(flat) == 4  # 4 projects altogether


def test_double_unnest_gives_table7_shape():
    departments = paper.departments()
    flat = unnest(unnest(departments, "PROJECTS"), "MEMBERS")
    projected = project(
        flat, ["DNO", "MGRNO", "PNO", "PNAME", "EMPNO", "FUNCTION"], name="RESULT"
    )
    assert len(projected) == 17  # every member of every project
    assert projected.schema.is_flat


def test_unnest_atomic_attribute_rejected():
    with pytest.raises(SchemaError):
        unnest(paper.departments(), "DNO")


def test_unnest_name_clash_rejected():
    inner = table("S", atomic("A", "INT"))
    from repro.model.schema import nested

    outer = table("T", atomic("A", "INT"), nested("S", inner))
    value = TableValue.from_plain(outer, [{"A": 1, "S": [{"A": 2}]}])
    with pytest.raises(SchemaError):
        unnest(value, "S")


def test_unnest_drops_tuples_with_empty_subtable():
    schema = paper.DEPARTMENTS_SCHEMA
    rows = [dict(paper.DEPARTMENTS_ROWS[0])]
    rows[0] = dict(rows[0], PROJECTS=[])
    value = TableValue.from_plain(schema, rows)
    assert len(unnest(value, "PROJECTS")) == 0


def test_nest_members_groups_correctly():
    members = paper.members_1nf()
    nested_value = nest(members, ["EMPNO", "FUNCTION"], "MEMBERS")
    # one group per (PNO, DNO) pair
    assert len(nested_value) == 4
    group_314_17 = [
        row for row in nested_value if row["DNO"] == 314 and row["PNO"] == 17
    ]
    assert len(group_314_17) == 1
    assert len(group_314_17[0]["MEMBERS"]) == 3


def test_nest_rejects_empty_or_total_grouping():
    members = paper.members_1nf()
    with pytest.raises(SchemaError):
        nest(members, [], "X")
    with pytest.raises(SchemaError):
        nest(members, list(members.schema.attribute_names), "X")


def test_nest_then_unnest_is_identity_on_paper_data():
    members = paper.members_1nf()
    again = unnest(nest(members, ["EMPNO", "FUNCTION"], "MEMBERS"), "MEMBERS")
    assert project(again, ["EMPNO", "PNO", "DNO", "FUNCTION"]) == members


def test_project_removes_duplicates_on_relations():
    members = paper.members_1nf()
    functions = project(members, ["FUNCTION"])
    assert sorted(functions.column("FUNCTION")) == [
        "Consultant", "Leader", "Secretary", "Staff",
    ]


def test_project_keeps_duplicates_on_lists():
    schema = list_of("L", atomic("A", "INT"), atomic("B", "INT"))
    value = TableValue.from_plain(schema, [(1, 1), (1, 2)])
    assert len(project(value, ["A"])) == 2


def test_select_rows():
    equip = paper.equip_1nf()
    pcs = select_rows(equip, lambda row: row["TYPE"] == "PC/AT")
    assert sorted(pcs.column("DNO")) == [218, 314, 417]


def test_natural_join_members_employees():
    joined = natural_join(paper.members_1nf(), paper.employees_1nf())
    assert len(joined) == 17
    assert "LNAME" in joined.schema.attribute_names


def test_join_with_explicit_pairs():
    joined = natural_join(
        paper.departments_1nf(),
        paper.employees_1nf(),
        on=[("MGRNO", "EMPNO")],
        name="MGRS",
    )
    assert len(joined) == 3
    assert "LNAME" in joined.schema.attribute_names


def test_join_without_shared_attributes_rejected():
    with pytest.raises(SchemaError):
        natural_join(paper.equip_1nf().__class__(paper.EQUIP_SCHEMA), _unrelated())


def _unrelated():
    schema = table("U", atomic("ZZZ", "INT"))
    return TableValue.from_plain(schema, [(1,)])


def test_join_on_table_valued_attribute_rejected():
    with pytest.raises(DataError):
        natural_join(
            paper.departments(), paper.departments(), on=[("PROJECTS", "PROJECTS")]
        )


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

_FLAT = table(
    "R", atomic("K", "INT"), atomic("G", "INT"), atomic("V", "STRING")
)

_rows = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 3),
        st.sampled_from(["a", "b", "c"]),
    ),
    max_size=20,
    unique=True,
)


@given(_rows)
@settings(max_examples=60)
def test_property_unnest_of_nest_is_identity(rows):
    """unnest(nest(R)) == R for any 1NF relation R (Jaeschke/Schek)."""
    value = TableValue.from_plain(_FLAT, rows)
    nested_value = nest(value, ["G", "V"], "SUB")
    flattened = unnest(nested_value, "SUB")
    assert project(flattened, ["K", "G", "V"]) == value


@given(_rows)
@settings(max_examples=60)
def test_property_nest_partitions_rows(rows):
    value = TableValue.from_plain(_FLAT, rows)
    nested_value = nest(value, ["G", "V"], "SUB")
    # group keys are unique
    keys = [row["K"] for row in nested_value]
    assert len(keys) == len(set(keys))
    # total inner cardinality is preserved
    assert sum(len(row["SUB"]) for row in nested_value) == len(rows)


@given(_rows)
@settings(max_examples=60)
def test_property_project_is_idempotent(rows):
    value = TableValue.from_plain(_FLAT, rows)
    once = project(value, ["K", "G"])
    twice = project(once, ["K", "G"])
    assert once == twice


def test_outer_unnest_preserves_empty_subtables():
    from repro.algebra.ops import outer_unnest

    schema = paper.DEPARTMENTS_SCHEMA
    rows = [dict(paper.DEPARTMENTS_ROWS[0]),
            dict(paper.DEPARTMENTS_ROWS[1], PROJECTS=[])]
    value = TableValue.from_plain(schema, rows)
    classical = unnest(value, "PROJECTS")
    outer = outer_unnest(value, "PROJECTS")
    # classical unnest loses department 218; outer unnest keeps it padded
    assert 218 not in classical.column("DNO")
    assert 218 in outer.column("DNO")
    padded = [r for r in outer if r["DNO"] == 218][0]
    assert padded["PNO"] is None and padded["PNAME"] is None
    assert len(padded["MEMBERS"]) == 0  # nested pad: empty subtable
    # rows with data match the classical unnest
    assert len(outer) == len(classical) + 1


def test_outer_unnest_equals_unnest_when_nonempty():
    from repro.algebra.ops import outer_unnest

    departments = paper.departments()
    assert outer_unnest(departments, "EQUIP") == unnest(departments, "EQUIP")


def test_outer_unnest_rejects_atomic():
    from repro.algebra.ops import outer_unnest

    with pytest.raises(SchemaError):
        outer_unnest(paper.departments(), "DNO")
