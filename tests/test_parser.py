"""Tests for the query-language lexer and parser."""

import datetime

import pytest

from repro.errors import LexError, ParseError
from repro.query import ast
from repro.query.lexer import tokenize
from repro.query.parser import parse_query, parse_statement


def test_lexer_basic():
    tokens = list(tokenize("SELECT x.DNO FROM x IN DEPARTMENTS"))
    kinds = [t.kind for t in tokens]
    assert kinds == [
        "keyword", "ident", "punct", "ident", "keyword", "ident",
        "keyword", "ident", "eof",
    ]


def test_lexer_strings_with_escapes():
    tokens = list(tokenize("'PC/AT' 'O''Brien'"))
    assert tokens[0].text == "PC/AT"
    assert tokens[1].text == "O'Brien"


def test_lexer_comments_skipped():
    tokens = list(tokenize("SELECT -- a comment\n*"))
    assert [t.text for t in tokens] == ["SELECT", "*", ""]


def test_lexer_rejects_garbage():
    with pytest.raises(LexError):
        list(tokenize("SELECT @"))


def test_parse_requires_var_in_table():
    # the paper binds tuple variables with 'x IN DEPARTMENTS'; bare table
    # names in FROM are rejected
    with pytest.raises(ParseError):
        parse_query("SELECT * FROM DEPARTMENTS WHERE 1 = 1")


def test_parse_simple_query():
    query = parse_query("SELECT x.DNO, x.MGRNO FROM x IN DEPARTMENTS")
    assert query.ranges == (
        ast.Range(var="x", source=ast.Source(table="DEPARTMENTS")),
    )
    assert [item.output_name() for item in query.select] == ["DNO", "MGRNO"]


def test_parse_star():
    query = parse_query("SELECT * FROM x IN DEPARTMENTS")
    assert query.select_star


def test_parse_nested_range_path():
    query = parse_query(
        "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS"
    )
    source = query.ranges[1].source
    assert source.path == ast.Path("x", (ast.PathStep("PROJECTS"),))


def test_parse_exists_chain_without_colons():
    """The paper's layout: no separators between quantifier and body."""
    query = parse_query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    )
    outer = query.where
    assert isinstance(outer, ast.Quantifier) and outer.kind == "EXISTS"
    inner = outer.body
    assert isinstance(inner, ast.Quantifier)
    assert isinstance(inner.body, ast.Comparison)


def test_parse_all_chain_with_colons():
    query = parse_query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE ALL y IN x.PROJECTS: ALL z IN y.MEMBERS: "
        "z.FUNCTION = 'Consultant'"
    )
    assert isinstance(query.where, ast.Quantifier)
    assert query.where.kind == "ALL"


def test_parse_subscript():
    query = parse_query(
        "SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS "
        "WHERE x.AUTHORS[1] = 'Jones A'"
    )
    comparison = query.where
    assert isinstance(comparison, ast.Comparison)
    assert comparison.left.steps == (ast.PathStep("AUTHORS", 1),)


def test_parse_zero_subscript_rejected():
    with pytest.raises(ParseError):
        parse_query("SELECT x.A FROM x IN T WHERE x.L[0] = 1")


def test_parse_nested_select_item():
    query = parse_query(
        "SELECT x.DNO, PROJECTS = (SELECT y.PNO FROM y IN x.PROJECTS) "
        "FROM x IN DEPARTMENTS"
    )
    item = query.select[1]
    assert item.alias == "PROJECTS"
    assert isinstance(item.expr, ast.Query)


def test_parse_renamed_item_and_as():
    query = parse_query("SELECT D = x.DNO, x.MGRNO AS BOSS FROM x IN T")
    assert query.select[0].output_name() == "D"
    assert query.select[1].output_name() == "BOSS"


def test_parse_contains():
    query = parse_query(
        "SELECT x.REPNO FROM x IN REPORTS WHERE x.TITLE CONTAINS '*comput*'"
    )
    assert isinstance(query.where, ast.Contains)
    assert query.where.pattern == "*comput*"


def test_parse_not_contains_and_is_null():
    query = parse_query(
        "SELECT x.A FROM x IN T "
        "WHERE x.T NOT CONTAINS '*x*' AND x.B IS NOT NULL AND x.C IS NULL"
    )
    a, b, c = query.where.operands
    assert isinstance(a, ast.Contains) and a.negated
    assert isinstance(b, ast.IsNull) and b.negated
    assert isinstance(c, ast.IsNull) and not c.negated


def test_parse_asof():
    query = parse_query(
        "SELECT y.PNO FROM x IN DEPARTMENTS ASOF '1984-01-15', "
        "y IN x.PROJECTS WHERE x.DNO = 314"
    )
    assert query.ranges[0].source.asof == datetime.date(1984, 1, 15)


def test_parse_asof_bad_date():
    with pytest.raises(ParseError):
        parse_query("SELECT * FROM x IN T ASOF 'January 15th, 1984'")


def test_parse_boolean_precedence():
    query = parse_query(
        "SELECT x.A FROM x IN T WHERE x.A = 1 OR x.B = 2 AND x.C = 3"
    )
    assert isinstance(query.where, ast.BoolOp) and query.where.op == "OR"
    right = query.where.operands[1]
    assert isinstance(right, ast.BoolOp) and right.op == "AND"


def test_parse_parenthesized_predicate():
    query = parse_query(
        "SELECT x.A FROM x IN T WHERE (x.A = 1 OR x.B = 2) AND x.C = 3"
    )
    assert isinstance(query.where, ast.BoolOp) and query.where.op == "AND"


def test_parse_comparison_operators():
    for op in ["=", "<>", "!=", "<", "<=", ">", ">="]:
        query = parse_query(f"SELECT x.A FROM x IN T WHERE x.A {op} 5")
        expected = "<>" if op == "!=" else op
        assert query.where.op == expected


# -- DML / DDL statements ------------------------------------------------------


def test_parse_insert_with_nested_literals():
    statement = parse_statement(
        "INSERT INTO DEPARTMENTS VALUES "
        "(99, 11111, {(1, 'P', {(5, 'Leader')})}, 1000, {(1, 'PC')})"
    )
    assert isinstance(statement, ast.InsertStatement)
    row = statement.rows[0]
    projects = row.values[2]
    assert isinstance(projects, ast.TableLiteral) and not projects.ordered
    members = projects.rows[0].values[2]
    assert isinstance(members, ast.TableLiteral)


def test_parse_insert_list_literal():
    statement = parse_statement(
        "INSERT INTO REPORTS VALUES ('0001', <('Jones A'), ('Poe B')>, 'T', {})"
    )
    authors = statement.rows[0].values[1]
    assert authors.ordered and len(authors.rows) == 2
    descriptors = statement.rows[0].values[3]
    assert descriptors.rows == ()


def test_parse_insert_negative_number():
    statement = parse_statement("INSERT INTO T VALUES (-5, 3.5, TRUE, NULL)")
    values = [v.value for v in statement.rows[0].values]
    assert values == [-5, 3.5, True, None]


def test_parse_update():
    statement = parse_statement(
        "UPDATE DEPARTMENTS x SET BUDGET = 0, x.MGRNO = 1 WHERE x.DNO = 314"
    )
    assert isinstance(statement, ast.UpdateStatement)
    assert [a[0] for a in statement.assignments] == ["BUDGET", "MGRNO"]


def test_parse_delete():
    statement = parse_statement("DELETE FROM DEPARTMENTS x WHERE x.DNO = 314")
    assert isinstance(statement, ast.DeleteStatement)
    assert statement.var == "x"


def test_parse_create_table_versioned():
    statement = parse_statement("CREATE VERSIONED TABLE T (A INT)")
    assert isinstance(statement, ast.CreateTableStatement)
    assert statement.versioned
    assert statement.ddl_text.startswith("CREATE ")
    assert "VERSIONED" not in statement.ddl_text


def test_parse_create_index():
    statement = parse_statement(
        "CREATE INDEX FN ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)"
    )
    assert isinstance(statement, ast.CreateIndexStatement)
    assert statement.attribute_path == ("PROJECTS", "MEMBERS", "FUNCTION")
    assert not statement.text


def test_parse_create_text_index():
    statement = parse_statement("CREATE TEXT INDEX TX ON REPORTS (TITLE)")
    assert statement.text


def test_parse_drop():
    assert isinstance(parse_statement("DROP TABLE T"), ast.DropTableStatement)
    assert isinstance(parse_statement("DROP INDEX I"), ast.DropIndexStatement)


@pytest.mark.parametrize(
    "text",
    [
        "SELECT",
        "SELECT x.A",
        "SELECT x.A FROM",
        "SELECT x.A FROM x",
        "SELECT x.A FROM x IN",
        "SELECT x.A FROM x IN T WHERE",
        "SELECT x.A FROM x IN T WHERE x.A",
        "SELECT x.A FROM x IN T trailing",
        "INSERT INTO T",
        "UPDATE T SET",
        "DELETE T",
        "CREATE INDEX I ON",
        "SELECT x.A FROM x IN T WHERE x.A CONTAINS 5",
    ],
)
def test_parse_errors(text):
    with pytest.raises(ParseError):
        parse_statement(text)
