"""Edge-case coverage across smaller surfaces: disk files, buffer
maintenance, catalog bookkeeping, and facade error paths."""

import os

import pytest

from repro.database import Database
from repro.datasets import paper
from repro.errors import (
    BufferError_,
    DuplicateIndexError,
    ExecutionError,
    StorageError,
    TemporalError,
    UnknownIndexError,
    UnknownTableError,
)
from repro.storage.buffer import BufferManager
from repro.storage.constants import PAGE_SIZE
from repro.storage.pagedfile import DiskPagedFile, MemoryPagedFile


def test_disk_pagedfile_missing_without_create(tmp_path):
    with pytest.raises(StorageError):
        DiskPagedFile(str(tmp_path / "missing.db"), create=False)


def test_disk_pagedfile_rejects_misaligned(tmp_path):
    path = str(tmp_path / "bad.db")
    with open(path, "wb") as handle:
        handle.write(b"x" * (PAGE_SIZE + 1))
    with pytest.raises(StorageError):
        DiskPagedFile(path)


def test_disk_pagedfile_rejects_short_writes(tmp_path):
    file = DiskPagedFile(str(tmp_path / "w.db"))
    n = file.allocate_page()
    with pytest.raises(StorageError):
        file.write_page(n, b"short")
    file.close()


def test_buffer_drop_and_invalidate_guards():
    buffer = BufferManager(MemoryPagedFile(), capacity=4)
    n, _page = buffer.new_page()
    with pytest.raises(BufferError_):
        buffer.drop(n)  # pinned
    with pytest.raises(BufferError_):
        buffer.invalidate_cache()  # pinned
    buffer.unpin(n, dirty=True)
    buffer.drop(n)  # now fine; dropped without write
    with pytest.raises(BufferError_):
        BufferManager(MemoryPagedFile(), capacity=0)


def test_catalog_bookkeeping():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    with pytest.raises(DuplicateIndexError):
        db.create_index("FN", "DEPARTMENTS", "DNO")
    assert db.catalog.index_owner("FN") == "DEPARTMENTS"
    db.drop_table("DEPARTMENTS")
    # dropping the table released its index names
    with pytest.raises(UnknownIndexError):
        db.catalog.index("FN")
    with pytest.raises(UnknownTableError):
        db.catalog.table("DEPARTMENTS")


def test_facade_error_paths(paper_db):
    from repro.storage.tid import TID

    with pytest.raises(ExecutionError):
        paper_db.delete("DEPARTMENTS", TID(999, 0))
    with pytest.raises(ExecutionError):
        paper_db.update("DEPARTMENTS", TID(999, 0), {"BUDGET": 1})
    with pytest.raises(ExecutionError):
        paper_db.open_object("EMPLOYEES-1NF", paper_db.tids("EMPLOYEES-1NF")[0])
    with pytest.raises(ExecutionError):
        paper_db.update(
            "EMPLOYEES-1NF",
            paper_db.tids("EMPLOYEES-1NF")[0],
            lambda obj: None,  # flat tables take dicts
        )
    versioned = Database()
    versioned.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True)
    with pytest.raises(TemporalError):
        versioned.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at="soon")


def test_create_table_unknown_versioning():
    db = Database()
    with pytest.raises(TemporalError):
        db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True,
                        versioning="quantum")


def test_names_on_flat_table_rejected(paper_db):
    with pytest.raises(ExecutionError):
        paper_db.names("EMPLOYEES-1NF")


def test_render_reports(paper_db):
    text = paper_db.render("REPORTS")
    assert "< AUTHORS >" in text
    assert "Jones A" in text


def test_io_stats_reset(paper_db):
    paper_db.query("SELECT * FROM x IN DEPARTMENTS")
    assert paper_db.io_stats.logical_reads > 0
    paper_db.reset_io_stats()
    assert paper_db.io_stats.logical_reads == 0


def test_insert_at_on_unversioned_is_ignored_gracefully(paper_db):
    # 'at' on an unversioned table is simply unused (no version store)
    tid = paper_db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at=None)
    assert tid in paper_db.tids("DEPARTMENTS")


def test_order_by_inside_nested_select(paper_db):
    """A sub-SELECT with ORDER BY yields a *list-valued* attribute."""
    result = paper_db.query(
        "SELECT x.DNO, "
        "MEMBERS = (SELECT z.EMPNO FROM y IN x.PROJECTS, z IN y.MEMBERS "
        "           ORDER BY z.EMPNO DESC) "
        "FROM x IN DEPARTMENTS WHERE x.DNO = 314"
    )
    members = result[0]["MEMBERS"]
    assert members.ordered
    empnos = members.column("EMPNO")
    assert empnos == sorted(empnos, reverse=True)
