"""A soak test: a long seeded sequence of mixed operations against one
database, with a shadow model and a final consistency check.

This is the closest thing to running the prototype "extensively ... in a
collaboration" (Section 5): every operation the library offers, randomly
interleaved, must keep queries answerable and the storage consistent.
"""

import random

from repro.database import Database
from repro.datasets import paper
from repro.model.values import TableValue


FUNCTIONS = ["Leader", "Consultant", "Secretary", "Staff"]


def test_soak_mixed_operations():
    rng = random.Random(20250707)
    db = Database(buffer_capacity=128)  # small pool: exercise eviction
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    db.create_index("DNO", "DEPARTMENTS", "DNO")

    #: shadow model: DNO -> plain nested dict
    shadow: dict[int, dict] = {}
    tids: dict[int, object] = {}
    next_dno = 1000
    next_empno = 1

    def random_department():
        nonlocal next_dno, next_empno
        dno = next_dno
        next_dno += 1
        projects = []
        for p in range(rng.randint(0, 3)):
            members = []
            for _m in range(rng.randint(0, 4)):
                members.append(
                    {"EMPNO": next_empno, "FUNCTION": rng.choice(FUNCTIONS)}
                )
                next_empno += 1
            projects.append({"PNO": p, "PNAME": f"P{dno}-{p}", "MEMBERS": members})
        return {
            "DNO": dno, "MGRNO": rng.randint(1, 99),
            "BUDGET": rng.randrange(0, 10**6, 1000),
            "PROJECTS": projects,
            "EQUIP": [
                {"QU": rng.randint(1, 9), "TYPE": rng.choice("ABC")}
                for _ in range(rng.randint(0, 3))
            ],
        }

    for step in range(300):
        action = rng.random()
        if action < 0.35 or not shadow:
            dept = random_department()
            tids[dept["DNO"]] = db.insert("DEPARTMENTS", dept)
            shadow[dept["DNO"]] = dept
        elif action < 0.55:
            dno = rng.choice(list(shadow))
            budget = rng.randrange(0, 10**6, 500)
            db.update("DEPARTMENTS", tids[dno], {"BUDGET": budget})
            shadow[dno]["BUDGET"] = budget
        elif action < 0.70:
            dno = rng.choice(list(shadow))
            member = {"EMPNO": next_empno, "FUNCTION": rng.choice(FUNCTIONS)}
            next_empno += 1
            if shadow[dno]["PROJECTS"]:
                index = rng.randrange(len(shadow[dno]["PROJECTS"]))
                db.update(
                    "DEPARTMENTS", tids[dno],
                    lambda obj, i=index, m=member: obj.insert_element(
                        [("PROJECTS", i)], "MEMBERS", m
                    ),
                )
                shadow[dno]["PROJECTS"][index]["MEMBERS"].append(member)
        elif action < 0.85:
            dno = rng.choice(list(shadow))
            projects = shadow[dno]["PROJECTS"]
            candidates = [
                (pi, mi)
                for pi, p in enumerate(projects)
                for mi in range(len(p["MEMBERS"]))
            ]
            if candidates:
                pi, mi = rng.choice(candidates)
                db.update(
                    "DEPARTMENTS", tids[dno],
                    lambda obj, pi=pi, mi=mi: obj.delete_element(
                        [("PROJECTS", pi)], "MEMBERS", mi
                    ),
                )
                projects[pi]["MEMBERS"].pop(mi)
        else:
            dno = rng.choice(list(shadow))
            db.delete("DEPARTMENTS", tids.pop(dno))
            del shadow[dno]

        if step % 60 == 0:
            # point query through the index must agree with the shadow
            probe = rng.choice(list(shadow))
            result = db.query(
                f"SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = {probe}"
            )
            assert result.column("BUDGET") == [shadow[probe]["BUDGET"]]

    # final: full contents equal the shadow model
    expected = TableValue.from_plain(
        paper.DEPARTMENTS_SCHEMA, list(shadow.values())
    )
    assert db.table_value("DEPARTMENTS") == expected
    # indexes agree with a scan
    for function in FUNCTIONS:
        query = (
            "SELECT x.DNO FROM x IN DEPARTMENTS "
            "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
            f"z.FUNCTION = '{function}'"
        )
        indexed = sorted(db.query(query).column("DNO"))
        db.use_access_paths = False
        scanned = sorted(db.query(query).column("DNO"))
        db.use_access_paths = True
        assert indexed == scanned
    # and the storage is structurally sound
    assert db.verify() == []


def test_soak_subtuple_versioned():
    """The same style of churn on a subtuple-versioned table; every
    historical snapshot must stay readable."""
    rng = random.Random(7)
    db = Database(buffer_capacity=256)
    db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True,
                    versioning="subtuple")
    tid = db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at=0)
    snapshots = {0: db.table_value("DEPARTMENTS")}
    for when in range(1, 40):
        kind = rng.random()
        if kind < 0.5:
            db.update("DEPARTMENTS", tid,
                      {"BUDGET": rng.randrange(0, 10**6, 100)}, at=when)
        elif kind < 0.8:
            db.update(
                "DEPARTMENTS", tid,
                lambda m, w=when: m.insert_element(
                    [], "EQUIP", {"QU": w, "TYPE": f"T{w}"}
                ),
                at=when,
            )
        else:
            equip_len = len(db.table_value("DEPARTMENTS")[0]["EQUIP"])
            if equip_len:
                db.update(
                    "DEPARTMENTS", tid,
                    lambda m, i=rng.randrange(equip_len): m.delete_element(
                        [], "EQUIP", i
                    ),
                    at=when,
                )
        snapshots[when] = db.table_value("DEPARTMENTS")
    # every epoch reconstructs exactly
    entry = db.catalog.table("DEPARTMENTS")
    for when, expected in snapshots.items():
        got = TableValue(entry.schema)
        got.rows.extend(db.iterate_table("DEPARTMENTS", asof=when))
        assert got == expected, f"ASOF {when} diverged"
