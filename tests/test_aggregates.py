"""Tests for aggregate functions over subtables (COUNT/SUM/AVG/MIN/MAX
with flattening across nesting levels)."""

import pytest

from repro.database import Database
from repro.datasets import paper
from repro.errors import BindError


def test_count_subtable(paper_db):
    result = paper_db.query(
        "SELECT x.DNO, COUNT(x.PROJECTS) AS N FROM x IN DEPARTMENTS "
        "ORDER BY x.DNO"
    )
    assert [(r["DNO"], r["N"]) for r in result] == [(218, 1), (314, 2), (417, 1)]


def test_count_flattens_two_levels(paper_db):
    result = paper_db.query(
        "SELECT x.DNO, COUNT(x.PROJECTS.MEMBERS) AS STAFF "
        "FROM x IN DEPARTMENTS ORDER BY x.DNO"
    )
    assert [(r["DNO"], r["STAFF"]) for r in result] == [
        (218, 6), (314, 7), (417, 4),
    ]


def test_sum_over_subtable_attribute(paper_db):
    result = paper_db.query(
        "SELECT x.DNO, SUM(x.EQUIP.QU) AS UNITS FROM x IN DEPARTMENTS "
        "WHERE x.DNO = 314"
    )
    assert result[0]["UNITS"] == 6  # 2 + 3 + 1


def test_min_max_over_deep_path(paper_db):
    result = paper_db.query(
        "SELECT MIN(x.PROJECTS.MEMBERS.EMPNO) AS LO, "
        "       MAX(x.PROJECTS.MEMBERS.EMPNO) AS HI "
        "FROM x IN DEPARTMENTS WHERE x.DNO = 314"
    )
    assert result[0]["LO"] == 39582
    assert result[0]["HI"] == 98902


def test_avg_returns_float(paper_db):
    result = paper_db.query(
        "SELECT AVG(x.BUDGET) AS A FROM x IN DEPARTMENTS, y IN DEPARTMENTS "
        "WHERE x.DNO = y.DNO AND x.DNO = 314"
    )
    assert result[0]["A"] == pytest.approx(320_000.0)
    assert result.schema.attribute("A").atomic_type.value == "FLOAT"


def test_aggregate_in_where(paper_db):
    result = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE COUNT(x.PROJECTS) >= 2"
    )
    assert result.column("DNO") == [314]


def test_aggregate_in_order_by(paper_db):
    result = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "ORDER BY COUNT(x.PROJECTS.MEMBERS) DESC"
    )
    assert result.column("DNO") == [314, 218, 417]


def test_count_over_subquery(paper_db):
    result = paper_db.query(
        "SELECT x.DNO, "
        "N = COUNT((SELECT z.EMPNO FROM y IN x.PROJECTS, z IN y.MEMBERS "
        "           WHERE z.FUNCTION = 'Consultant')) "
        "FROM x IN DEPARTMENTS ORDER BY x.DNO"
    )
    assert [(r["DNO"], r["N"]) for r in result] == [(218, 2), (314, 1), (417, 0)]


def test_aggregates_ignore_nulls():
    db = Database()
    db.execute("CREATE TABLE T (K INT, S TABLE OF (V INT))")
    db.insert("T", {"K": 1, "S": [{"V": 1}, {"V": None}, {"V": 3}]})
    db.insert("T", {"K": 2, "S": []})
    result = db.query(
        "SELECT t.K, SUM(t.S.V) AS TOTAL, COUNT(t.S.V) AS N, "
        "AVG(t.S.V) AS MEAN FROM t IN T ORDER BY t.K"
    )
    first, second = result.rows
    assert (first["TOTAL"], first["N"], first["MEAN"]) == (4, 2, 2.0)
    # empty subtable: COUNT 0, the others NULL
    assert (second["TOTAL"], second["N"], second["MEAN"]) == (None, 0, None)


def test_count_vs_count_values():
    """COUNT of a table counts tuples; COUNT of an attribute path counts
    non-null values."""
    db = Database()
    db.execute("CREATE TABLE T (K INT, S TABLE OF (V INT))")
    db.insert("T", {"K": 1, "S": [{"V": None}, {"V": 5}]})
    result = db.query(
        "SELECT COUNT(t.S) AS TUPLES, COUNT(t.S.V) AS VALUES_ FROM t IN T"
    )
    assert result[0]["TUPLES"] == 2
    assert result[0]["VALUES_"] == 1


def test_sum_non_numeric_rejected(paper_db):
    with pytest.raises(BindError):
        paper_db.query("SELECT SUM(x.EQUIP.TYPE) FROM x IN DEPARTMENTS")


def test_sum_whole_table_rejected(paper_db):
    with pytest.raises(BindError):
        paper_db.query("SELECT SUM(x.EQUIP) FROM x IN DEPARTMENTS")


def test_aggregate_is_not_a_table(paper_db):
    """Aggregate names only act as functions when followed by '('."""
    db = Database()
    db.execute("CREATE TABLE COUNTS (COUNT INT)")  # COUNT as attribute name
    db.insert("COUNTS", (7,))
    result = db.query("SELECT c.COUNT FROM c IN COUNTS")
    assert result.column("COUNT") == [7]
