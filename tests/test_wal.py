"""Tests for the durability subsystem: WAL record format, the manager's
commit/abort/checkpoint protocol, redo recovery, torn-page checksums, and
the fsync regressions (DiskPagedFile.close / Database.save)."""

import os

import pytest

from repro.database import Database
from repro.datasets import paper
from repro.errors import BufferError_, StorageError, TornPageError, WalError
from repro.storage.buffer import BufferManager
from repro.storage.constants import PAGE_SIZE
from repro.storage.page import (
    Page,
    checksum_ok,
    clear_checksum,
    get_page_lsn,
    set_page_lsn,
    stamp_checksum,
)
from repro.storage.pagedfile import DiskPagedFile, MemoryPagedFile
from repro.wal import (
    REC_ABORT,
    REC_BEGIN,
    REC_CHECKPOINT,
    REC_COMMIT,
    REC_PAGE_IMAGE,
    WalManager,
    encode_record,
    iter_records,
    recover,
)
from repro.wal.faults import (
    CrashClock,
    CrashPoint,
    FaultyPagedFile,
    FaultyWalIO,
)
from repro.wal.record import (
    decode_catalog,
    decode_page_image,
    encode_catalog,
    encode_page_image,
)


# ---------------------------------------------------------------------------
# record format
# ---------------------------------------------------------------------------


def test_record_roundtrip():
    log = b""
    expected = []
    for rtype, txn, payload in [
        (REC_BEGIN, 1, b""),
        (REC_PAGE_IMAGE, 1, b"\x01" * 40),
        (REC_COMMIT, 1, b"state"),
        (REC_CHECKPOINT, 0, b"cp"),
    ]:
        lsn = len(log)
        log += encode_record(lsn, 0, rtype, txn, payload)
        expected.append((lsn, rtype, txn, payload))
    records = list(iter_records(log))
    assert [(r.lsn, r.type, r.txn, r.payload) for r in records] == expected


def test_record_scan_stops_at_torn_tail():
    log = encode_record(0, 0, REC_BEGIN, 1)
    lsn = len(log)
    log += encode_record(lsn, 0, REC_COMMIT, 1, b"full payload here")
    # a crash mid-append leaves a prefix of the last record
    torn = log[: len(log) - 5]
    records = list(iter_records(torn))
    assert [r.type for r in records] == [REC_BEGIN]


def test_record_scan_rejects_bit_rot():
    log = encode_record(0, 0, REC_COMMIT, 1, b"payload")
    corrupted = bytearray(log)
    corrupted[-1] ^= 0xFF  # flip a payload bit
    assert list(iter_records(corrupted)) == []


def test_record_scan_rejects_misplaced_lsn():
    # a record claiming LSN 999 at offset 0 is garbage (half-overwritten log)
    log = encode_record(999, 0, REC_BEGIN, 1)
    assert list(iter_records(log)) == []


def test_page_image_codec_roundtrip():
    compressible = bytes(PAGE_SIZE)  # zeros compress well
    payload = encode_page_image(7, compressible)
    assert len(payload) < PAGE_SIZE  # actually compressed
    assert decode_page_image(payload) == (7, compressible)
    incompressible = os.urandom(PAGE_SIZE)
    payload = encode_page_image(3, incompressible)
    assert decode_page_image(payload) == (3, incompressible)


def test_catalog_codec_roundtrip():
    state = {"format": 1, "tables": [{"ddl": "CREATE TABLE T (A INT)"}]}
    assert decode_catalog(encode_catalog(state)) == state


# ---------------------------------------------------------------------------
# page checksums + pageLSN
# ---------------------------------------------------------------------------


def test_checksum_stamp_verify_clear():
    buffer = bytearray(PAGE_SIZE)
    Page.format(buffer)
    assert checksum_ok(buffer)  # unstamped pages pass (checksum 0 = skip)
    stamp_checksum(buffer)
    assert checksum_ok(buffer)
    buffer[100] ^= 0xFF
    assert not checksum_ok(buffer)
    clear_checksum(buffer)
    assert checksum_ok(buffer)  # cleared = unverified again


def test_page_lsn_field():
    buffer = bytearray(PAGE_SIZE)
    page = Page.format(buffer)
    assert page.page_lsn == 0
    set_page_lsn(buffer, 12345)
    assert get_page_lsn(buffer) == 12345


def test_buffer_detects_torn_page(tmp_path):
    path = str(tmp_path / "torn.db")
    file = DiskPagedFile(path)
    buffer_mgr = BufferManager(file, checksums=True)
    page_no, _ = buffer_mgr.new_page()
    buffer_mgr.unpin(page_no, dirty=True)
    buffer_mgr.flush_all()
    # tear the page behind the buffer manager's back
    raw = file.read_page(page_no)
    raw[PAGE_SIZE // 2] ^= 0xFF
    file.write_page(page_no, bytes(raw))
    buffer_mgr.invalidate_cache()
    with pytest.raises(TornPageError):
        buffer_mgr.fetch(page_no)
    file.close()


# ---------------------------------------------------------------------------
# WalManager protocol
# ---------------------------------------------------------------------------


def _images(store):
    """A get_image callback over a dict of page images."""

    def get_image(page_no, lsn):
        return store[page_no]

    return get_image


def test_manager_commit_cycle(tmp_path):
    wal = WalManager(str(tmp_path / "x.wal"))
    txn = wal.begin()
    wal.note_dirty(3)
    wal.note_dirty(1)
    assert wal.protected_pages == {1, 3}
    assert not wal.log_commit(
        {"n": 1}, _images({1: bytes(PAGE_SIZE), 3: bytes(PAGE_SIZE)})
    )
    assert wal.protected_pages == set()
    assert not wal.in_txn
    with open(wal.path, "rb") as handle:
        records = list(iter_records(handle.read()))
    assert [r.type for r in records] == [
        REC_BEGIN, REC_PAGE_IMAGE, REC_PAGE_IMAGE, REC_COMMIT,
    ]
    assert all(r.txn == txn for r in records)
    # page images come out in page order
    assert [decode_page_image(r.payload)[0] for r in records[1:3]] == [1, 3]
    wal.close()


def test_manager_convert_abort(tmp_path):
    wal = WalManager(str(tmp_path / "x.wal"))
    wal.begin()
    wal.note_dirty(5)
    successor = wal.convert_abort()
    assert wal.in_txn and wal.protected_pages == {5}  # dirty set inherited
    wal.log_commit({"n": 2}, _images({5: bytes(PAGE_SIZE)}))
    with open(wal.path, "rb") as handle:
        records = list(iter_records(handle.read()))
    assert [r.type for r in records] == [
        REC_BEGIN, REC_ABORT, REC_BEGIN, REC_PAGE_IMAGE, REC_COMMIT,
    ]
    assert records[-1].txn == successor
    wal.close()


def test_manager_checkpoint_truncates(tmp_path):
    wal = WalManager(str(tmp_path / "x.wal"), auto_checkpoint_bytes=100)
    wal.begin()
    wal.note_dirty(0)
    should = wal.log_commit({"n": 1}, _images({0: os.urandom(PAGE_SIZE)}))
    assert should  # log grew past the tiny threshold
    before = wal.stats()["size_bytes"]
    wal.checkpoint({"n": 1})
    after = wal.stats()["size_bytes"]
    assert after < before
    with open(wal.path, "rb") as handle:
        records = list(iter_records(handle.read()))
    assert [r.type for r in records] == [REC_CHECKPOINT]
    assert decode_catalog(records[0].payload) == {"n": 1}
    wal.close()


def test_manager_checkpoint_refused_in_txn(tmp_path):
    wal = WalManager(str(tmp_path / "x.wal"))
    wal.begin()
    with pytest.raises(WalError):
        wal.checkpoint({})
    wal.close()


# ---------------------------------------------------------------------------
# buffer integration: no-steal + WAL-before-data
# ---------------------------------------------------------------------------


def test_no_steal_protects_unlogged_pages(tmp_path):
    wal = WalManager(str(tmp_path / "x.wal"))
    file = MemoryPagedFile()
    pool = BufferManager(file, capacity=2, wal=wal)
    wal.begin()
    pages = []
    for _ in range(2):
        page_no, _ = pool.new_page()
        pool.unpin(page_no, dirty=True)
        pages.append(page_no)
    # both frames hold unlogged dirty pages: flushing them violates
    # WAL-before-data, evicting them violates no-steal
    with pytest.raises(BufferError_, match="WAL-before-data"):
        pool.flush_page(pages[0])
    with pytest.raises(BufferError_, match="protected"):
        pool.new_page()
    # after the commit the pages are logged and evictable again
    wal.log_commit({}, pool.image_for_log)
    pool.flush_all()
    pool.new_page()
    wal.close()


def test_image_for_log_stamps_page_lsn(tmp_path):
    wal = WalManager(str(tmp_path / "x.wal"))
    file = MemoryPagedFile()
    pool = BufferManager(file, capacity=4, wal=wal)
    wal.begin()
    page_no, page = pool.new_page()
    pool.unpin(page_no, dirty=True)
    wal.log_commit({}, pool.image_for_log)
    with pool.page(page_no) as page:
        assert page.page_lsn > 0
    wal.close()


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


def _write_wal(path, records):
    with open(path, "wb") as handle:
        log = b""
        for rtype, txn, payload in records:
            log += encode_record(len(log), 0, rtype, txn, payload)
        handle.write(log)


def test_recover_replays_winners_discards_losers(tmp_path):
    wal_path = str(tmp_path / "x.wal")
    winner_image = os.urandom(PAGE_SIZE)
    loser_image = b"\xee" * PAGE_SIZE
    _write_wal(wal_path, [
        (REC_BEGIN, 1, b""),
        (REC_PAGE_IMAGE, 1, encode_page_image(0, winner_image)),
        (REC_COMMIT, 1, encode_catalog({"v": "winner"})),
        (REC_BEGIN, 2, b""),
        (REC_PAGE_IMAGE, 2, encode_page_image(0, loser_image)),
        # no COMMIT: txn 2 is a loser
    ])
    file = MemoryPagedFile()
    result = recover(wal_path, file)
    assert result.committed_txns == 1
    assert result.losers_discarded == 1
    assert result.loser_ids == [2]
    assert result.pages_replayed == 1
    assert result.catalog_state == {"v": "winner"}
    replayed = file.read_page(0)
    clear_checksum(replayed)
    expected = bytearray(winner_image)
    clear_checksum(expected)
    assert replayed == expected
    assert "1 committed txn" in result.summary()


def test_recover_is_idempotent(tmp_path):
    wal_path = str(tmp_path / "x.wal")
    image = os.urandom(PAGE_SIZE)
    _write_wal(wal_path, [
        (REC_BEGIN, 1, b""),
        (REC_PAGE_IMAGE, 1, encode_page_image(2, image)),
        (REC_COMMIT, 1, encode_catalog(None)),
    ])
    file = MemoryPagedFile()
    first = recover(wal_path, file)
    state = [bytes(file.read_page(n)) for n in range(file.page_count)]
    second = recover(wal_path, file)
    assert first.pages_replayed == second.pages_replayed == 1
    assert [bytes(file.read_page(n)) for n in range(file.page_count)] == state


def test_recover_repairs_torn_page(tmp_path):
    wal_path = str(tmp_path / "x.wal")
    good = os.urandom(PAGE_SIZE)
    _write_wal(wal_path, [
        (REC_BEGIN, 1, b""),
        (REC_PAGE_IMAGE, 1, encode_page_image(0, good)),
        (REC_COMMIT, 1, encode_catalog(None)),
    ])
    file = MemoryPagedFile()
    file.allocate_page()
    torn = bytearray(good)
    stamp_checksum(torn)
    torn[PAGE_SIZE - 1] ^= 0xFF  # tear it after stamping
    file.write_page(0, bytes(torn))
    result = recover(wal_path, file)
    assert result.torn_pages_repaired == 1
    assert checksum_ok(file.read_page(0))


def test_recover_starts_at_last_checkpoint(tmp_path):
    wal_path = str(tmp_path / "x.wal")
    _write_wal(wal_path, [
        (REC_BEGIN, 1, b""),
        (REC_PAGE_IMAGE, 1, encode_page_image(0, b"\x01" * PAGE_SIZE)),
        (REC_COMMIT, 1, encode_catalog({"v": "old"})),
        (REC_CHECKPOINT, 0, encode_catalog({"v": "cp"})),
        (REC_BEGIN, 2, b""),
        (REC_COMMIT, 2, encode_catalog({"v": "new"})),
    ])
    file = MemoryPagedFile()
    result = recover(wal_path, file)
    assert result.checkpoint_found
    # pre-checkpoint page image is NOT replayed (the data file already has it)
    assert result.pages_replayed == 0
    assert result.catalog_state == {"v": "new"}


def test_recover_without_log_is_noop(tmp_path):
    assert recover(str(tmp_path / "absent.wal"), MemoryPagedFile()) is None


# ---------------------------------------------------------------------------
# end-to-end durability through the Database facade
# ---------------------------------------------------------------------------


def _rows(db, table):
    return sorted(
        (row.to_plain() for row in db.iterate_table(table)),
        key=lambda r: sorted(r.items(), key=str),
    )


def test_statements_are_durable_without_save(tmp_path):
    path = str(tmp_path / "wal.db")
    db = Database(path=path)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.execute("UPDATE DEPARTMENTS x SET BUDGET = 99 WHERE x.DNO = 314")
    expected = _rows(db, "DEPARTMENTS")
    # crash: no save(), no close(), no flush
    again = Database(path=path)
    assert again.last_recovery is not None
    assert again.last_recovery.pages_replayed > 0
    assert _rows(again, "DEPARTMENTS") == expected
    assert again.verify() == []
    again.close()


def test_wal_disabled_restores_paper_behaviour(tmp_path):
    path = str(tmp_path / "nowal.db")
    db = Database(path=path, wal=False)
    assert db.wal is None
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    assert not os.path.exists(path + ".wal")
    # without save() nothing persists — the paper's original behaviour
    again = Database(path=path, wal=False)
    assert again.catalog.tables() == []
    again.close()


def test_unsynced_writes_are_lost_without_wal(tmp_path):
    """The fault harness proof: with the WAL off, an engine that crashes
    before fsync loses everything it wrote."""
    path = str(tmp_path / "lost.db")
    clock = CrashClock()  # never crashes; we just abandon at the end
    faulty = FaultyPagedFile(DiskPagedFile(path), clock)
    db = Database(path=path, wal=False, pagedfile=faulty)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.flush()          # pages written ...
    faulty.abandon()    # ... but never synced: the crash discards them
    again = Database(path=path, wal=False)
    assert again.catalog.tables() == []
    again.close()


def test_commit_survives_crash_before_data_sync(tmp_path):
    """Committed work lives in the fsynced log even though not one data
    page reached the file."""
    path = str(tmp_path / "crash.db")
    clock = CrashClock()
    faulty = FaultyPagedFile(DiskPagedFile(path), clock)
    wal_io = FaultyWalIO(path + ".wal", clock)
    db = Database(path=path, pagedfile=faulty, wal_io=wal_io)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    expected = _rows(db, "DEPARTMENTS")
    faulty.abandon()    # data pages vanish
    wal_io.abandon()
    again = Database(path=path)
    assert _rows(again, "DEPARTMENTS") == expected
    assert again.verify() == []
    again.close()


def test_torn_data_write_detected_and_repaired(tmp_path):
    """A crash tearing a page write mid-sector is caught by the checksum
    and repaired from the log on reopen."""
    path = str(tmp_path / "torn.db")
    # run once without a countdown to learn how many I/O events the
    # workload performs, then crash on a late page write
    events = []

    class CountingClock(CrashClock):
        def tick(self, kind):
            events.append(kind)
            return super().tick(kind)

    def workload(db):
        db.create_table(paper.DEPARTMENTS_SCHEMA)
        db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
        db.save()  # flushes pages through the faulty file
        db.execute("UPDATE DEPARTMENTS x SET BUDGET = 5 WHERE x.DNO = 314")
        db.save()

    clock = CountingClock()
    faulty = FaultyPagedFile(DiskPagedFile(path), clock)
    wal_io = FaultyWalIO(path + ".wal", clock)
    db = Database(path=path, pagedfile=faulty, wal_io=wal_io)
    workload(db)
    expected = _rows(db, "DEPARTMENTS")
    db.close()
    last_write = max(
        i for i, kind in enumerate(events) if kind == "write_page"
    )
    for leftover in (path, path + ".wal", path + ".catalog.json"):
        if os.path.exists(leftover):
            os.remove(leftover)

    clock = CrashClock(countdown=last_write + 1, torn=True)
    faulty = FaultyPagedFile(DiskPagedFile(path), clock)
    wal_io = FaultyWalIO(path + ".wal", clock)
    db = Database(path=path, pagedfile=faulty, wal_io=wal_io)
    with pytest.raises(CrashPoint):
        workload(db)
        db.close()
    assert clock.crashed_on == "write_page"
    faulty.abandon()
    wal_io.abandon()

    again = Database(path=path)
    assert _rows(again, "DEPARTMENTS") == expected
    assert again.verify() == []
    again.close()


def test_auto_checkpoint_truncates_log(tmp_path):
    path = str(tmp_path / "auto.db")
    db = Database(path=path, wal_auto_checkpoint_bytes=8 * 1024)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    for _ in range(6):
        db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
        db.execute("DELETE FROM DEPARTMENTS x WHERE x.DNO > 0")
    assert db.wal.checkpoints > 1  # the initial one plus auto ones
    assert os.path.getsize(path + ".wal") < 8 * 1024
    db.close()


def test_explicit_checkpoint(tmp_path):
    path = str(tmp_path / "cp.db")
    db = Database(path=path)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    grown = os.path.getsize(path + ".wal")
    db.checkpoint()
    assert os.path.getsize(path + ".wal") < grown
    # after the checkpoint the data file alone carries the state
    again = Database(path=path)
    assert again.last_recovery.pages_replayed == 0
    assert _rows(again, "DEPARTMENTS") == _rows(db, "DEPARTMENTS")
    again.close()
    db.close()


def test_checkpoint_requires_wal():
    with pytest.raises(StorageError):
        Database().checkpoint()


# ---------------------------------------------------------------------------
# fsync regressions (satellite: close/save durability)
# ---------------------------------------------------------------------------


def test_diskpagedfile_close_fsyncs(tmp_path, monkeypatch):
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(
        os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
    )
    file = DiskPagedFile(str(tmp_path / "f.db"))
    file.allocate_page()
    file.write_page(0, b"\x42" * PAGE_SIZE)
    synced.clear()
    file.close()
    assert synced, "close() must fsync before releasing the handle"
    file.close()  # idempotent


def test_save_ends_with_sync(tmp_path, monkeypatch):
    """save() must sync the data file before (and the catalog sidecar
    after) the catalog replace — no acknowledged save may sit only in the
    OS page cache."""
    order = []
    real_fsync = os.fsync
    real_replace = os.replace
    monkeypatch.setattr(
        os, "fsync", lambda fd: (order.append("fsync"), real_fsync(fd))[1]
    )
    monkeypatch.setattr(
        os,
        "replace",
        lambda a, b: (order.append("replace"), real_replace(a, b))[1],
    )
    path = str(tmp_path / "s.db")
    db = Database(path=path, wal=False)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    order.clear()
    db.save()
    assert "fsync" in order
    assert order.index("fsync") < order.index("replace"), (
        "data pages must be durable before the catalog points at them"
    )
    # the sidecar itself is fsynced before the atomic rename
    assert "fsync" in order[order.index("replace") - 2 : order.index("replace")]
    db.close()


# ---------------------------------------------------------------------------
# shell integration
# ---------------------------------------------------------------------------


def test_shell_checkpoint_and_wal_commands(tmp_path):
    import io

    from repro.shell import dot_command

    def run(db, line):
        out = io.StringIO()
        assert dot_command(db, line, out=out)
        return out.getvalue()

    path = str(tmp_path / "sh.db")
    db = Database(path=path)
    db.execute("CREATE TABLE T (A INT)")
    out = run(db, ".wal")
    assert "commits" in out and "size_bytes" in out
    assert "checkpoint complete" in run(db, ".checkpoint")
    db.close()

    memory = Database()
    assert "no WAL" in run(memory, ".wal")
    assert "error" in run(memory, ".checkpoint")
