"""Tests for PR 6's wait-event attribution, active-session history, and
trace identity/retention.

Covers the wait registry (accumulation, cross-thread visibility), the
``waits:`` section of EXPLAIN ANALYZE under real lock contention, ASH
sampling of a blocked session, tail-based trace retention, the trace
serialization satellites (start offsets, real tids, cross-thread
disable), and the end-to-end acceptance path: a blocked statement's lock
wait attributed over TCP via an armed trace id, SYS.ASH, SYS.TRACES,
SYS.SPANS, and TRACE EXPORT."""

import json
import threading
import time

import pytest

from repro import obs
from repro.concurrency.locks import LockMode
from repro.database import Database
from repro.datasets import paper
from repro.obs import METRICS, TRACER, WAITS, chrome_trace_json
from repro.obs.trace import Span, Trace, Tracer
from repro.obs.waits import WaitRegistry, lock_event


@pytest.fixture(autouse=True)
def _clean_observability():
    obs.disable()
    METRICS.clear()
    TRACER.traces.clear()
    TRACER.last_trace = None
    WAITS.clear()
    yield
    obs.disable()
    METRICS.clear()
    TRACER.traces.clear()
    TRACER.last_trace = None
    WAITS.clear()


def make_paper_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    return db


# ---------------------------------------------------------------------------
# the wait registry
# ---------------------------------------------------------------------------


def test_wait_registry_accumulates_per_statement():
    registry = WaitRegistry()
    registry.begin_statement()
    with registry.wait("WAL/Fsync"):
        time.sleep(0.002)
    with registry.wait("WAL/Fsync"):
        pass
    with registry.wait("IO/PageRead", page=7):
        pass
    waits = registry.statement_waits()
    assert waits["WAL/Fsync"][0] == 2
    assert waits["WAL/Fsync"][1] >= 2.0  # ms
    assert waits["IO/PageRead"][0] == 1
    # take_statement pops: a second read starts from zero
    taken = registry.take_statement()
    assert taken == waits
    assert registry.statement_waits() == {}
    # lifetime totals survive the statement reset
    assert registry.totals()["WAL/Fsync"][0] == 2


def test_wait_registry_current_wait_is_cross_thread_visible():
    registry = WaitRegistry()
    entered = threading.Event()
    release = threading.Event()
    ident = {}

    def block():
        ident["value"] = threading.get_ident()
        with registry.wait("Lock/TableX", resource="T"):
            entered.set()
            release.wait(5)

    worker = threading.Thread(target=block)
    worker.start()
    assert entered.wait(5)
    try:
        current = registry.current_wait(ident["value"])
        assert current is not None
        event, elapsed_ms, detail = current
        assert event == "Lock/TableX"
        assert elapsed_ms >= 0.0
        assert detail["resource"] == "T"
        # the active-waits listing sees it too
        assert any(w[1] == "Lock/TableX" for w in registry.active())
    finally:
        release.set()
        worker.join(timeout=5)
    assert registry.current_wait(ident["value"]) is None


def test_lock_event_names_follow_the_requested_mode():
    assert lock_event(("table", "T"), LockMode.IS) == "Lock/TableIS"
    assert lock_event(("table", "T"), LockMode.X) == "Lock/TableX"
    assert lock_event(("object", "T", 3), LockMode.S) == "Lock/ObjectS"
    assert lock_event(("wal",), LockMode.X) == "Lock/Wal"


# ---------------------------------------------------------------------------
# attribution under real contention (in-process sessions)
# ---------------------------------------------------------------------------


def test_blocked_statement_waits_dominate_explain_analyze():
    db = make_paper_db()
    holder = db.session(name="holder")
    blocked = db.session(name="blocked")
    in_txn = threading.Event()
    release = threading.Event()
    result = {}

    def hold():
        with holder.transaction():
            holder.execute(
                "UPDATE DEPARTMENTS x SET BUDGET = 1 WHERE x.DNO = 314"
            )
            in_txn.set()
            release.wait(5)

    def read():
        in_txn.wait(5)
        result["plan"] = blocked.execute(
            "EXPLAIN ANALYZE SELECT x.DNO FROM x IN DEPARTMENTS"
        )

    t1 = threading.Thread(target=hold)
    t2 = threading.Thread(target=read)
    t1.start()
    t2.start()
    time.sleep(0.25)  # the reader is now parked on the writer's X lock
    release.set()
    t1.join(timeout=10)
    t2.join(timeout=10)
    plan = result["plan"]
    assert "waits:" in plan
    assert "Lock/TableIS" in plan
    # the blocked time is real: parse the total out of the waits line
    waits_line = next(
        l for l in plan.splitlines() if l.startswith("waits:")
    )
    blocked_ms = float(waits_line.split("waits:")[1].split("ms")[0])
    assert blocked_ms >= 100.0
    # and the session's lifetime totals picked it up
    summary = blocked.wait_summary()
    assert summary["Lock/TableIS"][1] >= 100.0
    holder.close()
    blocked.close()


def test_ash_samples_a_waiting_session():
    db = make_paper_db()
    holder = db.session(name="holder")
    blocked = db.session(name="blocked")
    in_txn = threading.Event()
    release = threading.Event()

    def hold():
        with holder.transaction():
            holder.execute(
                "UPDATE DEPARTMENTS x SET BUDGET = 2 WHERE x.DNO = 314"
            )
            in_txn.set()
            release.wait(5)

    def read():
        in_txn.wait(5)
        blocked.query("SELECT x.DNO FROM x IN DEPARTMENTS")

    t1 = threading.Thread(target=hold)
    t2 = threading.Thread(target=read)
    t1.start()
    t2.start()
    try:
        in_txn.wait(5)
        deadline = time.monotonic() + 5
        waiting = None
        while time.monotonic() < deadline and waiting is None:
            db.ash.sample_once()
            waiting = next(
                (
                    s
                    for s in db.ash.tail()
                    if s.session == "blocked" and s.state == "waiting"
                ),
                None,
            )
            time.sleep(0.01)
    finally:
        release.set()
        t1.join(timeout=10)
        t2.join(timeout=10)
    assert waiting is not None, "ASH must catch the blocked session"
    assert waiting.wait_event == "Lock/TableIS"
    assert waiting.statement.startswith("SELECT")
    assert waiting.fingerprint is not None
    # SYS.ASH serves the same sample through the SELECT pipeline
    rows = db.execute(
        "SELECT a.SESSION, a.STATE, a.WAIT_EVENT FROM a IN SYS.ASH "
        "WHERE a.STATE = 'waiting'"
    ).to_plain()
    assert any(
        r["SESSION"] == "blocked" and r["WAIT_EVENT"] == "Lock/TableIS"
        for r in rows
    )
    holder.close()
    blocked.close()


def test_ash_background_thread_samples_and_stops():
    db = make_paper_db()
    session = db.session(name="busy")
    db.ash.start()
    assert db.ash.running
    db.ash.start()  # idempotent
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline and not db.ash.samples:
        session.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    db.ash.stop()
    assert not db.ash.running
    assert db.ash.samples, "the sampler must have captured the session"
    ticks = db.ash.ticks
    time.sleep(0.05)
    assert db.ash.ticks == ticks  # really stopped
    session.close()
    db.close()  # close() stops an (already stopped) sampler without error


# ---------------------------------------------------------------------------
# tail-based trace retention + identity
# ---------------------------------------------------------------------------


def test_retention_keeps_errors_slow_and_pinned_traces():
    tracer = Tracer(enabled=True, keep=4, slow_ms=5.0)
    with pytest.raises(ValueError):
        with tracer.span("statement"):
            raise ValueError("boom")
    error_id = tracer.last_trace.trace_id
    with tracer.span("statement"):
        time.sleep(0.01)  # over slow_ms
    slow_id = tracer.last_trace.trace_id
    tracer.arm_trace_id("feedc0de")
    with tracer.span("statement"):
        pass
    for _ in range(20):
        with tracer.span("statement"):
            pass
    kept = {t.trace_id for t in tracer.traces}
    assert {error_id, slow_id, "feedc0de"} <= kept
    assert len(tracer.traces) <= 4
    assert tracer.get(error_id).error.startswith("ValueError")
    assert tracer.get("feedc0de").pinned


def test_retention_sampling_keeps_every_nth_unremarkable_trace():
    tracer = Tracer(enabled=True, keep=100, sample_every=5)
    for _ in range(20):
        with tracer.span("statement"):
            pass
    assert len(tracer.traces) == 4
    assert tracer.sampled_out == 16
    # important traces bypass the sampler entirely
    tracer.arm_trace_id("0123456789abcdef")
    with tracer.span("statement"):
        pass
    assert tracer.get("0123456789abcdef") is not None


def test_armed_id_forces_a_trace_through_a_disabled_tracer():
    tracer = Tracer(enabled=False, keep=8)
    with tracer.span("statement") as span:
        assert span is None  # disabled, unarmed: no trace
    assert tracer.arm_trace_id("ABCD1234") == "abcd1234"
    with tracer.span("statement") as span:
        assert span is not None
        with tracer.span("execute") as child:  # children forced too
            assert child is not None
    assert not tracer.enabled
    trace = tracer.get("abcd1234")
    assert trace is not None and trace.pinned
    assert [c.name for c in trace.root.children] == ["execute"]
    # the armed id is one-shot
    with tracer.span("statement") as span:
        assert span is None


def test_trace_id_parsing_accepts_traceparent():
    from repro.obs import parse_trace_id

    assert (
        parse_trace_id("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
        == "4bf92f3577b34da6a3ce929d0e0e4736"
    )
    assert parse_trace_id("  MyTrace.7 ") == "mytrace.7"
    with pytest.raises(ValueError):
        parse_trace_id("no spaces allowed")
    with pytest.raises(ValueError):
        parse_trace_id("")


# ---------------------------------------------------------------------------
# satellites: serialization offsets, real tids, cross-thread disable
# ---------------------------------------------------------------------------


def test_span_roundtrip_preserves_start_offsets():
    root = Span("statement", start=100.0)
    early = Span("parse", start=100.001)
    early.end = 100.002
    late = Span("execute", start=100.010)
    late.end = 100.040
    root.children = [early, late]
    root.end = 100.050
    trace = Trace(root, started_at=1234.5, trace_id="aa11")

    restored = Trace.from_dict(json.loads(json.dumps(trace.to_dict())))
    assert restored.trace_id == "aa11"
    parse, execute = restored.root.children
    # offsets (not just durations) survive the round trip
    assert parse.start - restored.root.start == pytest.approx(0.001, abs=1e-6)
    assert execute.start - restored.root.start == pytest.approx(0.010, abs=1e-6)
    assert execute.duration_ms == pytest.approx(30.0, abs=1e-3)
    # a legacy export without start_ms still loads (all spans at origin)
    legacy = {"name": "old", "duration_ms": 5.0}
    span = Span.from_dict(legacy, origin=7.0)
    assert span.start == 7.0 and span.duration_ms == pytest.approx(5.0)


def test_multi_trace_chrome_export_uses_real_thread_lanes():
    tracer = Tracer(enabled=True, keep=16)

    def run(name):
        with tracer.span("statement", who=name):
            with tracer.span("execute"):
                time.sleep(0.001)

    threads = [
        threading.Thread(target=run, args=(f"w{i}",), name=f"worker-{i}")
        for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    traces = list(tracer.traces)
    assert len(traces) == 2
    data = json.loads(chrome_trace_json(traces))
    events = data["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    # one thread_name metadata event per OS thread, carrying its real name
    assert {m["args"]["name"] for m in meta} == {"worker-0", "worker-1"}
    real_tids = {t.thread_id for t in traces}
    assert len(real_tids) == 2 and 1 not in real_tids
    assert {m["tid"] for m in meta} == real_tids
    assert {e["tid"] for e in spans} == real_tids
    # every trace contributes its statement and execute span
    assert sorted(e["name"] for e in spans) == [
        "execute", "execute", "statement", "statement",
    ]
    # single-trace export stays metadata-free (the stable legacy shape)
    single = json.loads(traces[0].to_chrome_json())
    assert all(e["ph"] == "X" for e in single["traceEvents"])


def test_disable_resets_other_threads_span_stacks():
    tracer = Tracer(enabled=True, keep=8)
    opened = threading.Event()
    disabled = threading.Event()
    outcome = {}

    def worker():
        with tracer.span("outer"):
            opened.set()
            disabled.wait(5)
            # the main thread disabled+enabled while "outer" was open;
            # this span must become a fresh root, not a child of the
            # stale "outer"
            with tracer.span("fresh"):
                pass
            outcome["root"] = tracer.thread_last_trace.root.name

    t = threading.Thread(target=worker)
    t.start()
    assert opened.wait(5)
    tracer.disable()
    tracer.enable()
    disabled.set()
    t.join(timeout=5)
    assert outcome["root"] == "fresh"


def test_querylog_records_waits_and_trace_id():
    from repro.obs.querylog import QueryRecord

    record = QueryRecord(
        text="SELECT x.A FROM x IN T",
        kind="SELECT",
        latency_ms=12.0,
        waits={"Lock/TableIS": (2, 11.25)},
        trace_id="beef",
    )
    assert record.wait_ms == pytest.approx(11.25)
    data = json.loads(json.dumps(record.to_dict()))
    assert data["waits"]["Lock/TableIS"] == {"count": 2, "time_ms": 11.25}
    assert data["trace_id"] == "beef"


# ---------------------------------------------------------------------------
# acceptance: the whole story over TCP
# ---------------------------------------------------------------------------


def test_lock_wait_attributed_end_to_end_over_tcp():
    """Two TCP sessions: A holds a table X lock, B arms a trace id and
    runs EXPLAIN ANALYZE into the lock.  The blocked time must show up
    (1) in B's ``waits:`` section, (2) as a waiting SYS.ASH sample, and
    (3) as a ``Lock/*`` wait span in the retained trace fetched by id
    from SYS.TRACES / SYS.SPANS and exported via TRACE EXPORT."""
    from repro.server import DatabaseServer, LineClient

    db = make_paper_db()
    db.ash.start()
    server = DatabaseServer(db, port=0)
    server.serve_background()
    host, port = server.address
    trace_id = "cafe0123cafe0123"
    result = {}
    try:
        with LineClient(host, port) as a, LineClient(host, port) as b:
            assert "begin" in a.send("BEGIN")
            out = a.send(
                "UPDATE DEPARTMENTS x SET BUDGET = 3 WHERE x.DNO = 314"
            )
            assert not out.startswith("error"), out
            armed = b.send(f"TRACE {trace_id}")
            assert f"trace armed {trace_id}" in armed

            def blocked():
                result["plan"] = b.send(
                    "EXPLAIN ANALYZE SELECT x.DNO FROM x IN DEPARTMENTS"
                )

            t = threading.Thread(target=blocked)
            t.start()
            # while B is parked on the lock, ASH must sample it waiting
            deadline = time.monotonic() + 5
            ash_hit = None
            while time.monotonic() < deadline and ash_hit is None:
                rows = db.execute(
                    "SELECT a.SESSION, a.WAIT_EVENT, a.STATEMENT "
                    "FROM a IN SYS.ASH WHERE a.STATE = 'waiting'"
                ).to_plain()
                ash_hit = next(
                    (
                        r
                        for r in rows
                        if (r["WAIT_EVENT"] or "").startswith("Lock/")
                    ),
                    None,
                )
                time.sleep(0.01)
            assert "commit" in a.send("COMMIT")
            t.join(timeout=10)

            assert ash_hit is not None, "no waiting ASH sample was taken"
            assert "EXPLAIN" in ash_hit["STATEMENT"]
            plan = result["plan"]
            assert "waits:" in plan and "Lock/TableIS" in plan
            assert f"trace: {trace_id}" in plan

            # the armed trace was retained (pinned) and is queryable by id
            traces = db.execute(
                "SELECT t.TRACE_ID, t.PINNED, t.SESSION, t.SPAN_COUNT "
                f"FROM t IN SYS.TRACES WHERE t.TRACE_ID = '{trace_id}'"
            ).to_plain()
            assert len(traces) == 1
            assert traces[0]["PINNED"] is True
            assert traces[0]["SESSION"].startswith("client-")
            spans = db.execute(
                "SELECT s.NAME, s.WAIT, s.DURATION_MS, s.PATH "
                f"FROM s IN SYS.SPANS WHERE s.TRACE_ID = '{trace_id}'"
            ).to_plain()
            lock_spans = [
                s for s in spans if s["WAIT"] and s["NAME"].startswith("Lock/")
            ]
            assert lock_spans, f"no wait span in {spans}"
            assert lock_spans[0]["DURATION_MS"] > 0

            # the query log links the statement to the trace by id
            logged = db.execute(
                "SELECT q.WAIT_MS, q.KIND FROM q IN SYS.QUERIES "
                f"WHERE q.TRACE_ID = '{trace_id}'"
            ).to_plain()
            assert len(logged) == 1
            assert logged[0]["WAIT_MS"] > 0

            # TRACE EXPORT hands back Chrome JSON holding the lock span
            payload = b.send(f"TRACE EXPORT {trace_id}")
            data = json.loads(payload)
            names = [e["name"] for e in data["traceEvents"]]
            assert any(n.startswith("Lock/") for n in names)
            # exporting everything works too, and bad ids answer an error
            assert "traceEvents" in json.loads(b.send("TRACE EXPORT"))
            assert b.send("TRACE EXPORT nope").startswith("error")
            assert b.send("TRACE such id!").startswith("error")
    finally:
        server.shutdown()
        server.server_close()
        db.ash.stop()
