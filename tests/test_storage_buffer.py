"""Tests for paged files, the buffer manager, and segments."""

import os

import pytest

from repro.errors import BufferError_, PageFullError, RecordNotFoundError, SegmentError
from repro.storage.buffer import BufferManager
from repro.storage.constants import PAGE_SIZE
from repro.storage.pagedfile import DiskPagedFile, MemoryPagedFile
from repro.storage.segment import Segment
from repro.storage.tid import TID, MiniTID


def make_segment(capacity=64):
    buffer = BufferManager(MemoryPagedFile(), capacity=capacity)
    return Segment(buffer)


# -- paged files ---------------------------------------------------------------


def test_memory_pagedfile_roundtrip():
    file = MemoryPagedFile()
    n = file.allocate_page()
    file.write_page(n, b"\x07" * PAGE_SIZE)
    assert bytes(file.read_page(n)) == b"\x07" * PAGE_SIZE
    with pytest.raises(SegmentError):
        file.read_page(99)


def test_disk_pagedfile_roundtrip(tmp_path):
    path = str(tmp_path / "data.db")
    file = DiskPagedFile(path)
    n0 = file.allocate_page()
    n1 = file.allocate_page()
    file.write_page(n0, b"\x01" * PAGE_SIZE)
    file.write_page(n1, b"\x02" * PAGE_SIZE)
    file.sync()
    file.close()
    # reopen and verify persistence
    file2 = DiskPagedFile(path, create=False)
    assert file2.page_count == 2
    assert bytes(file2.read_page(n0)) == b"\x01" * PAGE_SIZE
    assert bytes(file2.read_page(n1)) == b"\x02" * PAGE_SIZE
    file2.close()


# -- buffer manager ---------------------------------------------------------------


def test_buffer_counts_logical_and_physical_reads():
    file = MemoryPagedFile()
    buffer = BufferManager(file, capacity=8)
    n, page = buffer.new_page()
    page.insert(b"x")
    buffer.unpin(n, dirty=True)
    buffer.stats.reset()
    with buffer.page(n):
        pass
    with buffer.page(n):
        pass
    assert buffer.stats.logical_reads == 2
    assert buffer.stats.physical_reads == 0  # cached
    buffer.invalidate_cache()
    buffer.stats.reset()
    with buffer.page(n):
        pass
    assert buffer.stats.physical_reads == 1


def test_buffer_eviction_writes_dirty_pages():
    file = MemoryPagedFile()
    buffer = BufferManager(file, capacity=2)
    pages = []
    for _ in range(4):
        n, page = buffer.new_page()
        page.insert(b"payload")
        buffer.unpin(n, dirty=True)
        pages.append(n)
    assert buffer.stats.evictions >= 2
    # evicted pages were written; re-reading sees the data
    for n in pages:
        with buffer.page(n) as page:
            assert page.live_records == 1


def test_buffer_refuses_to_evict_pinned():
    file = MemoryPagedFile()
    buffer = BufferManager(file, capacity=2)
    n0, _ = buffer.new_page()
    n1, _ = buffer.new_page()
    with pytest.raises(BufferError_):
        buffer.new_page()
    buffer.unpin(n0)
    buffer.unpin(n1)


def test_unpin_unpinned_raises():
    file = MemoryPagedFile()
    buffer = BufferManager(file, capacity=4)
    n, _ = buffer.new_page()
    buffer.unpin(n, dirty=True)
    with pytest.raises(BufferError_):
        buffer.unpin(n)


def test_flush_all_persists(tmp_path):
    path = str(tmp_path / "flush.db")
    file = DiskPagedFile(path)
    buffer = BufferManager(file, capacity=4)
    n, page = buffer.new_page()
    page.insert(b"durable")
    buffer.unpin(n, dirty=True)
    buffer.flush_all()
    file.close()
    file2 = DiskPagedFile(path, create=False)
    buffer2 = BufferManager(file2, capacity=4)
    with buffer2.page(n) as page:
        assert page.read(0)[1] == b"durable"
    file2.close()


def test_pages_touched_metric():
    segment = make_segment()
    tids = [segment.insert_record(b"x" * 1500) for _ in range(6)]
    segment.buffer.stats.reset()
    for tid in tids:
        segment.read_record(tid)
    distinct = segment.buffer.stats.snapshot()["distinct_pages"]
    assert distinct == len({t.page for t in tids})


# -- segments ----------------------------------------------------------------------


def test_segment_insert_read_update_delete():
    segment = make_segment()
    tid = segment.insert_record(b"v1")
    assert segment.read_record(tid) == b"v1"
    segment.update_record(tid, b"v2-longer")
    assert segment.read_record(tid) == b"v2-longer"
    segment.delete_record(tid)
    with pytest.raises(RecordNotFoundError):
        segment.read_record(tid)


def test_segment_forwarding_keeps_tid_stable():
    segment = make_segment()
    tid = segment.insert_record(b"small")
    # fill the home page so the grown record cannot stay
    while segment.free_space_on(tid.page) > 600:
        segment.insert_record_on(tid.page, b"f" * 500)
    segment.update_record(tid, b"G" * 1000)
    assert segment.read_record(tid) == b"G" * 1000  # same TID
    # update again while forwarded (in place at the remote)
    segment.update_record(tid, b"H" * 1000)
    assert segment.read_record(tid) == b"H" * 1000
    # grow beyond the remote page too
    segment.update_record(tid, b"I" * 3500)
    assert segment.read_record(tid) == b"I" * 3500
    segment.delete_record(tid)
    with pytest.raises(RecordNotFoundError):
        segment.read_record(tid)


def test_segment_scan_sees_forwarded_once():
    segment = make_segment()
    tid = segment.insert_record(b"base")
    while segment.free_space_on(tid.page) > 600:
        segment.insert_record_on(tid.page, b"f" * 500)
    segment.update_record(tid, b"M" * 2000)
    records = dict(segment.scan())
    assert records[tid] == b"M" * 2000
    assert list(records.values()).count(b"M" * 2000) == 1


def test_segment_preferred_pages_cluster():
    segment = make_segment()
    home = segment.allocate_page()
    tids = [segment.insert_record(b"c" * 100, preferred_pages=[home]) for _ in range(5)]
    assert all(t.page == home for t in tids)


def test_segment_preferred_page_overflow_allocates():
    segment = make_segment()
    home = segment.allocate_page()
    tids = [segment.insert_record(b"c" * 1000, preferred_pages=[home]) for _ in range(10)]
    pages = {t.page for t in tids}
    assert home in pages and len(pages) > 1


def test_segment_page_recycling():
    segment = make_segment()
    first = segment.allocate_page()
    segment.free_page(first)
    second = segment.allocate_page()
    assert second == first  # recycled
    with pytest.raises(SegmentError):
        segment.free_page(12345)


def test_segment_state_restore_roundtrip():
    segment = make_segment()
    tid = segment.insert_record(b"persist me")
    state = segment.state()
    restored = Segment.restore(segment.buffer, state)
    assert restored.read_record(tid) == b"persist me"
    assert restored.pages == segment.pages


def test_insert_record_on_full_page_raises():
    from repro.errors import RecordTooLargeError

    segment = make_segment()
    page = segment.allocate_page()
    with pytest.raises(RecordTooLargeError):
        segment.insert_record_on(page, b"x" * 5000)
    # a payload that fits a page but not this one raises PageFullError
    segment.insert_record_on(page, b"y" * 3000)
    with pytest.raises(PageFullError):
        segment.insert_record_on(page, b"z" * 2000)
