"""Smoke tests: every example script runs cleanly and prints what it
promises."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    out = io.StringIO()
    with redirect_stdout(out):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return out.getvalue()


def test_quickstart():
    text = run_example("quickstart.py")
    assert "{ DEPARTMENTS }" in text
    assert "Departments using a PC/AT: [218, 314, 417]" in text
    assert "['FN']" in text


def test_office_reports():
    text = run_example("office_reports.py")
    assert "Reports with 'Jones A' as FIRST author" in text
    assert "@object/" in text  # a tuple name was printed
    assert "Masked search '*comput*'" in text


def test_cad_assembly():
    text = run_example("cad_assembly.py")
    assert "Partial read of one part" in text
    assert "Checked out a workstation copy" in text
    assert "Shipped" in text and "workstation database" in text


def test_temporal_history():
    text = run_example("temporal_history.py")
    assert "ASOF 1984-01-15: [(17, 'CGA'), (23, 'HEAR')]" in text
    assert "ASOF 1984-03-15: [(17, 'CGA'), (29, 'ROBO')]" in text


def test_schema_evolution():
    text = run_example("schema_evolution.py")
    assert "Promoted 1 member" in text
    assert "Renamed BUDGET to FUNDS" in text
    assert "index (FN)" in text
