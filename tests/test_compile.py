"""The compiled execution core (``repro.query.compile``).

The contract under test: ``db.exec_mode = "compiled"`` must return
results byte-identical to the interpreted walker — values *and* row
order — while compiling each statement once (AST-fingerprint cache),
skipping index-settled conjuncts, scanning flat tables in columnar
chunks, and decoding NF2 data subtuples lazily.
"""

import datetime

import pytest

from repro.database import Database
from repro.obs import METRICS
from repro.query import executor as executor_mod
from repro.query.executor import _compile_mask, _sortable, compare

from tests.conftest import load_paper_tables


def build_db(**kwargs) -> Database:
    """The paper's tables plus a flat EMP table the scans chew on."""
    db = Database(**kwargs)
    load_paper_tables(db)
    db.execute("CREATE TABLE EMP (ENAME STRING, DEPT STRING, SAL INT)")
    db.insert_many(
        "EMP",
        (
            {
                "ENAME": f"emp-{i:03d}",
                "DEPT": f"d{i % 5}",
                "SAL": None if i % 11 == 0 else 30000 + i * 500,
            }
            for i in range(40)
        ),
    )
    # an ordered subtable, for subscript parity (the language is 1-based)
    db.execute("CREATE TABLE DOCS (ID INT, AUTHORS LIST OF (NAME STRING))")
    db.insert("DOCS", {"ID": 1, "AUTHORS": [{"NAME": "Jones"}, {"NAME": "Adams"}]})
    db.insert("DOCS", {"ID": 2, "AUTHORS": [{"NAME": "Chen"}]})
    db.insert("DOCS", {"ID": 3, "AUTHORS": []})
    return db


@pytest.fixture
def db() -> Database:
    return build_db()


def canonical_rows(result) -> list:
    """Values and order — parity means both, not just the multiset."""
    return [row.canonical() for row in result.rows]


def run_both(db: Database, sql: str) -> tuple[list, list]:
    db.exec_mode = "interpreted"
    interpreted = canonical_rows(db.query(sql))
    db.exec_mode = "compiled"
    compiled = canonical_rows(db.query(sql))
    return interpreted, compiled


# ---------------------------------------------------------------------------
# parity: every statement shape the engine supports
# ---------------------------------------------------------------------------

PARITY_QUERIES = [
    # flat projections, filters, ordering
    "SELECT e.ENAME, e.SAL FROM e IN EMP WHERE e.SAL > 40000",
    "SELECT e.ENAME FROM e IN EMP ORDER BY e.SAL DESC, e.ENAME",
    "SELECT DISTINCT e.DEPT FROM e IN EMP ORDER BY e.DEPT",
    "SELECT * FROM p IN PROJECTS-1NF WHERE p.PNO >= 12 ORDER BY p.PNO",
    # multi-range joins (index nested loops when available)
    "SELECT d.DNO, p.PNAME FROM d IN DEPARTMENTS-1NF, p IN PROJECTS-1NF "
    "WHERE d.DNO = p.DNO ORDER BY d.DNO, p.PNAME",
    # hierarchical navigation, nested ranges
    "SELECT x.DNO, y.PNAME FROM x IN DEPARTMENTS, y IN x.PROJECTS "
    "WHERE y.PNO > 10 ORDER BY x.DNO, y.PNAME",
    # nested sub-SELECT output attributes
    "SELECT x.DNO, (SELECT y.PNO FROM y IN x.PROJECTS WHERE y.PNO > 11) "
    "AS BIG FROM x IN DEPARTMENTS ORDER BY x.DNO",
    # quantifiers
    "SELECT x.DNO FROM x IN DEPARTMENTS "
    "WHERE EXISTS y IN x.PROJECTS: y.PNO = 17",
    "SELECT x.DNO FROM x IN DEPARTMENTS "
    "WHERE ALL y IN x.PROJECTS: y.PNO > 5",
    "SELECT x.DNO FROM x IN DEPARTMENTS "
    "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
    "z.FUNCTION = 'Consultant'",
    # CONTAINS / IS NULL
    "SELECT m.EMPNO FROM m IN MEMBERS-1NF WHERE m.FUNCTION CONTAINS 'Cons*t'",
    "SELECT e.ENAME FROM e IN EMP WHERE e.SAL IS NOT NULL",
    "SELECT e.ENAME FROM e IN EMP WHERE e.SAL IS NULL ORDER BY e.ENAME",
    # aggregates (flattened paths and subtable counts)
    "SELECT x.DNO, COUNT(x.PROJECTS) AS N FROM x IN DEPARTMENTS "
    "ORDER BY x.DNO",
    "SELECT x.DNO, SUM(x.EQUIP.QU) AS TOTAL FROM x IN DEPARTMENTS "
    "ORDER BY x.DNO",
    # subscripts (the language is 1-based; out-of-range yields NULL)
    "SELECT d.ID, d.AUTHORS[2].NAME AS SECOND FROM d IN DOCS ORDER BY d.ID",
    # whole subtables in the select list
    "SELECT x.DNO, x.EQUIP FROM x IN DEPARTMENTS ORDER BY x.DNO",
    # literal-only predicates
    "SELECT e.ENAME FROM e IN EMP WHERE 1 = 1",
    # SYS virtual catalog
    "SELECT t.NAME FROM t IN SYS.TABLES ORDER BY t.NAME",
]


def test_parity_battery(db):
    for sql in PARITY_QUERIES:
        interpreted, compiled = run_both(db, sql)
        assert compiled == interpreted, sql


def test_parity_with_indexes(db):
    """Same battery once access paths exist — plans change, results don't."""
    db.create_index("DN", "DEPARTMENTS", "DNO")
    db.create_index("PN_HIER", "DEPARTMENTS", "PROJECTS.PNO")
    db.create_index("FN_HIER", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    db.create_index("SAL_IX", "EMP", "SAL")
    for sql in PARITY_QUERIES:
        interpreted, compiled = run_both(db, sql)
        assert compiled == interpreted, sql


def test_asof_parity():
    """Temporal reads take the version-chain path in both engines."""
    from repro.datasets import paper

    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    for sql in (
        # before any insert: empty in both engines
        "SELECT x.DNO FROM x IN DEPARTMENTS ASOF '1984-01-15' ORDER BY x.DNO",
        # far future: everything visible
        "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS ASOF '2100-01-01' "
        "ORDER BY x.DNO",
    ):
        interpreted, compiled = run_both(db, sql)
        assert compiled == interpreted, sql


# ---------------------------------------------------------------------------
# the statement cache
# ---------------------------------------------------------------------------


def test_statement_compiles_once(db):
    db.exec_mode = "compiled"
    sql = "SELECT e.ENAME FROM e IN EMP WHERE e.SAL > 40000"
    db.query(sql)
    assert db._executor.exec_report.cache == "miss"
    METRICS.clear()
    METRICS.enable()
    try:
        db.query(sql)
        assert db._executor.exec_report.cache == "hit"
        assert METRICS.counter("exec.compile_hits").total == 1
        assert METRICS.counter("exec.compiles").total == 0
    finally:
        METRICS.disable()
        METRICS.clear()


def test_alter_table_invalidates_compiled_plans(db):
    db.exec_mode = "compiled"
    sql = "SELECT * FROM e IN EMP WHERE e.SAL > 40000"
    before = db.query(sql)
    db.query(sql)
    assert db._executor.exec_report.cache == "hit"
    db.execute("ALTER TABLE EMP ADD NOTE STRING")
    after = db.query(sql)
    # the schema epoch moved: recompiled, and the new attribute is seen
    assert db._executor.exec_report.cache == "miss"
    assert "NOTE" in after.schema.attribute_names
    assert len(after.rows) == len(before.rows)


def test_compiled_cache_is_bounded(db, monkeypatch):
    monkeypatch.setattr(executor_mod, "_COMPILED_CACHE_LIMIT", 4)
    db.exec_mode = "compiled"
    for bound in range(30000, 30010):
        db.query(f"SELECT e.ENAME FROM e IN EMP WHERE e.SAL > {bound}")
    assert len(db._executor._compiled_cache) <= 4


def test_schema_cache_evicts_lru(db, monkeypatch):
    monkeypatch.setattr(executor_mod, "_SCHEMA_CACHE_LIMIT", 4)
    db.exec_mode = "interpreted"  # the binder cache is mode-agnostic
    METRICS.clear()
    METRICS.enable()
    try:
        for bound in range(40000, 40010):
            db.query(f"SELECT e.ENAME FROM e IN EMP WHERE e.SAL > {bound}")
        assert len(db._executor._schema_cache) <= 4
        assert METRICS.counter("exec.schema_cache_evictions").total > 0
    finally:
        METRICS.disable()
        METRICS.clear()


def test_exec_mode_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_MODE", "interpreted")
    assert Database().exec_mode == "interpreted"
    monkeypatch.delenv("REPRO_EXEC_MODE")
    assert Database().exec_mode == "compiled"


# ---------------------------------------------------------------------------
# settled conjuncts
# ---------------------------------------------------------------------------

CONJUNCTIVE = (
    "SELECT x.DNO FROM x IN DEPARTMENTS "
    "WHERE EXISTS y IN x.PROJECTS (y.PNO = 17 AND "
    "EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
)


def _with_hierarchical_indexes(db: Database) -> Database:
    db.create_index("PN_HIER", "DEPARTMENTS", "PROJECTS.PNO")
    db.create_index("FN_HIER", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    return db


def _predicate_evals(db: Database, sql: str) -> tuple[int, list]:
    METRICS.clear()
    METRICS.enable()
    try:
        result = db.query(sql)
        return db._executor.last_profile.predicate_evals, canonical_rows(result)
    finally:
        METRICS.disable()
        METRICS.clear()


def test_settled_conjuncts_skip_residual_predicate(db):
    _with_hierarchical_indexes(db)
    db.exec_mode = "interpreted"
    interp_evals, interp_rows = _predicate_evals(db, CONJUNCTIVE)
    db.exec_mode = "compiled"
    compiled_evals, compiled_rows = _predicate_evals(db, CONJUNCTIVE)
    assert compiled_rows == interp_rows
    # the whole WHERE settled on index information alone: the compiled
    # engine never re-tests it against fetched objects
    assert db._executor.exec_report.settled_conjuncts == 1
    assert compiled_evals == 0
    assert interp_evals > 0


def test_settled_stripped_under_mvcc():
    """MVCC defers index cleanup to GC — hits may be stale by fetch time,
    so settlement must not skip the re-check."""
    db = _with_hierarchical_indexes(build_db(mvcc=True))
    db.exec_mode = "compiled"
    interp, compiled = run_both(db, CONJUNCTIVE)
    assert compiled == interp
    assert db._executor.exec_report.settled_conjuncts == 0


def test_settled_stripped_inside_session(db):
    """Under 2PL a writer may change a candidate between the index probe
    and our S-lock; the predicate must re-verify."""
    _with_hierarchical_indexes(db)
    db.exec_mode = "compiled"
    expected = canonical_rows(db.query(CONJUNCTIVE))
    with db.session(name="reader") as session:
        result = session.execute(CONJUNCTIVE)
        assert canonical_rows(result) == expected
        assert db._executor.exec_report.settled_conjuncts == 0


def test_settlement_never_skips_bool_literals():
    """B+-tree equality says ``True == 1``; ``compare()`` never equates a
    boolean with a number — so boolean conjuncts must not settle."""
    db = Database()
    db.execute("CREATE TABLE F (K INT, OK BOOL)")
    db.insert("F", {"K": 1, "OK": True})
    db.insert("F", {"K": 2, "OK": False})
    db.create_index("OK_IX", "F", "OK")
    sql = "SELECT f.K FROM f IN F WHERE f.OK = TRUE"
    interp, compiled = run_both(db, sql)
    assert compiled == interp
    assert db._executor.exec_report.settled_conjuncts == 0


# ---------------------------------------------------------------------------
# lazy decode and columnar scans
# ---------------------------------------------------------------------------


def _data_decodes(db: Database, sql: str) -> tuple[float, list]:
    METRICS.clear()
    METRICS.enable()
    try:
        result = db.query(sql)
        decodes = METRICS.counter("storage.data_subtuple_decodes").total
        return decodes, canonical_rows(result)
    finally:
        METRICS.disable()
        METRICS.clear()


def test_lazy_decode_skips_untouched_hierarchies(db):
    _with_hierarchical_indexes(db)
    # settled predicate + root-atomic projection: only the root's data
    # subtuple should ever decode
    sql = (
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS: y.PNO = 17"
    )
    db.exec_mode = "interpreted"
    interp_decodes, interp_rows = _data_decodes(db, sql)
    db.exec_mode = "compiled"
    compiled_decodes, compiled_rows = _data_decodes(db, sql)
    assert compiled_rows == interp_rows
    assert compiled_decodes < interp_decodes


def test_columnar_flat_scan(db):
    sql = (
        "SELECT e.ENAME, e.SAL FROM e IN EMP "
        "WHERE e.SAL > 40000 ORDER BY e.SAL"
    )
    interp, compiled = run_both(db, sql)
    assert compiled == interp
    assert db._executor.exec_report.columnar_chunks > 0


def test_columnar_respects_updates(db):
    """The chunked scan reads current heap state, not a stale snapshot."""
    db.exec_mode = "compiled"
    sql = "SELECT e.ENAME FROM e IN EMP WHERE e.SAL > 900000"
    assert db.query(sql).rows == []
    db.execute("UPDATE EMP e SET SAL = 950000 WHERE e.ENAME = 'emp-007'")
    names = [row["ENAME"] for row in db.query(sql).rows]
    assert names == ["emp-007"]


# ---------------------------------------------------------------------------
# satellite: compare()/_sortable edges
# ---------------------------------------------------------------------------


def test_sortable_orders_mixed_date_datetime():
    day = datetime.date(2026, 8, 8)
    morning = datetime.datetime(2026, 8, 8, 9, 30)
    evening = datetime.datetime(2026, 8, 8, 21, 0)
    keys = sorted([_sortable(evening), _sortable(day), _sortable(morning)])
    # the bare date sorts as that day's midnight, before both timestamps
    assert keys == [_sortable(day), _sortable(morning), _sortable(evening)]
    assert _sortable(morning) != _sortable(evening)  # time-of-day preserved


def test_order_by_desc_with_nulls():
    db = Database()
    db.execute("CREATE TABLE T (K INT, V INT)")
    for k, v in ((1, 10), (2, None), (3, 30), (4, None)):
        db.insert("T", {"K": k, "V": v})
    sql = "SELECT t.K FROM t IN T ORDER BY t.V DESC, t.K"
    interp, compiled = run_both(db, sql)
    assert compiled == interp
    db.exec_mode = "compiled"
    keys = [row["K"] for row in db.query(sql).rows]
    # NULLs sort first ascending, therefore last descending; ties break
    # on the secondary ascending key
    assert keys == [3, 1, 2, 4]


def test_bool_vs_number_compare():
    # distinct types are never equal, so <> must say so — and ordering
    # between them is false, not an error (two-valued logic)
    assert compare("<>", True, 1) is True
    assert compare("=", True, 1) is False
    assert compare("<", False, 1) is False
    assert compare("=", True, True) is True
    assert compare("<>", False, False) is False


def test_contains_compiles_mask_once_per_statement():
    db = Database()
    db.execute("CREATE TABLE T (K INT, S STRING)")
    for i in range(64):
        db.insert("T", {"K": i, "S": f"value-{i:03d}"})
    sql = "SELECT t.K FROM t IN T WHERE t.S CONTAINS 'value-0?1'"
    for mode in ("interpreted", "compiled"):
        db.exec_mode = mode
        _compile_mask.cache_clear()
        result = db.query(sql)
        assert [row["K"] for row in result.rows] == [1, 11, 21, 31, 41, 51, 61]
        info = _compile_mask.cache_info()
        assert info.misses == 1, (mode, info)  # one compile, not one per row
