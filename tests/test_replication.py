"""WAL log-shipping replication tests (PR 9).

A disk-backed primary served by the async server ships committed page
images to replicas that continuously redo them into their own buffer
pools.  Covered here: snapshot + streaming apply, read-only enforcement
(in-process and over the wire), ASOF/temporal reads on a replica, index
maintenance through redo, lag observability in SYS.WAL / SYS.REPLICAS,
in-process promotion, multi-replica convergence, and a kill-the-primary
failover with a subprocess primary.
"""

import datetime
import os
import re
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.database import Database
from repro.errors import ExecutionError, UnknownTableError
from repro.replication import open_replica, promote
from repro.server import AsyncDatabaseServer, LineClient

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


@pytest.fixture
def primary(tmp_path):
    """Disk-backed (WAL-enabled) primary behind an async server."""
    db = Database(str(tmp_path / "primary.db"))
    db.execute("CREATE TABLE T (ID INT, NAME STRING)")
    server = AsyncDatabaseServer(db, port=0)
    server.serve_background()
    try:
        yield db, server
    finally:
        server.shutdown()
        db.close()


def _replica_of(server, **kw):
    host, port = server.address
    return open_replica(f"{host}:{port}", **kw)


def _ids(db):
    return sorted(
        row["ID"] for row in db.query("SELECT t.ID FROM t IN T").to_plain()
    )


def _safe_ids(db):
    # before the attach snapshot lands the replica has no catalog yet
    try:
        return _ids(db)
    except UnknownTableError:
        return None


def _sync(primary_db, replica_db):
    """Block until the replica has applied everything the primary shipped."""
    assert _wait_for(lambda: primary_db.replication is not None), \
        "no replica ever attached"
    hub = primary_db.replication
    assert replica_db.replication.wait_for_seq(hub.seq), "replica lagged out"


# -- snapshot + streaming --------------------------------------------------


def test_snapshot_then_stream(primary):
    db, server = primary
    db.execute("INSERT INTO T VALUES (1, 'before-snapshot')")
    replica = _replica_of(server)
    try:
        # the attach snapshot alone must carry existing data
        assert _wait_for(lambda: _safe_ids(replica) == [1])
        db.execute("INSERT INTO T VALUES (2, 'streamed')")
        db.execute("INSERT INTO T VALUES (3, 'streamed')")
        _sync(db, replica)
        assert _ids(replica) == [1, 2, 3]
        assert replica.replication.lag == 0
        assert replica.replication.last_error is None
    finally:
        replica.close()


def test_replica_lag_is_observable(primary):
    db, server = primary
    replica = _replica_of(server)
    try:
        assert _wait_for(lambda: db.replication is not None)
        for i in range(10):
            db.execute(f"INSERT INTO T VALUES ({i}, 'x')")
        _sync(db, replica)
        rows = replica.query(
            "SELECT w.ROLE, w.SHIPPED_SEQ, w.APPLIED_SEQ, w.REPLICA_LAG "
            "FROM w IN SYS.WAL"
        ).to_plain()
        assert len(rows) == 1
        row = rows[0]
        assert row["ROLE"] == "replica"
        assert row["APPLIED_SEQ"] == row["SHIPPED_SEQ"] == db.replication.seq
        assert row["REPLICA_LAG"] == 0

        # the ack carrying APPLIED_SEQ back upstream is async on top of
        # the apply itself, so poll the primary's view of the link
        def acked():
            rows = db.query(
                "SELECT r.ROLE, r.STATE, r.APPLIED_SEQ FROM r IN SYS.REPLICAS"
            ).to_plain()
            return (
                len(rows) == 1
                and rows[0]["ROLE"] == "downstream"
                and rows[0]["STATE"] == "streaming"
                and rows[0]["APPLIED_SEQ"] == db.replication.seq
            )

        assert _wait_for(acked)
    finally:
        replica.close()


def test_multiple_replicas_converge(primary):
    db, server = primary
    replicas = [_replica_of(server) for _ in range(3)]
    try:
        for i in range(20):
            db.execute(f"INSERT INTO T VALUES ({i}, 'fanout')")
        for replica in replicas:
            _sync(db, replica)
            assert _ids(replica) == list(range(20))
        assert len(db.replication.links()) == 3
        assert len(db.query(
            "SELECT r.PEER FROM r IN SYS.REPLICAS"
        ).to_plain()) == 3
    finally:
        for replica in replicas:
            replica.close()


# -- read-only enforcement -------------------------------------------------


def test_replica_rejects_writes_in_process(primary):
    db, server = primary
    replica = _replica_of(server)
    try:
        assert _wait_for(lambda: _safe_ids(replica) == [])  # snapshot landed
        for stmt in (
            "INSERT INTO T VALUES (9, 'nope')",
            "DELETE t FROM t IN T WHERE t.ID = 9",
            "CREATE TABLE U (A INT)",
        ):
            with pytest.raises(ExecutionError, match="read-only replica"):
                replica.execute(stmt)
        # reads keep working after the rejections
        assert replica.query("SELECT t.ID FROM t IN T").to_plain() == []
    finally:
        replica.close()


def test_replica_rejects_dml_over_the_wire(primary):
    db, server = primary
    replica = _replica_of(server)
    replica_server = AsyncDatabaseServer(replica, port=0)
    replica_server.serve_background()
    try:
        db.execute("INSERT INTO T VALUES (1, 'primary-data')")
        _sync(db, replica)
        assert _wait_for(lambda: _safe_ids(replica) == [1])
        host, port = replica_server.address
        with LineClient(host, port) as client:
            reply = client.send("INSERT INTO T VALUES (2, 'nope')")
            assert "error" in reply and "read-only replica" in reply
            assert "PROMOTE" in reply  # the error says how to fail over
            assert "(1 tuple)" in client.send("SELECT t.ID FROM t IN T")
    finally:
        replica_server.shutdown()
        replica.close()


# -- temporal / index redo -------------------------------------------------


def test_asof_queries_on_replica(primary):
    from repro.datasets import paper

    db, server = primary
    db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True)
    tid = db.insert(
        "DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at=datetime.date(1984, 1, 1)
    )
    replica = _replica_of(server)
    try:
        db.update(
            "DEPARTMENTS", tid, {"BUDGET": 999}, at=datetime.date(1984, 2, 1)
        )
        _sync(db, replica)

        def updated():
            # the update may have committed before the attach snapshot
            # was cut, so sync alone doesn't guarantee the catalog is in
            try:
                rows = replica.query(
                    "SELECT x.BUDGET FROM x IN DEPARTMENTS"
                ).to_plain()
            except UnknownTableError:
                return False
            return [r["BUDGET"] for r in rows] == [999]

        assert _wait_for(updated)
        old = replica.query(
            "SELECT x.BUDGET FROM x IN DEPARTMENTS ASOF '1984-01-15'"
        ).to_plain()
        new = replica.query(
            "SELECT x.BUDGET FROM x IN DEPARTMENTS"
        ).to_plain()
        assert [r["BUDGET"] for r in old] == [320_000]
        assert [r["BUDGET"] for r in new] == [999]
    finally:
        replica.close()


def test_index_follows_replication(primary):
    db, server = primary
    db.create_index("IDX_T_ID", "T", "ID")
    replica = _replica_of(server)
    try:
        for i in range(50):
            db.execute(f"INSERT INTO T VALUES ({i}, 'indexed')")
        _sync(db, replica)
        # redo rebuilt the index on the replica's side of the catalog
        assert "IDX_T_ID" in replica.catalog.table("T").indexes
        got = replica.query(
            "SELECT t.NAME FROM t IN T WHERE t.ID = 37"
        ).to_plain()
        assert [r["NAME"] for r in got] == ["indexed"]
    finally:
        replica.close()


# -- promotion -------------------------------------------------------------


def test_promote_in_process(primary):
    db, server = primary
    db.execute("INSERT INTO T VALUES (1, 'survivor')")
    replica = _replica_of(server)
    try:
        assert _wait_for(lambda: _safe_ids(replica) == [1])  # snapshot landed
        promote(replica)
        assert not replica.read_only
        replica.execute("INSERT INTO T VALUES (2, 'post-promote')")
        assert _ids(replica) == [1, 2]
        with pytest.raises(ExecutionError, match="already promoted"):
            promote(replica)
    finally:
        replica.close()


def test_promote_non_replica_raises(primary):
    db, _server = primary
    with pytest.raises(ExecutionError, match="not a replica"):
        promote(db)


# -- failover --------------------------------------------------------------


def _spawn_primary(db_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.server", str(db_path),
            "--port", "0",
            "--init", "CREATE TABLE T (ID INT, NAME STRING)",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    # --init echoes its statements before the serving banner
    for _ in range(20):
        banner = proc.stdout.readline()
        match = re.search(r"serving .* on ([\d.]+):(\d+)", banner)
        if match:
            return proc, match.group(1), int(match.group(2))
    raise AssertionError(f"no serving banner, last line: {banner!r}")


def test_failover_promotes_replica_with_consistent_prefix(tmp_path):
    """Kill the primary process mid-load; the replica must hold a
    consistent prefix of the committed stream, then take writes after
    PROMOTE."""
    proc, host, port = _spawn_primary(tmp_path / "failover.db")
    replica = None
    loader_sent = []
    try:
        replica = open_replica(f"{host}:{port}")

        def load():
            client = LineClient(host, port, timeout=10)
            try:
                for i in range(10_000):
                    reply = client.send(f"INSERT INTO T VALUES ({i}, 'load')")
                    if "affected" not in reply:
                        return
                    loader_sent.append(i)
            except (ConnectionError, OSError):
                return

        loader = threading.Thread(target=load, daemon=True)
        loader.start()
        # let a healthy amount of traffic replicate, then pull the plug
        assert _wait_for(lambda: replica.replication.applied_seq >= 10)
        proc.kill()
        proc.wait(timeout=10)
        loader.join(timeout=10)
        assert not loader.is_alive()

        applied = replica.replication.applied_seq
        assert applied >= 10
        # every applied commit is a whole INSERT: IDs are a contiguous
        # prefix of the load (no torn batch, no gap)
        ids = _ids(replica)
        assert ids == list(range(len(ids)))
        assert len(ids) >= 10
        # the replica never applied more than the loader committed (+1
        # in-flight insert whose ack the loader may have missed)
        assert len(ids) <= len(loader_sent) + 1

        promote(replica)
        replica.execute(
            f"INSERT INTO T VALUES ({len(ids)}, 'after-failover')"
        )
        assert _ids(replica) == list(range(len(ids) + 1))
    finally:
        if replica is not None:
            replica.close()
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)
        proc.stdout.close()


def test_replica_reports_tailer_error_against_dead_primary():
    # nothing listens on this port: the tailer must keep retrying and
    # surface the failure instead of dying silently
    replica = open_replica("127.0.0.1:1", reconnect_delay=0.05)
    try:
        assert _wait_for(lambda: replica.replication.last_error is not None)
        rows = list(replica.replication.replica_rows())
        assert rows and rows[0]["STATE"] != "streaming"
    finally:
        replica.close()
