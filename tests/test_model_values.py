"""Unit tests for nested tuple/table values."""

import datetime

import pytest

from repro.errors import DataError
from repro.model.schema import atomic, nested, table, list_of
from repro.model.types import AtomicType
from repro.model.values import TableValue, TupleValue
from repro.datasets import paper


def test_from_plain_dict_and_sequence():
    schema = paper.EQUIP_SCHEMA
    t1 = TupleValue.from_plain(schema, {"QU": 2, "TYPE": "3278"})
    t2 = TupleValue.from_plain(schema, (2, "3278"))
    assert t1 == t2
    assert t1["QU"] == 2


def test_missing_attribute_rejected():
    with pytest.raises(DataError):
        TupleValue.from_plain(paper.EQUIP_SCHEMA, {"QU": 2})


def test_extra_attribute_rejected():
    with pytest.raises(DataError):
        TupleValue.from_plain(paper.EQUIP_SCHEMA, {"QU": 2, "TYPE": "x", "Z": 1})


def test_wrong_arity_rejected():
    with pytest.raises(DataError):
        TupleValue.from_plain(paper.EQUIP_SCHEMA, (1, "x", 3))


def test_type_validation():
    with pytest.raises(DataError):
        TupleValue.from_plain(paper.EQUIP_SCHEMA, {"QU": "two", "TYPE": "3278"})
    with pytest.raises(DataError):
        TupleValue.from_plain(paper.EQUIP_SCHEMA, {"QU": True, "TYPE": "3278"})


def test_none_allowed_everywhere():
    t = TupleValue.from_plain(paper.EQUIP_SCHEMA, {"QU": None, "TYPE": None})
    assert t["QU"] is None


def test_date_coercion_from_iso_string():
    schema = table("T", atomic("D", "DATE"))
    t = TupleValue.from_plain(schema, {"D": "1984-01-15"})
    assert t["D"] == datetime.date(1984, 1, 15)
    with pytest.raises(DataError):
        TupleValue.from_plain(schema, {"D": "not-a-date"})


def test_nested_table_built_from_plain_lists():
    dept = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, paper.DEPARTMENTS_ROWS[0])
    projects = dept["PROJECTS"]
    assert isinstance(projects, TableValue)
    assert len(projects) == 2
    members = projects[0]["MEMBERS"]
    assert members.column("EMPNO") == [39582, 56019, 69011]


def test_atomic_values_are_first_level_only():
    dept = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, paper.DEPARTMENTS_ROWS[0])
    # exactly the paper's data subtuple '314 56194 320,000'
    assert dept.atomic_values() == (314, 56194, 320_000)


def test_unordered_equality_ignores_row_order():
    schema = paper.EQUIP_SCHEMA
    a = TableValue.from_plain(schema, [(2, "3278"), (1, "PC")])
    b = TableValue.from_plain(schema, [(1, "PC"), (2, "3278")])
    assert a == b
    assert hash(a) == hash(b)


def test_ordered_equality_respects_row_order():
    schema = list_of("AUTHORS", atomic("NAME", "STRING"))
    a = TableValue.from_plain(schema, [("Jones",), ("Smith",)])
    b = TableValue.from_plain(schema, [("Smith",), ("Jones",)])
    assert a != b
    assert a == TableValue.from_plain(schema, [("Jones",), ("Smith",)])


def test_ordered_vs_unordered_never_equal():
    ordered = list_of("T", atomic("A", "INT"))
    unordered = table("T", atomic("A", "INT"))
    a = TableValue.from_plain(ordered, [(1,)])
    b = TableValue.from_plain(unordered, [(1,)])
    assert a != b


def test_nested_equality_is_recursive():
    a = TableValue.from_plain(paper.DEPARTMENTS_SCHEMA, paper.DEPARTMENTS_ROWS)
    b = TableValue.from_plain(paper.DEPARTMENTS_SCHEMA, list(reversed(paper.DEPARTMENTS_ROWS)))
    assert a == b


def test_to_plain_round_trip():
    a = TableValue.from_plain(paper.DEPARTMENTS_SCHEMA, paper.DEPARTMENTS_ROWS)
    again = TableValue.from_plain(paper.DEPARTMENTS_SCHEMA, a.to_plain())
    assert a == again


def test_replace_atomic_and_nested():
    dept = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, paper.DEPARTMENTS_ROWS[0])
    updated = dept.replace(BUDGET=999)
    assert updated["BUDGET"] == 999
    assert dept["BUDGET"] == 320_000  # original untouched
    shrunk = dept.replace(EQUIP=[(1, "PC")])
    assert len(shrunk["EQUIP"]) == 1
    with pytest.raises(DataError):
        dept.replace(NOPE=1)


def test_table_append_and_positional_access():
    schema = list_of("AUTHORS", atomic("NAME", "STRING"))
    t = TableValue(schema)
    t.append(("Jones",))
    t.append(("Smith",))
    t.insert(0, ("First",))
    assert t[0]["NAME"] == "First"
    assert len(t) == 3


def test_column_accessor():
    equip = TableValue.from_plain(paper.EQUIP_SCHEMA, [(2, "3278"), (1, "PC")])
    assert equip.column("TYPE") == ["3278", "PC"]


def test_wrong_nested_schema_rejected():
    schema = paper.DEPARTMENTS_SCHEMA
    other = TableValue.from_plain(paper.EQUIP_SCHEMA, [(1, "PC")])
    row = dict(paper.DEPARTMENTS_ROWS[0])
    row["PROJECTS"] = other
    with pytest.raises(DataError):
        TupleValue.from_plain(schema, row)
