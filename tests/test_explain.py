"""Tests for Database.explain."""

import pytest

from repro.errors import BindError


def test_explain_full_scan(paper_db):
    plan = paper_db.explain("SELECT x.DNO FROM x IN DEPARTMENTS")
    assert "loop 1: x IN DEPARTMENTS" in plan
    assert "full scan" in plan
    assert "relation (DNO)" in plan


def test_explain_index_access(paper_db):
    paper_db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    plan = paper_db.explain(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    )
    assert "index (FN)" in plan
    assert "2 candidate object(s)" in plan


def test_explain_prefix_join(paper_db):
    paper_db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    paper_db.create_index("PN", "DEPARTMENTS", "PROJECTS.PNO")
    plan = paper_db.explain(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS "
        "(y.PNO = 17 AND EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
    )
    assert "prefix joins on hierarchical addresses: 1" in plan


def test_explain_or_prevents_index(paper_db):
    paper_db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    plan = paper_db.explain(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE x.BUDGET = 1 OR x.BUDGET = 2"
    )
    assert "WHERE not index-coverable" in plan


def test_explain_multiple_loops_and_ordered_result(paper_db):
    plan = paper_db.explain(
        "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS ORDER BY y.PNO"
    )
    assert "loop 2: y IN x.PROJECTS" in plan
    assert "list (PNO)" in plan


def test_explain_validates(paper_db):
    with pytest.raises(BindError):
        paper_db.explain("SELECT x.NOPE FROM x IN DEPARTMENTS")


def test_explain_non_query(paper_db):
    assert "DeleteStatement" in paper_db.explain("DELETE FROM DEPARTMENTS")


# ---------------------------------------------------------------------------
# every range variable gets an access line
# ---------------------------------------------------------------------------


def test_explain_access_line_per_range(paper_db):
    plan = paper_db.explain(
        "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS"
    )
    assert plan.count("access:") == 2
    assert "nested scan of x.PROJECTS" in plan


def make_1nf_join_db():
    from repro.database import Database
    from repro.datasets import paper

    db = Database()
    db.create_table(paper.DEPARTMENTS_1NF_SCHEMA)
    db.create_table(paper.PROJECTS_1NF_SCHEMA)
    db.insert_many(
        "DEPARTMENTS-1NF", (r.to_plain() for r in paper.departments_1nf())
    )
    db.insert_many(
        "PROJECTS-1NF", (r.to_plain() for r in paper.projects_1nf())
    )
    return db


def test_explain_inner_table_index_nested_loops():
    db = make_1nf_join_db()
    db.create_index("PDNO", "PROJECTS-1NF", ("DNO",))
    plan = db.explain(
        "SELECT d.DNO FROM d IN DEPARTMENTS-1NF, p IN PROJECTS-1NF "
        "WHERE p.DNO = d.DNO"
    )
    assert "loop 2: p IN PROJECTS-1NF" in plan
    assert "index nested loops (PDNO)" in plan


def test_explain_inner_table_without_index_rescans():
    db = make_1nf_join_db()
    plan = db.explain(
        "SELECT d.DNO FROM d IN DEPARTMENTS-1NF, p IN PROJECTS-1NF "
        "WHERE p.DNO = d.DNO"
    )
    assert "full scan (re-scanned per outer binding)" in plan


# ---------------------------------------------------------------------------
# EXPLAIN / EXPLAIN ANALYZE as statements
# ---------------------------------------------------------------------------


def test_explain_statement_via_execute(paper_db):
    plan = paper_db.execute("EXPLAIN SELECT x.DNO FROM x IN DEPARTMENTS")
    assert isinstance(plan, str)
    assert "query plan:" in plan
    assert "loop 1: x IN DEPARTMENTS" in plan


def test_explain_nested_is_rejected(paper_db):
    from repro.errors import ParseError

    with pytest.raises(ParseError):
        paper_db.execute(
            "EXPLAIN EXPLAIN SELECT x.DNO FROM x IN DEPARTMENTS"
        )


def test_explain_analyze_reports_actuals(paper_db):
    text = paper_db.execute(
        "EXPLAIN ANALYZE SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE x.BUDGET > 0"
    )
    assert "query plan (analyzed):" in text
    assert "actual: 3 row(s) scanned" in text
    assert "result: 3 row(s)" in text
    assert "predicate evaluations: 3" in text
    assert "timings:" in text
    for phase in ("parse:", "bind:", "execute:", "total:"):
        assert phase in text
    assert "buffer (delta):" in text
    assert "engine counters (delta):" in text
    assert "storage.md_subtuple_reads" in text


def test_explain_analyze_shows_predicted_and_actual_path(paper_db):
    paper_db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    text = paper_db.execute(
        "EXPLAIN ANALYZE SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    )
    assert "index (FN)" in text
    assert "index.probes" in text


def test_explain_analyze_join_counts_lookups():
    db = make_1nf_join_db()
    db.create_index("PDNO", "PROJECTS-1NF", ("DNO",))
    text = db.execute(
        "EXPLAIN ANALYZE SELECT d.DNO FROM d IN DEPARTMENTS-1NF, "
        "p IN PROJECTS-1NF WHERE p.DNO = d.DNO"
    )
    assert "index nested loops (PDNO)" in text
    assert "join lookups: 3" in text
    assert "index.btree_node_visits" in text


def test_explain_analyze_restores_observability_state(paper_db):
    from repro import obs

    assert not obs.METRICS.enabled and not obs.TRACER.enabled
    paper_db.execute("EXPLAIN ANALYZE SELECT x.DNO FROM x IN DEPARTMENTS")
    assert not obs.METRICS.enabled and not obs.TRACER.enabled
    # counters stop moving once the analyzed run is over
    after = obs.METRICS.totals()
    paper_db.query("SELECT x.DNO FROM x IN DEPARTMENTS")
    assert obs.METRICS.totals() == after
    obs.METRICS.clear()
