"""Tests for Database.explain."""

import pytest

from repro.errors import BindError


def test_explain_full_scan(paper_db):
    plan = paper_db.explain("SELECT x.DNO FROM x IN DEPARTMENTS")
    assert "loop 1: x IN DEPARTMENTS" in plan
    assert "full scan" in plan
    assert "relation (DNO)" in plan


def test_explain_index_access(paper_db):
    paper_db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    plan = paper_db.explain(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    )
    assert "index (FN)" in plan
    assert "2 candidate object(s)" in plan


def test_explain_prefix_join(paper_db):
    paper_db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    paper_db.create_index("PN", "DEPARTMENTS", "PROJECTS.PNO")
    plan = paper_db.explain(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS "
        "(y.PNO = 17 AND EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
    )
    assert "prefix joins on hierarchical addresses: 1" in plan


def test_explain_or_prevents_index(paper_db):
    paper_db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    plan = paper_db.explain(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE x.BUDGET = 1 OR x.BUDGET = 2"
    )
    assert "WHERE not index-coverable" in plan


def test_explain_multiple_loops_and_ordered_result(paper_db):
    plan = paper_db.explain(
        "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS ORDER BY y.PNO"
    )
    assert "loop 2: y IN x.PROJECTS" in plan
    assert "list (PNO)" in plan


def test_explain_validates(paper_db):
    with pytest.raises(BindError):
        paper_db.explain("SELECT x.NOPE FROM x IN DEPARTMENTS")


def test_explain_non_query(paper_db):
    assert "DeleteStatement" in paper_db.explain("DELETE FROM DEPARTMENTS")
