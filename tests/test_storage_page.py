"""Unit + property tests for slotted pages."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageFullError, RecordNotFoundError, RecordTooLargeError
from repro.storage.constants import FLAG_NORMAL, FLAG_FORWARD, PAGE_SIZE
from repro.storage.page import Page


def make_page() -> Page:
    return Page.format()


def test_insert_and_read():
    page = make_page()
    slot = page.insert(b"hello")
    flag, payload = page.read(slot)
    assert flag == FLAG_NORMAL
    assert payload == b"hello"


def test_insert_with_flag():
    page = make_page()
    slot = page.insert(b"fwd", flag=FLAG_FORWARD)
    flag, _payload = page.read(slot)
    assert flag == FLAG_FORWARD


def test_slots_are_sequential_then_reused():
    page = make_page()
    s0 = page.insert(b"a")
    s1 = page.insert(b"b")
    assert (s0, s1) == (0, 1)
    page.delete(s0)
    s2 = page.insert(b"c")
    assert s2 == 0  # freed slot reused


def test_slot_numbers_stable_across_deletes():
    page = make_page()
    slots = [page.insert(bytes([i]) * 10) for i in range(5)]
    page.delete(slots[1])
    page.delete(slots[3])
    for keep in (0, 2, 4):
        _flag, payload = page.read(slots[keep])
        assert payload == bytes([keep]) * 10


def test_read_deleted_slot_raises():
    page = make_page()
    slot = page.insert(b"x")
    page.delete(slot)
    with pytest.raises(RecordNotFoundError):
        page.read(slot)
    with pytest.raises(RecordNotFoundError):
        page.delete(slot)


def test_read_out_of_range_raises():
    page = make_page()
    with pytest.raises(RecordNotFoundError):
        page.read(3)


def test_update_in_place_same_size():
    page = make_page()
    slot = page.insert(b"aaaa")
    page.update(slot, b"bbbb")
    assert page.read(slot)[1] == b"bbbb"


def test_update_shrink_and_grow():
    page = make_page()
    slot = page.insert(b"a" * 100)
    other = page.insert(b"z" * 50)
    page.update(slot, b"b" * 10)
    assert page.read(slot)[1] == b"b" * 10
    page.update(slot, b"c" * 200)
    assert page.read(slot)[1] == b"c" * 200
    assert page.read(other)[1] == b"z" * 50


def test_update_too_large_raises_and_preserves():
    page = make_page()
    slot = page.insert(b"small")
    filler = page.insert(b"f" * 3000)
    with pytest.raises(PageFullError):
        page.update(slot, b"g" * 2000)
    # record untouched after the failed update
    assert page.read(slot)[1] == b"small"
    assert page.read(filler)[1] == b"f" * 3000


def test_record_too_large_rejected():
    page = make_page()
    with pytest.raises(RecordTooLargeError):
        page.insert(b"x" * PAGE_SIZE)


def test_page_full():
    page = make_page()
    inserted = 0
    with pytest.raises(PageFullError):
        while True:
            page.insert(b"y" * 100)
            inserted += 1
    assert inserted >= 35  # ~4k / 105


def test_compaction_reclaims_space():
    page = make_page()
    slots = [page.insert(b"x" * 200) for i in range(15)]
    for slot in slots[:-1]:
        page.delete(slot)
    # contiguous space is fragmented; this insert forces compaction
    big = page.insert(b"B" * 3000)
    assert page.read(big)[1] == b"B" * 3000
    assert page.read(slots[-1])[1] == b"x" * 200


def test_live_records_accounting():
    page = make_page()
    slots = [page.insert(b"r") for _ in range(4)]
    assert page.live_records == 4
    page.delete(slots[0])
    assert page.live_records == 3


def test_slots_iterator_skips_deleted():
    page = make_page()
    keep = page.insert(b"keep")
    drop = page.insert(b"drop")
    page.delete(drop)
    entries = list(page.slots())
    assert [(s, p) for s, _f, p in entries] == [(keep, b"keep")]


def test_free_space_monotone():
    page = make_page()
    before = page.free_space
    slot = page.insert(b"x" * 64)
    assert page.free_space < before
    page.delete(slot)
    assert page.free_space == before or page.free_space == before  # reclaimable


@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "update"]),
                  st.binary(min_size=0, max_size=300)),
        max_size=60,
    )
)
@settings(max_examples=60)
def test_property_page_model_conformance(operations):
    """The page behaves like a dict {slot: payload} under random ops."""
    page = make_page()
    model: dict[int, bytes] = {}
    for op, payload in operations:
        if op == "insert":
            try:
                slot = page.insert(payload)
            except PageFullError:
                continue
            assert slot not in model
            model[slot] = payload
        elif op == "delete" and model:
            slot = sorted(model)[0]
            page.delete(slot)
            del model[slot]
        elif op == "update" and model:
            slot = sorted(model)[-1]
            try:
                page.update(slot, payload)
            except PageFullError:
                continue
            model[slot] = payload
    for slot, expected in model.items():
        _flag, actual = page.read(slot)
        assert actual == expected
    assert page.live_records == len(model)
