"""Tests for schema evolution (ALTER TABLE) and walk-through-time access."""

import datetime

import pytest

from repro.database import Database
from repro.datasets import paper
from repro.errors import ExecutionError, SchemaError, TemporalError
from repro.model import evolution
from repro.model.schema import atomic


# -- schema-level transformations ---------------------------------------------


def test_add_attribute_top_level():
    schema = evolution.add_attribute(
        paper.DEPARTMENTS_SCHEMA, (), atomic("LOCATION", "STRING")
    )
    assert schema.attribute("LOCATION").is_atomic
    assert schema.attribute_names[-1] == "LOCATION"


def test_add_attribute_nested():
    schema = evolution.add_attribute(
        paper.DEPARTMENTS_SCHEMA, ("PROJECTS",), atomic("PRIORITY", "INT")
    )
    inner = schema.attribute("PROJECTS").table
    assert inner.has_attribute("PRIORITY")
    # deeper levels untouched
    assert inner.attribute("MEMBERS").table.attribute_names == ("EMPNO", "FUNCTION")


def test_add_duplicate_rejected():
    with pytest.raises(SchemaError):
        evolution.add_attribute(paper.DEPARTMENTS_SCHEMA, (), atomic("DNO", "INT"))


def test_add_into_atomic_rejected():
    with pytest.raises(SchemaError):
        evolution.add_attribute(
            paper.DEPARTMENTS_SCHEMA, ("DNO",), atomic("X", "INT")
        )


def test_drop_attribute_nested():
    schema = evolution.drop_attribute(
        paper.DEPARTMENTS_SCHEMA, ("PROJECTS", "MEMBERS", "FUNCTION")
    )
    members = schema.resolve_path(("PROJECTS", "MEMBERS"))
    assert members.table.attribute_names == ("EMPNO",)


def test_drop_last_attribute_rejected():
    schema = paper.MEMBERS_SCHEMA
    once = evolution.drop_attribute(schema, ("FUNCTION",))
    with pytest.raises(SchemaError):
        evolution.drop_attribute(once, ("EMPNO",))


def test_rename_attribute():
    schema = evolution.rename_attribute(
        paper.DEPARTMENTS_SCHEMA, ("PROJECTS",), "EFFORTS"
    )
    assert schema.has_attribute("EFFORTS")
    assert not schema.has_attribute("PROJECTS")
    assert schema.attribute("EFFORTS").table.name == "EFFORTS"


def test_rename_to_existing_rejected():
    with pytest.raises(SchemaError):
        evolution.rename_attribute(paper.DEPARTMENTS_SCHEMA, ("DNO",), "MGRNO")


# -- value migration ----------------------------------------------------------


def test_value_migration_roundtrip():
    row = dict(paper.DEPARTMENTS_ROWS[0])
    added = evolution.add_value(row, ("PROJECTS",), "PRIORITY", 1)
    assert all(p["PRIORITY"] == 1 for p in added["PROJECTS"])
    dropped = evolution.drop_value(added, ("PROJECTS", "PRIORITY"))
    assert "PRIORITY" not in dropped["PROJECTS"][0]
    renamed = evolution.rename_value(row, ("BUDGET",), "FUNDS")
    assert renamed["FUNDS"] == 320_000


# -- ALTER TABLE end-to-end ------------------------------------------------------


def fresh_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    return db


def test_alter_add_top_level_with_query():
    db = fresh_db()
    db.execute("ALTER TABLE DEPARTMENTS ADD LOCATION STRING")
    result = db.query("SELECT x.DNO, x.LOCATION FROM x IN DEPARTMENTS")
    assert all(row["LOCATION"] is None for row in result)
    db.execute("UPDATE DEPARTMENTS x SET LOCATION = 'HD' WHERE x.DNO = 314")
    located = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.LOCATION = 'HD'"
    )
    assert located.column("DNO") == [314]


def test_alter_add_nested_attribute():
    db = fresh_db()
    db.execute("ALTER TABLE DEPARTMENTS ADD PROJECTS.PRIORITY INT")
    result = db.query(
        "SELECT y.PNO, y.PRIORITY FROM x IN DEPARTMENTS, y IN x.PROJECTS"
    )
    assert len(result) == 4
    assert all(row["PRIORITY"] is None for row in result)
    # old data survived the migration
    assert sorted(result.column("PNO")) == [17, 23, 25, 37]


def test_alter_drop_and_rename():
    db = fresh_db()
    db.execute("ALTER TABLE DEPARTMENTS DROP ATTRIBUTE EQUIP")
    assert not db.table_schema("DEPARTMENTS").has_attribute("EQUIP")
    assert len(db.query("SELECT * FROM x IN DEPARTMENTS")) == 3
    db.execute("ALTER TABLE DEPARTMENTS RENAME ATTRIBUTE BUDGET TO FUNDS")
    result = db.query("SELECT x.FUNDS FROM x IN DEPARTMENTS WHERE x.DNO = 314")
    assert result.column("FUNDS") == [320_000]


def test_alter_rejects_indexed_attribute():
    db = fresh_db()
    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    with pytest.raises(ExecutionError):
        db.execute("ALTER TABLE DEPARTMENTS DROP ATTRIBUTE PROJECTS")
    with pytest.raises(ExecutionError):
        db.execute(
            "ALTER TABLE DEPARTMENTS RENAME ATTRIBUTE "
            "PROJECTS.MEMBERS.FUNCTION TO ROLE"
        )
    # unrelated attribute is fine
    db.execute("ALTER TABLE DEPARTMENTS RENAME ATTRIBUTE BUDGET TO FUNDS")
    # and the index still answers queries after migration
    result = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    )
    assert sorted(result.column("DNO")) == [218, 314]


def test_alter_versioned_rejected():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True)
    with pytest.raises(ExecutionError):
        db.execute("ALTER TABLE DEPARTMENTS ADD LOCATION STRING")


# -- walk-through-time --------------------------------------------------------


def versioned_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True)
    tid = db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at=10)
    tid = db.update("DEPARTMENTS", tid, {"BUDGET": 111}, at=20)
    tid = db.update("DEPARTMENTS", tid, {"BUDGET": 222}, at=30)
    return db, tid


def test_history_returns_all_versions():
    db, tid = versioned_db()
    history = db.history("DEPARTMENTS", tid)
    assert [v[2]["BUDGET"] for v in history] == [320_000, 111, 222]
    assert [v[0] for v in history] == [10.0, 20.0, 30.0]
    assert history[-1][1] == float("inf")


def test_walk_through_time_interval():
    db, tid = versioned_db()
    window = db.walk_through_time("DEPARTMENTS", tid, 15, 25)
    assert [v[2]["BUDGET"] for v in window] == [320_000, 111]
    everything = db.walk_through_time("DEPARTMENTS", tid, 0, 1000)
    assert len(everything) == 3
    nothing = db.walk_through_time("DEPARTMENTS", tid, 1, 5)
    assert nothing == []


def test_history_on_unversioned_rejected():
    db = fresh_db()
    with pytest.raises(TemporalError):
        db.history("DEPARTMENTS", db.tids("DEPARTMENTS")[0])
