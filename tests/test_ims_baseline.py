"""Tests for the IMS-like navigational baseline (Fig 1's world)."""

import pytest

from repro.baselines.ims import DEPARTMENTS_HIERARCHY, IMSDatabase
from repro.datasets import paper
from repro.errors import ExecutionError


def ims_rows():
    """The paper's departments reshaped into segment-type keyed dicts."""
    out = []
    for dept in paper.DEPARTMENTS_ROWS:
        out.append(
            {
                "DNO": dept["DNO"],
                "MGRNO": dept["MGRNO"],
                "BUDGET": dept["BUDGET"],
                "PROJECT": [
                    {
                        "PNO": p["PNO"],
                        "PNAME": p["PNAME"],
                        "MEMBER": [
                            {"EMPNO": m["EMPNO"], "FUNCTION": m["FUNCTION"]}
                            for m in p["MEMBERS"]
                        ],
                    }
                    for p in dept["PROJECTS"]
                ],
                "EQUIPMENT": [
                    {"QU": e["QU"], "TYPE": e["TYPE"]} for e in dept["EQUIP"]
                ],
            }
        )
    return out


def loaded():
    db = IMSDatabase()
    db.load(ims_rows())
    return db


def test_hierarchy_definition():
    assert DEPARTMENTS_HIERARCHY.find("MEMBER").fields == ("EMPNO", "FUNCTION")
    assert DEPARTMENTS_HIERARCHY.find("NOPE") is None


def test_load_hierarchic_sequence_size():
    db = loaded()
    # 3 departments + 4 projects + 17 members + 14 equipment = 38 records
    assert db.size == 38


def test_gu_positions_at_first_match():
    db = loaded()
    record = db.gu("DEPARTMENT", {"DNO": 314})
    assert record is not None
    assert record.values["MGRNO"] == 56194


def test_gn_walks_hierarchic_sequence():
    db = loaded()
    db.reset()
    names = []
    record = db.gn("PROJECT")
    while record is not None:
        names.append(record.values["PNAME"])
        record = db.gn("PROJECT")
    assert names == ["CGA", "HEAR", "TEXT", "NEBS"]


def test_gnp_stays_within_parent():
    db = loaded()
    db.gu("DEPARTMENT", {"DNO": 314})
    db.set_parentage()
    members = []
    record = db.gnp("MEMBER")
    while record is not None:
        members.append(record.values["EMPNO"])
        record = db.gnp("MEMBER")
    # dept 314's seven members, and none of dept 218's
    assert members == [39582, 56019, 69011, 58912, 90011, 78218, 98902]


def test_gnp_within_project_parentage():
    db = loaded()
    db.gu("PROJECT", {"PNO": 23})
    db.set_parentage()
    members = []
    record = db.gnp("MEMBER")
    while record is not None:
        members.append(record.values["EMPNO"])
        record = db.gnp("MEMBER")
    assert members == [58912, 90011, 78218, 98902]


def test_gnp_without_parentage_raises():
    db = loaded()
    db.reset()
    with pytest.raises(ExecutionError):
        db.gnp("MEMBER")


def test_navigational_consultant_program():
    """The §4.2 'departments with a consultant' query, the IMS way — a
    whole program instead of one statement."""
    db = loaded()
    db.reset()
    answers = []
    department = db.gn("DEPARTMENT")
    while department is not None:
        dno = department.values["DNO"]
        db.set_parentage()
        found = False
        member = db.gnp("MEMBER", {"FUNCTION": "Consultant"})
        if member is not None:
            found = True
        if found:
            answers.append(dno)
        # re-establish position at this department before moving on
        db.gu("DEPARTMENT", {"DNO": dno})
        department = db.gn("DEPARTMENT")
    assert sorted(answers) == [218, 314]
    assert db.records_visited > db.size  # navigation re-scans


def test_records_visited_counts():
    db = loaded()
    db.reset()
    db.gn("DEPARTMENT")
    assert db.records_visited == 1
    db.gn("DEPARTMENT")
    # skipped everything under dept 314 to reach dept 218
    assert db.records_visited > 10
