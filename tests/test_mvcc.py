"""MVCC snapshot reads, unified with the ASOF version-chain path.

Covers the headline guarantees:

* readers never block writers (a snapshot read takes **zero** locks even
  while another session holds table-IX + object-X),
* a pinned snapshot transaction's reads never change, no matter what
  commits around it (full scans and index probes alike),
* first-committer-wins: a pinned snapshot that writes a tuple someone
  else changed since the snapshot raises ``SerializationError``,
* ``ASOF t`` and MVCC snapshot reads are literally one code path
  (``repro.mvcc.read.snapshot_roots`` over ``interval_contains``),
* dead versions are reclaimed once no snapshot can see them, and
  ``CHECK TABLE`` stays clean throughout,

plus the satellite regressions: temporal timestamp-axis mixing and the
ASOF boundary semantics (``valid_from`` inclusive, ``valid_to``
exclusive) on both the legacy temporal path and the MVCC snapshot path.
"""

from __future__ import annotations

import datetime
import threading

import pytest

import repro.mvcc.read as mvcc_read
import repro.mvcc.visibility as mvcc_visibility
from repro.database import Database
from repro.errors import ExecutionError, SerializationError, TemporalError
from repro.model.schema import atomic, nested, table


def make_db(**kwargs) -> Database:
    db = Database(mvcc=True, **kwargs)
    db.execute("CREATE TABLE T (A INT, B STRING)")
    for i in range(5):
        db.execute(f"INSERT INTO T VALUES ({i}, 'row{i}')")
    return db


def read_a(session) -> list[int]:
    return sorted(session.execute("SELECT t.A FROM t IN T").column("A"))


# ---------------------------------------------------------------------------
# Basic snapshot reads
# ---------------------------------------------------------------------------


def test_snapshot_reads_see_committed_state():
    db = make_db()
    s = db.session(name="reader")
    assert read_a(s) == [0, 1, 2, 3, 4]
    db.execute("INSERT INTO T VALUES (5, 'row5')")
    # statement snapshots are read-committed: the next statement sees it
    assert read_a(s) == [0, 1, 2, 3, 4, 5]
    s.close()
    db.close()


def test_snapshot_reads_take_zero_locks():
    db = make_db()
    s = db.session(name="reader")
    read_a(s)
    assert s.last_lock_requests == 0
    assert not any(e.startswith("Lock/") for e in s.wait_summary())
    s.close()
    db.close()


def test_readers_never_block_writers():
    """A snapshot read completes lock-free while a writer transaction
    holds table-IX and object-X on the same table."""
    db = make_db()
    writer = db.session(name="writer")
    reader = db.session(name="reader")
    holding = threading.Event()
    release = threading.Event()
    seen: list[list[int]] = []

    def write() -> None:
        with writer.transaction():
            writer.execute("UPDATE T t SET A = 100 WHERE t.A = 0")
            holding.set()
            release.wait(timeout=30)

    thread = threading.Thread(target=write)
    thread.start()
    try:
        assert holding.wait(timeout=30)
        # the writer holds its locks; the reader must not touch any
        seen.append(read_a(reader))
        assert reader.last_lock_requests == 0
        assert not any(e.startswith("Lock/") for e in reader.wait_summary())
    finally:
        release.set()
        thread.join(timeout=30)
    # the uncommitted update was invisible to the reader...
    assert seen == [[0, 1, 2, 3, 4]]
    # ...and became visible once the writer committed
    assert read_a(reader) == [1, 2, 3, 4, 100]
    writer.close()
    reader.close()
    db.close()


# ---------------------------------------------------------------------------
# Pinned snapshot transactions
# ---------------------------------------------------------------------------


def test_pinned_snapshot_is_immutable():
    db = make_db()
    s = db.session(name="pinned")
    with s.transaction(isolation="snapshot"):
        before = read_a(s)
        db.execute("INSERT INTO T VALUES (99, 'late')")
        db.execute("DELETE FROM T t WHERE t.A = 0")
        db.execute("UPDATE T t SET B = 'changed' WHERE t.A = 1")
        assert read_a(s) == before
        assert s.execute(
            "SELECT t.B FROM t IN T WHERE t.A = 1"
        ).column("B") == ["row1"]
    # after the transaction the same session reads current state
    assert read_a(s) == [1, 2, 3, 4, 99]
    s.close()
    db.close()


def test_pinned_snapshot_immutable_through_index_probe():
    """The index path may surface dead or too-new TIDs (deindexing is
    deferred to GC); the snapshot visibility probe must filter them."""
    db = make_db()
    db.execute("CREATE INDEX T_A ON T (A)")
    s = db.session(name="pinned")
    with s.transaction(isolation="snapshot"):
        db.execute("UPDATE T t SET B = 'new' WHERE t.A = 2")
        db.execute("DELETE FROM T t WHERE t.A = 3")
        hit = s.execute("SELECT t.B FROM t IN T WHERE t.A = 2")
        assert hit.column("B") == ["row2"]
        gone = s.execute("SELECT t.B FROM t IN T WHERE t.A = 3")
        assert gone.column("B") == ["row3"]
        assert db.last_plan is not None  # the probe really used the index
    assert s.execute("SELECT t.B FROM t IN T WHERE t.A = 2").column("B") == [
        "new"
    ]
    s.close()
    db.close()


def test_read_your_own_writes_in_snapshot_txn():
    db = make_db()
    s = db.session(name="writer")
    with s.transaction(isolation="snapshot"):
        s.execute("INSERT INTO T VALUES (7, 'mine')")
        s.execute("UPDATE T t SET B = 'patched' WHERE t.A = 1")
        s.execute("DELETE FROM T t WHERE t.A = 0")
        assert read_a(s) == [1, 2, 3, 4, 7]
        assert s.execute(
            "SELECT t.B FROM t IN T WHERE t.A = 1"
        ).column("B") == ["patched"]
    assert read_a(s) == [1, 2, 3, 4, 7]
    s.close()
    db.close()


def test_first_committer_wins_on_update():
    db = make_db()
    s = db.session(name="loser")
    with pytest.raises(SerializationError):
        with s.transaction(isolation="snapshot"):
            read_a(s)  # pin the snapshot's view of T
            db.execute("UPDATE T t SET B = 'first' WHERE t.A = 0")
            s.execute("UPDATE T t SET B = 'second' WHERE t.A = 0")
    # the conflicting transaction rolled back; the first commit survives
    assert db.query("SELECT t.B FROM t IN T WHERE t.A = 0").column("B") == [
        "first"
    ]
    assert db.verify() == []
    s.close()
    db.close()


def test_first_committer_wins_on_delete():
    db = make_db()
    s = db.session(name="loser")
    with pytest.raises(SerializationError):
        with s.transaction(isolation="snapshot"):
            read_a(s)
            db.execute("DELETE FROM T t WHERE t.A = 0")
            # the tuple vanished under the snapshot: still a serialization
            # failure, not a silent zero-row update
            s.execute("UPDATE T t SET B = 'late' WHERE t.A = 0")
    assert db.verify() == []
    s.close()
    db.close()


def test_concurrent_statement_writes_are_read_committed():
    """Unpinned (statement) snapshots refresh at the WAL token, so plain
    autocommit writes always update the latest committed tuple."""
    db = make_db()
    a = db.session(name="a")
    b = db.session(name="b")
    a.execute("UPDATE T t SET A = 50 WHERE t.A = 0")
    b.execute("UPDATE T t SET A = 51 WHERE t.A = 50")
    assert read_a(a) == [1, 2, 3, 4, 51]
    a.close()
    b.close()
    db.close()


def test_isolation_argument_validation():
    db = make_db()
    s = db.session()
    with pytest.raises(ExecutionError):
        s.transaction(isolation="serializable")
    s.close()
    db.close()
    plain = Database()
    p = plain.session()
    with pytest.raises(ExecutionError):
        p.transaction(isolation="snapshot")
    # the default on a 2PL database stays 2PL
    with p.transaction() as txn:
        assert txn.isolation == "2pl"
    p.close()
    plain.close()


# ---------------------------------------------------------------------------
# ASOF / MVCC path unification
# ---------------------------------------------------------------------------


def _versioned_db() -> Database:
    db = Database(mvcc=True)
    db.create_table(
        table("V", atomic("K", "INT"), atomic("VAL", "STRING")),
        versioned=True,
    )
    return db


def test_asof_and_snapshot_share_one_read_path(monkeypatch):
    """Both ``ASOF t`` and MVCC snapshot scans must route through
    ``repro.mvcc.read.snapshot_roots`` + ``interval_contains``."""
    db = _versioned_db()
    tid = db.insert("V", {"K": 1, "VAL": "old"}, at=10)
    db.update("V", tid, {"VAL": "new"}, at=20)

    roots_axes: list[str] = []
    real_roots = mvcc_read.snapshot_roots
    contains_calls: list[tuple] = []
    real_contains = mvcc_visibility.interval_contains

    def spy_roots(entry, snapshot):
        roots_axes.append(snapshot.axis)
        return real_roots(entry, snapshot)

    def spy_contains(valid_from, valid_to, point):
        contains_calls.append((valid_from, valid_to, point))
        return real_contains(valid_from, valid_to, point)

    monkeypatch.setattr(mvcc_read, "snapshot_roots", spy_roots)
    monkeypatch.setattr(mvcc_visibility, "interval_contains", spy_contains)

    asof = db.query("SELECT v.VAL FROM v IN V ASOF '0001-01-15'")
    assert asof.column("VAL") == ["old"]
    assert roots_axes == ["time"]

    s = db.session(name="reader")
    now = s.execute("SELECT v.VAL FROM v IN V")
    assert now.column("VAL") == ["new"]
    assert roots_axes == ["time", "lsn"]
    assert contains_calls  # the shared predicate decided visibility
    s.close()
    db.close()


def test_asof_boundaries_legacy_path():
    """``valid_from`` is inclusive, ``valid_to`` exclusive, at the exact
    write instants — through the legacy (non-MVCC) temporal path."""
    db = Database()
    db.create_table(
        table("V", atomic("K", "INT"), atomic("VAL", "STRING")),
        versioned=True,
    )
    tid = db.insert("V", {"K": 1, "VAL": "v1"}, at=10)
    tid = db.update("V", tid, {"VAL": "v2"}, at=20)  # COW: new TID
    # before the insert instant: nothing
    assert db.query("SELECT v.VAL FROM v IN V ASOF '0001-01-09'").rows == []
    for point, expected in [(10, "v1"), (19, "v1"), (20, "v2"), (21, "v2")]:
        value = db.query(
            f"SELECT v.VAL FROM v IN V ASOF '0001-01-{point:02d}'"
        ).column("VAL")
        assert value == [expected], f"at {point}"
    db.delete("V", tid, at=25)
    assert db.query("SELECT v.VAL FROM v IN V ASOF '0001-01-24'").column(
        "VAL"
    ) == ["v2"]
    # the delete instant itself is exclusive: the tuple is already gone
    assert db.query("SELECT v.VAL FROM v IN V ASOF '0001-01-25'").rows == []
    db.close()


def test_asof_boundaries_mvcc_path_matches_legacy():
    """The MVCC-routed ASOF read returns exactly what the legacy store
    returns at every boundary instant."""
    legacy = Database()
    mvcc = Database(mvcc=True)
    for db in (legacy, mvcc):
        db.create_table(
            table("V", atomic("K", "INT"), atomic("VAL", "STRING")),
            versioned=True,
        )
        tid = db.insert("V", {"K": 1, "VAL": "v1"}, at=10)
        tid = db.update("V", tid, {"VAL": "v2"}, at=20)  # COW: new TID
        db.delete("V", tid, at=25)
    for point in (9, 10, 15, 19, 20, 24, 25, 26):
        query = f"SELECT v.VAL FROM v IN V ASOF '0001-01-{point:02d}'"
        assert (
            legacy.query(query).column("VAL")
            == mvcc.query(query).column("VAL")
        ), f"diverged at {point}"
    legacy.close()
    mvcc.close()


def test_snapshot_commit_boundary_is_exact():
    """A snapshot at commit N sees N's rows (inclusive) and nothing from
    commit N+1 (exclusive) — the LSN-axis twin of the ASOF boundary."""
    db = make_db()
    s = db.session(name="reader")
    with s.transaction(isolation="snapshot"):
        base = read_a(s)
        db.execute("INSERT INTO T VALUES (42, 'after')")  # commit N+1
        assert read_a(s) == base
    assert 42 in read_a(s)
    s.close()
    db.close()


# ---------------------------------------------------------------------------
# Temporal axis mixing (satellite regression)
# ---------------------------------------------------------------------------


def test_mixing_timestamp_axes_rejected():
    db = Database()
    db.create_table(
        table("V", atomic("K", "INT")), versioned=True
    )
    db.insert("V", {"K": 1}, at=datetime.date(1984, 1, 1))
    with pytest.raises(TemporalError):
        db.insert("V", {"K": 2}, at=10)
    # the original axis still works
    db.insert("V", {"K": 3}, at=datetime.date(1984, 2, 1))
    db.close()


def test_mixing_timestamp_axes_rejected_subtuple(tmp_path):
    path = str(tmp_path / "axis.db")
    schema = table(
        "V",
        atomic("K", "INT"),
        nested("PS", table("PS", atomic("P", "INT"))),
    )
    with Database(path=path) as db:
        db.create_table(schema, versioned=True, versioning="subtuple")
        db.insert("V", {"K": 1, "PS": []}, at=10)
        with pytest.raises(TemporalError):
            db.insert("V", {"K": 2, "PS": []}, at=datetime.date(1984, 1, 1))
        db.save()
    # the axis survives a reopen
    with Database(path=path) as again:
        with pytest.raises(TemporalError):
            again.insert("V", {"K": 3, "PS": []}, at=datetime.date(1984, 1, 1))
        again.insert("V", {"K": 4, "PS": []}, at=30)


# ---------------------------------------------------------------------------
# Version GC
# ---------------------------------------------------------------------------


def test_gc_reclaims_dead_versions():
    db = make_db()
    assert db.mvcc is not None
    for i in range(5):
        db.execute(f"UPDATE T t SET B = 'u{i}' WHERE t.A = {i}")
    db.execute("DELETE FROM T t WHERE t.A = 4")
    # with no active snapshots, the next write's GC pass drains the queue
    db.execute("INSERT INTO T VALUES (10, 'last')")
    assert db.mvcc.gc_backlog() == 0
    assert db.verify() == []
    assert sorted(
        db.query("SELECT t.A FROM t IN T").column("A")
    ) == [0, 1, 2, 3, 10]
    db.close()


def test_gc_waits_for_active_snapshots():
    db = make_db()
    s = db.session(name="pinned")
    with s.transaction(isolation="snapshot"):
        before = read_a(s)
        db.execute("UPDATE T t SET B = 'x' WHERE t.A = 0")
        db.execute("UPDATE T t SET B = 'y' WHERE t.A = 1")
        # the dead versions are pinned by the open snapshot
        assert db.mvcc.gc_backlog() >= 2
        assert read_a(s) == before
    db.execute("INSERT INTO T VALUES (6, 'flush')")
    assert db.mvcc.gc_backlog() == 0
    assert db.verify() == []
    s.close()
    db.close()


def test_mvcc_on_disk_reopen(tmp_path):
    path = str(tmp_path / "mvcc.db")
    with Database(path=path, mvcc=True) as db:
        db.execute("CREATE TABLE T (A INT, B STRING)")
        for i in range(4):
            db.execute(f"INSERT INTO T VALUES ({i}, 'row{i}')")
        db.execute("UPDATE T t SET B = 'patched' WHERE t.A = 0")
        db.execute("DELETE FROM T t WHERE t.A = 3")
        db.save()
    with Database(path=path, mvcc=True) as again:
        assert sorted(
            again.query("SELECT t.A FROM t IN T").column("A")
        ) == [0, 1, 2]
        assert again.query(
            "SELECT t.B FROM t IN T WHERE t.A = 0"
        ).column("B") == ["patched"]
        assert again.verify() == []
        # rebootstrapped: everything visible since commit 0, ready to go
        s = again.session(name="r")
        assert sorted(read_a(s)[:3]) == [0, 1, 2]
        again.execute("INSERT INTO T VALUES (9, 'after reopen')")
        assert 9 in read_a(s)
        s.close()


def test_reopening_without_mvcc_flag_still_works(tmp_path):
    path = str(tmp_path / "plain.db")
    with Database(path=path, mvcc=True) as db:
        db.execute("CREATE TABLE T (A INT)")
        db.execute("INSERT INTO T VALUES (1)")
        db.execute("UPDATE T t SET A = 2 WHERE t.A = 1")
        db.save()
    with Database(path=path) as plain:  # 2PL mode on the same file
        assert plain.query("SELECT t.A FROM t IN T").column("A") == [2]
        assert plain.verify() == []


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


def test_sys_transactions_view():
    db = make_db()
    s = db.session(name="alice")
    with s.transaction(isolation="snapshot"):
        rows = s.execute(
            "SELECT x.SID, x.SESSION, x.ISOLATION, x.PINNED, x.POINT, "
            "x.COMMITTED_LSN FROM x IN SYS.TRANSACTIONS"
        ).to_plain()
        assert len(rows) == 1
        row = rows[0]
        assert row["SESSION"] == "alice"
        assert row["ISOLATION"] == "snapshot"
        assert row["PINNED"] is True
        assert row["POINT"] <= row["COMMITTED_LSN"]
    s.close()
    db.close()


def test_sys_transactions_empty_without_mvcc():
    db = Database()
    db.execute("CREATE TABLE T (A INT)")
    assert db.query("SELECT x.SID FROM x IN SYS.TRANSACTIONS").rows == []
    db.close()


def test_explain_shows_snapshot():
    db = make_db()
    s = db.session(name="alice")
    plan = s.execute("EXPLAIN ANALYZE SELECT t.A FROM t IN T")
    assert "snapshot: lsn=" in plan
    s.close()
    db.close()


def test_shell_transactions_command(capsys=None):
    import io

    from repro.shell import dot_command

    db = make_db()
    out = io.StringIO()
    dot_command(db, ".transactions", out=out)
    assert "committed_lsn" in out.getvalue()
    db.close()
    plain = Database()
    out = io.StringIO()
    dot_command(plain, ".transactions", out=out)
    assert "no MVCC" in out.getvalue()
    plain.close()


def test_server_begin_snapshot():
    from repro.server import DatabaseServer, LineClient

    db = make_db()
    server = DatabaseServer(db, port=0)
    server.serve_background()
    host, port = server.address
    try:
        with LineClient(host, port) as client:
            assert client.send("BEGIN SNAPSHOT").strip() == "begin (snapshot)"
            assert "row0" in client.send("SELECT t.B FROM t IN T WHERE t.A = 0")
            assert client.send("COMMIT").strip() == "commit"
            assert "error" in client.send("BEGIN BOGUS")
    finally:
        server.shutdown()
        server.server_close()
        db.close()
