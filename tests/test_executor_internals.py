"""Execution-layer edge cases beyond the paper's examples."""

import pytest

from repro.database import Database
from repro.datasets import paper
from repro.errors import ExecutionError


def test_quantifier_over_stored_table(paper_db):
    """EXISTS may range over a stored table (a semi-join)."""
    result = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS e IN EMPLOYEES-1NF: "
        "(e.EMPNO = x.MGRNO AND e.SEX = 'female')"
    )
    assert result.column("DNO") == [417]  # Richter manages 417


def test_all_quantifier_with_disjunction(paper_db):
    result = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE ALL v IN x.EQUIP: (v.QU = 1 OR v.QU = 2 OR v.QU = 3)"
    )
    assert sorted(result.column("DNO")) == [218, 314, 417]


def test_cross_product_cardinality(paper_db):
    result = paper_db.query(
        "SELECT x.DNO, y.DNO AS OTHER FROM x IN DEPARTMENTS, y IN DEPARTMENTS"
    )
    assert len(result) == 9


def test_negated_contains(paper_db):
    result = paper_db.query(
        "SELECT x.REPNO FROM x IN REPORTS "
        "WHERE x.TITLE NOT CONTAINS '*concurrency*'"
    )
    assert sorted(result.column("REPNO")) == ["0189", "0291"]


def test_contains_on_null_is_false():
    db = Database()
    db.execute("CREATE TABLE T (S STRING)")
    db.insert("T", (None,))
    assert len(db.query("SELECT t.S FROM t IN T WHERE t.S CONTAINS '*x*'")) == 0
    assert len(db.query("SELECT t.S FROM t IN T WHERE t.S NOT CONTAINS '*x*'")) == 1


def test_empty_table_queries():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    assert len(db.query("SELECT * FROM x IN DEPARTMENTS")) == 0
    assert len(db.query(
        "SELECT x.DNO, y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS"
    )) == 0
    agg = db.query("SELECT COUNT(x.DNO) AS N FROM x IN DEPARTMENTS, "
                   "y IN DEPARTMENTS")
    assert len(agg) == 0  # no bindings at all


def test_nested_subquery_in_nested_subquery(paper_db):
    """Three levels of result structure built by correlated subqueries."""
    result = paper_db.query(
        """
        SELECT x.DNO,
               P = (SELECT y.PNO,
                           M = (SELECT z.EMPNO FROM z IN y.MEMBERS
                                WHERE z.FUNCTION = 'Leader')
                    FROM y IN x.PROJECTS)
        FROM x IN DEPARTMENTS WHERE x.DNO = 314
        """
    )
    projects = result[0]["P"]
    leaders = {p["PNO"]: p["M"].column("EMPNO") for p in projects}
    assert leaders == {17: [39582], 23: [90011]}


def test_select_star_over_path_range(paper_db):
    result = paper_db.query(
        "SELECT * FROM y IN REPORTS"
    )
    assert len(result) == 3


def test_where_referencing_multiple_ranges(paper_db):
    result = paper_db.query(
        "SELECT x.DNO, e.LNAME FROM x IN DEPARTMENTS, e IN EMPLOYEES-1NF "
        "WHERE x.MGRNO = e.EMPNO AND x.BUDGET > 350000"
    )
    assert sorted((r["DNO"], r["LNAME"]) for r in result) == [
        (218, "Neumann"), (417, "Richter"),
    ]


def test_order_by_date_column():
    import datetime

    db = Database()
    db.execute("CREATE TABLE T (D DATE, K INT)")
    db.insert("T", (datetime.date(1986, 5, 1), 1))
    db.insert("T", (datetime.date(1984, 1, 15), 2))
    db.insert("T", (None, 3))
    result = db.query("SELECT t.K FROM t IN T ORDER BY t.D")
    assert result.column("K") == [3, 2, 1]  # NULL first, then by date


def test_list_result_preserves_duplicates():
    db = Database()
    db.execute("CREATE LIST L (V INT)")
    db.insert_many("L", [(1,), (1,), (2,)])
    result = db.query("SELECT x.V FROM x IN L")
    assert result.ordered
    assert result.column("V") == [1, 1, 2]
    distinct = db.query("SELECT DISTINCT x.V FROM x IN L")
    assert distinct.column("V") == [1, 2]


def test_lazy_database_attribute():
    import repro

    assert repro.Database is not None
    with pytest.raises(AttributeError):
        repro.not_a_thing
