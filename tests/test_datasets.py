"""Tests for the paper dataset and the synthetic generators."""

from repro.datasets import DepartmentsGenerator, ReportsGenerator, paper
from repro.model.values import TableValue


def test_departments_has_three_objects():
    departments = paper.departments()
    assert sorted(departments.column("DNO")) == [218, 314, 417]


def test_paper_facts_hold():
    """The facts the paper's running text states about its data."""
    departments = paper.departments()
    by_dno = {row["DNO"]: row for row in departments}
    # data subtuple '314 56194 320,000'
    assert by_dno[314].atomic_values() == (314, 56194, 320_000)
    # project 17 'CGA' with members 39582/56019/69011
    project17 = by_dno[314]["PROJECTS"][0]
    assert (project17["PNO"], project17["PNAME"]) == (17, "CGA")
    assert project17["MEMBERS"].column("EMPNO") == [39582, 56019, 69011]
    # exactly three consultants: 56019, 89921, 44512
    consultants = [
        member["EMPNO"]
        for dept in departments
        for project in dept["PROJECTS"]
        for member in project["MEMBERS"]
        if member["FUNCTION"] == "Consultant"
    ]
    assert sorted(consultants) == [44512, 56019, 89921]
    # dept 314 equipment: 2x3278, 3xPC/AT, 1xPC
    equip = {(row["QU"], row["TYPE"]) for row in by_dno[314]["EQUIP"]}
    assert equip == {(2, "3278"), (3, "PC/AT"), (1, "PC")}


def test_flat_tables_are_consistent_with_table5():
    assert len(paper.departments_1nf()) == 3
    assert len(paper.projects_1nf()) == 4
    assert len(paper.members_1nf()) == 17
    assert len(paper.equip_1nf()) == 14


def test_employees_covers_members_and_managers():
    employees = {row["EMPNO"] for row in paper.employees_1nf()}
    departments = paper.departments()
    for dept in departments:
        assert dept["MGRNO"] in employees
        for project in dept["PROJECTS"]:
            for member in project["MEMBERS"]:
                assert member["EMPNO"] in employees


def test_reports_jones_is_first_author_of_0179():
    reports = paper.reports()
    report = next(row for row in reports if row["REPNO"] == "0179")
    assert report["AUTHORS"][0]["NAME"] == "Jones A"


def test_generator_is_deterministic():
    a = DepartmentsGenerator(departments=5, seed=1).rows()
    b = DepartmentsGenerator(departments=5, seed=1).rows()
    assert a == b
    c = DepartmentsGenerator(departments=5, seed=2).rows()
    assert a != c


def test_generator_shape():
    gen = DepartmentsGenerator(
        departments=4, projects_per_department=2, members_per_project=3,
        equipment_per_department=5,
    )
    value = gen.table()
    assert isinstance(value, TableValue)
    assert len(value) == 4
    for dept in value:
        assert len(dept["PROJECTS"]) == 2
        assert len(dept["EQUIP"]) == 5
        for project in dept["PROJECTS"]:
            assert len(project["MEMBERS"]) == 3
            assert project["MEMBERS"][0]["FUNCTION"] == "Leader"


def test_generator_flat_decomposition_counts():
    gen = DepartmentsGenerator(departments=3, projects_per_department=2,
                               members_per_project=4)
    flat = gen.flat_rows()
    assert len(flat["DEPARTMENTS-1NF"]) == 3
    assert len(flat["PROJECTS-1NF"]) == 6
    assert len(flat["MEMBERS-1NF"]) == 24


def test_generator_employees_cover_all():
    gen = DepartmentsGenerator(departments=3)
    empnos = {row[0] for row in gen.employees_rows()}
    for dept in gen.rows():
        assert dept["MGRNO"] in empnos


def test_reports_generator():
    gen = ReportsGenerator(reports=10, seed=3)
    value = gen.table()
    assert len(value) == 10
    for report in value:
        assert 1 <= len(report["AUTHORS"]) <= 4
        assert report["AUTHORS"].ordered
