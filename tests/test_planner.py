"""Unit tests for the access-path planner: condition extraction, candidate
selection, prefix joins, and range scans."""

import pytest

from repro.database import Database
from repro.datasets import DepartmentsGenerator, paper
from repro.index.addresses import AddressingMode
from repro.query.parser import parse_query
from repro.query.planner import IndexCondition, candidate_roots, extract_conditions


def conditions_of(sql, var="x"):
    return extract_conditions(parse_query(sql), var)


def test_extract_top_level_equality():
    conditions = conditions_of(
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 314"
    )
    assert conditions == [
        IndexCondition(("DNO",), (), "eq", 314)
    ]


def test_extract_reversed_literal_side():
    conditions = conditions_of(
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE 314 = x.DNO"
    )
    assert conditions[0].value == 314 and conditions[0].kind == "eq"


def test_extract_range_conditions():
    conditions = conditions_of(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE x.BUDGET >= 100 AND 500 > x.BUDGET"
    )
    assert [c.kind for c in conditions] == ["range", "range"]
    assert conditions[0].value == (">=", 100)
    assert conditions[1].value == ("<", 500)  # mirrored


def test_extract_exists_chain():
    conditions = conditions_of(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    )
    assert len(conditions) == 1
    condition = conditions[0]
    assert condition.attribute_path == ("PROJECTS", "MEMBERS", "FUNCTION")
    assert len(condition.binding) == 2
    assert condition.levels == 2


def test_extract_gives_up_on_or():
    assert conditions_of(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE x.DNO = 314 OR x.DNO = 218"
    ) is None


def test_extract_skips_unanchored_paths():
    # conditions on other variables are not conditions on x
    conditions = conditions_of(
        "SELECT x.DNO FROM x IN DEPARTMENTS, e IN EMPLOYEES-1NF "
        "WHERE e.EMPNO = 1 AND x.DNO = 2"
    )
    assert conditions == [IndexCondition(("DNO",), (), "eq", 2)]


def test_extract_null_literal_not_indexable():
    conditions = conditions_of(
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = NULL"
    )
    assert conditions == []


def test_sibling_exists_do_not_prefix_join():
    """Two separate EXISTS over the same subtable must NOT be forced into
    the same subobject."""
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.create_index("PN", "DEPARTMENTS", "PROJECTS.PNO")
    # dept 314 has projects 17 AND 23 (different projects!)
    result = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS y.PNO = 17 "
        "AND EXISTS y IN x.PROJECTS y.PNO = 23"
    )
    assert result.column("DNO") == [314]


def test_range_scan_through_planner():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    result = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 330000"
    )
    assert sorted(result.column("DNO")) == [218, 417]
    assert db.last_plan is not None and db.last_plan.used_indexes == ["BUD"]
    # between-style conjunction
    result = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE x.BUDGET >= 330000 AND x.BUDGET <= 400000"
    )
    assert result.column("DNO") == [417]


def test_range_scan_on_nested_path():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.create_index("EMP", "DEPARTMENTS", "PROJECTS.MEMBERS.EMPNO")
    result = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS z.EMPNO < 40000"
    )
    assert result.column("DNO") == [314]  # only 39582
    assert db.last_plan.used_indexes == ["EMP"]


def test_candidates_superset_never_wrong():
    """Whatever the planner prunes, query answers equal the scan answers."""
    gen = DepartmentsGenerator(departments=25, projects_per_department=4,
                               members_per_project=5, seed=17)
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", gen.rows())
    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    db.create_index("PN", "DEPARTMENTS", "PROJECTS.PNO")
    db.create_index("BUD", "DEPARTMENTS", "BUDGET")
    queries = [
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET >= 500000",
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS (y.PNO = 11 AND "
        "EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')",
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE x.BUDGET > 200000 AND EXISTS y IN x.PROJECTS "
        "EXISTS z IN y.MEMBERS z.FUNCTION = 'Secretary'",
    ]
    for sql in queries:
        with_index = db.query(sql)
        db.use_access_paths = False
        without = db.query(sql)
        db.use_access_paths = True
        assert sorted(with_index.column("DNO")) == sorted(without.column("DNO"))


def test_root_tid_index_intersects_roots_only():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.create_index(
        "FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION",
        mode=AddressingMode.ROOT_TID,
    )
    db.create_index(
        "PN", "DEPARTMENTS", "PROJECTS.PNO", mode=AddressingMode.ROOT_TID,
    )
    result = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS "
        "(y.PNO = 23 AND EXISTS z IN y.MEMBERS z.FUNCTION = 'Consultant')"
    )
    # ROOT_TID candidates include dept 314 (has PNO 23 and a consultant,
    # but in different projects); the executor's verification rejects it.
    assert len(result) == 0
    assert db.last_plan is not None
    assert db.last_plan.prefix_joins == 0  # no hierarchical info available
