"""Tests for subtuple-level time versioning (the paper's temporal
architecture: versions kept by the subtuple manager)."""

import datetime

import pytest

from repro.database import Database
from repro.datasets import paper
from repro.errors import TemporalError
from repro.model.values import TupleValue
from repro.storage.buffer import BufferManager
from repro.storage.minidirectory import StorageStructure
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment
from repro.storage.subtuple import decode_data_subtuple
from repro.temporal.subtuple_versions import (
    TemporalObjectManager,
    VersionEntry,
    decode_temporal_root,
    encode_temporal_root,
)
from repro.storage.tid import MiniTID


def make_manager(structure=StorageStructure.SS3):
    buffer = BufferManager(MemoryPagedFile(), capacity=512)
    return TemporalObjectManager(Segment(buffer), structure)


def dept_value():
    return TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, paper.DEPARTMENTS_ROWS[0])


def test_temporal_root_codec_roundtrip():
    entries = [
        VersionEntry(MiniTID(0, 3), 1.0, 2.5, MiniTID(1, 0)),
        VersionEntry(None, 2.5, 7.0, MiniTID(1, 1)),
    ]
    payload = encode_temporal_root(
        1.0, float("inf"), entries, [4, None, 9], [True, False, False], [[]],
    )
    created, deleted, decoded_entries, pages, roles, groups = (
        decode_temporal_root(payload)
    )
    assert created == 1.0 and deleted == float("inf")
    assert decoded_entries == entries
    assert pages == [4, None, 9]
    assert roles[0] is True


@pytest.mark.parametrize("structure", list(StorageStructure))
def test_store_and_load_current(structure):
    manager = make_manager(structure)
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(), at=10)
    assert manager.load(root, paper.DEPARTMENTS_SCHEMA) == dept_value()
    assert manager.exists_at(root, 10)
    assert not manager.exists_at(root, 9)


@pytest.mark.parametrize("structure", list(StorageStructure))
def test_atomic_update_versions_one_subtuple(structure):
    manager = make_manager(structure)
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(), at=10)
    manager.update_atoms(root, paper.DEPARTMENTS_SCHEMA, [], {"BUDGET": 1}, at=20)
    manager.update_atoms(root, paper.DEPARTMENTS_SCHEMA, [], {"BUDGET": 2}, at=30)
    # current
    assert manager.load(root, paper.DEPARTMENTS_SCHEMA)["BUDGET"] == 2
    # history at every epoch
    assert manager.load_asof(root, paper.DEPARTMENTS_SCHEMA, 15)["BUDGET"] == 320_000
    assert manager.load_asof(root, paper.DEPARTMENTS_SCHEMA, 20)["BUDGET"] == 1
    assert manager.load_asof(root, paper.DEPARTMENTS_SCHEMA, 29)["BUDGET"] == 1
    assert manager.load_asof(root, paper.DEPARTMENTS_SCHEMA, 30)["BUDGET"] == 2
    # only two version entries exist — one per superseded data subtuple
    stats = manager.version_statistics(root)
    assert stats["version_entries"] == 2
    # the rest of the object is untouched by history
    old = manager.load_asof(root, paper.DEPARTMENTS_SCHEMA, 15)
    assert old["PROJECTS"] == dept_value()["PROJECTS"]


def test_nested_atomic_update_asof():
    manager = make_manager()
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(), at=10)
    manager.update_atoms(
        root, paper.DEPARTMENTS_SCHEMA,
        [("PROJECTS", 0), ("MEMBERS", 1)], {"FUNCTION": "Leader"}, at=20,
    )
    old = manager.load_asof(root, paper.DEPARTMENTS_SCHEMA, 15)
    assert old["PROJECTS"][0]["MEMBERS"][1]["FUNCTION"] == "Consultant"
    new = manager.load(root, paper.DEPARTMENTS_SCHEMA)
    assert new["PROJECTS"][0]["MEMBERS"][1]["FUNCTION"] == "Leader"


def test_noop_update_creates_no_version():
    manager = make_manager()
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(), at=10)
    manager.update_atoms(root, paper.DEPARTMENTS_SCHEMA, [], {"BUDGET": 320_000}, at=20)
    assert manager.version_statistics(root)["version_entries"] == 0


@pytest.mark.parametrize("structure", list(StorageStructure))
def test_structural_insert_asof(structure):
    manager = make_manager(structure)
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(), at=10)
    manager.insert_element(
        root, paper.DEPARTMENTS_SCHEMA, [], "PROJECTS",
        {"PNO": 29, "PNAME": "ROBO", "MEMBERS": [{"EMPNO": 1, "FUNCTION": "Leader"}]},
        at=20,
    )
    old = manager.load_asof(root, paper.DEPARTMENTS_SCHEMA, 15)
    assert sorted(old["PROJECTS"].column("PNO")) == [17, 23]
    new = manager.load(root, paper.DEPARTMENTS_SCHEMA)
    assert sorted(new["PROJECTS"].column("PNO")) == [17, 23, 29]


@pytest.mark.parametrize("structure", list(StorageStructure))
def test_structural_delete_keeps_history(structure):
    manager = make_manager(structure)
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(), at=10)
    manager.delete_element(
        root, paper.DEPARTMENTS_SCHEMA, [], "PROJECTS", 1, at=20
    )
    old = manager.load_asof(root, paper.DEPARTMENTS_SCHEMA, 15)
    assert sorted(old["PROJECTS"].column("PNO")) == [17, 23]
    assert len(old["PROJECTS"][1]["MEMBERS"]) == 4  # HEAR's members intact
    new = manager.load(root, paper.DEPARTMENTS_SCHEMA)
    assert new["PROJECTS"].column("PNO") == [17]


def test_mixed_edit_sequence_all_epochs():
    manager = make_manager()
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(), at=10)
    manager.update_atoms(root, paper.DEPARTMENTS_SCHEMA, [], {"BUDGET": 1}, at=20)
    manager.insert_element(
        root, paper.DEPARTMENTS_SCHEMA, [("PROJECTS", 0)], "MEMBERS",
        {"EMPNO": 777, "FUNCTION": "Staff"}, at=30,
    )
    manager.update_atoms(
        root, paper.DEPARTMENTS_SCHEMA, [("PROJECTS", 0)], {"PNAME": "CGA2"}, at=40,
    )
    manager.delete_element(root, paper.DEPARTMENTS_SCHEMA, [], "EQUIP", 0, at=50)

    at15 = manager.load_asof(root, paper.DEPARTMENTS_SCHEMA, 15)
    assert at15 == dept_value()
    at25 = manager.load_asof(root, paper.DEPARTMENTS_SCHEMA, 25)
    assert at25["BUDGET"] == 1
    assert len(at25["PROJECTS"][0]["MEMBERS"]) == 3
    at35 = manager.load_asof(root, paper.DEPARTMENTS_SCHEMA, 35)
    assert 777 in at35["PROJECTS"][0]["MEMBERS"].column("EMPNO")
    assert at35["PROJECTS"][0]["PNAME"] == "CGA"
    at45 = manager.load_asof(root, paper.DEPARTMENTS_SCHEMA, 45)
    assert at45["PROJECTS"][0]["PNAME"] == "CGA2"
    assert len(at45["EQUIP"]) == 3
    now = manager.load(root, paper.DEPARTMENTS_SCHEMA)
    assert len(now["EQUIP"]) == 2


def test_object_deletion_is_logical():
    manager = make_manager()
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(), at=10)
    manager.delete_object(root, paper.DEPARTMENTS_SCHEMA, at=20)
    assert not manager.exists_at(root, 20)
    assert manager.exists_at(root, 15)
    assert manager.load_asof(root, paper.DEPARTMENTS_SCHEMA, 15) == dept_value()
    with pytest.raises(TemporalError):
        manager.load(root, paper.DEPARTMENTS_SCHEMA)
    with pytest.raises(TemporalError):
        manager.update_atoms(root, paper.DEPARTMENTS_SCHEMA, [], {"BUDGET": 9}, at=30)


def test_historical_views_are_read_only():
    manager = make_manager()
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(), at=10)
    manager.update_atoms(root, paper.DEPARTMENTS_SCHEMA, [], {"BUDGET": 1}, at=20)
    view = manager.open_asof(root, paper.DEPARTMENTS_SCHEMA, 15)
    with pytest.raises(TemporalError):
        view.update_atoms([], {"BUDGET": 5})


def test_backwards_timestamps_rejected():
    manager = make_manager()
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(), at=10)
    manager.update_atoms(root, paper.DEPARTMENTS_SCHEMA, [], {"BUDGET": 1}, at=20)
    with pytest.raises(TemporalError):
        manager.update_atoms(root, paper.DEPARTMENTS_SCHEMA, [], {"BUDGET": 2}, at=15)


def test_subtuple_history_walk():
    manager = make_manager()
    root = manager.store(paper.DEPARTMENTS_SCHEMA, dept_value(), at=10)
    obj = manager.open_current(root, paper.DEPARTMENTS_SCHEMA)
    key = obj.decoded.data  # the department's own data subtuple
    manager.update_atoms(root, paper.DEPARTMENTS_SCHEMA, [], {"BUDGET": 1}, at=20)
    manager.update_atoms(root, paper.DEPARTMENTS_SCHEMA, [], {"BUDGET": 2}, at=30)
    history = manager.subtuple_history(root, key)
    budgets = [
        decode_data_subtuple(paper.DEPARTMENTS_SCHEMA.attributes, payload)[2]
        for _f, _t, payload in history
    ]
    assert budgets == [320_000, 1, 2]
    assert [(f, t) for f, t, _p in history] == [
        (10.0, 20.0), (20.0, 30.0), (30.0, float("inf"))
    ]


# -- through the Database facade -------------------------------------------------


def subtuple_db():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True, versioning="subtuple")
    return db


def test_database_asof_queries():
    db = subtuple_db()
    tid = db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[0],
                    at=datetime.date(1984, 1, 1))
    db.update(
        "DEPARTMENTS", tid,
        lambda m: m.delete_element([], "PROJECTS", 1),
        at=datetime.date(1984, 3, 1),
    )
    # the paper's ASOF query, over subtuple versions this time
    old = db.query(
        "SELECT y.PNO FROM x IN DEPARTMENTS ASOF '1984-01-15', "
        "y IN x.PROJECTS WHERE x.DNO = 314"
    )
    assert sorted(old.column("PNO")) == [17, 23]
    now = db.query(
        "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE x.DNO = 314"
    )
    assert now.column("PNO") == [17]
    # the same TID stayed current across the update (no object copy!)
    assert db.tids("DEPARTMENTS") == [tid]


def test_database_update_dict_and_indexes():
    db = subtuple_db()
    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    tid = db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at=1)
    db.update(
        "DEPARTMENTS", tid,
        lambda m: m.update_atoms([("PROJECTS", 0), ("MEMBERS", 1)],
                                 {"FUNCTION": "Leader"}),
        at=2,
    )
    index = db.catalog.index("FN")
    assert index.search("Consultant") == []
    result = db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Leader'"
    )
    assert result.column("DNO") == [314]


def test_database_delete_keeps_asof():
    db = subtuple_db()
    tid = db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at=10)
    db.delete("DEPARTMENTS", tid, at=20)
    assert len(db.table_value("DEPARTMENTS")) == 0
    asof = db.query("SELECT x.DNO FROM x IN DEPARTMENTS ASOF '0001-01-15'")
    assert asof.column("DNO") == [314]


def test_subtuple_versioning_rejected_for_flat_tables():
    db = Database()
    with pytest.raises(TemporalError):
        db.create_table(
            paper.EMPLOYEES_1NF_SCHEMA, versioned=True, versioning="subtuple"
        )


def test_persistence_of_subtuple_versions(tmp_path):
    path = str(tmp_path / "temporal.db")
    with Database(path=path) as db:
        db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True,
                        versioning="subtuple")
        tid = db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[0],
                        at=datetime.date(1984, 1, 1))
        db.update("DEPARTMENTS", tid, {"BUDGET": 999},
                  at=datetime.date(1984, 2, 1))
        db.save()
    with Database(path=path) as again:
        old = again.query(
            "SELECT x.BUDGET FROM x IN DEPARTMENTS ASOF '1984-01-15'"
        )
        assert old.column("BUDGET") == [320_000]
        assert again.query(
            "SELECT x.BUDGET FROM x IN DEPARTMENTS"
        ).column("BUDGET") == [999]
