"""Tests for NF2 indexes: the three addressing schemes of Section 4.2,
entry computation, maintenance, and the text index."""

import pytest

from repro.datasets import paper
from repro.errors import AccessPathError
from repro.index.addresses import AddressingMode, HierarchicalAddress
from repro.index.manager import FlatIndex, IndexDefinition, NF2Index
from repro.index.text import TextIndex, fragments_of, words_of
from repro.model.values import TupleValue
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.minidirectory import StorageStructure
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment
from repro.storage.tid import TID


def stored_departments(structure=StorageStructure.SS3):
    buffer = BufferManager(MemoryPagedFile(), capacity=256)
    manager = ComplexObjectManager(Segment(buffer), structure)
    roots = []
    for row in paper.DEPARTMENTS_ROWS:
        value = TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, row)
        roots.append(manager.store(paper.DEPARTMENTS_SCHEMA, value))
    return manager, roots


def function_index(mode):
    definition = IndexDefinition(
        name="IDX_FUNCTION",
        table="DEPARTMENTS",
        attribute_path=("PROJECTS", "MEMBERS", "FUNCTION"),
        mode=mode,
    )
    definition.validate_against(paper.DEPARTMENTS_SCHEMA)
    return NF2Index(definition)


def test_definition_validation():
    bad = IndexDefinition("I", "T", ("DNO", "X"))
    with pytest.raises(AccessPathError):
        bad.validate_against(paper.DEPARTMENTS_SCHEMA)
    bad2 = IndexDefinition("I", "T", ("PROJECTS",))
    with pytest.raises(AccessPathError):
        bad2.validate_against(paper.DEPARTMENTS_SCHEMA)
    good = IndexDefinition("I", "T", ("PROJECTS", "MEMBERS", "EMPNO"))
    good.validate_against(paper.DEPARTMENTS_SCHEMA)


@pytest.mark.parametrize("structure", list(StorageStructure))
def test_consultant_entries_match_paper(structure):
    """Section 4.2: the 'Consultant' posting has exactly the three data
    subtuples 56019 / 89921 / 44512."""
    manager, roots = stored_departments(structure)
    index = function_index(AddressingMode.HIERARCHICAL)
    for root in roots:
        index.index_object(manager.open(root, paper.DEPARTMENTS_SCHEMA))
    addresses = index.search("Consultant")
    assert len(addresses) == 3
    # every address has two components: project-level and member-level
    assert all(len(a.components) == 2 for a in addresses)
    # the consultant-departments query: distinct roots = depts 314 and 218
    consultant_roots = index.roots_for("Consultant")
    assert len(consultant_roots) == 2
    assert set(consultant_roots) == {roots[0], roots[1]}


def test_root_tid_mode_deduplicates_but_cannot_localize():
    manager, roots = stored_departments()
    index = function_index(AddressingMode.ROOT_TID)
    for root in roots:
        index.index_object(manager.open(root, paper.DEPARTMENTS_SCHEMA))
    addresses = index.search("Consultant")
    # dept 218 is referenced twice — visible in the address list
    assert addresses.count(roots[1]) == 2
    assert set(index.roots_for("Consultant")) == {roots[0], roots[1]}
    # no inner position information exists
    assert all(isinstance(a, TID) for a in addresses)


def test_data_tid_mode_cannot_reach_objects():
    manager, roots = stored_departments()
    index = function_index(AddressingMode.DATA_TID)
    for root in roots:
        index.index_object(manager.open(root, paper.DEPARTMENTS_SCHEMA))
    addresses = index.search("Consultant")
    assert len(addresses) == 3
    assert all(isinstance(a, TID) for a in addresses)
    with pytest.raises(AccessPathError):
        index.roots_for("Consultant")  # the paper's first approach fails here


def test_hierarchical_prefix_join_p2_equals_f2():
    """Fig 7b: with indexes on PNO and FUNCTION, 'PNO=17 AND consultant in
    the same project' is decided purely on index information."""
    manager, roots = stored_departments()
    pno_def = IndexDefinition(
        "IDX_PNO", "DEPARTMENTS", ("PROJECTS", "PNO"), AddressingMode.HIERARCHICAL
    )
    pno_index = NF2Index(pno_def)
    function_idx = function_index(AddressingMode.HIERARCHICAL)
    for root in roots:
        obj = manager.open(root, paper.DEPARTMENTS_SCHEMA)
        pno_index.index_object(obj)
        function_idx.index_object(obj)
    p_addresses = pno_index.search(17)
    f_addresses = function_idx.search("Consultant")
    # P2 = F2: some P and F share root and first component -> same project
    hits = [
        (p, f)
        for p in p_addresses
        for f in f_addresses
        if p.shares_prefix(f, 1)
    ]
    assert len(hits) == 1  # dept 314, project 17, consultant 56019
    assert hits[0][0].root == roots[0]
    # project 25 has consultants but PNO != 17: no cross match
    assert all(p.components[0] == hits[0][0].components[0] for p, _f in hits)


def test_top_level_index_component_is_root_data_subtuple():
    manager, roots = stored_departments()
    definition = IndexDefinition(
        "IDX_DNO", "DEPARTMENTS", ("DNO",), AddressingMode.HIERARCHICAL
    )
    index = NF2Index(definition)
    for root in roots:
        index.index_object(manager.open(root, paper.DEPARTMENTS_SCHEMA))
    addresses = index.search(314)
    assert len(addresses) == 1
    assert len(addresses[0].components) == 1


def test_deindex_removes_all_entries():
    manager, roots = stored_departments()
    index = function_index(AddressingMode.HIERARCHICAL)
    for root in roots:
        index.index_object(manager.open(root, paper.DEPARTMENTS_SCHEMA))
    index.deindex_object(roots[1])  # dept 218 (two consultants)
    assert len(index.search("Consultant")) == 1
    index.deindex_object(roots[0])
    assert index.search("Consultant") == []


def test_reindex_is_idempotent():
    manager, roots = stored_departments()
    index = function_index(AddressingMode.HIERARCHICAL)
    obj = manager.open(roots[0], paper.DEPARTMENTS_SCHEMA)
    index.index_object(obj)
    index.index_object(obj)  # again
    assert len(index.search("Consultant")) == 1


def test_nulls_not_indexed():
    buffer = BufferManager(MemoryPagedFile(), capacity=64)
    manager = ComplexObjectManager(Segment(buffer))
    row = dict(paper.DEPARTMENTS_ROWS[0], MGRNO=None)
    root = manager.store(
        paper.DEPARTMENTS_SCHEMA,
        TupleValue.from_plain(paper.DEPARTMENTS_SCHEMA, row),
    )
    definition = IndexDefinition("I", "D", ("MGRNO",))
    index = NF2Index(definition)
    index.index_object(manager.open(root, paper.DEPARTMENTS_SCHEMA))
    assert len(index) == 0


def test_flat_index():
    definition = IndexDefinition("I", "E", ("EMPNO",))
    index = FlatIndex(definition)
    index.index_row(TID(1, 0), 100)
    index.index_row(TID(1, 1), 200)
    assert index.search(100) == [TID(1, 0)]
    index.deindex_row(TID(1, 0))
    assert index.search(100) == []
    with pytest.raises(AccessPathError):
        FlatIndex(IndexDefinition("I", "E", ("A", "B")))


# -- text index --------------------------------------------------------------------


def test_words_and_fragments():
    assert words_of("Text Editing, and String-Search!") == [
        "text", "editing", "and", "string", "search",
    ]
    assert fragments_of("comput", 3) == {"com", "omp", "mpu", "put"}
    assert fragments_of("ab", 3) == {"ab"}


def stored_reports():
    buffer = BufferManager(MemoryPagedFile(), capacity=256)
    manager = ComplexObjectManager(Segment(buffer))
    roots = []
    for row in paper.REPORTS_ROWS:
        value = TupleValue.from_plain(paper.REPORTS_SCHEMA, row)
        roots.append(manager.store(paper.REPORTS_SCHEMA, value))
    return manager, roots


def test_text_index_masked_search():
    manager, roots = stored_reports()
    definition = IndexDefinition("TX", "REPORTS", ("TITLE",))
    index = TextIndex(definition)
    for root in roots:
        index.index_object(manager.open(root, paper.REPORTS_SCHEMA))
    # '*string*' hits report 0189 only
    candidates = index.candidate_roots("*string*")
    assert candidates == [roots[1]]
    # '*comput*' matches nothing in the paper's Table 6
    assert index.candidate_roots("*comput*") == []
    # too-short run: cannot narrow
    assert index.search("*a*") is None


def test_text_index_candidates_are_superset():
    """Fragment hits may be false positives; they are never false
    negatives."""
    manager, roots = stored_reports()
    definition = IndexDefinition("TX", "REPORTS", ("TITLE",))
    index = TextIndex(definition)
    for root in roots:
        index.index_object(manager.open(root, paper.REPORTS_SCHEMA))
    from repro.query.executor import masked_match

    for pattern in ["*concurrency*", "*branch*bound*", "*editing*"]:
        candidates = index.candidate_roots(pattern)
        assert candidates is not None
        truth = [
            root
            for root in roots
            if masked_match(
                pattern,
                manager.load(root, paper.REPORTS_SCHEMA)["TITLE"],
            )
        ]
        assert set(truth) <= set(candidates)


def test_text_index_deindex():
    manager, roots = stored_reports()
    definition = IndexDefinition("TX", "REPORTS", ("TITLE",))
    index = TextIndex(definition)
    for root in roots:
        index.index_object(manager.open(root, paper.REPORTS_SCHEMA))
    index.deindex_object(roots[1])
    assert index.candidate_roots("*string*") == []


def test_text_index_requires_string_attribute():
    definition = IndexDefinition("TX", "DEPARTMENTS", ("DNO",))
    index = TextIndex(definition)
    with pytest.raises(AccessPathError):
        index.validate_against(paper.DEPARTMENTS_SCHEMA)
