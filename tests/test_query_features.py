"""Tests for query-language features beyond the paper's examples:
DISTINCT, ORDER BY, NULL handling, expression corners, and error paths."""

import pytest

from repro.database import Database
from repro.datasets import paper
from repro.errors import BindError, ExecutionError
from repro.query.executor import compare, masked_match


def test_distinct_removes_duplicates(paper_db):
    plain = paper_db.query(
        "SELECT z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, "
        "z IN y.MEMBERS"
    )
    assert len(plain) == 17
    distinct = paper_db.query(
        "SELECT DISTINCT z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, "
        "z IN y.MEMBERS"
    )
    assert sorted(distinct.column("FUNCTION")) == [
        "Consultant", "Leader", "Secretary", "Staff",
    ]


def test_distinct_on_nested_values(paper_db):
    result = paper_db.query(
        "SELECT DISTINCT x.EQUIP FROM x IN DEPARTMENTS"
    )
    assert len(result) == 3  # all three departments differ in equipment


def test_order_by_ascending_descending(paper_db):
    ascending = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS ORDER BY x.DNO"
    )
    assert ascending.column("DNO") == [218, 314, 417]
    assert ascending.ordered  # ORDER BY yields a list
    descending = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS ORDER BY x.DNO DESC"
    )
    assert descending.column("DNO") == [417, 314, 218]


def test_order_by_multiple_keys(paper_db):
    result = paper_db.query(
        "SELECT m.FUNCTION, m.EMPNO FROM m IN MEMBERS-1NF "
        "ORDER BY m.FUNCTION ASC, m.EMPNO DESC"
    )
    rows = [(r["FUNCTION"], r["EMPNO"]) for r in result]
    assert rows == sorted(rows, key=lambda p: (p[0], -p[1]))


def test_order_by_key_not_in_output(paper_db):
    """Sorting on an expression that is not selected."""
    result = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS ORDER BY x.BUDGET DESC"
    )
    assert result.column("DNO") == [218, 417, 314]


def test_order_by_table_valued_rejected(paper_db):
    with pytest.raises(BindError):
        paper_db.query("SELECT x.DNO FROM x IN DEPARTMENTS ORDER BY x.PROJECTS")


def test_order_by_with_distinct(paper_db):
    result = paper_db.query(
        "SELECT DISTINCT z.FUNCTION FROM x IN DEPARTMENTS, "
        "y IN x.PROJECTS, z IN y.MEMBERS ORDER BY z.FUNCTION"
    )
    assert result.column("FUNCTION") == [
        "Consultant", "Leader", "Secretary", "Staff",
    ]


def test_null_comparisons_are_false():
    db = Database()
    db.execute("CREATE TABLE T (A INT, B STRING)")
    db.insert("T", (1, "x"))
    db.insert("T", (None, None))
    assert len(db.query("SELECT t.A FROM t IN T WHERE t.A = 1")) == 1
    assert len(db.query("SELECT t.A FROM t IN T WHERE t.A <> 1")) == 0
    assert len(db.query("SELECT t.A FROM t IN T WHERE t.A IS NULL")) == 1
    assert len(db.query("SELECT t.B FROM t IN T WHERE t.B IS NOT NULL")) == 1
    # NULLs sort first
    result = db.query("SELECT t.A FROM t IN T ORDER BY t.A")
    assert result.column("A") == [None, 1]


def test_subscript_out_of_range_is_null(paper_db):
    result = paper_db.query(
        "SELECT x.REPNO FROM x IN REPORTS WHERE x.AUTHORS[9] = 'Jones A'"
    )
    assert len(result) == 0
    result = paper_db.query(
        "SELECT x.REPNO FROM x IN REPORTS WHERE x.AUTHORS[9] IS NULL"
    )
    assert len(result) == 3


def test_subscript_then_attribute(paper_db):
    result = paper_db.query(
        "SELECT x.REPNO FROM x IN REPORTS WHERE x.AUTHORS[2].NAME = 'Meyer P'"
    )
    assert result.column("REPNO") == ["0291"]


def test_subscript_on_unordered_rejected(paper_db):
    with pytest.raises(BindError):
        paper_db.query(
            "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.EQUIP[1] = 1"
        )


def test_comparison_int_float_mix():
    db = Database()
    db.execute("CREATE TABLE T (A FLOAT)")
    db.insert("T", (2.0,))
    assert len(db.query("SELECT t.A FROM t IN T WHERE t.A = 2")) == 1
    assert len(db.query("SELECT t.A FROM t IN T WHERE t.A >= 1.5")) == 1


def test_table_valued_comparison(paper_db):
    """Comparing two table values (canonical equality)."""
    result = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS, y IN DEPARTMENTS "
        "WHERE x.EQUIP = y.EQUIP AND x.DNO <> y.DNO"
    )
    assert len(result) == 0  # all equipment sets differ
    same = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS, y IN DEPARTMENTS "
        "WHERE x.PROJECTS = y.PROJECTS"
    )
    assert sorted(same.column("DNO")) == [218, 314, 417]  # each equals itself


def test_table_comparison_with_order_op_rejected(paper_db):
    with pytest.raises(BindError):
        paper_db.query(
            "SELECT x.DNO FROM x IN DEPARTMENTS, y IN DEPARTMENTS "
            "WHERE x.EQUIP < y.EQUIP"
        )


def test_quantifier_over_empty_subtable():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert("DEPARTMENTS", {
        "DNO": 1, "MGRNO": 2, "BUDGET": 3, "PROJECTS": [], "EQUIP": [],
    })
    # ALL over empty: vacuously true; EXISTS: false
    assert len(db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE ALL y IN x.PROJECTS: y.PNO = 0"
    )) == 1
    assert len(db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE EXISTS y IN x.PROJECTS: y.PNO = 0"
    )) == 0


def test_not_and_nested_boolean(paper_db):
    result = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE NOT EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS "
        "z.FUNCTION = 'Consultant'"
    )
    assert result.column("DNO") == [417]


def test_masked_match_semantics():
    assert masked_match("*comput*", "Minicomputer Networks")
    assert masked_match("*comput*", "computational")
    assert not masked_match("*comput*", "compiler")
    assert masked_match("?omputer", "Computer")
    assert masked_match("comput*", "computing times")
    # substring semantics: a bare pattern matches anywhere in the subject
    # (CONTAINS 'latency' finds 'query.latency_ms'; use = for equality)
    assert masked_match("comput", "computing")
    assert not masked_match("comput", "compiler")
    assert masked_match("*", "anything")


def test_compare_helper_rejects_bad_ops():
    with pytest.raises(ExecutionError):
        compare("<", paper.departments(), paper.departments())
    assert compare("=", paper.departments(), paper.departments())
    assert not compare("=", True, 1)  # bool is not int here


def test_nested_subquery_as_where_expression(paper_db):
    """A subquery compared against a stored subtable."""
    result = paper_db.query(
        "SELECT x.DNO FROM x IN DEPARTMENTS "
        "WHERE x.EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP-1NF "
        "                 WHERE v.DNO = x.DNO)"
    )
    assert sorted(result.column("DNO")) == [218, 314, 417]


def test_renamed_output_with_expression(paper_db):
    result = paper_db.query(
        "SELECT D = x.DNO, TOTAL = x.BUDGET FROM x IN DEPARTMENTS "
        "WHERE x.DNO = 314"
    )
    assert result.schema.attribute_names == ("D", "TOTAL")
    assert result[0]["TOTAL"] == 320_000
