"""Randomized crash-recovery fuzzing.

The property: take a random workload of committed operations, crash the
engine at an arbitrary I/O event (optionally tearing the write in
flight), recover — and the recovered database must

* pass its own consistency check (``db.verify() == []``), and
* contain **exactly** the state after some acknowledged prefix of the
  workload: either every operation acknowledged before the crash
  (``snapshots[acked]``) or additionally the one in flight
  (``snapshots[acked + 1]``, when its commit record reached the disk
  before the crash finished the operation).  Nothing in between, nothing
  torn, nothing from a loser.

Each seed first runs the workload against a fault-wrapped engine with a
*free* clock to count its I/O events, then replays it with the countdown
set to a spread of crash points across that range.  Seeds alternate torn
and clean crash modes.  ``REPRO_CRASH_FUZZ_SEEDS`` /
``REPRO_CRASH_FUZZ_POINTS`` scale the matrix (CI runs more points than
the default local run).
"""

import json
import os
import random

import pytest

from repro.database import Database
from repro.storage.pagedfile import DiskPagedFile
from repro.wal.faults import CrashClock, CrashPoint, FaultyPagedFile, FaultyWalIO

SEEDS = int(os.environ.get("REPRO_CRASH_FUZZ_SEEDS", "5"))
POINTS = int(os.environ.get("REPRO_CRASH_FUZZ_POINTS", "20"))
FAILURE_DUMP = os.environ.get("REPRO_CRASH_FUZZ_DUMP", "crash-fuzz-failure.json")

FLAT_DDL = "CREATE TABLE FLAT (ID INT, NAME STRING, QTY INT)"
NEST_DDL = (
    "CREATE TABLE NEST (K INT, NOTE STRING, "
    "KIDS TABLE OF (X INT, TAG STRING))"
)


def build_workload(seed):
    """A deterministic list of operations, each one an acknowledged unit
    (a single auto-committed statement or one explicit transaction)."""
    rng = random.Random(seed)
    ops = []

    def op(fn):
        ops.append(fn)
        return fn

    op(lambda db: db.execute(FLAT_DDL))
    op(lambda db: db.execute(NEST_DDL))

    next_id = [0]

    def make_insert_flat():
        rowid = next_id[0]
        next_id[0] += 1
        name = "n%04d" % rng.randrange(10_000)
        qty = rng.randrange(100)

        def run(db):
            db.insert("FLAT", {"ID": rowid, "NAME": name, "QTY": qty})

        return run

    def make_insert_nest():
        key = next_id[0]
        next_id[0] += 1
        kids = [
            {"X": rng.randrange(50), "TAG": "t%d" % rng.randrange(9)}
            for _ in range(rng.randrange(4))
        ]
        note = "note-%d" % rng.randrange(1000)

        def run(db):
            db.insert("NEST", {"K": key, "NOTE": note, "KIDS": kids})

        return run

    def make_update():
        qty = rng.randrange(1000)
        pick = rng.randrange(1_000_000)

        def run(db):
            ids = sorted(r["ID"] for r in db.iterate_table("FLAT"))
            if not ids:
                return
            target = ids[pick % len(ids)]
            db.execute(
                f"UPDATE FLAT x SET QTY = {qty} WHERE x.ID = {target}"
            )

        return run

    def make_delete():
        pick = rng.randrange(1_000_000)

        def run(db):
            ids = sorted(r["ID"] for r in db.iterate_table("FLAT"))
            if not ids:
                return
            target = ids[pick % len(ids)]
            db.execute(f"DELETE FROM FLAT x WHERE x.ID = {target}")

        return run

    def make_txn_commit():
        first, second = make_insert_flat(), make_insert_flat()

        def run(db):
            with db.transaction():
                first(db)
                second(db)

        return run

    def make_txn_rollback():
        doomed = make_insert_flat()

        def run(db):
            try:
                with db.transaction():
                    doomed(db)
                    raise KeyError("rolled back on purpose")
            except KeyError:
                pass

        return run

    choices = [
        (make_insert_flat, 6),
        (make_insert_nest, 3),
        (make_update, 4),
        (make_delete, 2),
        (make_txn_commit, 2),
        (make_txn_rollback, 2),
    ]
    bag = [maker for maker, weight in choices for _ in range(weight)]
    for _ in range(22):
        op(rng.choice(bag)())
    return ops


def state_of(db):
    """Logical contents, order- and TID-independent."""
    out = {}
    for entry in db.catalog.tables():
        rows = [
            json.dumps(row.to_plain(), sort_keys=True, default=str)
            for row in db.iterate_table(entry.name)
        ]
        out[entry.name] = sorted(rows)
    return out


def shadow_snapshots(seed):
    """Expected state after each acknowledged prefix, computed on a plain
    in-memory engine (no faults, same deterministic workload)."""
    ops = build_workload(seed)
    db = Database()
    snaps = [state_of(db)]
    for op in ops:
        op(db)
        snaps.append(state_of(db))
    return snaps


def open_faulty(path, clock):
    faulty = FaultyPagedFile(DiskPagedFile(path), clock)
    wal_io = FaultyWalIO(path + ".wal", clock)
    db = Database(
        path=path,
        pagedfile=faulty,
        wal_io=wal_io,
        buffer_capacity=16,
        wal_auto_checkpoint_bytes=16 * 1024,
    )
    return db, faulty, wal_io


def run_until_crash(path, seed, countdown, torn):
    """Run the workload against a faulted engine; returns the number of
    acknowledged operations (crash or clean completion)."""
    ops = build_workload(seed)
    clock = CrashClock(countdown=countdown, torn=torn)
    db = faulty = wal_io = None
    acked = 0
    try:
        db, faulty, wal_io = open_faulty(path, clock)
        for op in ops:
            op(db)
            acked += 1
        db.close()
    except CrashPoint:
        if faulty is not None:
            faulty.abandon()
        if wal_io is not None:
            wal_io.abandon()
    return acked


def count_io_events(tmp_path, seed):
    """Total faulted I/O events in a crash-free run of the workload."""
    path = str(tmp_path / "probe.db")
    clock = CrashClock(countdown=None)
    db, _, _ = open_faulty(path, clock)
    for op in build_workload(seed):
        op(db)
    db.close()
    for suffix in ("", ".wal", ".catalog.json"):
        if os.path.exists(path + suffix):
            os.remove(path + suffix)
    return clock.ops


def crash_points(total, rng):
    if total <= POINTS:
        return list(range(1, total + 1))
    picked = rng.sample(range(1, total + 1), POINTS - 2)
    return sorted(set(picked) | {1, total})


@pytest.mark.parametrize("seed", range(SEEDS))
def test_crash_recovery_fuzz(tmp_path, seed):
    snaps = shadow_snapshots(seed)
    total = count_io_events(tmp_path, seed)
    assert total >= POINTS, "workload too small to be interesting"
    rng = random.Random(10_000 + seed)
    for countdown in crash_points(total, rng):
        torn = (seed + countdown) % 2 == 0
        path = str(tmp_path / f"fuzz-{countdown}.db")
        acked = run_until_crash(path, seed, countdown, torn)
        recovered = Database(path=path)
        try:
            problems = recovered.verify()
            got = state_of(recovered)
            acceptable = snaps[acked : min(acked + 2, len(snaps))]
            ok = problems == [] and got in acceptable
            if not ok:
                with open(FAILURE_DUMP, "w") as handle:
                    json.dump(
                        {
                            "seed": seed,
                            "countdown": countdown,
                            "torn": torn,
                            "acked": acked,
                            "verify_problems": problems,
                            "recovered_state": got,
                            "expected_any_of": acceptable,
                        },
                        handle,
                        indent=2,
                    )
            assert problems == [], (
                f"seed={seed} countdown={countdown} torn={torn}: "
                f"recovered database inconsistent: {problems}"
            )
            assert got in acceptable, (
                f"seed={seed} countdown={countdown} torn={torn} "
                f"acked={acked}: recovered state matches no acknowledged "
                f"prefix (dumped to {FAILURE_DUMP})"
            )
        finally:
            recovered.close()
        # recovered databases stay usable: run one more committed write
        again = Database(path=path)
        again.execute("CREATE TABLE POST (P INT)")
        again.insert("POST", {"P": 1})
        assert again.verify() == []
        again.close()
        for suffix in ("", ".wal", ".catalog.json"):
            if os.path.exists(path + suffix):
                os.remove(path + suffix)


def test_torn_crash_points_actually_tear(tmp_path):
    """Sanity check on the harness itself: at least one torn crash point
    leaves a page the recovery path repairs (checksum mismatch)."""
    seed = 0
    total = count_io_events(tmp_path, seed)
    repaired = 0
    for countdown in range(1, total + 1):
        path = str(tmp_path / f"tear-{countdown}.db")
        run_until_crash(path, seed, countdown, torn=True)
        recovered = Database(path=path)
        if recovered.last_recovery is not None:
            repaired += recovered.last_recovery.torn_pages_repaired
        recovered.close()
        for suffix in ("", ".wal", ".catalog.json"):
            if os.path.exists(path + suffix):
                os.remove(path + suffix)
    assert repaired > 0, "no crash point ever produced a torn page"
