"""Tests for the single-user transaction scope (rollback by
before-image)."""

import pytest

from repro.database import Database
from repro.datasets import paper
from repro.errors import ExecutionError


def fresh():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    db.create_index("FN", "DEPARTMENTS", "PROJECTS.MEMBERS.FUNCTION")
    return db


def snapshot(db):
    return db.table_value("DEPARTMENTS")


def test_commit_keeps_changes():
    db = fresh()
    with db.transaction():
        db.execute("UPDATE DEPARTMENTS x SET BUDGET = 1 WHERE x.DNO = 314")
        db.execute("DELETE FROM DEPARTMENTS x WHERE x.DNO = 218")
    result = db.query("SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS ORDER BY x.DNO")
    assert [(r["DNO"], r["BUDGET"]) for r in result] == [
        (314, 1), (417, 360_000),
    ]


def test_rollback_restores_everything():
    db = fresh()
    before = snapshot(db)
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.execute("UPDATE DEPARTMENTS x SET BUDGET = 1 WHERE x.DNO = 314")
            db.execute("DELETE FROM DEPARTMENTS x WHERE x.DNO = 218")
            db.execute(
                "INSERT INTO DEPARTMENTS VALUES (999, 1, {}, 0, {})"
            )
            db.execute(
                "UPDATE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, "
                "z IN y.MEMBERS SET FUNCTION = 'X' WHERE z.EMPNO = 56019"
            )
            raise RuntimeError("boom")
    assert snapshot(db) == before
    # index contents rolled back too (verified structurally)
    assert db.verify() == []
    assert len(db.catalog.index("FN").search("Consultant")) == 3


def test_rollback_ordering_with_dependent_ops():
    db = fresh()
    before = snapshot(db)
    with pytest.raises(ValueError):
        with db.transaction():
            # insert then update then delete the same new object
            db.execute("INSERT INTO DEPARTMENTS VALUES (500, 1, {}, 10, {})")
            db.execute("UPDATE DEPARTMENTS x SET BUDGET = 20 WHERE x.DNO = 500")
            db.execute("DELETE FROM DEPARTMENTS x WHERE x.DNO = 500")
            raise ValueError
    assert snapshot(db) == before


def test_nested_transaction_rejected():
    db = fresh()
    with db.transaction():
        with pytest.raises(ExecutionError):
            with db.transaction():
                pass


def test_versioned_tables_rejected_inside_transaction():
    db = Database()
    db.create_table(paper.DEPARTMENTS_SCHEMA, versioned=True)
    tid = db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[0])
    with db.transaction():
        with pytest.raises(ExecutionError):
            db.update("DEPARTMENTS", tid, {"BUDGET": 1})
        with pytest.raises(ExecutionError):
            db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[1])


def test_subtuple_versioned_tables_rejected_with_clear_error():
    db = Database()
    db.create_table(
        paper.DEPARTMENTS_SCHEMA, versioned=True, versioning="subtuple"
    )
    tid = db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[0], at=1.0)
    with db.transaction():
        with pytest.raises(ExecutionError) as excinfo:
            db.update("DEPARTMENTS", tid, {"BUDGET": 1}, at=2.0)
        message = str(excinfo.value)
        assert "subtuple-versioned" in message
        assert "versioning='object'" in message
        with pytest.raises(ExecutionError, match="subtuple-versioned"):
            db.insert("DEPARTMENTS", paper.DEPARTMENTS_ROWS[1], at=2.0)
        with pytest.raises(ExecutionError, match="subtuple-versioned"):
            db.delete("DEPARTMENTS", tid, at=2.0)
    # outside the transaction the same mutation works fine
    db.update("DEPARTMENTS", tid, {"BUDGET": 1}, at=2.0)


def test_transaction_commit_and_rollback_are_durable(tmp_path):
    """Explicit transactions ride the WAL: a committed scope survives a
    reopen without save(); a rolled-back scope leaves no durable trace."""
    path = str(tmp_path / "txn.db")
    db = Database(path=path)
    db.create_table(paper.DEPARTMENTS_SCHEMA)
    db.insert_many("DEPARTMENTS", paper.DEPARTMENTS_ROWS)
    with db.transaction():
        db.execute("UPDATE DEPARTMENTS x SET BUDGET = 1 WHERE x.DNO = 314")
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.execute("DELETE FROM DEPARTMENTS x WHERE x.DNO = 218")
            raise RuntimeError("boom")
    # no save(), no close(): reopen recovers from the log alone
    again = Database(path=path)
    result = again.query(
        "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS ORDER BY x.DNO"
    )
    assert [(r["DNO"], r["BUDGET"]) for r in result] == [
        (218, 440_000), (314, 1), (417, 360_000),
    ]
    assert again.verify() == []
    again.close()


def test_queries_inside_transaction_see_own_writes():
    db = fresh()
    with db.transaction():
        db.execute("UPDATE DEPARTMENTS x SET BUDGET = 7 WHERE x.DNO = 314")
        inside = db.query(
            "SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 314"
        )
        assert inside.column("BUDGET") == [7]
