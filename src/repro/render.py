"""ASCII rendering of (nested) tables, in the style of the paper's figures.

Unordered tables are headed ``{ NAME }`` and ordered tables ``< NAME >``,
matching the paper's bracket convention.  Nested subtables render as
multi-line blocks inside their parent cell.
"""

from __future__ import annotations

import datetime
from typing import Any, Optional

from repro.model.schema import TableSchema
from repro.model.values import TableValue, TupleValue


def format_atom(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if value == float("-inf"):
            return "-inf"
        if value != value:  # NaN
            return "nan"
        if value == int(value):
            return str(int(value))
    return str(value)


def _block_width(lines: list[str]) -> int:
    return max((len(line) for line in lines), default=0)


def _pad_block(lines: list[str], width: int, height: int) -> list[str]:
    padded = [line.ljust(width) for line in lines]
    padded.extend(" " * width for _ in range(height - len(lines)))
    return padded


def _render_rows(table: TableValue) -> tuple[list[str], list[list[str]]]:
    """Return (column header lines per attribute, cell blocks per row)."""
    headers: list[str] = []
    for attr in table.schema.attributes:
        if attr.is_table:
            assert attr.table is not None
            mark = f"< {attr.name} >" if attr.table.ordered else f"{{ {attr.name} }}"
            headers.append(mark)
        else:
            headers.append(attr.name)
    cells: list[list[str]] = []
    for row in table.rows:
        row_cells: list[str] = []
        for attr in table.schema.attributes:
            value = row[attr.name]
            if isinstance(value, TableValue):
                row_cells.append(_render_body(value))
            else:
                row_cells.append(format_atom(value))
        cells.append(row_cells)
    return headers, cells


def _render_body(table: TableValue) -> str:
    """Render a table's grid without an outer title line."""
    headers, rows = _render_rows(table)
    columns = len(headers)
    # Each cell is a multi-line block.
    blocks: list[list[list[str]]] = []
    for row in rows:
        blocks.append([cell.split("\n") for cell in row])
    widths = [len(h) for h in headers]
    for row in blocks:
        for index in range(columns):
            widths[index] = max(widths[index], _block_width(row[index]))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    out: list[str] = [sep]
    out.append(
        "|" + "|".join(f" {headers[i].ljust(widths[i])} " for i in range(columns)) + "|"
    )
    out.append(sep)
    for row in blocks:
        height = max(len(cell) for cell in row)
        padded = [_pad_block(cell, widths[i], height) for i, cell in enumerate(row)]
        for line_index in range(height):
            out.append(
                "|"
                + "|".join(f" {padded[i][line_index]} " for i in range(columns))
                + "|"
            )
        out.append(sep)
    if not blocks:
        out.append(sep)
    return "\n".join(out)


def render_table(table: TableValue, title: Optional[str] = None) -> str:
    """Render a table with a title line, e.g. ``{ DEPARTMENTS }``."""
    name = title if title is not None else table.schema.name
    mark = f"< {name} >" if table.ordered else f"{{ {name} }}"
    return f"{mark}\n{_render_body(table)}"


def render_schema_tree(schema: TableSchema, indent: str = "") -> str:
    """Render a schema as an indented tree (used to reproduce Fig 1's
    hierarchy diagram)."""
    kind = "< >" if schema.ordered else "{ }"
    lines = [f"{indent}{schema.name} {kind}"]
    for attr in schema.attributes:
        if attr.is_atomic:
            assert attr.atomic_type is not None
            lines.append(f"{indent}  - {attr.name}: {attr.atomic_type.value}")
        else:
            assert attr.table is not None
            lines.append(render_schema_tree(attr.table, indent + "  "))
    return "\n".join(lines)
