"""Metric history: a background recorder turning the live registry into
ring-buffer time series.

Every ``SYS.METRICS`` surface before this module was point-in-time — a
counter total, a gauge level, a histogram of everything since startup.
The :class:`TimeSeriesRecorder` adds the missing axis: every
``period_ms`` it snapshots **every** counter / gauge / histogram series
in :data:`~repro.obs.metrics.METRICS` into fixed-size rings, computing
per-sample deltas and rates, and downsamples the raw tier into coarser
resolutions (``1x`` raw → ``10x`` → ``60x`` by default) so an hour of
history costs the same memory as a minute.

The history is exposed as the ``SYS.METRICS_HISTORY`` virtual NF²
relation — one row per (metric series × tier) with the samples as a
nested ``SAMPLES`` list subtable — and consumed by the SLO engine
(:mod:`repro.obs.slo`), whose sliding-window burn rates are counter
deltas and bucket-count diffs between two samples of these rings.

Like the ASH sampler, the recorder is **constructed idle**: opening a
database never spawns a thread; ``db.ts.start()`` does (the server's
``--monitor`` flag and the benchmarks call it).  ``sample_once()`` takes
one deterministic snapshot for tests.

Environment knobs (read at construction):

* ``REPRO_TS_PERIOD_MS`` — base sampling period (default 1000 ms)
* ``REPRO_TS_KEEP`` — samples retained per series *per tier*
  (default 360: an hour of raw history at the default period)
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Iterator, Optional

from repro.obs.metrics import METRICS, _label_key, interpolated_quantile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.database import Database

#: downsampling factors: tier *i* keeps one sample every ``factor`` ticks
TIER_FACTORS = (1, 10, 60)


def _env(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, "").strip() or default)
    except ValueError:
        return default


class TsSample:
    """One point of one metric series at one resolution.

    ``value`` is the cumulative counter total / gauge level / histogram
    observation count at ``ts``; ``delta`` and ``rate`` are movement
    since the previous sample of the *same tier*.  Histogram samples
    additionally carry the cumulative ``sum`` and a snapshot of the
    cumulative ``bucket_counts`` (what windowed quantiles diff), plus
    ``avg`` — mean observed value across the interval.
    """

    __slots__ = ("ts", "value", "delta", "rate", "avg", "sum", "buckets",
                 "low", "high")

    def __init__(
        self,
        ts: float,
        value: float,
        delta: Optional[float],
        rate: Optional[float],
        avg: Optional[float] = None,
        sum: Optional[float] = None,
        buckets: Optional[tuple] = None,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ):
        self.ts = ts
        self.value = value
        self.delta = delta
        self.rate = rate
        self.avg = avg
        self.sum = sum
        self.buckets = buckets
        self.low = low
        self.high = high


class _Series:
    """All tiers of one (kind, name, labels) metric series."""

    __slots__ = ("kind", "name", "label_key", "bounds", "tiers")

    def __init__(self, kind: str, name: str, label_key, bounds, keep: int):
        self.kind = kind
        self.name = name
        self.label_key = label_key
        self.bounds = bounds  # histogram bucket bounds (None otherwise)
        self.tiers: tuple[deque, ...] = tuple(
            deque(maxlen=keep) for _ in TIER_FACTORS
        )


class TimeSeriesRecorder:
    """The background recorder plus its per-series sample rings."""

    def __init__(
        self,
        db: "Database",
        period_ms: Optional[float] = None,
        keep: Optional[int] = None,
    ):
        self._db = db
        self.period_ms = (
            _env("REPRO_TS_PERIOD_MS", 1000.0) if period_ms is None else period_ms
        )
        self.keep = int(_env("REPRO_TS_KEEP", 360)) if keep is None else keep
        self.ticks = 0  #: sampling rounds taken (thread or manual)
        self._series: dict[tuple, _Series] = {}
        self._latch = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> None:
        """Start the background recorder (idempotent)."""
        with self._latch:
            if self.running:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-ts", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Stop the recorder deterministically; the rings keep their
        samples.  ``Database.close()`` calls this — no ``repro-ts``
        thread may survive a closed database."""
        with self._latch:
            thread = self._thread
            self._thread = None
        if thread is not None and thread.is_alive():
            self._stop.set()
            thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(self.period_ms / 1000.0):
            try:
                self.sample_once()
            except Exception:  # observability must never crash the engine
                pass

    # -- sampling ----------------------------------------------------------

    def sample_once(self, now: Optional[float] = None) -> int:
        """Snapshot every registered metric series; returns the number of
        raw samples appended.  After sampling, the database's SLO engine
        (if any objectives are defined) is evaluated against the updated
        history — burn-rate alerting rides on the recorder's clock."""
        now = time.time() if now is None else now
        self.ticks += 1
        added = 0
        for counter in METRICS.counters():
            for key, value in counter.series():
                self._record(("counter", counter.name, key), now, float(value))
                added += 1
        for gauge in METRICS.gauges():
            for key, value in gauge.series():
                self._record(("gauge", gauge.name, key), now, float(value))
                added += 1
        for histogram in METRICS.histograms():
            bounds = histogram.buckets
            for key, snap in histogram.series():
                self._record(
                    ("histogram", histogram.name, key),
                    now,
                    float(snap["count"]),
                    sum_value=float(snap["sum"]),
                    buckets=tuple(snap["bucket_counts"]),
                    low=snap["min"],
                    high=snap["max"],
                    bounds=bounds,
                )
                added += 1
        slo = getattr(self._db, "slo", None)
        if slo is not None and slo.objectives:
            try:
                slo.evaluate(now=now)
            except Exception:  # alerting must never crash the recorder
                pass
        return added

    def _record(
        self,
        key: tuple,
        now: float,
        value: float,
        sum_value: Optional[float] = None,
        buckets: Optional[tuple] = None,
        low: Optional[float] = None,
        high: Optional[float] = None,
        bounds=None,
    ) -> None:
        with self._latch:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Series(
                    key[0], key[1], key[2], bounds, self.keep
                )
            for index, factor in enumerate(TIER_FACTORS):
                if self.ticks % factor:
                    continue
                ring = series.tiers[index]
                previous = ring[-1] if ring else None
                if previous is None:
                    delta = rate = avg = None
                else:
                    delta = value - previous.value
                    elapsed = now - previous.ts
                    rate = delta / elapsed if elapsed > 0 else None
                    avg = None
                    if sum_value is not None and delta:
                        avg = (sum_value - (previous.sum or 0.0)) / delta
                ring.append(
                    TsSample(
                        ts=now,
                        value=value,
                        delta=delta,
                        rate=rate,
                        avg=avg,
                        sum=sum_value,
                        buckets=buckets,
                        low=low,
                        high=high,
                    )
                )

    def clear(self) -> None:
        with self._latch:
            self._series.clear()
        self.ticks = 0

    # -- reading -----------------------------------------------------------

    def tier_name(self, index: int) -> str:
        """Human tier label: effective resolution in seconds (``1s``,
        ``10s``, ``60s`` at the default period)."""
        seconds = self.period_ms * TIER_FACTORS[index] / 1000.0
        return f"{seconds:g}s"

    def series_rows(self) -> Iterator[dict]:
        """One plain row per (series × non-empty tier), the
        ``SYS.METRICS_HISTORY`` producer's shape."""
        with self._latch:
            snapshot = [
                (key, series, [list(ring) for ring in series.tiers])
                for key, series in sorted(self._series.items())
            ]
        for (kind, name, label_key), series, rings in snapshot:
            for index, samples in enumerate(rings):
                if not samples:
                    continue
                last = samples[-1]
                yield {
                    "NAME": name,
                    "KIND": kind,
                    "LABELS": [
                        {"NAME": k, "VALUE": str(v)} for k, v in label_key
                    ],
                    "TIER": self.tier_name(index),
                    "RESOLUTION_S": self.period_ms
                    * TIER_FACTORS[index]
                    / 1000.0,
                    "POINTS": len(samples),
                    "LAST_TS": last.ts,
                    "LAST_VALUE": last.value,
                    "LAST_RATE": last.rate,
                    "SAMPLES": [
                        {
                            "TS": s.ts,
                            "VALUE": s.value,
                            "DELTA": s.delta,
                            "RATE": s.rate,
                            "AVG": s.avg,
                        }
                        for s in samples
                    ],
                }

    def _matching(self, kind: str, name: str, labels: Optional[dict]) -> list:
        """Raw-tier sample lists of the matching series.  Non-empty
        *labels* select exactly one series; empty/None labels aggregate
        **all** label combinations of the metric (the "no labels = the
        whole metric" convention of ``METRICS.totals()``)."""
        with self._latch:
            if labels:
                series = self._series.get((kind, name, _label_key(labels)))
                found = [series] if series is not None else []
            else:
                found = [
                    series
                    for (k, n, _key), series in self._series.items()
                    if k == kind and n == name
                ]
            return [
                (series, list(series.tiers[0])) for series in found
            ]

    @staticmethod
    def _window_of(
        samples: list, window_s: float, now: Optional[float]
    ) -> tuple[Optional[TsSample], Optional[TsSample]]:
        """The newest raw sample and the window *baseline*: the newest
        sample at or before ``now - window_s`` (``None`` baseline when
        the series started inside the window — deltas then count from
        the series' birth, i.e. from zero)."""
        if not samples:
            return None, None
        newest = samples[-1]
        horizon = (newest.ts if now is None else now) - window_s
        baseline = None
        for sample in reversed(samples):
            if sample.ts <= horizon:
                baseline = sample
                break
        return newest, baseline

    def windowed_delta(
        self,
        name: str,
        labels: Optional[dict] = None,
        window_s: float = 300.0,
        kind: str = "counter",
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Counter (or histogram-count) movement across the window,
        summed over the matching series; ``None`` when none has samples
        yet."""
        total = None
        for _series, samples in self._matching(kind, name, labels):
            newest, baseline = self._window_of(samples, window_s, now)
            if newest is None:
                continue
            moved = newest.value - (
                baseline.value if baseline is not None else 0.0
            )
            total = moved if total is None else total + moved
        return total

    def windowed_rate(
        self,
        name: str,
        labels: Optional[dict] = None,
        window_s: float = 300.0,
        kind: str = "counter",
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Per-second rate across the window (delta / elapsed), summed
        over the matching series."""
        total = None
        for _series, samples in self._matching(kind, name, labels):
            newest, baseline = self._window_of(samples, window_s, now)
            if newest is None or baseline is None or newest.ts <= baseline.ts:
                continue
            rate = (newest.value - baseline.value) / (newest.ts - baseline.ts)
            total = rate if total is None else total + rate
        return total

    def windowed_quantile(
        self,
        name: str,
        labels: Optional[dict],
        window_s: float,
        q: float,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Interpolated quantile of a histogram series **over the
        window**: the bucket counts of the baseline sample are subtracted
        from the newest sample's, so only observations inside the window
        shape the result.  (The clamp envelope is the series' lifetime
        min/max — cumulative histograms don't retain per-window
        extrema.)"""
        bounds = None
        counts: Optional[list[int]] = None
        count = 0
        low = high = None
        for series, samples in self._matching("histogram", name, labels):
            newest, baseline = self._window_of(samples, window_s, now)
            if newest is None or newest.buckets is None:
                continue
            if baseline is not None and baseline.buckets is not None:
                moved = [
                    int(b) - int(a)
                    for b, a in zip(newest.buckets, baseline.buckets)
                ]
                count += int(newest.value - baseline.value)
            else:
                moved = [int(b) for b in newest.buckets]
                count += int(newest.value)
            if counts is None:
                bounds = series.bounds
                counts = moved
            else:  # same metric → same bucket layout
                counts = [a + b for a, b in zip(counts, moved)]
            if newest.low is not None:
                low = newest.low if low is None else min(low, newest.low)
            if newest.high is not None:
                high = newest.high if high is None else max(high, newest.high)
        if bounds is None or counts is None or count <= 0:
            return None
        return interpolated_quantile(bounds, counts, count, low, high, q)

    def windowed_gauge(
        self,
        name: str,
        labels: Optional[dict] = None,
        window_s: float = 300.0,
        agg: str = "max",
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Aggregate a gauge across the window (``max``/``min``/``avg``/
        ``last`` over the raw samples inside it, pooled across the
        matching series)."""
        values: list[float] = []
        for _series, samples in self._matching("gauge", name, labels):
            if not samples:
                continue
            horizon = (samples[-1].ts if now is None else now) - window_s
            inside = [s.value for s in samples if s.ts >= horizon]
            values.extend(inside if inside else [samples[-1].value])
        if not values:
            return None
        if agg == "max":
            return max(values)
        if agg == "min":
            return min(values)
        if agg == "avg":
            return sum(values) / len(values)
        return values[-1]
