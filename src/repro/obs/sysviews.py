"""The ``SYS`` virtual catalog: engine telemetry as extended NF² tables.

The paper's pitch is *an integrated view on flat tables and hierarchies* —
so the reproduction's own telemetry is exposed the same way.  Histogram
buckets are a list-valued subtable under their metric, lock grants are
rows, counter deltas hang under the statement that caused them.  Litwin's
*stored and inherited relations* motivates the construct: these are
relations whose tuples are **computed from engine state at read time**,
never stored.

Views (query them like any table, e.g. ``FROM m IN SYS.METRICS``):

========================  ====================================================
``SYS.METRICS``           one row per metric series (counter / gauge /
                          histogram × label combination), with a ``LABELS``
                          subtable and, for histograms, a ``BUCKETS`` list
``SYS.SESSIONS``          the sessions currently registered on the database
``SYS.LOCKS``             every lock grant and waiter in the lock manager
``SYS.WAL``               one row of write-ahead-log statistics, including
                          the replication role and shipped/applied batch
                          sequence + lag (zero rows for in-memory /
                          ``wal=False`` databases that are not replicas)
``SYS.REPLICAS``          replication links: on a primary one row per
                          attached replica (shipped vs acked sequence,
                          lag); on a replica one row for its upstream
``SYS.TABLES``            the user catalog: kind, cardinality, nesting depth
``SYS.INDEXES``           index definitions + cost-model statistics
``SYS.QUERIES``           the ring of recently finished statements, with
                          ``COUNTERS`` and ``WAITS`` subtables of
                          per-statement deltas and wait-event time
``SYS.ASH``               the active-session-history ring: periodic samples
                          of every session's state, statement, and current
                          wait event, with a ``WAITS`` subtable per sample
``SYS.TRACES``            one row per retained statement trace (tail-based
                          retention: errors / slow / client-armed kept)
``SYS.SPANS``             the flattened span trees of all retained traces,
                          with parent path, depth, and an ``ATTRS`` subtable
``SYS.TRANSACTIONS``      the MVCC snapshot registry: one row per active
                          snapshot with its axis, read point, isolation,
                          and the manager's commit/GC state (zero rows for
                          databases opened without ``mvcc=True``)
``SYS.METRICS_HISTORY``   the time-series recorder's rings: one row per
                          (metric series × resolution tier) with a nested
                          ``SAMPLES`` subtable of timestamped values,
                          deltas, and per-second rates
``SYS.SLOS``              the SLO engine's objectives: declared ceiling /
                          error budget, last measured value and burn rate,
                          alert state, and a per-window ``WINDOWS`` subtable
``SYS.ALERTS``            alert state-machine transition history (OK →
                          PENDING → FIRING → RESOLVED), newest last
========================  ====================================================

The views are read-only (DML and DDL against ``SYS.*`` is rejected) and
non-versioned (``ASOF`` binds to an error like any non-versioned table).
Everything downstream of binding — nesting, EXISTS, subscripting, ORDER
BY, EXPLAIN — works unchanged because the binder and executor only ever
see an ordinary :class:`~repro.model.schema.TableSchema` and a stream of
:class:`~repro.model.values.TupleValue` rows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.model.schema import TableSchema, atomic, list_of, nested, table
from repro.model.values import TupleValue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.database import Database

#: the view part of every recognized SYS table name, canonical (upper)
SYS_VIEW_NAMES = (
    "METRICS",
    "SESSIONS",
    "LOCKS",
    "WAL",
    "REPLICAS",
    "TABLES",
    "INDEXES",
    "QUERIES",
    "ASH",
    "TRACES",
    "SPANS",
    "TRANSACTIONS",
    "METRICS_HISTORY",
    "SLOS",
    "ALERTS",
)


def is_sys_table(name: str) -> bool:
    """True when *name* is a ``SYS.<view>`` reference (any case)."""
    if not name.upper().startswith("SYS."):
        return False
    return name.upper().split(".", 1)[1] in SYS_VIEW_NAMES


def _view_of(name: str) -> str:
    view = name.upper().split(".", 1)[1]
    if view not in SYS_VIEW_NAMES:
        raise KeyError(name)
    return view


# --------------------------------------------------------------------------
# Schemas (TableSchema names may not contain dots, hence SYS_*)
# --------------------------------------------------------------------------

_LABELS = table("LABELS", atomic("NAME", "STRING"), atomic("VALUE", "STRING"))

_BUCKETS = list_of(
    "BUCKETS",
    atomic("BOUND", "FLOAT"),       # bucket upper bound (inf = overflow)
    atomic("COUNT", "INT"),         # observations in this bucket (raw)
    atomic("CUMULATIVE", "INT"),    # observations at or below BOUND
)

METRICS_SCHEMA = table(
    "SYS_METRICS",
    atomic("NAME", "STRING"),
    atomic("KIND", "STRING"),       # counter | gauge | histogram
    nested("LABELS", _LABELS),
    atomic("VALUE", "FLOAT"),       # counter/gauge value (NULL for histograms)
    atomic("COUNT", "INT"),         # histogram observations (NULL otherwise)
    atomic("SUM", "FLOAT"),
    atomic("MIN", "FLOAT"),
    atomic("MAX", "FLOAT"),
    atomic("AVG", "FLOAT"),
    nested("BUCKETS", _BUCKETS),    # empty for counters/gauges
)

#: per-statement / per-session / per-sample wait-event breakdown
_WAITS = table(
    "WAITS",
    atomic("EVENT", "STRING"),      # e.g. Lock/TableX, WAL/Fsync, IO/PageRead
    atomic("COUNT", "INT"),
    atomic("TIME_MS", "FLOAT"),
)

SESSIONS_SCHEMA = table(
    "SYS_SESSIONS",
    atomic("NAME", "STRING"),
    atomic("THREAD", "STRING"),
    atomic("IN_TXN", "BOOL"),       # inside an explicit transaction block
    atomic("STATEMENTS", "INT"),    # statements executed on this session
    atomic("LOCK_TIMEOUT", "FLOAT"),
    atomic("LAST_LOCK_REQUESTS", "INT"),
    atomic("LAST_LOCK_WAITS", "INT"),
    nested("WAITS", _WAITS),        # lifetime wait totals for the session
)

LOCKS_SCHEMA = table(
    "SYS_LOCKS",
    atomic("TXN", "INT"),
    atomic("TXN_NAME", "STRING"),
    atomic("LEVEL", "STRING"),      # table | object | wal
    atomic("RESOURCE", "STRING"),
    atomic("MODE", "STRING"),       # IS | IX | S | X
    atomic("GRANTED", "BOOL"),      # False: waiting
)

WAL_SCHEMA = table(
    "SYS_WAL",
    atomic("PATH", "STRING"),
    atomic("SIZE_BYTES", "INT"),
    atomic("BYTES_SINCE_CHECKPOINT", "INT"),
    atomic("AUTO_CHECKPOINT_BYTES", "INT"),
    atomic("RECORDS_APPENDED", "INT"),
    atomic("BYTES_APPENDED", "INT"),
    atomic("FSYNCS", "INT"),
    atomic("COMMITS", "INT"),
    atomic("ABORTS", "INT"),
    atomic("CHECKPOINTS", "INT"),
    atomic("IN_TXN", "BOOL"),
    atomic("UNLOGGED_DIRTY_PAGES", "INT"),
    # log-shipping fields (see repro.replication / docs/REPLICATION.md)
    atomic("ROLE", "STRING"),               # standalone | primary | replica
    atomic("SHIPPED_SEQ", "INT"),           # newest commit batch shipped/seen
    atomic("APPLIED_SEQ", "INT"),           # oldest replica ack / local apply
    atomic("REPLICA_LAG", "INT"),           # batches shipped but unapplied
    atomic("REPLICAS", "INT"),              # attached replica links
)

REPLICAS_SCHEMA = table(
    "SYS_REPLICAS",
    atomic("ROLE", "STRING"),       # downstream (primary's view) | upstream
    atomic("PEER", "STRING"),       # replica address / primary host:port
    atomic("STATE", "STRING"),      # streaming|dead / tailing|disconnected|promoted
    atomic("CONNECTED_AT", "FLOAT"),
    atomic("SHIPPED_SEQ", "INT"),
    atomic("APPLIED_SEQ", "INT"),
    atomic("LAG", "INT"),
    atomic("BATCHES", "INT"),
    atomic("PAGES", "INT"),
    atomic("BYTES", "INT"),
)

TABLES_SCHEMA = table(
    "SYS_TABLES",
    atomic("NAME", "STRING"),
    atomic("KIND", "STRING"),       # flat | nested
    atomic("ORDERED", "BOOL"),
    atomic("VERSIONED", "BOOL"),
    atomic("VERSIONING", "STRING"),
    atomic("TUPLES", "INT"),        # current top-level cardinality
    atomic("DEPTH", "INT"),         # nesting depth (flat = 1)
    atomic("ATTRIBUTES", "INT"),    # top-level attribute count
    atomic("INDEXES", "INT"),
)

INDEXES_SCHEMA = table(
    "SYS_INDEXES",
    atomic("NAME", "STRING"),
    atomic("TABLE_NAME", "STRING"),
    atomic("KIND", "STRING"),       # flat | nf2 | text
    atomic("MODE", "STRING"),       # data-tid | root-tid | hierarchical | text
    atomic("PATH", "STRING"),       # dotted attribute path
    atomic("ENTRY_COUNT", "INT"),
    atomic("DISTINCT_KEYS", "INT"),
    atomic("MAX_POSTING_LIST", "INT"),
    atomic("AVG_POSTING_LIST", "FLOAT"),
)

_QUERY_COUNTERS = table(
    "COUNTERS", atomic("NAME", "STRING"), atomic("DELTA", "FLOAT")
)

_QUERY_TABLES = table("TABLES", atomic("NAME", "STRING"))

QUERIES_SCHEMA = table(
    "SYS_QUERIES",
    atomic("TEXT", "STRING"),
    atomic("KIND", "STRING"),       # SELECT | INSERT | ... | OTHER
    atomic("FINGERPRINT", "STRING"),
    atomic("STARTED_AT", "FLOAT"),  # epoch seconds
    atomic("LATENCY_MS", "FLOAT"),
    atomic("TUPLES", "INT"),        # result rows / affected count
    nested("TABLES", _QUERY_TABLES),
    nested("COUNTERS", _QUERY_COUNTERS),
    nested("WAITS", _WAITS),        # wait-event time during this statement
    atomic("WAIT_MS", "FLOAT"),     # total blocked time (sum of WAITS)
    atomic("SESSION", "STRING"),
    atomic("THREAD", "STRING"),
    atomic("ERROR", "STRING"),
    atomic("TRACE_ID", "STRING"),   # resolves into SYS.TRACES / SYS.SPANS
)

ASH_SCHEMA = table(
    "SYS_ASH",
    atomic("SEQ", "INT"),           # monotonically increasing sample number
    atomic("SAMPLED_AT", "FLOAT"),  # epoch seconds
    atomic("SESSION", "STRING"),
    atomic("THREAD", "STRING"),
    atomic("STATE", "STRING"),      # running | waiting | idle
    atomic("STATEMENT", "STRING"),
    atomic("FINGERPRINT", "STRING"),
    atomic("WAIT_EVENT", "STRING"), # the wait in progress at sample time
    atomic("WAIT_MS", "FLOAT"),     # how long it had been waiting
    nested("WAITS", _WAITS),        # statement's accumulated waits so far
)

TRACES_SCHEMA = table(
    "SYS_TRACES",
    atomic("TRACE_ID", "STRING"),
    atomic("NAME", "STRING"),       # root span name (usually "statement")
    atomic("KIND", "STRING"),       # root span's kind attribute, if any
    atomic("STATEMENT", "STRING"),  # root span's text attribute, if any
    atomic("SESSION", "STRING"),
    atomic("THREAD", "STRING"),
    atomic("STARTED_AT", "FLOAT"),  # epoch seconds
    atomic("DURATION_MS", "FLOAT"),
    atomic("SPAN_COUNT", "INT"),
    atomic("ERROR", "STRING"),
    atomic("PINNED", "BOOL"),       # client-armed: never evicted
)

_SPAN_ATTRS = table(
    "ATTRS", atomic("NAME", "STRING"), atomic("VALUE", "STRING")
)

SPANS_SCHEMA = table(
    "SYS_SPANS",
    atomic("TRACE_ID", "STRING"),
    atomic("NAME", "STRING"),
    atomic("PATH", "STRING"),       # slash-joined ancestor names
    atomic("DEPTH", "INT"),         # root = 0
    atomic("START_MS", "FLOAT"),    # offset from the trace's root span
    atomic("DURATION_MS", "FLOAT"),
    atomic("WAIT", "BOOL"),         # True for retroactive wait-event spans
    nested("ATTRS", _SPAN_ATTRS),
)

TRANSACTIONS_SCHEMA = table(
    "SYS_TRANSACTIONS",
    atomic("SID", "INT"),           # snapshot id (unique per manager)
    atomic("SESSION", "STRING"),
    atomic("ISOLATION", "STRING"),  # statement | snapshot
    atomic("PINNED", "BOOL"),       # True for snapshot-isolation txns
    atomic("AXIS", "STRING"),       # lsn | time
    atomic("POINT", "FLOAT"),       # commit sequence / canonical timestamp
    atomic("TXN", "INT"),           # write txn whose pending versions it sees
    atomic("COMMITTED_LSN", "FLOAT"),
    atomic("WATERMARK", "FLOAT"),   # oldest active read point (GC horizon)
    atomic("GC_BACKLOG", "INT"),    # dead versions awaiting reclamation
    atomic("LAST_WAL_LSN", "INT"),  # byte LSN of the latest COMMIT record
)

_TS_SAMPLES = list_of(
    "SAMPLES",
    atomic("TS", "FLOAT"),          # epoch seconds at sample time
    atomic("VALUE", "FLOAT"),       # cumulative total / gauge level / count
    atomic("DELTA", "FLOAT"),       # movement since the tier's previous sample
    atomic("RATE", "FLOAT"),        # delta per second
    atomic("AVG", "FLOAT"),         # histogram-only: mean value in the interval
)

METRICS_HISTORY_SCHEMA = table(
    "SYS_METRICS_HISTORY",
    atomic("NAME", "STRING"),
    atomic("KIND", "STRING"),       # counter | gauge | histogram
    nested("LABELS", _LABELS),
    atomic("TIER", "STRING"),       # resolution label, e.g. 1s / 10s / 60s
    atomic("RESOLUTION_S", "FLOAT"),
    atomic("POINTS", "INT"),        # samples currently retained in the ring
    atomic("LAST_TS", "FLOAT"),
    atomic("LAST_VALUE", "FLOAT"),
    atomic("LAST_RATE", "FLOAT"),
    nested("SAMPLES", _TS_SAMPLES),
)

_SLO_WINDOWS = list_of(
    "WINDOWS",
    atomic("WINDOW_S", "FLOAT"),    # sliding-window length
    atomic("VALUE", "FLOAT"),       # measured value over this window
    atomic("BURN_RATE", "FLOAT"),   # value / ceiling, or error-budget burn
    atomic("BREACHED", "BOOL"),
)

SLOS_SCHEMA = table(
    "SYS_SLOS",
    atomic("NAME", "STRING"),
    atomic("KIND", "STRING"),       # latency | error_rate | gauge
    atomic("METRIC", "STRING"),
    nested("LABELS", _LABELS),
    atomic("QUANTILE", "FLOAT"),    # latency SLOs: which quantile
    atomic("CEILING", "FLOAT"),     # latency/gauge SLOs: the limit
    atomic("OBJECTIVE", "FLOAT"),   # error-rate SLOs: success target
    atomic("BUDGET", "FLOAT"),      # 1 - OBJECTIVE
    atomic("FOR_MS", "FLOAT"),      # PENDING → FIRING debounce
    atomic("VALUE", "FLOAT"),       # last measured (primary window)
    atomic("BURN_RATE", "FLOAT"),
    atomic("STATE", "STRING"),      # OK | PENDING | FIRING | RESOLVED
    atomic("SINCE", "FLOAT"),       # when the current state was entered
    atomic("FIRED", "INT"),         # lifetime FIRING transitions
    atomic("DESCRIPTION", "STRING"),
    nested("WINDOWS", _SLO_WINDOWS),
)

ALERTS_SCHEMA = table(
    "SYS_ALERTS",
    atomic("SEQ", "INT"),           # monotonically increasing event number
    atomic("TS", "FLOAT"),          # epoch seconds of the transition
    atomic("SLO", "STRING"),        # resolves into SYS.SLOS
    atomic("FROM_STATE", "STRING"),
    atomic("TO_STATE", "STRING"),
    atomic("VALUE", "FLOAT"),       # measured value at transition time
    atomic("THRESHOLD", "FLOAT"),
    atomic("BURN_RATE", "FLOAT"),
    atomic("MESSAGE", "STRING"),
)

_SCHEMAS: dict[str, TableSchema] = {
    "METRICS": METRICS_SCHEMA,
    "SESSIONS": SESSIONS_SCHEMA,
    "LOCKS": LOCKS_SCHEMA,
    "WAL": WAL_SCHEMA,
    "REPLICAS": REPLICAS_SCHEMA,
    "TABLES": TABLES_SCHEMA,
    "INDEXES": INDEXES_SCHEMA,
    "QUERIES": QUERIES_SCHEMA,
    "ASH": ASH_SCHEMA,
    "TRACES": TRACES_SCHEMA,
    "SPANS": SPANS_SCHEMA,
    "TRANSACTIONS": TRANSACTIONS_SCHEMA,
    "METRICS_HISTORY": METRICS_HISTORY_SCHEMA,
    "SLOS": SLOS_SCHEMA,
    "ALERTS": ALERTS_SCHEMA,
}


def sys_view_schema(name: str) -> TableSchema:
    """The schema of a ``SYS.<view>`` table (KeyError when unknown)."""
    return _SCHEMAS[_view_of(name)]


# --------------------------------------------------------------------------
# Row producers — each computes its tuples from live engine state
# --------------------------------------------------------------------------


def iterate_sys_view(db: "Database", name: str) -> Iterator[TupleValue]:
    """Stream the current rows of a ``SYS.<view>`` table."""
    view = _view_of(name)
    producer = _PRODUCERS[view]
    schema = _SCHEMAS[view]
    for row in producer(db):
        yield TupleValue.from_plain(schema, row)


def _float(value) -> float | None:
    return None if value is None else float(value)


def _metric_rows(db: "Database") -> Iterator[dict]:
    from .metrics import METRICS

    def labels(key) -> list[dict]:
        return [{"NAME": k, "VALUE": str(v)} for k, v in key]

    base = {
        "VALUE": None,
        "COUNT": None,
        "SUM": None,
        "MIN": None,
        "MAX": None,
        "AVG": None,
        "BUCKETS": [],
    }
    for counter in METRICS.counters():
        for key, value in counter.series():
            yield {
                **base,
                "NAME": counter.name,
                "KIND": "counter",
                "LABELS": labels(key),
                "VALUE": _float(value),
            }
    for gauge in METRICS.gauges():
        for key, value in gauge.series():
            yield {
                **base,
                "NAME": gauge.name,
                "KIND": "gauge",
                "LABELS": labels(key),
                "VALUE": _float(value),
            }
    for histogram in METRICS.histograms():
        bounds = list(histogram.buckets) + [float("inf")]
        for key, snap in histogram.series():
            cumulative = 0
            buckets = []
            for bound, count in zip(bounds, snap["bucket_counts"]):
                cumulative += count
                buckets.append(
                    {
                        "BOUND": float(bound),
                        "COUNT": count,
                        "CUMULATIVE": cumulative,
                    }
                )
            count = snap["count"]
            yield {
                **base,
                "NAME": histogram.name,
                "KIND": "histogram",
                "LABELS": labels(key),
                "COUNT": count,
                "SUM": _float(snap["sum"]),
                "MIN": _float(snap["min"]),
                "MAX": _float(snap["max"]),
                "AVG": _float(snap["sum"] / count) if count else None,
                "BUCKETS": buckets,
            }


def _wait_subrows(waits: dict) -> list[dict]:
    """``{event: (count, ms)}`` → WAITS subtable rows, slowest first."""
    return [
        {"EVENT": event, "COUNT": count, "TIME_MS": _float(ms)}
        for event, (count, ms) in sorted(
            waits.items(), key=lambda item: -item[1][1]
        )
    ]


def _session_rows(db: "Database") -> Iterator[dict]:
    for session in db.active_sessions():
        summary = getattr(session, "wait_summary", dict)()
        yield {
            "NAME": session.name,
            "THREAD": getattr(session, "thread_name", None),
            "IN_TXN": session.in_transaction,
            "STATEMENTS": getattr(session, "statements", 0),
            "LOCK_TIMEOUT": _float(session.lock_timeout),
            "LAST_LOCK_REQUESTS": session.last_lock_requests,
            "LAST_LOCK_WAITS": session.last_lock_waits,
            "WAITS": _wait_subrows(summary),
        }


def _lock_rows(db: "Database") -> Iterator[dict]:
    for info in db.locks.snapshot():
        yield {
            "TXN": info.txn,
            "TXN_NAME": info.txn_name,
            "LEVEL": str(info.resource[0]),
            "RESOURCE": ".".join(str(part) for part in info.resource[1:]),
            "MODE": info.mode.value,
            "GRANTED": info.granted,
        }


def _wal_rows(db: "Database") -> Iterator[dict]:
    # a replica has no WAL of its own (shipped images *are* its log) but
    # still reports one row carrying the replication role + lag fields
    if db.wal is None and db.replication is None:
        return
    row: dict = {
        "PATH": None,
        "SIZE_BYTES": None,
        "BYTES_SINCE_CHECKPOINT": None,
        "AUTO_CHECKPOINT_BYTES": None,
        "RECORDS_APPENDED": None,
        "BYTES_APPENDED": None,
        "FSYNCS": None,
        "COMMITS": None,
        "ABORTS": None,
        "CHECKPOINTS": None,
        "IN_TXN": None,
        "UNLOGGED_DIRTY_PAGES": None,
        "ROLE": "standalone",
        "SHIPPED_SEQ": None,
        "APPLIED_SEQ": None,
        "REPLICA_LAG": None,
        "REPLICAS": 0,
    }
    if db.wal is not None:
        stats = db.wal.stats()
        row.update(
            PATH=str(stats["path"]),
            SIZE_BYTES=stats["size_bytes"],
            BYTES_SINCE_CHECKPOINT=stats["bytes_since_checkpoint"],
            AUTO_CHECKPOINT_BYTES=stats["auto_checkpoint_bytes"],
            RECORDS_APPENDED=stats["records_appended"],
            BYTES_APPENDED=stats["bytes_appended"],
            FSYNCS=stats["fsyncs"],
            COMMITS=stats["commits"],
            ABORTS=stats["aborts"],
            CHECKPOINTS=stats["checkpoints"],
            IN_TXN=bool(stats["in_txn"]),
            UNLOGGED_DIRTY_PAGES=stats["unlogged_dirty_pages"],
        )
    if db.replication is not None:
        row.update(db.replication.wal_row_fields())
    yield row


def _replica_rows(db: "Database") -> Iterator[dict]:
    repl = db.replication
    if repl is None:
        return
    for row in repl.replica_rows():
        yield {**row, "CONNECTED_AT": _float(row.get("CONNECTED_AT"))}


def _table_rows(db: "Database") -> Iterator[dict]:
    for entry in sorted(db.catalog.tables(), key=lambda e: e.name):
        yield {
            "NAME": entry.name,
            "KIND": "flat" if entry.is_flat else "nested",
            "ORDERED": entry.schema.ordered,
            "VERSIONED": entry.versioned,
            "VERSIONING": entry.versioning,
            "TUPLES": len(entry.tids),
            "DEPTH": entry.schema.depth(),
            "ATTRIBUTES": len(entry.schema.attributes),
            "INDEXES": len(entry.indexes),
        }


def _index_rows(db: "Database") -> Iterator[dict]:
    from repro.index.manager import FlatIndex
    from repro.index.text import TextIndex

    for entry in sorted(db.catalog.tables(), key=lambda e: e.name):
        for index_name in sorted(entry.indexes):
            index = entry.indexes[index_name]
            definition = index.definition
            if isinstance(index, TextIndex):
                kind = mode = "text"
            elif isinstance(index, FlatIndex):
                kind = "flat"
                mode = definition.mode.value
            else:
                kind = "nf2"
                mode = definition.mode.value
            stats = getattr(index, "stats", None)
            yield {
                "NAME": definition.name,
                "TABLE_NAME": definition.table,
                "KIND": kind,
                "MODE": mode,
                "PATH": ".".join(definition.attribute_path),
                "ENTRY_COUNT": getattr(stats, "entry_count", None),
                "DISTINCT_KEYS": getattr(stats, "distinct_keys", None),
                "MAX_POSTING_LIST": getattr(stats, "max_posting_list", None),
                "AVG_POSTING_LIST": (
                    _float(stats.avg_posting_list) if stats is not None else None
                ),
            }


def _query_rows(db: "Database") -> Iterator[dict]:
    for record in db.query_log.tail():
        yield {
            "TEXT": record.text,
            "KIND": record.kind,
            "FINGERPRINT": record.fingerprint,
            "STARTED_AT": record.started_at,
            "LATENCY_MS": record.latency_ms,
            "TUPLES": record.rows,
            "TABLES": [{"NAME": t} for t in record.tables],
            "COUNTERS": [
                {"NAME": name, "DELTA": _float(delta)}
                for name, delta in sorted(record.counters.items())
            ],
            "WAITS": _wait_subrows(record.waits),
            "WAIT_MS": _float(record.wait_ms),
            "SESSION": record.session,
            "THREAD": record.thread_name,
            "ERROR": record.error,
            "TRACE_ID": record.trace_id,
        }


def _ash_rows(db: "Database") -> Iterator[dict]:
    for sample in db.ash.tail():
        yield {
            "SEQ": sample.seq,
            "SAMPLED_AT": sample.sampled_at,
            "SESSION": sample.session,
            "THREAD": sample.thread_name,
            "STATE": sample.state,
            "STATEMENT": sample.statement,
            "FINGERPRINT": sample.fingerprint,
            "WAIT_EVENT": sample.wait_event,
            "WAIT_MS": _float(sample.wait_ms),
            "WAITS": _wait_subrows(sample.waits),
        }


def _trace_rows(db: "Database") -> Iterator[dict]:
    from .trace import TRACER

    for trace in list(TRACER.traces):
        yield {
            "TRACE_ID": trace.trace_id,
            "NAME": trace.name,
            "KIND": trace.root.attrs.get("kind"),
            "STATEMENT": trace.root.attrs.get("text"),
            "SESSION": trace.session,
            "THREAD": trace.thread_name,
            "STARTED_AT": trace.started_at,
            "DURATION_MS": _float(trace.duration_ms),
            "SPAN_COUNT": sum(1 for _ in trace.root.walk()),
            "ERROR": trace.error,
            "PINNED": trace.pinned,
        }


def _span_rows(db: "Database") -> Iterator[dict]:
    from .trace import TRACER

    for trace in list(TRACER.traces):
        origin = trace.root.start
        for span, depth, path in trace.root.walk():
            yield {
                "TRACE_ID": trace.trace_id,
                "NAME": span.name,
                "PATH": path,
                "DEPTH": depth,
                "START_MS": round((span.start - origin) * 1000.0, 4),
                "DURATION_MS": _float(span.duration_ms),
                "WAIT": bool(span.attrs.get("wait", False)),
                "ATTRS": [
                    {"NAME": str(k), "VALUE": str(v)}
                    for k, v in sorted(span.attrs.items())
                ],
            }


def _transaction_rows(db: "Database") -> Iterator[dict]:
    manager = db.mvcc
    if manager is None:
        return
    committed = manager.committed_lsn
    watermark = manager.watermark()
    backlog = manager.gc_backlog()
    for snap in sorted(manager.active_snapshots(), key=lambda s: s.sid):
        yield {
            "SID": snap.sid,
            "SESSION": snap.session,
            "ISOLATION": snap.isolation,
            "PINNED": snap.pinned,
            "AXIS": snap.axis,
            "POINT": _float(snap.point),
            "TXN": snap.txn,
            "COMMITTED_LSN": _float(committed),
            "WATERMARK": _float(watermark),
            "GC_BACKLOG": backlog,
            "LAST_WAL_LSN": manager.last_wal_lsn,
        }


def _metrics_history_rows(db: "Database") -> Iterator[dict]:
    yield from db.ts.series_rows()


def _slo_rows(db: "Database") -> Iterator[dict]:
    yield from db.slo.slo_rows()


def _alert_rows(db: "Database") -> Iterator[dict]:
    yield from db.slo.alert_rows()


_PRODUCERS = {
    "METRICS": _metric_rows,
    "SESSIONS": _session_rows,
    "LOCKS": _lock_rows,
    "WAL": _wal_rows,
    "REPLICAS": _replica_rows,
    "TABLES": _table_rows,
    "INDEXES": _index_rows,
    "QUERIES": _query_rows,
    "ASH": _ash_rows,
    "TRACES": _trace_rows,
    "SPANS": _span_rows,
    "TRANSACTIONS": _transaction_rows,
    "METRICS_HISTORY": _metrics_history_rows,
    "SLOS": _slo_rows,
    "ALERTS": _alert_rows,
}
