"""Prometheus text exposition rendering for the metrics registry.

One function, :func:`render_prometheus`, turns a
:class:`~repro.obs.metrics.MetricsRegistry` into the plain-text format a
Prometheus scraper (or ``curl``) expects:

* counters become ``repro_<name>_total`` samples,
* gauges become ``repro_<name>`` samples,
* histograms become ``repro_<name>_bucket{le="..."}`` series with
  *cumulative* bucket counts plus ``_sum`` and ``_count``.

Metric names are sanitized (dots → underscores, ``repro_`` prefix) and the
output is fully deterministic — metrics sorted by name, series sorted by
label key — so tests can golden-match it.  No third-party client library
is involved; the format is simple enough to emit by hand.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .metrics import MetricsRegistry

#: every emitted sample name starts with this
PREFIX = "repro_"


def sanitize_name(name: str) -> str:
    """Map a registry metric name onto a Prometheus-legal sample name."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return PREFIX + sanitized


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_str(key, extra: list[tuple[str, str]] | None = None) -> str:
    """``key`` is a LabelKey (sorted (name, value) pairs)."""
    pairs = list(key) + list(extra or [])
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"' for name, value in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value is None:  # pragma: no cover - defensive
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _le_str(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    if float(bound).is_integer():
        return str(int(bound))
    return repr(float(bound))


def render_prometheus(registry: "MetricsRegistry") -> str:
    """Render ``registry`` in the Prometheus text format (version 0.0.4)."""
    lines: list[str] = []

    for counter in registry.counters():
        sample = sanitize_name(counter.name) + "_total"
        lines.append(f"# HELP {sample} {counter.help or counter.name}")
        lines.append(f"# TYPE {sample} counter")
        for key, value in counter.series():
            lines.append(f"{sample}{_labels_str(key)} {_format_value(value)}")

    for gauge in registry.gauges():
        sample = sanitize_name(gauge.name)
        lines.append(f"# HELP {sample} {gauge.help or gauge.name}")
        lines.append(f"# TYPE {sample} gauge")
        for key, value in gauge.series():
            lines.append(f"{sample}{_labels_str(key)} {_format_value(value)}")

    for histogram in registry.histograms():
        sample = sanitize_name(histogram.name)
        lines.append(f"# HELP {sample} {histogram.help or histogram.name}")
        lines.append(f"# TYPE {sample} histogram")
        bounds = list(histogram.buckets) + [float("inf")]
        for key, snap in histogram.series():
            cumulative = 0
            for bound, bucket_count in zip(bounds, snap["bucket_counts"]):
                cumulative += bucket_count
                le = [("le", _le_str(bound))]
                lines.append(
                    f"{sample}_bucket{_labels_str(key, le)} {cumulative}"
                )
            lines.append(
                f"{sample}_sum{_labels_str(key)} {_format_value(snap['sum'])}"
            )
            lines.append(f"{sample}_count{_labels_str(key)} {snap['count']}")

    return "\n".join(lines) + ("\n" if lines else "")
