"""Query-lifecycle tracing: nested timed spans with attributes.

``Database.execute`` opens a trace per statement with spans for
parse / bind / plan / execute; storage and planner components may attach
further child spans or annotate the current one, and the wait registry
(:mod:`repro.obs.waits`) retroactively attaches ``Lock/*`` / ``WAL/*`` /
``IO/*`` spans for blocking waits.  Finished traces are exportable as
plain JSON or as the Chrome ``trace_event`` format (load
``chrome://tracing`` or https://ui.perfetto.dev and drop the file in to
see the statement timeline).

Every trace has an **identity** — a 16-hex-digit ``trace_id``, either
engine-generated or armed by the client (the server's ``TRACE <id>``
verb, W3C-traceparent friendly) — which the query log and slow-query
sink record, and which ``SYS.TRACES`` / ``SYS.SPANS`` resolve back to
the span tree.

Retention is **tail-based** rather than a blind ring: error traces,
traces slower than ``REPRO_TRACE_SLOW_MS``, and client-armed traces are
always kept; the rest are sampled (``REPRO_TRACE_SAMPLE`` keeps every
N-th) and evicted first when the buffer (``REPRO_TRACE_KEEP``) fills.

Like the metrics registry, the tracer is **disabled by default** and every
entry point guards on the plain ``TRACER.enabled`` attribute so the cost of
tracing-when-off is one attribute load and a branch.  A client-armed
trace id *forces* tracing of that one statement even while the tracer is
globally off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Optional


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return os.urandom(8).hex()


def parse_trace_id(text: str) -> str:
    """Normalize a client-supplied trace id.

    Accepts a bare token or a W3C ``traceparent`` header
    (``00-<trace-id>-<span-id>-<flags>``), whose trace-id field is
    extracted.  Raises ``ValueError`` on junk."""
    token = text.strip()
    parts = token.split("-")
    if len(parts) >= 3 and all(parts):
        token = parts[1]  # traceparent: version-traceid-spanid-flags
    if not token or len(token) > 64 or not all(
        c.isalnum() or c in "_." for c in token
    ):
        raise ValueError(f"malformed trace id {text!r}")
    return token.lower()


class Span:
    """One timed region; ``duration_ms`` is valid once the span ended."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str, start: Optional[float] = None):
        self.name = name
        self.start = time.perf_counter() if start is None else start
        self.end: Optional[float] = None
        self.attrs: dict[str, Any] = {}
        self.children: list["Span"] = []

    @property
    def duration_ms(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return (end - self.start) * 1000.0

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for a descendant span by name."""
        for child in self.children:
            if child.name == name:
                return child
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def walk(self, depth: int = 0, path: str = "") -> Iterator[tuple["Span", int, str]]:
        """Yield ``(span, depth, parent_path)`` depth-first — the
        flattening ``SYS.SPANS`` uses."""
        yield self, depth, path
        child_path = f"{path}/{self.name}" if path else self.name
        for child in self.children:
            yield from child.walk(depth + 1, child_path)

    def to_dict(self, origin: Optional[float] = None) -> dict:
        """Serialize; ``start_ms`` is the offset from *origin* (the root
        span's start), so a re-imported trace keeps its timeline."""
        if origin is None:
            origin = self.start
        return {
            "name": self.name,
            "start_ms": round((self.start - origin) * 1000.0, 4),
            "duration_ms": round(self.duration_ms, 4),
            "attrs": dict(self.attrs),
            "children": [child.to_dict(origin) for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict, origin: float = 0.0) -> "Span":
        # pre-identity exports carry no start_ms; their spans all land
        # at the origin (the old, lossy behaviour — now the fallback)
        start = origin + data.get("start_ms", 0.0) / 1000.0
        span = cls(data["name"], start=start)
        span.end = start + data["duration_ms"] / 1000.0
        span.attrs = dict(data.get("attrs", {}))
        span.children = [
            cls.from_dict(c, origin) for c in data.get("children", ())
        ]
        return span


class Trace:
    """A finished statement trace: a root span plus wall-clock anchoring.

    Each trace records *where* it ran — the OS thread (name + ident) and,
    when the engine set one, a session label — so that traces from
    concurrent TCP sessions interleaved in the shared ring stay
    attributable; and *who* it is — ``trace_id``, engine-generated unless
    the client armed one (``pinned`` marks those: never evicted).
    """

    def __init__(
        self,
        root: Span,
        started_at: Optional[float] = None,
        thread_name: Optional[str] = None,
        thread_id: Optional[int] = None,
        session: Optional[str] = None,
        trace_id: Optional[str] = None,
        pinned: bool = False,
    ):
        self.root = root
        #: wall-clock epoch seconds when the trace began (export metadata)
        self.started_at = time.time() if started_at is None else started_at
        current = threading.current_thread()
        self.thread_name = current.name if thread_name is None else thread_name
        self.thread_id = current.ident if thread_id is None else thread_id
        #: engine-assigned session label (``Tracer.set_session``), if any
        self.session = session
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        #: client-armed traces are retained unconditionally
        self.pinned = pinned

    @property
    def name(self) -> str:
        return self.root.name

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    @property
    def error(self) -> Optional[str]:
        """The root span's error annotation (set when the traced
        statement raised), or None."""
        return self.root.attrs.get("error")

    def find(self, name: str) -> Optional[Span]:
        if self.root.name == name:
            return self.root
        return self.root.find(name)

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": "repro.obs.trace/1",
            "trace_id": self.trace_id,
            "started_at": self.started_at,
            "thread_name": self.thread_name,
            "thread_id": self.thread_id,
            "session": self.session,
            "root": self.root.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        if data.get("format") != "repro.obs.trace/1":
            raise ValueError("not a repro.obs trace")
        return cls(
            Span.from_dict(data["root"]),
            started_at=data["started_at"],
            thread_name=data.get("thread_name"),
            thread_id=data.get("thread_id"),
            session=data.get("session"),
            trace_id=data.get("trace_id"),
        )

    def chrome_events(self, offset_us: float = 0.0) -> list[dict]:
        """Chrome ``trace_event`` complete events ("ph": "X"), one per
        span, microsecond timestamps relative to the trace start (plus
        *offset_us*, used by multi-trace exports to lay traces out on a
        common timeline).  The lane (``tid``) is the OS thread the trace
        ran on, so concurrent sessions render side by side."""
        events: list[dict] = []
        origin = self.root.start
        tid = self.thread_id if self.thread_id is not None else 1

        def visit(span: Span) -> None:
            end = span.end if span.end is not None else span.start
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": round((span.start - origin) * 1e6 + offset_us, 3),
                    "dur": round((end - span.start) * 1e6, 3),
                    "pid": 1,
                    "tid": tid,
                    "cat": "repro",
                    "args": {k: _jsonable(v) for k, v in span.attrs.items()},
                }
            )
            for child in span.children:
                visit(child)

        visit(self.root)
        return events

    def chrome_metadata_event(self) -> dict:
        """The ``thread_name`` metadata event that labels this trace's
        lane in Perfetto / chrome://tracing."""
        tid = self.thread_id if self.thread_id is not None else 1
        name = self.thread_name or f"thread-{tid}"
        return {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": name},
        }

    def to_chrome_json(self) -> str:
        return json.dumps(
            {"traceEvents": self.chrome_events(), "displayTimeUnit": "ms"}
        )


def chrome_trace_json(traces: Iterable[Trace]) -> str:
    """Many traces in one Chrome JSON file: thread-name metadata events
    label one lane per OS thread, and each trace is offset on the shared
    timeline by its wall-clock start, so concurrent sessions interleave
    the way they actually ran."""
    traces = list(traces)
    events: list[dict] = []
    seen_tids: set = set()
    for trace in traces:
        meta = trace.chrome_metadata_event()
        if meta["tid"] not in seen_tids:
            seen_tids.add(meta["tid"])
            events.append(meta)
    base = min((t.started_at for t in traces), default=0.0)
    for trace in traces:
        offset_us = (trace.started_at - base) * 1e6
        events.extend(trace.chrome_events(offset_us=offset_us))
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class Tracer:
    """Maintains per-thread active span stacks and a shared buffer of
    finished traces with tail-based retention.

    The span stack is **thread-local**: under PR 4's statement
    parallelism a single shared list interleaved spans from concurrent
    sessions into one stack and corrupted parent/child links (a span
    opened on thread A became the parent of thread B's spans).  Each
    thread now builds its own span tree; only the *finished* trace
    buffer (``traces`` / ``last_trace``) is shared, and every
    :class:`Trace` is tagged with the thread and session it came from.

    Stacks are **generation-stamped**: :meth:`disable` bumps the
    generation instead of clearing only the calling thread's stack, so
    every thread's open stack is lazily reset on its next span — no
    leaked parents orphaning post-disable spans on other threads.
    """

    def __init__(
        self,
        enabled: bool = False,
        keep: int = 32,
        slow_ms: Optional[float] = None,
        sample_every: int = 1,
    ):
        self.enabled = enabled
        self._local = threading.local()
        self._generation = 0
        #: retention knobs — ``keep`` bounds the buffer (unless the test
        #: suite swapped in a maxlen-bounded deque, which then governs),
        #: ``slow_ms`` marks always-keep slow traces, ``sample_every``
        #: keeps every N-th unremarkable trace
        self.keep = keep
        self.slow_ms = slow_ms
        self.sample_every = max(1, sample_every)
        self.traces: deque[Trace] = deque()
        self.last_trace: Optional[Trace] = None
        #: unremarkable traces dropped by sampling (not retained at all)
        self.sampled_out = 0
        self._ring_latch = threading.Lock()
        self._sample_clock = 0

    @property
    def _stack(self) -> list[Span]:
        """This thread's open-span stack (created lazily per thread,
        invalidated wholesale when the tracer's generation moves)."""
        local = self._local
        stack = getattr(local, "stack", None)
        if stack is None or getattr(local, "generation", -1) != self._generation:
            stack = local.stack = []
            local.generation = self._generation
        return stack

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Turn tracing off and invalidate **every** thread's open span
        stack (not just the caller's) via the generation stamp."""
        self.enabled = False
        self._generation += 1

    # -- session attribution ---------------------------------------------------

    def set_session(self, label: Optional[str]) -> Optional[str]:
        """Set (or clear, with ``None``) this thread's session label and
        return the previous one.  Finished traces started on this thread
        carry the label; the Session layer brackets statements with it."""
        previous = getattr(self._local, "session", None)
        self._local.session = label
        return previous

    @property
    def session(self) -> Optional[str]:
        return getattr(self._local, "session", None)

    # -- trace identity --------------------------------------------------------

    def arm_trace_id(self, text: str) -> str:
        """Arm a client-supplied trace id for this thread's **next**
        statement.  The armed statement is traced even while the tracer
        is globally disabled, and its trace is pinned (never evicted).
        Returns the normalized id; raises ``ValueError`` on junk."""
        trace_id = parse_trace_id(text)
        self._local.pending_id = trace_id
        return trace_id

    @property
    def armed(self) -> bool:
        """True when this thread has an armed (unconsumed) trace id."""
        return getattr(self._local, "pending_id", None) is not None

    @property
    def thread_last_trace(self) -> Optional[Trace]:
        """The last trace finished **on this thread** — unlike
        ``last_trace``, immune to races with concurrent sessions."""
        return getattr(self._local, "last_trace", None)

    def get(self, trace_id: str) -> Optional[Trace]:
        """Resolve a retained trace by id (newest first)."""
        last = self.last_trace
        if last is not None and last.trace_id == trace_id:
            return last
        for trace in reversed(list(self.traces)):
            if trace.trace_id == trace_id:
                return trace
        return None

    # -- spans ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Optional[Span]]:
        """Open a span.  A span opened with an empty stack starts a new
        trace; closing it finishes the trace.  Yields ``None`` (cheaply)
        when tracing is disabled — unless an armed trace id forces this
        statement through."""
        local = self._local
        if not self.enabled:
            # an armed id forces exactly one statement trace through a
            # disabled tracer; `forced` keeps its child spans alive
            if not getattr(local, "forced", False) and (
                name != "statement"
                or getattr(local, "pending_id", None) is None
            ):
                yield None
                return
        span = Span(name)
        if attrs:
            span.attrs.update(attrs)
        stack = self._stack
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(span)
        trace_id: Optional[str] = None
        pinned = False
        if parent is None and name == "statement":
            pending = getattr(local, "pending_id", None)
            if pending is not None:
                trace_id = pending
                pinned = True
                local.pending_id = None
                if not self.enabled:
                    local.forced = True
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            span.end = time.perf_counter()
            # re-resolve: a concurrent disable() may have swapped stacks
            stack = self._stack
            if span in stack:
                # tolerate a stack disturbed by generator-interleaved spans
                while stack and stack[-1] is not span:
                    stack.pop()
                stack.pop()
            if parent is None:
                if getattr(local, "forced", False):
                    local.forced = False
                self._retain(
                    Trace(
                        span,
                        session=self.session,
                        trace_id=trace_id,
                        pinned=pinned,
                    )
                )

    @property
    def current_span(self) -> Optional[Span]:
        stack = self._stack
        return stack[-1] if stack else None

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op when
        disabled or outside any span)."""
        if not self.enabled or not self._stack:
            return
        self._stack[-1].attrs.update(attrs)

    # -- retention -----------------------------------------------------------

    def _important(self, trace: Trace) -> bool:
        """Tail-based keep policy: errors, slow traces, and client-armed
        traces survive eviction and sampling."""
        if trace.pinned or trace.error is not None:
            return True
        return self.slow_ms is not None and trace.duration_ms >= self.slow_ms

    def _retain(self, trace: Trace) -> None:
        self._local.last_trace = trace
        self.last_trace = trace
        if self.sample_every > 1 and not self._important(trace):
            with self._ring_latch:
                self._sample_clock += 1
                keep_this = self._sample_clock % self.sample_every == 0
            if not keep_this:
                self.sampled_out += 1
                return
        self.traces.append(trace)
        # an externally-assigned bounded deque governs its own capacity;
        # otherwise evict unremarkable traces first, oldest first
        if self.traces.maxlen is None and len(self.traces) > self.keep:
            with self._ring_latch:
                while len(self.traces) > self.keep:
                    victim = None
                    for candidate in self.traces:
                        if not self._important(candidate):
                            victim = candidate
                            break
                    try:
                        if victim is not None:
                            self.traces.remove(victim)
                        else:
                            self.traces.popleft()
                    except (ValueError, IndexError):
                        break  # lost a race with a concurrent clear()

    # -- export --------------------------------------------------------------

    def export_json(self, path: str, trace: Optional[Trace] = None) -> None:
        trace = trace or self.last_trace
        if trace is None:
            raise ValueError("no finished trace to export")
        with open(path, "w") as handle:
            json.dump(trace.to_dict(), handle, indent=2)

    def export_chrome(self, path: str, trace: Optional[Trace] = None) -> None:
        trace = trace or self.last_trace
        if trace is None:
            raise ValueError("no finished trace to export")
        with open(path, "w") as handle:
            handle.write(trace.to_chrome_json())

    def export_chrome_many(
        self, path: str, traces: Optional[Iterable[Trace]] = None
    ) -> int:
        """Write every retained trace (or *traces*) into one Chrome JSON
        file, one lane per thread; returns the trace count."""
        selected = list(self.traces) if traces is None else list(traces)
        if not selected:
            raise ValueError("no finished traces to export")
        with open(path, "w") as handle:
            handle.write(chrome_trace_json(selected))
        return len(selected)


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "").strip() or default)
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, "").strip() or default)
    except ValueError:
        return default


#: the process-wide tracer used by Database.execute and friends
TRACER = Tracer(
    keep=_env_int("REPRO_TRACE_KEEP", 128),
    slow_ms=_env_float("REPRO_TRACE_SLOW_MS", 250.0),
    sample_every=_env_int("REPRO_TRACE_SAMPLE", 1),
)
