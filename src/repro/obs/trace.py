"""Query-lifecycle tracing: nested timed spans with attributes.

``Database.execute`` opens a trace per statement with spans for
parse / bind / plan / execute; storage and planner components may attach
further child spans or annotate the current one.  Finished traces are kept
in a small ring buffer and are exportable as plain JSON or as the Chrome
``trace_event`` format (load ``chrome://tracing`` or https://ui.perfetto.dev
and drop the file in to see the statement timeline).

Like the metrics registry, the tracer is **disabled by default** and every
entry point guards on the plain ``TRACER.enabled`` attribute so the cost of
tracing-when-off is one attribute load and a branch.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator, Optional


class Span:
    """One timed region; ``duration_ms`` is valid once the span ended."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str, start: Optional[float] = None):
        self.name = name
        self.start = time.perf_counter() if start is None else start
        self.end: Optional[float] = None
        self.attrs: dict[str, Any] = {}
        self.children: list["Span"] = []

    @property
    def duration_ms(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return (end - self.start) * 1000.0

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for a descendant span by name."""
        for child in self.children:
            if child.name == name:
                return child
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 4),
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(data["name"], start=0.0)
        span.end = data["duration_ms"] / 1000.0
        span.attrs = dict(data.get("attrs", {}))
        span.children = [cls.from_dict(c) for c in data.get("children", ())]
        return span


class Trace:
    """A finished statement trace: a root span plus wall-clock anchoring.

    Each trace records *where* it ran — the OS thread (name + ident) and,
    when the engine set one, a session label — so that traces from
    concurrent TCP sessions interleaved in the shared ring stay
    attributable.
    """

    def __init__(
        self,
        root: Span,
        started_at: Optional[float] = None,
        thread_name: Optional[str] = None,
        thread_id: Optional[int] = None,
        session: Optional[str] = None,
    ):
        self.root = root
        #: wall-clock epoch seconds when the trace began (export metadata)
        self.started_at = time.time() if started_at is None else started_at
        current = threading.current_thread()
        self.thread_name = current.name if thread_name is None else thread_name
        self.thread_id = current.ident if thread_id is None else thread_id
        #: engine-assigned session label (``Tracer.set_session``), if any
        self.session = session

    @property
    def name(self) -> str:
        return self.root.name

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    def find(self, name: str) -> Optional[Span]:
        if self.root.name == name:
            return self.root
        return self.root.find(name)

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": "repro.obs.trace/1",
            "started_at": self.started_at,
            "thread_name": self.thread_name,
            "thread_id": self.thread_id,
            "session": self.session,
            "root": self.root.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        if data.get("format") != "repro.obs.trace/1":
            raise ValueError("not a repro.obs trace")
        return cls(
            Span.from_dict(data["root"]),
            started_at=data["started_at"],
            thread_name=data.get("thread_name"),
            thread_id=data.get("thread_id"),
            session=data.get("session"),
        )

    def chrome_events(self) -> list[dict]:
        """Chrome ``trace_event`` complete events ("ph": "X"), one per
        span, microsecond timestamps relative to the trace start."""
        events: list[dict] = []
        origin = self.root.start

        def visit(span: Span) -> None:
            end = span.end if span.end is not None else span.start
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": round((span.start - origin) * 1e6, 3),
                    "dur": round((end - span.start) * 1e6, 3),
                    "pid": 1,
                    "tid": 1,
                    "cat": "repro",
                    "args": {k: _jsonable(v) for k, v in span.attrs.items()},
                }
            )
            for child in span.children:
                visit(child)

        visit(self.root)
        return events

    def to_chrome_json(self) -> str:
        return json.dumps(
            {"traceEvents": self.chrome_events(), "displayTimeUnit": "ms"}
        )


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class Tracer:
    """Maintains per-thread active span stacks and a shared ring of
    finished traces.

    The span stack is **thread-local**: under PR 4's statement
    parallelism a single shared list interleaved spans from concurrent
    sessions into one stack and corrupted parent/child links (a span
    opened on thread A became the parent of thread B's spans).  Each
    thread now builds its own span tree; only the *finished* trace ring
    (``traces`` / ``last_trace``) is shared, and every :class:`Trace` is
    tagged with the thread and session it came from.
    """

    def __init__(self, enabled: bool = False, keep: int = 32):
        self.enabled = enabled
        self._local = threading.local()
        self.traces: deque[Trace] = deque(maxlen=keep)
        self.last_trace: Optional[Trace] = None

    @property
    def _stack(self) -> list[Span]:
        """This thread's open-span stack (created lazily per thread)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        self._stack.clear()

    # -- session attribution ---------------------------------------------------

    def set_session(self, label: Optional[str]) -> Optional[str]:
        """Set (or clear, with ``None``) this thread's session label and
        return the previous one.  Finished traces started on this thread
        carry the label; the Session layer brackets statements with it."""
        previous = getattr(self._local, "session", None)
        self._local.session = label
        return previous

    @property
    def session(self) -> Optional[str]:
        return getattr(self._local, "session", None)

    # -- spans ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Optional[Span]]:
        """Open a span.  A span opened with an empty stack starts a new
        trace; closing it finishes the trace.  Yields ``None`` (cheaply)
        when tracing is disabled."""
        if not self.enabled:
            yield None
            return
        span = Span(name)
        if attrs:
            span.attrs.update(attrs)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = time.perf_counter()
            # tolerate a stack disturbed by generator-interleaved spans
            if span in self._stack:
                while self._stack and self._stack[-1] is not span:
                    self._stack.pop()
                self._stack.pop()
            if parent is None:
                trace = Trace(span, session=self.session)
                self.traces.append(trace)
                self.last_trace = trace

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op when
        disabled or outside any span)."""
        if not self.enabled or not self._stack:
            return
        self._stack[-1].attrs.update(attrs)

    # -- export --------------------------------------------------------------

    def export_json(self, path: str, trace: Optional[Trace] = None) -> None:
        trace = trace or self.last_trace
        if trace is None:
            raise ValueError("no finished trace to export")
        with open(path, "w") as handle:
            json.dump(trace.to_dict(), handle, indent=2)

    def export_chrome(self, path: str, trace: Optional[Trace] = None) -> None:
        trace = trace or self.last_trace
        if trace is None:
            raise ValueError("no finished trace to export")
        with open(path, "w") as handle:
            handle.write(trace.to_chrome_json())


#: the process-wide tracer used by Database.execute and friends
TRACER = Tracer()
