"""Service-level objectives over the metric history, with burn-rate
alerting.

An :class:`SloObjective` is a declarative, machine-checkable health
contract against one metric series:

* ``latency`` — a quantile ceiling over a latency histogram (e.g. "p99
  of ``query.latency_ms{kind=SELECT}`` stays under 50 ms"), computed
  over sliding windows by diffing bucket counts between two time-series
  samples (:meth:`~repro.obs.timeseries.TimeSeriesRecorder.windowed_quantile`);
* ``error_rate`` — an error budget in the Google-SRE mold: with
  objective 99.9 %, the budget is 0.1 % of statements, and the **burn
  rate** is ``observed_error_rate / budget`` — burn 1.0 exhausts the
  budget exactly at the window's end, burn 14.4 in a 5-minute window is
  a page;
* ``gauge`` — an absolute ceiling on a gauge (replication lag batches,
  server queue depth), aggregated ``max`` over the window.

**Multi-window evaluation**: every objective carries one or more
windows (default a long and a short one).  The breach condition must
hold in *all* windows simultaneously — the long window supplies
significance (a real trend, not one slow statement), the short window
supplies recency (the problem is still happening), exactly the
multi-window multi-burn-rate recipe of the Google SRE workbook.

**Alert state machine** (per objective)::

    OK ──breach──▶ PENDING ──breach for ≥ for_ms──▶ FIRING
     ▲                │                                │
     └──recovered─────┘                     recovered  ▼
     └──────────────(next evaluation)────────── RESOLVED

Transitions are recorded as :class:`AlertEvent` rows in a bounded ring —
``SYS.ALERTS`` — and the current contract state is one ``SYS.SLOS`` row
per objective with a nested per-window ``WINDOWS`` subtable.  Every
evaluation also publishes ``slo.*`` / ``alert.*`` metrics, so alert
state reaches the Prometheus scrape and, recursively, the time-series
history itself.

Evaluation is driven by the time-series recorder's clock
(:meth:`~repro.obs.timeseries.TimeSeriesRecorder.sample_once` calls
:meth:`SloEngine.evaluate` when objectives exist), or manually/
deterministically by tests and the ``HEALTH`` probe.

Environment knobs (read by :meth:`SloEngine.install_default_objectives`):

* ``REPRO_SLO_P99_MS`` — p99 statement-latency ceiling (ms)
* ``REPRO_SLO_ERROR_RATE`` — statement error-budget objective
  (default 0.999 = at most 0.1 % failing)
* ``REPRO_SLO_REPLICA_LAG`` — replication lag ceiling (batches)
* ``REPRO_SLO_QUEUE_DEPTH`` — server admission-queue depth ceiling
* ``REPRO_SLO_WINDOW_S`` / ``REPRO_SLO_SHORT_WINDOW_S`` /
  ``REPRO_SLO_FOR_MS`` — default windows and FIRING debounce
* ``REPRO_ALERTS_KEEP`` — alert-event ring capacity (default 1024)
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Iterator, Optional

from repro.obs.metrics import METRICS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.database import Database

#: the alert states, in escalation order
OK = "OK"
PENDING = "PENDING"
FIRING = "FIRING"
RESOLVED = "RESOLVED"

_KINDS = ("latency", "error_rate", "gauge")


def _env(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, "").strip() or default)
    except ValueError:
        return default


class SloObjective:
    """One declarative objective.  See the module docstring for kinds."""

    def __init__(
        self,
        name: str,
        kind: str,
        metric: str,
        labels: Optional[dict] = None,
        quantile: Optional[float] = None,
        ceiling: Optional[float] = None,
        objective: Optional[float] = None,
        total_metric: Optional[str] = None,
        burn_factor: float = 1.0,
        windows: Optional[tuple] = None,
        for_ms: float = 0.0,
        description: str = "",
    ):
        if kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {kind!r}; one of {_KINDS}")
        if kind == "latency" and (quantile is None or ceiling is None):
            raise ValueError("latency SLOs need quantile= and ceiling=")
        if kind == "error_rate" and (objective is None or total_metric is None):
            raise ValueError("error_rate SLOs need objective= and total_metric=")
        if kind == "gauge" and ceiling is None:
            raise ValueError("gauge SLOs need ceiling=")
        self.name = name
        self.kind = kind
        self.metric = metric
        self.labels = dict(labels or {})
        self.quantile = quantile
        self.ceiling = ceiling
        self.objective = objective          # e.g. 0.999 success target
        self.total_metric = total_metric    # denominator counter
        self.burn_factor = burn_factor      # burn rate that counts as breach
        self.windows = tuple(
            windows
            if windows is not None
            else (_env("REPRO_SLO_WINDOW_S", 300.0),
                  _env("REPRO_SLO_SHORT_WINDOW_S", 60.0))
        )
        self.for_ms = for_ms
        self.description = description

    @property
    def budget(self) -> Optional[float]:
        """The error budget (1 - objective) for error-rate SLOs."""
        return None if self.objective is None else 1.0 - self.objective

    @property
    def threshold(self) -> Optional[float]:
        """What the measured value is compared against: the ceiling for
        latency/gauge SLOs, the budget × burn_factor for error rates."""
        if self.kind == "error_rate":
            return (self.budget or 0.0) * self.burn_factor
        return self.ceiling


class WindowMeasure:
    """One window's measurement during one evaluation."""

    __slots__ = ("window_s", "value", "burn_rate", "breached")

    def __init__(self, window_s, value, burn_rate, breached):
        self.window_s = window_s
        self.value = value
        self.burn_rate = burn_rate
        self.breached = breached


class AlertEvent:
    """One state-machine transition (a ``SYS.ALERTS`` row)."""

    __slots__ = ("seq", "ts", "slo", "from_state", "to_state", "value",
                 "threshold", "burn_rate", "message")

    def __init__(self, seq, ts, slo, from_state, to_state, value, threshold,
                 burn_rate, message):
        self.seq = seq
        self.ts = ts
        self.slo = slo
        self.from_state = from_state
        self.to_state = to_state
        self.value = value
        self.threshold = threshold
        self.burn_rate = burn_rate
        self.message = message


class _AlertState:
    """Mutable per-objective alert bookkeeping."""

    __slots__ = ("state", "since", "pending_since", "last_value",
                 "last_burn", "last_windows", "fired_count")

    def __init__(self):
        self.state = OK
        self.since: Optional[float] = None
        self.pending_since: Optional[float] = None
        self.last_value: Optional[float] = None
        self.last_burn: Optional[float] = None
        self.last_windows: list[WindowMeasure] = []
        self.fired_count = 0


class SloEngine:
    """All objectives + alert state of one database."""

    def __init__(self, db: "Database"):
        self._db = db
        self.objectives: dict[str, SloObjective] = {}
        self._alerts: dict[str, _AlertState] = {}
        self.events: deque[AlertEvent] = deque(
            maxlen=int(_env("REPRO_ALERTS_KEEP", 1024))
        )
        self._seq = 0
        self._latch = threading.Lock()

    # -- definition --------------------------------------------------------

    def define(self, slo: Optional[SloObjective] = None, **kwargs) -> SloObjective:
        """Register (or replace) one objective; keyword form builds the
        :class:`SloObjective` in place."""
        if slo is None:
            slo = SloObjective(**kwargs)
        with self._latch:
            self.objectives[slo.name] = slo
            self._alerts.setdefault(slo.name, _AlertState())
        return slo

    def remove(self, name: str) -> None:
        with self._latch:
            self.objectives.pop(name, None)
            self._alerts.pop(name, None)

    def install_default_objectives(self) -> list[SloObjective]:
        """The standard contract, parameterized by environment: statement
        p99 latency, statement error budget, replication lag, and server
        queue depth.  Used by ``--monitor`` serving and the SLO gate."""
        for_ms = _env("REPRO_SLO_FOR_MS", 0.0)
        installed = [
            self.define(
                name="statement-p99",
                kind="latency",
                metric="query.latency_ms",
                quantile=0.99,
                ceiling=_env("REPRO_SLO_P99_MS", 100.0),
                for_ms=for_ms,
                description="p99 statement latency (all kinds)",
            ),
            self.define(
                name="statement-errors",
                kind="error_rate",
                metric="query.errors",
                total_metric="query.statements",
                objective=_env("REPRO_SLO_ERROR_RATE", 0.999),
                for_ms=for_ms,
                description="statement error budget",
            ),
            self.define(
                name="replica-lag",
                kind="gauge",
                metric="replication.lag",
                ceiling=_env("REPRO_SLO_REPLICA_LAG", 8.0),
                for_ms=for_ms,
                description="replication lag (shipped-but-unapplied batches)",
            ),
            self.define(
                name="server-queue",
                kind="gauge",
                metric="server.queue_depth",
                ceiling=_env("REPRO_SLO_QUEUE_DEPTH", 64.0),
                for_ms=for_ms,
                description="admission-control backlog",
            ),
        ]
        return installed

    # -- measurement -------------------------------------------------------

    def _measure_window(
        self, slo: SloObjective, window_s: float, now: float
    ) -> WindowMeasure:
        ts = self._db.ts
        value: Optional[float] = None
        burn: Optional[float] = None
        if slo.kind == "latency":
            value = ts.windowed_quantile(
                slo.metric, slo.labels, window_s, slo.quantile, now=now
            )
            if value is not None and slo.ceiling:
                burn = value / slo.ceiling
            breached = value is not None and value > slo.ceiling
        elif slo.kind == "error_rate":
            errors = ts.windowed_delta(
                slo.metric, slo.labels, window_s, now=now
            )
            total = ts.windowed_delta(
                slo.total_metric, slo.labels, window_s, now=now
            )
            if total:
                value = (errors or 0.0) / total
                budget = slo.budget or 0.0
                burn = value / budget if budget > 0 else float(value > 0)
            breached = burn is not None and burn >= slo.burn_factor
        else:  # gauge
            value = ts.windowed_gauge(
                slo.metric, slo.labels, window_s, agg="max", now=now
            )
            if value is None:
                # no history yet: fall back to the live gauge so HEALTH
                # works before (or without) the recorder
                gauge = METRICS._gauges.get(slo.metric)
                if gauge is not None:
                    raw = gauge.value(**slo.labels)
                    value = float(raw) if raw else None
            if value is not None and slo.ceiling:
                burn = value / slo.ceiling
            breached = value is not None and value > slo.ceiling
        return WindowMeasure(window_s, value, burn, breached)

    # -- evaluation --------------------------------------------------------

    def evaluate(self, now: Optional[float] = None) -> list[AlertEvent]:
        """Measure every objective over its windows and step the alert
        state machines; returns the transitions this evaluation caused."""
        now = time.time() if now is None else now
        new_events: list[AlertEvent] = []
        with self._latch:
            objectives = list(self.objectives.values())
        firing = 0
        for slo in objectives:
            measures = [
                self._measure_window(slo, w, now) for w in slo.windows
            ]
            measured = [m for m in measures if m.value is not None]
            # all windows must breach — and at least one must have data
            breached = bool(measured) and all(m.breached for m in measures
                                              if m.value is not None)
            primary = measured[0] if measured else measures[0]
            state = self._alerts.setdefault(slo.name, _AlertState())
            state.last_value = primary.value
            state.last_burn = primary.burn_rate
            state.last_windows = measures
            new_events.extend(
                self._step(slo, state, breached, primary, now)
            )
            if state.state == FIRING:
                firing += 1
            if METRICS.enabled:
                if primary.value is not None:
                    METRICS.set_gauge("slo.value", primary.value, slo=slo.name)
                for m in measures:
                    if m.burn_rate is not None:
                        METRICS.set_gauge(
                            "slo.burn_rate",
                            m.burn_rate,
                            slo=slo.name,
                            window=f"{m.window_s:g}s",
                        )
                METRICS.set_gauge(
                    "slo.breached", 1.0 if breached else 0.0, slo=slo.name
                )
        if METRICS.enabled:
            METRICS.set_gauge("alert.firing", float(firing))
            if new_events:
                for event in new_events:
                    METRICS.inc(
                        "alert.transitions", slo=event.slo, to=event.to_state
                    )
        with self._latch:
            self.events.extend(new_events)
        return new_events

    def _step(
        self,
        slo: SloObjective,
        state: _AlertState,
        breached: bool,
        primary: WindowMeasure,
        now: float,
    ) -> list[AlertEvent]:
        """One state-machine step; may emit several chained transitions
        (OK → PENDING → FIRING in the same tick when ``for_ms`` is 0)."""
        events: list[AlertEvent] = []

        def shift(to_state: str, message: str) -> None:
            self._seq += 1
            events.append(
                AlertEvent(
                    seq=self._seq,
                    ts=now,
                    slo=slo.name,
                    from_state=state.state,
                    to_state=to_state,
                    value=primary.value,
                    threshold=slo.threshold,
                    burn_rate=primary.burn_rate,
                    message=message,
                )
            )
            state.state = to_state
            state.since = now

        if state.state in (OK, RESOLVED):
            if breached:
                state.pending_since = now
                shift(PENDING, self._describe(slo, primary, "breached"))
            elif state.state == RESOLVED:
                # RESOLVED is transient: one clean evaluation returns to OK
                state.state = OK
                state.since = now
        elif state.state == PENDING:
            if not breached:
                state.pending_since = None
                shift(OK, self._describe(slo, primary, "recovered"))
            elif (now - (state.pending_since or now)) * 1000.0 >= slo.for_ms:
                state.fired_count += 1
                shift(FIRING, self._describe(slo, primary, "still breached"))
        elif state.state == FIRING:
            if not breached:
                state.pending_since = None
                shift(RESOLVED, self._describe(slo, primary, "recovered"))
        # a PENDING alert with for_ms=0 escalates within the same tick
        if (
            state.state == PENDING
            and breached
            and slo.for_ms <= 0
            and not any(e.to_state == FIRING for e in events)
        ):
            state.fired_count += 1
            shift(FIRING, self._describe(slo, primary, "still breached"))
        return events

    @staticmethod
    def _describe(slo: SloObjective, m: WindowMeasure, what: str) -> str:
        value = "n/a" if m.value is None else f"{m.value:g}"
        if slo.kind == "latency":
            return (
                f"p{slo.quantile * 100:g} {slo.metric} = {value} ms over "
                f"{m.window_s:g}s (ceiling {slo.ceiling:g} ms): {what}"
            )
        if slo.kind == "error_rate":
            burn = "n/a" if m.burn_rate is None else f"{m.burn_rate:g}"
            return (
                f"error rate {value} over {m.window_s:g}s burns "
                f"{burn}x the {1.0 - (slo.objective or 0):g} budget: {what}"
            )
        return (
            f"{slo.metric} = {value} over {m.window_s:g}s "
            f"(ceiling {slo.ceiling:g}): {what}"
        )

    # -- reading -----------------------------------------------------------

    def alert_state(self, name: str) -> str:
        state = self._alerts.get(name)
        return state.state if state is not None else OK

    def firing(self) -> list[str]:
        return sorted(
            name for name, s in self._alerts.items() if s.state == FIRING
        )

    def pending(self) -> list[str]:
        return sorted(
            name for name, s in self._alerts.items() if s.state == PENDING
        )

    def slo_rows(self) -> Iterator[dict]:
        """``SYS.SLOS`` producer rows."""
        with self._latch:
            objectives = sorted(self.objectives.items())
        for name, slo in objectives:
            state = self._alerts.get(name) or _AlertState()
            yield {
                "NAME": name,
                "KIND": slo.kind,
                "METRIC": slo.metric,
                "LABELS": [
                    {"NAME": k, "VALUE": str(v)}
                    for k, v in sorted(slo.labels.items())
                ],
                "QUANTILE": slo.quantile,
                "CEILING": slo.ceiling,
                "OBJECTIVE": slo.objective,
                "BUDGET": slo.budget,
                "FOR_MS": slo.for_ms,
                "VALUE": state.last_value,
                "BURN_RATE": state.last_burn,
                "STATE": state.state,
                "SINCE": state.since,
                "FIRED": state.fired_count,
                "DESCRIPTION": slo.description or None,
                "WINDOWS": [
                    {
                        "WINDOW_S": m.window_s,
                        "VALUE": m.value,
                        "BURN_RATE": m.burn_rate,
                        "BREACHED": m.breached,
                    }
                    for m in state.last_windows
                ],
            }

    def alert_rows(self) -> Iterator[dict]:
        """``SYS.ALERTS`` producer rows (transition history, oldest
        first)."""
        for event in list(self.events):
            yield {
                "SEQ": event.seq,
                "TS": event.ts,
                "SLO": event.slo,
                "FROM_STATE": event.from_state,
                "TO_STATE": event.to_state,
                "VALUE": event.value,
                "THRESHOLD": event.threshold,
                "BURN_RATE": event.burn_rate,
                "MESSAGE": event.message,
            }

    # -- health (the probe surface) ----------------------------------------

    def health(self) -> dict:
        """Machine-readable health: ``ok`` (nothing wrong), ``pending``
        (a breach is being debounced), or ``alerting`` (≥1 FIRING)."""
        firing = self.firing()
        pending = self.pending()
        status = "alerting" if firing else ("pending" if pending else "ok")
        out = {
            "status": status,
            "firing": firing,
            "pending": pending,
            "objectives": len(self.objectives),
            "recorder": self._db.ts.running,
        }
        repl = self._db.replication
        if repl is not None:
            fields = repl.wal_row_fields()
            out["role"] = fields.get("ROLE")
            out["replica_lag"] = fields.get("REPLICA_LAG")
        return out


def render_health(db: "Database") -> str:
    """The text form of :meth:`SloEngine.health` — shared by the shell's
    ``.health`` and the server's ``HEALTH`` verb.  The first line is the
    machine-checkable probe answer: ``health: ok`` means ready."""
    info = db.slo.health()
    lines = [f"health: {info['status']}"]
    lines.append(
        f"objectives: {info['objectives']}  "
        f"recorder: {'running' if info['recorder'] else 'stopped'}"
    )
    if "role" in info:
        lag = info.get("replica_lag")
        lines.append(
            f"role: {info['role']}"
            + (f"  lag: {lag}" if lag is not None else "")
        )
    for name in info["firing"]:
        state = db.slo._alerts.get(name)
        value = (
            "n/a"
            if state is None or state.last_value is None
            else f"{state.last_value:g}"
        )
        lines.append(f"alert: {name} FIRING (value {value})")
    for name in info["pending"]:
        lines.append(f"alert: {name} PENDING")
    return "\n".join(lines) + "\n"
