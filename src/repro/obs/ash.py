"""Active-session history: a background sampler in the Oracle ASH mold.

Every ``period_ms`` the sampler walks the database's registered sessions
and snapshots, per session: the statement it is inside (text +
fingerprint), its state (``running`` / ``waiting`` / ``idle``), the wait
event it is blocked on right now (from :data:`~repro.obs.waits.WAITS`),
and the per-statement wait breakdown accumulated so far.  Samples land
in a bounded ring exposed as the ``SYS.ASH`` virtual table — so "what
was everyone doing while that statement was slow?" is one NF² query,
with the wait breakdown as a nested subtable per sample row.

Sampling is *passive*: it reads cross-thread state under the wait
registry's latch and never takes engine locks, so a wedged session
cannot wedge the sampler.  The sampler thread is started on demand
(:meth:`ActiveSessionHistory.start`) — constructing a database does not
spawn threads — and :meth:`sample_once` lets tests and the shell take a
single deterministic snapshot without the thread.

Environment knobs (read at construction):

* ``REPRO_ASH_PERIOD_MS`` — sampling period (default 10 ms)
* ``REPRO_ASH_KEEP`` — ring capacity in sample rows (default 4096)
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.obs.querylog import fingerprint
from repro.obs.waits import WAITS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.database import Database


def _env(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, "").strip() or default)
    except ValueError:
        return default


class AshSample:
    """One session at one sampling tick."""

    __slots__ = (
        "seq",
        "sampled_at",
        "session",
        "thread_name",
        "state",
        "statement",
        "fingerprint",
        "wait_event",
        "wait_ms",
        "waits",
    )

    def __init__(
        self,
        seq: int,
        sampled_at: float,
        session: str,
        thread_name: Optional[str],
        state: str,
        statement: Optional[str],
        wait_event: Optional[str],
        wait_ms: Optional[float],
        waits: dict[str, tuple[int, float]],
    ):
        self.seq = seq
        self.sampled_at = sampled_at
        self.session = session
        self.thread_name = thread_name
        self.state = state
        self.statement = statement
        self.fingerprint = fingerprint(statement) if statement else None
        self.wait_event = wait_event
        self.wait_ms = wait_ms
        self.waits = waits

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "sampled_at": self.sampled_at,
            "session": self.session,
            "thread": self.thread_name,
            "state": self.state,
            "statement": self.statement,
            "fingerprint": self.fingerprint,
            "wait_event": self.wait_event,
            "wait_ms": self.wait_ms,
            "waits": {
                event: {"count": count, "time_ms": ms}
                for event, (count, ms) in self.waits.items()
            },
        }


class ActiveSessionHistory:
    """The sampler plus its bounded sample ring (one per database)."""

    def __init__(
        self,
        db: "Database",
        period_ms: Optional[float] = None,
        keep: Optional[int] = None,
    ):
        self._db = db
        self.period_ms = (
            _env("REPRO_ASH_PERIOD_MS", 10.0) if period_ms is None else period_ms
        )
        capacity = int(_env("REPRO_ASH_KEEP", 4096)) if keep is None else keep
        self.samples: deque[AshSample] = deque(maxlen=capacity)
        self.ticks = 0  #: sampling rounds taken (thread or manual)
        self._seq = 0
        self._latch = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> None:
        """Start the background sampler (idempotent)."""
        with self._latch:
            if self.running:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-ash", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Stop the sampler; the ring keeps its samples."""
        with self._latch:
            thread = self._thread
            self._thread = None
        if thread is not None and thread.is_alive():
            self._stop.set()
            thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(self.period_ms / 1000.0):
            try:
                self.sample_once()
            except Exception:  # observability must never crash the engine
                pass

    # -- sampling ----------------------------------------------------------

    def sample_once(self) -> int:
        """Take one snapshot of every registered session; returns the
        number of sample rows added."""
        now = time.time()
        added = 0
        for session in self._db.active_sessions():
            statement = getattr(session, "current_statement", None)
            ident = getattr(session, "thread_ident", None)
            wait = WAITS.current_wait(ident) if statement is not None else None
            if statement is None:
                state = "idle"
            elif wait is not None:
                state = "waiting"
            else:
                state = "running"
            waits = (
                WAITS.statement_waits_for(ident)
                if statement is not None
                else {}
            )
            with self._latch:
                self._seq += 1
                seq = self._seq
            self.samples.append(
                AshSample(
                    seq=seq,
                    sampled_at=now,
                    session=session.name,
                    thread_name=getattr(session, "thread_name", None),
                    state=state,
                    statement=statement,
                    wait_event=wait[0] if wait is not None else None,
                    wait_ms=round(wait[1], 4) if wait is not None else None,
                    waits=waits,
                )
            )
            added += 1
        self.ticks += 1
        return added

    def tail(self, n: Optional[int] = None) -> list[AshSample]:
        """Most recent samples, oldest first (all when ``n`` is None)."""
        samples = list(self.samples)
        if n is not None and n >= 0:
            samples = samples[-n:]
        return samples

    def clear(self) -> None:
        self.samples.clear()
