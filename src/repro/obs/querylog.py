"""Statement history: a bounded ring of finished queries plus a
structured slow-query log.

``Database.execute`` records every finished statement here — text, plan
fingerprint, row count, latency, per-statement counter deltas, and the
session/thread it ran on.  The ring backs the ``SYS.QUERIES`` virtual
table and the shell's ``.queries`` command; statements slower than the
configured threshold are additionally appended to a JSON-lines sink so
an operator can tail the file while the engine runs.

Configuration (environment, read at :class:`QueryLog` construction):

* ``REPRO_SLOW_QUERY_MS`` — latency threshold in milliseconds; unset or
  empty disables the sink (the ring always records).
* ``REPRO_SLOW_QUERY_LOG`` — path of the JSON-lines file (default
  ``slow_queries.jsonl`` next to the working directory) used when the
  threshold is set.

Both can also be changed at runtime via :meth:`QueryLog.configure` (the
shell and tests do this).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from collections import deque
from typing import Any, Optional

#: default capacity of the finished-statement ring (SYS.QUERIES rows)
DEFAULT_KEEP = 128

_STRING_LITERAL = re.compile(r"'(?:[^']|'')*'")
_NUMBER_LITERAL = re.compile(r"\b\d+(?:\.\d+)?\b")
_WHITESPACE = re.compile(r"\s+")


def fingerprint(text: str) -> str:
    """A stable 12-hex-digit id for a statement *shape*: literals are
    normalized to ``?`` and whitespace collapsed before hashing, so
    ``SELECT ... WHERE E.ENO = 1`` and ``... = 2`` share a fingerprint."""
    normalized = _STRING_LITERAL.sub("?", text)
    normalized = _NUMBER_LITERAL.sub("?", normalized)
    normalized = _WHITESPACE.sub(" ", normalized).strip().upper()
    return hashlib.sha1(normalized.encode("utf-8")).hexdigest()[:12]


class QueryRecord:
    """One finished statement."""

    __slots__ = (
        "text",
        "kind",
        "fingerprint",
        "started_at",
        "latency_ms",
        "rows",
        "tables",
        "counters",
        "session",
        "thread_name",
        "error",
        "waits",
        "trace_id",
    )

    def __init__(
        self,
        text: str,
        kind: str,
        latency_ms: float,
        rows: int = 0,
        tables: Optional[list[str]] = None,
        counters: Optional[dict[str, float]] = None,
        session: Optional[str] = None,
        thread_name: Optional[str] = None,
        error: Optional[str] = None,
        started_at: Optional[float] = None,
        waits: Optional[dict[str, tuple[int, float]]] = None,
        trace_id: Optional[str] = None,
    ):
        self.text = text
        self.kind = kind
        self.fingerprint = fingerprint(text)
        self.started_at = time.time() if started_at is None else started_at
        self.latency_ms = latency_ms
        self.rows = rows
        self.tables = list(tables or [])
        self.counters = dict(counters or {})
        self.session = session
        self.thread_name = (
            threading.current_thread().name if thread_name is None else thread_name
        )
        self.error = error
        #: per-statement wait breakdown {event: (count, time_ms)}
        self.waits = dict(waits or {})
        #: identity of the statement's retained trace, if it was traced
        self.trace_id = trace_id

    @property
    def wait_ms(self) -> float:
        """Total milliseconds this statement spent blocked."""
        return sum(ms for _count, ms in self.waits.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "text": self.text,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "started_at": self.started_at,
            "latency_ms": round(self.latency_ms, 4),
            "rows": self.rows,
            "tables": list(self.tables),
            "counters": dict(self.counters),
            "session": self.session,
            "thread": self.thread_name,
            "error": self.error,
            "waits": {
                event: {"count": count, "time_ms": round(ms, 4)}
                for event, (count, ms) in sorted(self.waits.items())
            },
            "trace_id": self.trace_id,
        }


class QueryLog:
    """Thread-safe bounded ring of :class:`QueryRecord` plus the
    slow-query JSON-lines sink."""

    def __init__(self, keep: int = DEFAULT_KEEP):
        self._lock = threading.Lock()
        self._ring: deque[QueryRecord] = deque(maxlen=keep)
        self.recorded = 0  #: total statements ever recorded (ring may drop)
        self.slow_logged = 0  #: statements written to the sink
        self.slow_ms: Optional[float] = None
        self.slow_log_path: str = "slow_queries.jsonl"
        env_threshold = os.environ.get("REPRO_SLOW_QUERY_MS", "").strip()
        if env_threshold:
            try:
                self.slow_ms = float(env_threshold)
            except ValueError:
                pass
        env_path = os.environ.get("REPRO_SLOW_QUERY_LOG", "").strip()
        if env_path:
            self.slow_log_path = env_path

    # -- configuration -------------------------------------------------------

    def configure(
        self,
        slow_ms: Optional[float] = None,
        slow_log_path: Optional[str] = None,
    ) -> None:
        """Set the slow threshold (``None`` disables the sink) and/or the
        sink path at runtime."""
        with self._lock:
            self.slow_ms = slow_ms
            if slow_log_path is not None:
                self.slow_log_path = slow_log_path

    # -- recording -----------------------------------------------------------

    def record(self, record: QueryRecord) -> None:
        with self._lock:
            self._ring.append(record)
            self.recorded += 1
            slow = (
                self.slow_ms is not None
                and record.latency_ms >= self.slow_ms
            )
            if slow:
                self.slow_logged += 1
                path = self.slow_log_path
        if slow:
            line = json.dumps(record.to_dict(), default=repr)
            try:
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
            except OSError:
                pass  # a broken sink must never fail the statement

    # -- reading -------------------------------------------------------------

    def tail(self, n: Optional[int] = None) -> list[QueryRecord]:
        """Most recent records, oldest first (all when ``n`` is None)."""
        with self._lock:
            records = list(self._ring)
        if n is not None and n >= 0:
            records = records[-n:]
        return records

    def clear(self) -> None:
        """Drop the ring and reset the lifetime counters (shell, tests)."""
        with self._lock:
            self._ring.clear()
            self.recorded = 0
            self.slow_logged = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
