"""Wait-event attribution: where does a statement's wall-clock time go?

Every *blocking* site in the engine brackets its wait with the process-
wide :data:`WAITS` registry — the lock manager's sleep loop, latch
contention, WAL fsyncs and checkpoints, disk page reads/writes, dirty-
page evictions.  The registry attributes the elapsed time three ways:

* **per statement** — ``Database.execute`` opens a statement scope;
  ``EXPLAIN ANALYZE`` renders the breakdown as a ``waits:`` section and
  the query log stores it with every finished statement;
* **per session** — :class:`~repro.concurrency.session.Session`
  accumulates statement waits into lifetime totals (``SYS.SESSIONS``);
* **process-wide** — cumulative counters per event class, mirrored into
  :data:`~repro.obs.metrics.METRICS` (``wait.count`` / ``wait.time_ms``
  labelled by event) while profiling is on.

The *currently active* wait of every thread is readable cross-thread
(:meth:`WaitRegistry.current_wait`), which is what the ASH sampler
(:mod:`repro.obs.ash`) snapshots to say "session X is waiting on
``Lock/ObjectX`` right now".

Wait-event taxonomy (``class/detail``):

==================  =====================================================
``Lock/TableIS``    blocked acquiring a table lock in the named mode
``Lock/TableIX``    (likewise ``Lock/TableS``, ``Lock/TableX``)
``Lock/ObjectS``    blocked acquiring a complex-object (root-TID) lock
``Lock/ObjectX``
``Lock/Wal``        blocked on the global single-writer token
``Latch/<name>``    contended short-duration latch (buffer, WAL, ...)
``WAL/Fsync``       waiting for the log device to acknowledge an fsync
``WAL/Checkpoint``  waiting for the log truncation rewrite
``IO/PageRead``     reading a page from the data file
``IO/PageWrite``    writing a page to the data file
``Buffer/DirtyEvict``  flushing a dirty victim frame to make room
==================  =====================================================

When tracing is enabled, any wait longer than ``REPRO_WAIT_SPAN_MIN_MS``
(default 0.05 ms) is retroactively attached as a child span of the
thread's innermost open span, so lock waits show up inside the retained
statement trace (``SYS.SPANS``).

Cost model: entering/leaving a wait takes one small lock and a dict
write — negligible next to the wait itself — and statements that never
block never touch the registry beyond one per-statement reset.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.obs.metrics import METRICS
from repro.obs.trace import Span, TRACER

#: waits shorter than this are not worth a span in the statement trace
WAIT_SPAN_MIN_MS = float(os.environ.get("REPRO_WAIT_SPAN_MIN_MS", "0.05"))


def lock_event(resource: tuple, mode) -> str:
    """The wait-event name for blocking on *resource* in *mode* — named
    by the **requested** mode (``Lock/TableIS``, ``Lock/ObjectX``, ...).
    The global writer token is its own class (``Lock/Wal``)."""
    level = str(resource[0])
    if level == "wal":
        return "Lock/Wal"
    return f"Lock/{level.capitalize()}{mode.value}"


class _ActiveWait:
    """One in-progress wait (the token returned by :meth:`enter`)."""

    __slots__ = ("event", "started", "detail", "ident")

    def __init__(self, event: str, started: float, detail: Optional[dict], ident: int):
        self.event = event
        self.started = started
        self.detail = detail
        self.ident = ident


class WaitRegistry:
    """Process-wide wait accounting; thread-safe, always on.

    The registry has no enabled/disabled switch: blocking sites are rare
    and slow by definition, so the bookkeeping is pure noise next to the
    wait itself — and keeping it always on means ``EXPLAIN ANALYZE`` and
    the query log attribute waits without asking anyone to opt in.
    """

    def __init__(self) -> None:
        self._latch = threading.Lock()
        #: thread ident -> the wait that thread is currently inside
        self._active: dict[int, _ActiveWait] = {}
        #: thread ident -> {event: [count, time_ms]} since begin_statement
        self._stmt: dict[int, dict[str, list]] = {}
        #: process-lifetime {event: [count, time_ms]}
        self._totals: dict[str, list] = {}

    # -- wait lifecycle ----------------------------------------------------

    def enter(self, event: str, **detail: Any) -> _ActiveWait:
        """Mark the calling thread as waiting on *event*; returns the
        token :meth:`exit` needs.  Nest-safe: an inner wait simply
        replaces the outer one as the thread's *current* wait."""
        ident = threading.get_ident()
        token = _ActiveWait(event, time.perf_counter(), detail or None, ident)
        with self._latch:
            self._active[ident] = token
        return token

    def exit(self, token: _ActiveWait) -> float:
        """End a wait: accumulate elapsed time, clear the active slot,
        and (tracing on, wait long enough) attach a retroactive span.
        Returns the elapsed milliseconds."""
        ended = time.perf_counter()
        elapsed_ms = (ended - token.started) * 1000.0
        event = token.event
        ident = token.ident
        with self._latch:
            if self._active.get(ident) is token:
                del self._active[ident]
            stmt = self._stmt.get(ident)
            if stmt is None:
                stmt = self._stmt[ident] = {}
            cell = stmt.get(event)
            if cell is None:
                stmt[event] = [1, elapsed_ms]
            else:
                cell[0] += 1
                cell[1] += elapsed_ms
            total = self._totals.get(event)
            if total is None:
                self._totals[event] = [1, elapsed_ms]
            else:
                total[0] += 1
                total[1] += elapsed_ms
        if METRICS.enabled:
            METRICS.inc("wait.count", event=event)
            METRICS.inc("wait.time_ms", elapsed_ms, event=event)
        if TRACER.enabled and elapsed_ms >= WAIT_SPAN_MIN_MS:
            parent = TRACER.current_span
            if parent is not None:
                span = Span(event, start=token.started)
                span.end = ended
                span.attrs["wait"] = True
                if token.detail:
                    span.attrs.update(
                        {k: _plain(v) for k, v in token.detail.items()}
                    )
                parent.children.append(span)
        return elapsed_ms

    @contextmanager
    def wait(self, event: str, **detail: Any) -> Iterator[None]:
        """``with WAITS.wait("WAL/Fsync"): ...`` around a blocking call."""
        token = self.enter(event, **detail)
        try:
            yield
        finally:
            self.exit(token)

    # -- statement scope ---------------------------------------------------

    def begin_statement(self) -> None:
        """Reset the calling thread's per-statement accumulator."""
        ident = threading.get_ident()
        with self._latch:
            stmt = self._stmt.get(ident)
            if stmt:
                stmt.clear()

    def statement_waits(self) -> dict[str, tuple[int, float]]:
        """The calling thread's waits since :meth:`begin_statement`,
        ``{event: (count, time_ms)}`` — non-destructive."""
        return self.statement_waits_for(threading.get_ident())

    def statement_waits_for(self, ident: Optional[int]) -> dict[str, tuple[int, float]]:
        """Cross-thread read of a thread's per-statement accumulator
        (the ASH sampler uses this for the nested wait subtable)."""
        if ident is None:
            return {}
        with self._latch:
            stmt = self._stmt.get(ident)
            if not stmt:
                return {}
            return {event: (cell[0], cell[1]) for event, cell in stmt.items()}

    def take_statement(self) -> dict[str, tuple[int, float]]:
        """Pop and return the calling thread's per-statement waits (the
        finish-line read: query log + session accumulation)."""
        ident = threading.get_ident()
        with self._latch:
            stmt = self._stmt.pop(ident, None)
            if not stmt:
                return {}
            return {event: (cell[0], cell[1]) for event, cell in stmt.items()}

    # -- introspection -----------------------------------------------------

    def current_wait(self, ident: Optional[int]) -> Optional[tuple[str, float, Optional[dict]]]:
        """The wait thread *ident* is inside right now, as ``(event,
        elapsed_ms_so_far, detail)`` — or None when it is not blocked."""
        if ident is None:
            return None
        with self._latch:
            token = self._active.get(ident)
        if token is None:
            return None
        elapsed_ms = (time.perf_counter() - token.started) * 1000.0
        return (token.event, elapsed_ms, token.detail)

    def active(self) -> list[tuple[int, str, float]]:
        """Every thread currently inside a wait: ``(ident, event,
        elapsed_ms)`` rows."""
        now = time.perf_counter()
        with self._latch:
            return [
                (t.ident, t.event, (now - t.started) * 1000.0)
                for t in self._active.values()
            ]

    def totals(self) -> dict[str, tuple[int, float]]:
        """Process-lifetime ``{event: (count, time_ms)}``."""
        with self._latch:
            return {
                event: (cell[0], cell[1])
                for event, cell in self._totals.items()
            }

    def clear(self) -> None:
        """Reset accumulated totals and statement scopes (tests)."""
        with self._latch:
            self._stmt.clear()
            self._totals.clear()


def _plain(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


#: the process-wide registry every blocking site reports into
WAITS = WaitRegistry()


@contextmanager
def wait_event(event: str, **detail: Any) -> Iterator[None]:
    """Module-level convenience: ``with wait_event("Lock/ObjectX", obj=tid)``."""
    token = WAITS.enter(event, **detail)
    try:
        yield
    finally:
        WAITS.exit(token)
