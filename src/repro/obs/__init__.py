"""repro.obs — end-to-end observability for the AIM-II reproduction.

Two process-wide singletons, both **disabled by default** (zero hot-path
cost when off):

* :data:`METRICS` — a :class:`~repro.obs.metrics.MetricsRegistry` of
  counters / gauges / histograms that the storage, index, and query layers
  report into (MD-subtuple reads, pointer dereferences, B-tree node
  visits, buffer hits/misses, rows scanned per range, ...);
* :data:`TRACER` — a :class:`~repro.obs.trace.Tracer` producing per-
  statement span trees (parse/bind/plan/execute), exportable as JSON or
  Chrome ``trace_event`` files.

Typical use::

    from repro import obs

    with obs.profiled():            # enables both, restores state after
        db.query("SELECT ...")
    print(obs.METRICS.totals())
    obs.TRACER.export_chrome("trace.json")

``EXPLAIN ANALYZE`` and the shell's ``.profile on`` use exactly these
hooks; ``docs/OBSERVABILITY.md`` holds the full metric catalog.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_MS,
    METRICS,
    MetricsRegistry,
)
from repro.obs.promtext import render_prometheus
from repro.obs.querylog import QueryLog, QueryRecord, fingerprint
from repro.obs.slo import AlertEvent, SloEngine, SloObjective, render_health
from repro.obs.timeseries import TIER_FACTORS, TimeSeriesRecorder, TsSample
from repro.obs.trace import (
    Span,
    TRACER,
    Trace,
    Tracer,
    chrome_trace_json,
    new_trace_id,
    parse_trace_id,
)
from repro.obs.waits import WAITS, WaitRegistry, lock_event, wait_event

__all__ = [
    "AlertEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "METRICS",
    "MetricsRegistry",
    "QueryLog",
    "QueryRecord",
    "SloEngine",
    "SloObjective",
    "Span",
    "TIER_FACTORS",
    "TRACER",
    "TimeSeriesRecorder",
    "Trace",
    "Tracer",
    "TsSample",
    "WAITS",
    "WaitRegistry",
    "chrome_trace_json",
    "enable",
    "disable",
    "fingerprint",
    "lock_event",
    "new_trace_id",
    "parse_trace_id",
    "profiled",
    "render_health",
    "render_prometheus",
    "wait_event",
]


def enable() -> None:
    """Turn on both the metrics registry and the tracer."""
    METRICS.enable()
    TRACER.enable()


def disable() -> None:
    """Turn off both the metrics registry and the tracer."""
    METRICS.disable()
    TRACER.disable()


@contextmanager
def profiled(metrics: bool = True, tracing: bool = True) -> Iterator[None]:
    """Enable observability for a ``with`` block, restoring the previous
    enabled/disabled state afterwards."""
    was_metrics = METRICS.enabled
    was_tracing = TRACER.enabled
    if metrics:
        METRICS.enable()
    if tracing:
        TRACER.enable()
    try:
        yield
    finally:
        METRICS.enabled = was_metrics
        if not was_tracing and tracing:
            TRACER.disable()
        else:
            TRACER.enabled = was_tracing
