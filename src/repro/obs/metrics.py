"""Process-wide metrics: counters, gauges, and histograms with labels.

The registry is the reproduction's answer to the paper's Section 4
methodology — every claim there is a *work count* (MD subtuples touched per
storage structure, pages fetched per navigation, objects opened per
addressing mode).  Storage, index, and query components report into one
shared :class:`MetricsRegistry` so that any operation can be bracketed by
``totals()`` / ``delta()`` and decomposed into engine work.

Design constraints:

* **near-zero overhead when disabled** — the registry starts disabled and
  every instrumentation site guards on the plain attribute
  ``METRICS.enabled`` before doing *any* work (no allocation, no dict
  lookup, no function call on the hot path when off);
* **labels** — counters/gauges/histograms can be split by label values
  (``METRICS.inc("index.probes", index="FN")``); unlabeled and labeled
  series of the same name coexist;
* **snapshot/delta** — ``snapshot()`` captures everything,
  ``totals()``/``delta()`` give the flat counter view used by
  ``EXPLAIN ANALYZE`` and the benchmarks.

See ``docs/OBSERVABILITY.md`` for the metric catalog (what paper quantity
each counter reproduces).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable, Optional

LabelKey = tuple  # tuple[tuple[str, str], ...] — sorted (name, value) pairs


def _label_key(labels: dict) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


class Counter:
    """A monotonically increasing counter, optionally split by labels.

    Mutation is guarded by a per-metric lock: the read-modify-write in
    :meth:`inc` loses updates under statement parallelism otherwise (two
    threads read the same old value, both write old+1).  The lock is only
    taken when the registry is *enabled*, so the disabled hot path stays a
    single attribute check in :class:`MetricsRegistry`.
    """

    __slots__ = ("name", "help", "_values", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0)

    @property
    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def by_label(self) -> dict[str, float]:
        with self._lock:
            return {_label_str(k): v for k, v in sorted(self._values.items())}

    def series(self) -> list[tuple[LabelKey, float]]:
        """Stable snapshot of every labeled series (SYS.METRICS reads it)."""
        with self._lock:
            return sorted(self._values.items())

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge:
    """A point-in-time value (e.g. buffer frames in use)."""

    __slots__ = ("name", "help", "_values", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0)

    def by_label(self) -> dict[str, float]:
        with self._lock:
            return {_label_str(k): v for k, v in sorted(self._values.items())}

    def series(self) -> list[tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


#: default histogram buckets — tuned for "how many subtuples / pages /
#: nodes did one operation touch" style distributions
DEFAULT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)

#: buckets for statement-latency histograms (milliseconds) — sub-100µs
#: point lookups up to multi-second analytical scans
LATENCY_BUCKETS_MS = (
    0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500,
)


def interpolated_quantile(
    bounds: Iterable[float],
    bucket_counts: Iterable[int],
    count: int,
    low: Optional[float],
    high: Optional[float],
    q: float,
) -> Optional[float]:
    """Linearly interpolated quantile from fixed-bucket counts.

    The covering bucket is located by cumulative count, then the value is
    interpolated linearly inside it (Prometheus ``histogram_quantile``
    style) instead of snapping to the bucket's upper bound — an SLO gate
    comparing p99 against a ceiling must not be quantized to bucket
    edges.  The overflow bucket interpolates between the last finite
    bound and the observed maximum, and the result is clamped to the
    observed ``[low, high]`` envelope, so no quantile is ever ``inf``.

    Shared by :meth:`Histogram.quantile`, :meth:`Histogram.quantile_for`,
    and the windowed (bucket-delta) quantiles of
    :mod:`repro.obs.timeseries`.
    """
    if not count:
        return None
    target = q * count
    upper_bounds = list(bounds) + [high if high is not None else math.inf]
    value: Optional[float] = high
    cumulative = 0
    previous = 0.0
    for upper, bucket_count in zip(upper_bounds, bucket_counts):
        if bucket_count:
            cumulative += bucket_count
            if cumulative >= target:
                fraction = (target - (cumulative - bucket_count)) / bucket_count
                if math.isinf(upper):  # overflow with no recorded max
                    value = previous
                else:
                    value = previous + fraction * (upper - previous)
                break
        previous = upper if not math.isinf(upper) else previous
    if value is None:
        return None
    if low is not None:
        value = max(value, low)
    if high is not None:
        value = min(value, high)
    return float(value)


class _HistogramSeries:
    __slots__ = ("count", "sum", "min", "max", "bucket_counts")

    def __init__(self, n_buckets: int):
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bucket_counts = [0] * (n_buckets + 1)  # +inf overflow bucket


class Histogram:
    """A distribution of observed values with fixed upper-bound buckets.

    Like :class:`Counter`, every series mutation in :meth:`observe` is a
    read-modify-write over several fields — a per-metric lock keeps the
    count / sum / bucket increments atomic under statement parallelism.
    """

    __slots__ = ("name", "help", "buckets", "_series", "_lock")

    def __init__(
        self, name: str, help: str = "", buckets: Optional[Iterable[float]] = None
    ):
        self.name = name
        self.help = help
        self.buckets: tuple[float, ...] = tuple(buckets or DEFAULT_BUCKETS)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"histogram {name!r}: buckets must be sorted")
        self._series: dict[LabelKey, _HistogramSeries] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.count += 1
            series.sum += value
            series.min = value if series.min is None else min(series.min, value)
            series.max = value if series.max is None else max(series.max, value)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[index] += 1
                    return
            series.bucket_counts[-1] += 1

    def _summary_of(self, series: Optional[_HistogramSeries]) -> dict:
        if series is None:
            return {"count": 0, "sum": 0.0, "min": None, "max": None, "avg": None}
        return {
            "count": series.count,
            "sum": series.sum,
            "min": series.min,
            "max": series.max,
            "avg": series.sum / series.count if series.count else None,
            "buckets": {
                bound: count
                for bound, count in zip(
                    [str(b) for b in self.buckets] + ["+Inf"],
                    series.bucket_counts,
                )
            },
        }

    def summary(self, **labels: Any) -> dict:
        with self._lock:
            return self._summary_of(self._series.get(_label_key(labels)))

    def by_label(self) -> dict[str, dict]:
        with self._lock:
            return {
                _label_str(key): self._summary_of(series)
                for key, series in sorted(self._series.items())
            }

    def series(self) -> list[tuple[LabelKey, dict]]:
        """Stable snapshot of every labeled series with *raw* (non-
        cumulative) bucket counts — what SYS.METRICS and the Prometheus
        renderer consume."""
        with self._lock:
            out = []
            for key, series in sorted(self._series.items()):
                out.append(
                    (
                        key,
                        {
                            "count": series.count,
                            "sum": series.sum,
                            "min": series.min,
                            "max": series.max,
                            "bucket_counts": list(series.bucket_counts),
                        },
                    )
                )
            return out

    def combined(self) -> dict:
        """One summary across all labeled series (shell ``.stats``)."""
        count = 0
        total = 0.0
        low: Optional[float] = None
        high: Optional[float] = None
        bucket_counts = [0] * (len(self.buckets) + 1)
        for _key, snap in self.series():
            count += snap["count"]
            total += snap["sum"]
            if snap["min"] is not None:
                low = snap["min"] if low is None else min(low, snap["min"])
            if snap["max"] is not None:
                high = snap["max"] if high is None else max(high, snap["max"])
            for index, bucket_count in enumerate(snap["bucket_counts"]):
                bucket_counts[index] += bucket_count
        return {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "avg": total / count if count else None,
            "bucket_counts": bucket_counts,
        }

    def quantile(self, q: float) -> Optional[float]:
        """Interpolated quantile across **all** labeled series combined.

        Linear interpolation inside the covering bucket; the overflow
        bucket is clamped to the observed maximum instead of reporting
        ``inf`` (see :func:`interpolated_quantile`)."""
        combined = self.combined()
        return interpolated_quantile(
            self.buckets,
            combined["bucket_counts"],
            combined["count"],
            combined["min"],
            combined["max"],
            q,
        )

    def quantile_for(self, labels: dict, q: float) -> Optional[float]:
        """Interpolated quantile of **one** labeled series (``None`` when
        the series does not exist) — SLO objectives target a single
        series (e.g. ``kind=SELECT``), not the combined view."""
        with self._lock:
            series = self._series.get(_label_key(labels or {}))
            if series is None:
                return None
            bucket_counts = list(series.bucket_counts)
            count = series.count
            low = series.min
            high = series.max
        return interpolated_quantile(
            self.buckets, bucket_counts, count, low, high, q
        )

    def reset(self) -> None:
        with self._lock:
            self._series.clear()


class MetricsRegistry:
    """One process-wide family of named metrics.

    ``enabled`` is a plain attribute so instrumented hot paths can guard
    with a single attribute load::

        if METRICS.enabled:
            METRICS.inc("buffer.logical_reads")
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded value (metric objects stay registered)."""
        with self._lock:
            for family in (self._counters, self._gauges, self._histograms):
                for metric in family.values():
                    metric.reset()

    def clear(self) -> None:
        """Forget every metric entirely (tests use this for isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- registration --------------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter(name, help))
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge(name, help))
        return metric

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Iterable[float]] = None
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(
                    name, Histogram(name, help, buckets)
                )
        return metric

    # -- recording (guarded convenience forms) -------------------------------

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        """Increment a counter — no-op while the registry is disabled."""
        if not self.enabled:
            return
        self.counter(name).inc(amount, **labels)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        self.gauge(name).set(value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        self.histogram(name).observe(value, **labels)

    # -- reading -------------------------------------------------------------

    def counters(self) -> list[Counter]:
        """Sorted snapshot of every registered counter."""
        with self._lock:
            return [c for _name, c in sorted(self._counters.items())]

    def gauges(self) -> list[Gauge]:
        """Sorted snapshot of every registered gauge."""
        with self._lock:
            return [g for _name, g in sorted(self._gauges.items())]

    def histograms(self) -> list[Histogram]:
        """Sorted snapshot of every registered histogram."""
        with self._lock:
            return [h for _name, h in sorted(self._histograms.items())]

    def totals(self) -> dict[str, float]:
        """Flat ``{counter name: total across labels}`` view."""
        return {name: c.total for name, c in sorted(self._counters.items())}

    def delta(self, before: dict[str, float]) -> dict[str, float]:
        """Counter movement since a previous :meth:`totals` capture
        (zero-movement counters are omitted)."""
        out: dict[str, float] = {}
        for name, total in self.totals().items():
            moved = total - before.get(name, 0)
            if moved:
                out[name] = moved
        return out

    def snapshot(self) -> dict:
        """Everything, JSON-serializable."""
        return {
            "counters": {
                name: c.by_label() for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.by_label() for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.by_label() for name, h in sorted(self._histograms.items())
            },
        }

    def to_prometheus(self) -> str:
        """Render every metric in the Prometheus text exposition format.

        Delegates to :mod:`repro.obs.promtext`; benchmarks use this for
        file export, the TCP server exposes it via the ``METRICS`` verb,
        and the shell via ``.metrics``.
        """
        from .promtext import render_prometheus

        return render_prometheus(self)


#: the process-wide registry every engine component reports into
METRICS = MetricsRegistry()
