"""An interactive shell for the NF2 DBMS.

::

    python -m repro.shell [database-file]

Statements end with ``;``.  Besides the query language, the shell offers
dot-commands::

    .tables              list tables
    .schema NAME         show a table's DDL
    .indexes             list indexes
    .stats               buffer-manager counters, engine metric totals,
                         and histogram summaries (count/avg/p95)
    .metrics [FILE]      metrics in Prometheus text format (print / export)
    .queries [N]         recently finished statements (SYS.QUERIES tail)
    .slowlog [MS [FILE]] show/set the slow-query threshold + sink
    .profile on|off      enable/disable observability (metrics + tracing)
    .trace FILE          export the last statement trace (Chrome format)
    .trace export FILE [ID]
                         export every retained trace (or just trace ID)
                         into one Chrome file, one lane per thread
    .ash [on|off|N]      active-session-history sampler: start/stop it,
                         or print the last N samples (default 10)
    .storage             per-table storage report (pages, fill, MD/data)
    .verify              consistency check (CHECK TABLE)
    .save                persist (disk-backed databases)
    .checkpoint          flush pages + truncate the write-ahead log
    .wal                 WAL status (log size, commits, fsyncs, ...)
    .locks               lock-manager snapshot (grants, waiters, counters)
    .replicas            replication status (role, attached replicas, lag)
    .transactions        MVCC snapshot registry (active snapshots, commit
                         sequence, GC backlog; needs mvcc=True)
    .health              SLO health summary (ok | pending | alerting +
                         firing alerts; the shell's HEALTH probe)
    .alerts [eval]       SLO objectives with state + recent alert
                         transitions ('eval' forces an evaluation first)
    .help                this text
    .quit                leave

``EXPLAIN ANALYZE <query>;`` works as a statement and prints the
annotated plan; ``.profile on`` keeps the metrics registry running so
``.stats`` accumulates engine counters across statements.

All telemetry is also queryable as NF² relations through the virtual
``SYS`` schema (``SELECT m.NAME FROM m IN SYS.METRICS``, ``SYS.QUERIES``,
``SYS.LOCKS``, ...) — see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro import obs
from repro.database import Database
from repro.errors import ReproError
from repro.model.ddl import schema_to_ddl
from repro.model.values import TableValue
from repro.render import render_table

PROMPT = "nf2> "
CONTINUATION = "...> "


def execute_line(db: Database, statement: str, out=sys.stdout) -> None:
    """Run one statement and print its outcome."""
    try:
        result = db.execute(statement)
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return
    if isinstance(result, TableValue):
        print(render_table(result, title="RESULT"), file=out)
        print(f"({len(result)} tuple{'s' if len(result) != 1 else ''})", file=out)
    elif isinstance(result, str):
        print(result, file=out)  # EXPLAIN [ANALYZE] plan text
    elif isinstance(result, int):
        print(f"{result} tuple{'s' if result != 1 else ''} affected", file=out)
    elif result is not None:
        print(f"ok: {getattr(result, 'name', result)}", file=out)
    else:
        print("ok", file=out)


def dot_command(db: Database, line: str, out=sys.stdout) -> bool:
    """Handle a dot-command; returns False when the shell should exit."""
    parts = line.split()
    # dot-commands match case-insensitively, like the language keywords
    # (.QUIT behaves exactly like .quit — on the wire too)
    command = parts[0].lower()
    if command in (".quit", ".exit"):
        return False
    if command == ".help":
        print(__doc__, file=out)
    elif command == ".tables":
        for entry in db.catalog.tables():
            kind = "1NF" if entry.schema.is_flat else "NF2"
            extra = f", versioned ({entry.versioning})" if entry.versioned else ""
            print(
                f"  {entry.name}  [{kind}, {len(entry.tids)} tuples{extra}]",
                file=out,
            )
    elif command == ".schema":
        if len(parts) < 2:
            print("usage: .schema TABLE", file=out)
        else:
            try:
                print(schema_to_ddl(db.table_schema(parts[1])), file=out)
            except ReproError as exc:
                print(f"error: {exc}", file=out)
    elif command == ".indexes":
        for entry in db.catalog.tables():
            for name, index in entry.indexes.items():
                path = ".".join(index.definition.attribute_path)
                mode = getattr(index.definition, "mode", None)
                kind = (
                    "text"
                    if hasattr(index, "fragment_length")
                    else (mode.value if mode is not None else "?")
                )
                stats = index.stats
                print(
                    f"  {name} ON {entry.name} ({path})  "
                    f"[{kind}; {stats.entry_count} entries, "
                    f"{stats.distinct_keys} distinct keys, "
                    f"max posting {stats.max_posting_list}]",
                    file=out,
                )
    elif command == ".stats":
        for key, value in db.io_stats.snapshot().items():
            print(f"  {key}: {value}", file=out)
        totals = obs.METRICS.totals()
        if totals:
            print("  engine counters:", file=out)
            for name, value in totals.items():
                print(f"    {name}: {value:g}", file=out)
        histograms = [h for h in obs.METRICS.histograms() if h.combined()["count"]]
        if histograms:
            print("  histograms:", file=out)
            for histogram in histograms:
                summary = histogram.combined()
                p95 = histogram.quantile(0.95)
                p95_text = "inf" if p95 == float("inf") else f"{p95:g}"
                print(
                    f"    {histogram.name}: count {summary['count']}, "
                    f"avg {summary['avg']:.3g}, min {summary['min']:g}, "
                    f"max {summary['max']:g}, p95<={p95_text}",
                    file=out,
                )
    elif command == ".metrics":
        text = obs.METRICS.to_prometheus()
        if len(parts) > 1:
            with open(parts[1], "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {parts[1]}", file=out)
        elif not text:
            print("no metrics recorded — try .profile on first", file=out)
        else:
            out.write(text)
    elif command == ".queries":
        try:
            n = int(parts[1]) if len(parts) > 1 else 10
        except ValueError:
            print("usage: .queries [N]", file=out)
            n = None
        if n is not None:
            records = db.query_log.tail(n)
            if not records:
                print("  no finished statements recorded", file=out)
            for record in records:
                who = record.session or record.thread_name or "-"
                error = f"  ERROR {record.error}" if record.error else ""
                print(
                    f"  [{record.fingerprint}] {record.kind:<7} "
                    f"{record.latency_ms:8.3f} ms  {record.rows:>6} rows  "
                    f"({who})  {record.text[:60]}{error}",
                    file=out,
                )
    elif command == ".slowlog":
        if len(parts) > 1:
            try:
                threshold = None if parts[1].lower() == "off" else float(parts[1])
            except ValueError:
                print("usage: .slowlog [MS|off [FILE]]", file=out)
                threshold = False  # sentinel: bad input
            if threshold is not False:
                db.query_log.configure(
                    slow_ms=threshold,
                    slow_log_path=parts[2] if len(parts) > 2 else None,
                )
        if db.query_log.slow_ms is None:
            print("  slow-query log off", file=out)
        else:
            print(
                f"  statements >= {db.query_log.slow_ms:g} ms are appended "
                f"to {db.query_log.slow_log_path} "
                f"({db.query_log.slow_logged} logged so far)",
                file=out,
            )
    elif command == ".profile":
        mode = parts[1].lower() if len(parts) > 1 else None
        if mode == "on":
            obs.enable()
            print("profiling on (metrics + tracing)", file=out)
        elif mode == "off":
            obs.disable()
            print("profiling off", file=out)
        else:
            state = "on" if obs.METRICS.enabled else "off"
            print(f"usage: .profile on|off (currently {state})", file=out)
    elif command == ".trace":
        if len(parts) > 1 and parts[1].lower() == "export":
            if len(parts) < 3:
                print("usage: .trace export FILE [TRACE_ID]", file=out)
            else:
                selected = None
                if len(parts) > 3:
                    trace = obs.TRACER.get(parts[3].lower())
                    if trace is None:
                        print(f"error: no retained trace {parts[3]!r}", file=out)
                        return True
                    selected = [trace]
                try:
                    count = obs.TRACER.export_chrome_many(parts[2], selected)
                except ValueError as exc:
                    print(f"error: {exc}", file=out)
                else:
                    print(
                        f"wrote {count} trace{'s' if count != 1 else ''} to "
                        f"{parts[2]} (load it in https://ui.perfetto.dev)",
                        file=out,
                    )
        elif len(parts) < 2:
            print("usage: .trace FILE | .trace export FILE [TRACE_ID]", file=out)
        elif obs.TRACER.last_trace is None:
            print(
                "no finished trace — run a statement with .profile on first",
                file=out,
            )
        else:
            obs.TRACER.export_chrome(parts[1])
            print(
                f"wrote {parts[1]} (load it in chrome://tracing or "
                "https://ui.perfetto.dev)",
                file=out,
            )
    elif command == ".ash":
        arg = parts[1].lower() if len(parts) > 1 else None
        if arg == "on":
            db.ash.start()
            print(
                f"ash sampler on (period {db.ash.period_ms:g} ms, "
                f"keep {db.ash.samples.maxlen})",
                file=out,
            )
        elif arg == "off":
            db.ash.stop()
            print(f"ash sampler off ({db.ash.ticks} ticks taken)", file=out)
        else:
            try:
                n = int(arg) if arg is not None else 10
            except ValueError:
                print("usage: .ash [on|off|N]", file=out)
                n = None
            if n is not None:
                samples = db.ash.tail(n)
                if not samples:
                    print(
                        "  no samples — .ash on starts the sampler "
                        "(needs active sessions)",
                        file=out,
                    )
                for sample in samples:
                    wait = (
                        f"  waiting {sample.wait_event} {sample.wait_ms:.1f} ms"
                        if sample.wait_event
                        else ""
                    )
                    stmt = (sample.statement or "-")[:60]
                    print(
                        f"  [{sample.seq}] {sample.session or '-'} "
                        f"{sample.state:<8} {stmt}{wait}",
                        file=out,
                    )
    elif command == ".storage":
        report = db.storage_report()
        print(f"  total pages: {report['total_pages']}", file=out)
        for name, stats in report["tables"].items():
            extras = ""
            if "md_pages" in stats:
                extras = f", {stats['md_pages']} MD / {stats['data_pages']} data pages"
            print(
                f"  {name}: {stats['tuples']} tuples on {stats['pages']} "
                f"pages (fill {stats['fill_factor']:.0%}{extras})",
                file=out,
            )
    elif command == ".verify":
        problems = db.verify()
        if problems:
            for problem in problems:
                print(f"  ! {problem}", file=out)
        else:
            print("  database is consistent", file=out)
    elif command == ".save":
        try:
            db.save()
            print("saved", file=out)
        except ReproError as exc:
            print(f"error: {exc}", file=out)
    elif command == ".checkpoint":
        try:
            db.checkpoint()
            print("checkpoint complete (pages flushed, log truncated)", file=out)
        except ReproError as exc:
            print(f"error: {exc}", file=out)
    elif command == ".wal":
        if db.wal is None:
            print(
                "no WAL (in-memory database or wal=False)", file=out
            )
        else:
            for key, value in db.wal.stats().items():
                print(f"  {key}: {value}", file=out)
            if db.last_recovery is not None:
                print(f"  last open: {db.last_recovery.summary()}", file=out)
    elif command == ".replicas":
        repl = db.replication
        if repl is None:
            print(
                "no replication (serve with python -m repro.server; "
                "replicas attach with --replica-of)",
                file=out,
            )
        else:
            rows = list(repl.replica_rows())
            if not rows:
                print(f"  role {repl.role}: no replicas attached", file=out)
            for row in rows:
                print(
                    f"  [{row['ROLE']}] {row['PEER']} {row['STATE']}: "
                    f"shipped seq {row['SHIPPED_SEQ']}, "
                    f"applied seq {row['APPLIED_SEQ']}, "
                    f"lag {row['LAG']} "
                    f"({row['BATCHES']} batches, {row['PAGES']} pages, "
                    f"{row['BYTES']} bytes)",
                    file=out,
                )
    elif command == ".locks":
        rows = db.locks.snapshot()
        if not rows:
            print("  no locks held or waited on", file=out)
        for info in rows:
            print(f"  {info.describe()}", file=out)
        for key, value in db.locks.stats().items():
            print(f"  {key}: {value}", file=out)
    elif command == ".health":
        out.write(obs.render_health(db))
    elif command == ".alerts":
        arg = parts[1].lower() if len(parts) > 1 else None
        if arg == "eval":
            events = db.slo.evaluate()
            print(f"evaluated {len(db.slo.objectives)} objectives, "
                  f"{len(events)} transitions", file=out)
        if not db.slo.objectives:
            print(
                "  no SLO objectives (db.slo.define(...) or serve with "
                "--monitor installs them)",
                file=out,
            )
        for row in db.slo.slo_rows():
            value = "-" if row["VALUE"] is None else f"{row['VALUE']:g}"
            burn = (
                ""
                if row["BURN_RATE"] is None
                else f"  burn {row['BURN_RATE']:.2f}x"
            )
            print(
                f"  [{row['STATE']:<8}] {row['NAME']} ({row['KIND']}): "
                f"value {value}{burn}",
                file=out,
            )
        events = list(db.slo.alert_rows())
        for event in events[-10:]:
            print(
                f"  #{event['SEQ']} {event['SLO']}: "
                f"{event['FROM_STATE']} -> {event['TO_STATE']} "
                f"— {event['MESSAGE']}",
                file=out,
            )
    elif command == ".transactions":
        if db.mvcc is None:
            print("no MVCC (database opened without mvcc=True)", file=out)
        else:
            manager = db.mvcc
            print(
                f"  committed_lsn: {manager.committed_lsn:g}"
                f"  watermark: {manager.watermark():g}"
                f"  gc_backlog: {manager.gc_backlog()}"
                f"  last_wal_lsn: {manager.last_wal_lsn}",
                file=out,
            )
            snaps = sorted(manager.active_snapshots(), key=lambda s: s.sid)
            if not snaps:
                print("  no active snapshots", file=out)
            for snap in snaps:
                pinned = " pinned" if snap.pinned else ""
                txn = f" txn={snap.txn}" if snap.txn is not None else ""
                print(
                    f"  [{snap.sid}] {snap.session or '?'}: "
                    f"{snap.axis}={snap.point:g} "
                    f"({snap.isolation}{pinned}{txn})",
                    file=out,
                )
    else:
        print(f"unknown command {command!r}; try .help", file=out)
    return True


def run_script(db: Database, text: str, out=sys.stdout) -> None:
    """Execute ';'-separated statements from a string (non-interactive)."""
    for statement in text.split(";"):
        statement = statement.strip()
        if statement:
            execute_line(db, statement, out=out)


def main(argv: Optional[list[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    mvcc = "--mvcc" in argv
    argv = [a for a in argv if a != "--mvcc"]
    path = argv[0] if argv else None
    db = Database(path=path, mvcc=mvcc)
    where = path or "in-memory"
    mode = " (mvcc)" if mvcc else ""
    print(f"AIM-II NF2 shell — {where} database{mode}; .help for help")
    buffer = ""
    try:
        while True:
            try:
                line = input(CONTINUATION if buffer else PROMPT)
            except EOFError:
                print()
                break
            stripped = line.strip()
            if not buffer and stripped.startswith("."):
                if not dot_command(db, stripped):
                    break
                continue
            buffer += ("\n" if buffer else "") + line
            while ";" in buffer:
                statement, _, buffer = buffer.partition(";")
                if statement.strip():
                    execute_line(db, statement.strip())
                buffer = buffer.lstrip()
    finally:
        if path:
            db.save()
        db.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
