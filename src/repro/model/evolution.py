"""Schema evolution: add / drop / rename attributes at any nesting level.

"Handling of schema changes" is on the paper's future-research list
(Section 5); this module provides the schema- and value-level
transformations, and :meth:`repro.database.Database.alter_table` applies
them by rewriting the stored objects (offline migration — adequate for a
single-user prototype).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import SchemaError
from repro.model.schema import AttributeSchema, TableSchema

AttrPath = Sequence[str]


def _rebuild(
    schema: TableSchema, prefix: AttrPath, transform
) -> TableSchema:
    """Apply *transform* to the subtable schema at *prefix* (an empty
    prefix addresses the top level)."""
    if not prefix:
        return transform(schema)
    head, rest = prefix[0], prefix[1:]
    attributes = []
    found = False
    for attr in schema.attributes:
        if attr.name == head:
            if not attr.is_table:
                raise SchemaError(
                    f"{head!r} is atomic; cannot descend into it"
                )
            assert attr.table is not None
            found = True
            attributes.append(
                AttributeSchema(name=attr.name, table=_rebuild(attr.table, rest, transform))
            )
        else:
            attributes.append(attr)
    if not found:
        raise SchemaError(f"table {schema.name!r} has no attribute {head!r}")
    return TableSchema(name=schema.name, attributes=tuple(attributes), ordered=schema.ordered)


def add_attribute(
    schema: TableSchema, prefix: AttrPath, new_attr: AttributeSchema
) -> TableSchema:
    """A new attribute appended to the (sub)table at *prefix*."""

    def transform(target: TableSchema) -> TableSchema:
        if target.has_attribute(new_attr.name):
            raise SchemaError(
                f"table {target.name!r} already has attribute {new_attr.name!r}"
            )
        return TableSchema(
            name=target.name,
            attributes=target.attributes + (new_attr,),
            ordered=target.ordered,
        )

    return _rebuild(schema, prefix, transform)


def drop_attribute(schema: TableSchema, path: AttrPath) -> TableSchema:
    """Remove the attribute addressed by *path* (prefix + name)."""
    if not path:
        raise SchemaError("empty attribute path")
    prefix, name = tuple(path[:-1]), path[-1]

    def transform(target: TableSchema) -> TableSchema:
        target.attribute(name)  # raises if absent
        remaining = tuple(a for a in target.attributes if a.name != name)
        if not remaining:
            raise SchemaError(
                f"cannot drop the last attribute of {target.name!r}"
            )
        return TableSchema(
            name=target.name, attributes=remaining, ordered=target.ordered
        )

    return _rebuild(schema, prefix, transform)


def rename_attribute(
    schema: TableSchema, path: AttrPath, new_name: str
) -> TableSchema:
    """Rename the attribute addressed by *path*."""
    if not path:
        raise SchemaError("empty attribute path")
    prefix, old_name = tuple(path[:-1]), path[-1]

    def transform(target: TableSchema) -> TableSchema:
        if target.has_attribute(new_name):
            raise SchemaError(
                f"table {target.name!r} already has attribute {new_name!r}"
            )
        attributes = []
        for attr in target.attributes:
            if attr.name != old_name:
                attributes.append(attr)
            elif attr.is_atomic:
                attributes.append(
                    AttributeSchema(name=new_name, atomic_type=attr.atomic_type)
                )
            else:
                assert attr.table is not None
                attributes.append(
                    AttributeSchema(name=new_name, table=attr.table.rename(new_name))
                )
        target.attribute(old_name)  # raises if absent
        return TableSchema(
            name=target.name, attributes=tuple(attributes), ordered=target.ordered
        )

    return _rebuild(schema, prefix, transform)


# ---------------------------------------------------------------------------
# value migration (plain nested data)
# ---------------------------------------------------------------------------


def migrate_row(row: dict, prefix: AttrPath, mutate) -> dict:
    """Apply *mutate* (dict -> dict) to every (sub)row at *prefix*."""
    if not prefix:
        return mutate(dict(row))
    head, rest = prefix[0], prefix[1:]
    out = dict(row)
    out[head] = [migrate_row(child, rest, mutate) for child in row[head]]
    return out


def add_value(row: dict, prefix: AttrPath, name: str, default: Any = None) -> dict:
    return migrate_row(row, prefix, lambda r: {**r, name: default})


def drop_value(row: dict, path: AttrPath) -> dict:
    prefix, name = tuple(path[:-1]), path[-1]

    def mutate(r: dict) -> dict:
        r.pop(name, None)
        return r

    return migrate_row(row, prefix, mutate)


def rename_value(row: dict, path: AttrPath, new_name: str) -> dict:
    prefix, old_name = tuple(path[:-1]), path[-1]

    def mutate(r: dict) -> dict:
        r[new_name] = r.pop(old_name)
        return r

    return migrate_row(row, prefix, mutate)
