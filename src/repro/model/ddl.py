"""DDL for extended NF2 tables.

The paper defers DDL details to /PT85, PA86/; we provide a natural syntax in
the same spirit::

    CREATE TABLE DEPARTMENTS (
        DNO INT,
        MGRNO INT,
        PROJECTS TABLE OF (
            PNO INT,
            PNAME STRING,
            MEMBERS TABLE OF (EMPNO INT, FUNCTION STRING)
        ),
        BUDGET INT,
        EQUIP TABLE OF (QU INT, TYPE STRING)
    )

``CREATE LIST name (...)`` declares an ordered top-level table; nested
ordered tables use ``LIST OF (...)``.  :func:`parse_create_table` returns the
:class:`~repro.model.schema.TableSchema`.
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple, Optional

from repro.errors import DDLError
from repro.model.schema import AttributeSchema, TableSchema, atomic, nested, table
from repro.model.types import AtomicType

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_\-/]*)
  | (?P<punct>[(),])
    """,
    re.VERBOSE,
)


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> Iterator[_Token]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise DDLError(f"unexpected character {text[position]!r} at {position}")
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        assert kind is not None
        yield _Token(kind, match.group(), match.start())
    yield _Token("eof", "", len(text))


class _Parser:
    def __init__(self, text: str):
        self._tokens = list(_tokenize(text))
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    @property
    def _current(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._current
        self._pos += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._current
        if token.text.upper() != text.upper():
            raise DDLError(
                f"expected {text!r} at position {token.position}, got {token.text!r}"
            )
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._current
        if token.kind != "ident":
            raise DDLError(
                f"expected identifier at position {token.position}, got {token.text!r}"
            )
        self._advance()
        return token.text

    def _peek_keyword(self, word: str) -> bool:
        return self._current.text.upper() == word.upper()

    # -- grammar -------------------------------------------------------------

    def parse_create(self) -> TableSchema:
        self._expect("CREATE")
        ordered = False
        if self._peek_keyword("LIST"):
            ordered = True
            self._advance()
        else:
            self._expect("TABLE")
        name = self._expect_ident()
        attributes = self._parse_attribute_list()
        if self._current.kind != "eof":
            raise DDLError(
                f"unexpected trailing input at position {self._current.position}: "
                f"{self._current.text!r}"
            )
        return TableSchema(name=name, attributes=tuple(attributes), ordered=ordered)

    def _parse_attribute_list(self) -> list[AttributeSchema]:
        self._expect("(")
        attributes = [self._parse_attribute()]
        while self._current.text == ",":
            self._advance()
            attributes.append(self._parse_attribute())
        self._expect(")")
        return attributes

    def _parse_attribute(self) -> AttributeSchema:
        name = self._expect_ident()
        keyword = self._current.text.upper()
        if keyword in ("TABLE", "LIST"):
            self._advance()
            self._expect("OF")
            inner = self._parse_attribute_list()
            schema = table(name, *inner, ordered=(keyword == "LIST"))
            return nested(name, schema)
        type_name = self._expect_ident()
        try:
            atomic_type = AtomicType.parse(type_name)
        except Exception as exc:
            raise DDLError(f"unknown type {type_name!r} for attribute {name!r}") from exc
        return atomic(name, atomic_type)


def parse_create_table(text: str) -> TableSchema:
    """Parse a ``CREATE TABLE`` / ``CREATE LIST`` statement into a schema."""
    return _Parser(text).parse_create()


def schema_to_ddl(schema: TableSchema) -> str:
    """Render a schema back to DDL text (inverse of :func:`parse_create_table`)."""

    def render_attr(attr: AttributeSchema) -> str:
        if attr.is_atomic:
            assert attr.atomic_type is not None
            return f"{attr.name} {attr.atomic_type.value}"
        assert attr.table is not None
        kind = "LIST" if attr.table.ordered else "TABLE"
        inner = ", ".join(render_attr(a) for a in attr.table.attributes)
        return f"{attr.name} {kind} OF ({inner})"

    kind = "LIST" if schema.ordered else "TABLE"
    body = ", ".join(render_attr(attr) for attr in schema.attributes)
    return f"CREATE {kind} {schema.name} ({body})"
