"""Schemas for extended NF2 tables.

A :class:`TableSchema` describes a *table* in the paper's sense: an unordered
table is a relation (written ``{ }`` in the paper's figures), an ordered table
is a list (written ``< >``).  Attributes are either atomic or themselves
table-valued, to arbitrary depth — this is exactly the generalization that
gives up first normal form.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

from repro.errors import SchemaError
from repro.model.types import AtomicType

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-/]*\Z")


def _check_identifier(name: str, what: str) -> str:
    if not isinstance(name, str) or not _IDENTIFIER_RE.match(name):
        raise SchemaError(f"invalid {what} name: {name!r}")
    return name


@dataclass(frozen=True)
class AttributeSchema:
    """One attribute of a table: atomic, or table-valued (nested)."""

    name: str
    atomic_type: Optional[AtomicType] = None
    table: Optional["TableSchema"] = None

    def __post_init__(self) -> None:
        _check_identifier(self.name, "attribute")
        if (self.atomic_type is None) == (self.table is None):
            raise SchemaError(
                f"attribute {self.name!r} must be either atomic or table-valued"
            )

    @property
    def is_atomic(self) -> bool:
        return self.atomic_type is not None

    @property
    def is_table(self) -> bool:
        return self.table is not None

    def describe(self) -> str:
        """Human-readable one-line type description."""
        if self.is_atomic:
            assert self.atomic_type is not None
            return f"{self.name} {self.atomic_type.value}"
        assert self.table is not None
        kind = "LIST" if self.table.ordered else "TABLE"
        inner = ", ".join(a.describe() for a in self.table.attributes)
        return f"{self.name} {kind} OF ({inner})"


@dataclass(frozen=True)
class TableSchema:
    """Schema of an (extended NF2) table.

    ``ordered=False`` is a relation (set semantics), ``ordered=True`` a list
    (sequence semantics).  Flat 1NF tables are the special case where every
    attribute is atomic.
    """

    name: str
    attributes: tuple[AttributeSchema, ...]
    ordered: bool = False

    def __post_init__(self) -> None:
        _check_identifier(self.name, "table")
        if not self.attributes:
            raise SchemaError(f"table {self.name!r} must have at least one attribute")
        seen: set[str] = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in table {self.name!r}"
                )
            seen.add(attr.name)

    # -- lookup ------------------------------------------------------------

    def attribute(self, name: str) -> AttributeSchema:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"table {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(attr.name == name for attr in self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self.attributes)

    @property
    def atomic_attributes(self) -> tuple[AttributeSchema, ...]:
        return tuple(attr for attr in self.attributes if attr.is_atomic)

    @property
    def table_attributes(self) -> tuple[AttributeSchema, ...]:
        return tuple(attr for attr in self.attributes if attr.is_table)

    # -- structure ---------------------------------------------------------

    @property
    def is_flat(self) -> bool:
        """True iff this is a 1NF table (all attributes atomic)."""
        return not self.table_attributes

    def depth(self) -> int:
        """Nesting depth: a flat table has depth 1."""
        if self.is_flat:
            return 1
        return 1 + max(attr.table.depth() for attr in self.table_attributes)  # type: ignore[union-attr]

    def walk(self, prefix: tuple[str, ...] = ()) -> Iterator[tuple[tuple[str, ...], AttributeSchema]]:
        """Yield ``(path, attribute)`` pairs for every attribute at every
        nesting level, in document order.  ``path`` names the attribute
        relative to this schema, e.g. ``('PROJECTS', 'MEMBERS', 'EMPNO')``.
        """
        for attr in self.attributes:
            path = prefix + (attr.name,)
            yield path, attr
            if attr.is_table:
                assert attr.table is not None
                yield from attr.table.walk(path)

    def resolve_path(self, path: Sequence[str]) -> AttributeSchema:
        """Resolve a dotted attribute path like ``('PROJECTS', 'PNO')``."""
        if not path:
            raise SchemaError("empty attribute path")
        attr = self.attribute(path[0])
        if len(path) == 1:
            return attr
        if not attr.is_table:
            raise SchemaError(
                f"attribute {path[0]!r} of {self.name!r} is atomic; "
                f"cannot descend into {'.'.join(path[1:])!r}"
            )
        assert attr.table is not None
        return attr.table.resolve_path(path[1:])

    def subtable_paths(self) -> list[tuple[str, ...]]:
        """Paths of every table-valued attribute, at every level."""
        return [path for path, attr in self.walk() if attr.is_table]

    def describe(self) -> str:
        kind = "LIST" if self.ordered else "TABLE"
        inner = ", ".join(a.describe() for a in self.attributes)
        return f"{kind} {self.name} ({inner})"

    def rename(self, name: str) -> "TableSchema":
        return TableSchema(name=name, attributes=self.attributes, ordered=self.ordered)


# --------------------------------------------------------------------------
# Convenience builders
# --------------------------------------------------------------------------


def atomic(name: str, type_: Union[AtomicType, str]) -> AttributeSchema:
    """Build an atomic attribute: ``atomic('DNO', 'INT')``."""
    if isinstance(type_, str):
        type_ = AtomicType.parse(type_)
    return AttributeSchema(name=name, atomic_type=type_)


def table(
    name: str,
    *attributes: AttributeSchema,
    ordered: bool = False,
) -> TableSchema:
    """Build a table schema: ``table('EQUIP', atomic('QU','INT'), ...)``."""
    return TableSchema(name=name, attributes=tuple(attributes), ordered=ordered)


def list_of(name: str, *attributes: AttributeSchema) -> TableSchema:
    """Build an ordered table (list) schema."""
    return table(name, *attributes, ordered=True)


def nested(name: str, schema: TableSchema) -> AttributeSchema:
    """Wrap a table schema as a table-valued attribute.

    The attribute takes its name from *name*; the nested schema is renamed to
    match so that the attribute name and its table name always agree (as in
    the paper, where the subtable PROJECTS is the value of the attribute
    PROJECTS).
    """
    return AttributeSchema(name=name, table=schema.rename(name))
