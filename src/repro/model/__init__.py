"""Logical extended-NF2 data model: atomic types, schemas, and values."""

from repro.model.types import AtomicType
from repro.model.schema import AttributeSchema, TableSchema, atomic, table, list_of
from repro.model.values import TupleValue, TableValue

__all__ = [
    "AtomicType",
    "AttributeSchema",
    "TableSchema",
    "atomic",
    "table",
    "list_of",
    "TupleValue",
    "TableValue",
]
