"""Values of the extended NF2 data model: nested tuples and tables.

A :class:`TableValue` is a concrete instance of a :class:`TableSchema` — a
collection of :class:`TupleValue` rows.  Unordered tables compare with
multiset semantics (the paper's relations), ordered tables compare
positionally (the paper's lists).

Values can be built from plain Python data (dicts / sequences, with nested
lists for subtables) via :meth:`TableValue.from_plain` /
:meth:`TupleValue.from_plain`, and converted back with ``to_plain``.
"""

from __future__ import annotations

import datetime
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.errors import DataError
from repro.model.schema import AttributeSchema, TableSchema

AtomicValue = Union[None, int, float, str, bool, datetime.date]
PlainRow = Union[Mapping[str, Any], Sequence[Any]]


class TupleValue:
    """One tuple of a table: attribute name -> atomic value or TableValue."""

    __slots__ = ("schema", "_values")

    def __init__(self, schema: TableSchema, values: Mapping[str, Any]):
        self.schema = schema
        checked: dict[str, Any] = {}
        for attr in schema.attributes:
            if attr.name not in values:
                raise DataError(
                    f"tuple for {schema.name!r} is missing attribute {attr.name!r}"
                )
            checked[attr.name] = _check_value(attr, values[attr.name])
        extra = set(values) - set(schema.attribute_names)
        if extra:
            raise DataError(
                f"tuple for {schema.name!r} has unknown attributes {sorted(extra)!r}"
            )
        self._values = checked

    # -- construction --------------------------------------------------------

    @classmethod
    def trusted(cls, schema: TableSchema, values: dict[str, Any]) -> "TupleValue":
        """Construct without per-attribute validation.

        For engine-internal paths only (the compiled executor's columnar
        scans and star projections — see ``query/compile.py``): *values*
        must already be schema-complete and validated, straight from
        storage decode or from another same-schema tuple.  The dict is
        adopted, not copied."""
        self = object.__new__(cls)
        self.schema = schema
        self._values = values
        return self

    @classmethod
    def from_plain(cls, schema: TableSchema, row: PlainRow) -> "TupleValue":
        """Build a tuple from a dict (by attribute name) or a sequence (by
        attribute position); nested subtables are given as lists of rows.
        """
        if isinstance(row, TupleValue):
            if row.schema is schema:
                return row
            row = row.to_plain()
        if isinstance(row, Mapping):
            items = dict(row)
            extra = set(items) - set(schema.attribute_names)
            if extra:
                raise DataError(
                    f"tuple for {schema.name!r} has unknown attributes "
                    f"{sorted(extra)!r}"
                )
        else:
            if not isinstance(row, Sequence) or isinstance(row, (str, bytes)):
                raise DataError(f"cannot build a tuple from {row!r}")
            if len(row) != len(schema.attributes):
                raise DataError(
                    f"tuple for {schema.name!r} needs {len(schema.attributes)} "
                    f"values, got {len(row)}"
                )
            items = {
                attr.name: value for attr, value in zip(schema.attributes, row)
            }
        converted: dict[str, Any] = {}
        for attr in schema.attributes:
            if attr.name not in items:
                raise DataError(
                    f"tuple for {schema.name!r} is missing attribute {attr.name!r}"
                )
            raw = items[attr.name]
            if attr.is_table:
                assert attr.table is not None
                converted[attr.name] = TableValue.from_plain(attr.table, raw)
            else:
                converted[attr.name] = raw
        return cls(schema, converted)

    # -- access ----------------------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise DataError(
                f"tuple of {self.schema.name!r} has no attribute {name!r}"
            ) from None

    def get(self, name: str, default: Any = None) -> Any:
        return self._values.get(name, default)

    def atomic_values(self) -> tuple[AtomicValue, ...]:
        """The 'first level' atomic attribute values, in schema order —
        exactly what the paper stores in one data subtuple."""
        return tuple(
            self._values[attr.name] for attr in self.schema.atomic_attributes
        )

    def replace(self, **updates: Any) -> "TupleValue":
        """Return a copy with some attribute values replaced."""
        merged = dict(self._values)
        for name, value in updates.items():
            if not self.schema.has_attribute(name):
                raise DataError(
                    f"tuple of {self.schema.name!r} has no attribute {name!r}"
                )
            attr = self.schema.attribute(name)
            if attr.is_table and not isinstance(value, TableValue):
                assert attr.table is not None
                value = TableValue.from_plain(attr.table, value)
            merged[name] = value
        return TupleValue(self.schema, merged)

    def to_plain(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for attr in self.schema.attributes:
            value = self._values[attr.name]
            out[attr.name] = value.to_plain() if isinstance(value, TableValue) else value
        return out

    # -- equality ----------------------------------------------------------------

    def canonical(self) -> tuple:
        """A hashable canonical form (unordered subtables are sorted)."""
        parts: list[Any] = []
        for attr in self.schema.attributes:
            value = self._values[attr.name]
            if isinstance(value, TableValue):
                parts.append(value.canonical())
            else:
                parts.append(_canonical_atom(value))
        return tuple(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleValue):
            return NotImplemented
        return (
            self.schema.attribute_names == other.schema.attribute_names
            and self.canonical() == other.canonical()
        )

    def __hash__(self) -> int:
        return hash((self.schema.attribute_names, self.canonical()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"TupleValue({inner})"


class TableValue:
    """A concrete table: a schema plus its rows.

    Rows are always kept in a list; for unordered tables the order is
    incidental and ignored by equality.
    """

    __slots__ = ("schema", "rows")

    def __init__(self, schema: TableSchema, rows: Iterable[TupleValue] = ()):
        self.schema = schema
        self.rows: list[TupleValue] = []
        for row in rows:
            self.append(row)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_plain(cls, schema: TableSchema, rows: Any) -> "TableValue":
        if isinstance(rows, TableValue):
            if rows.schema is schema:
                return rows
            rows = rows.to_plain()
        if rows is None:
            rows = []
        if not isinstance(rows, Iterable) or isinstance(rows, (str, bytes, Mapping)):
            raise DataError(f"cannot build table {schema.name!r} from {rows!r}")
        return cls(schema, (TupleValue.from_plain(schema, row) for row in rows))

    # -- mutation -------------------------------------------------------------

    def append(self, row: Union[TupleValue, PlainRow]) -> TupleValue:
        value = TupleValue.from_plain(self.schema, row)
        self.rows.append(value)
        return value

    def insert(self, position: int, row: Union[TupleValue, PlainRow]) -> TupleValue:
        value = TupleValue.from_plain(self.schema, row)
        self.rows.insert(position, value)
        return value

    # -- access ------------------------------------------------------------------

    @property
    def ordered(self) -> bool:
        return self.schema.ordered

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[TupleValue]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> TupleValue:
        """Positional access; meaningful for lists (paper: AUTHORS[1] —
        note the *query language* uses 1-based subscripts, this Python API
        is 0-based)."""
        return self.rows[index]

    def to_plain(self) -> list[dict[str, Any]]:
        return [row.to_plain() for row in self.rows]

    def column(self, name: str) -> list[Any]:
        """All values of one attribute."""
        return [row[name] for row in self.rows]

    # -- equality -----------------------------------------------------------------

    def canonical(self) -> tuple:
        items = [row.canonical() for row in self.rows]
        if not self.ordered:
            items.sort(key=_sort_key)
        return ("<list>" if self.ordered else "{set}",) + tuple(items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableValue):
            return NotImplemented
        return (
            self.schema.attribute_names == other.schema.attribute_names
            and self.ordered == other.ordered
            and self.canonical() == other.canonical()
        )

    def __hash__(self) -> int:
        return hash((self.schema.attribute_names, self.canonical()))

    def __repr__(self) -> str:
        kind = "list" if self.ordered else "relation"
        return f"TableValue({self.schema.name!r}, {kind}, {len(self.rows)} rows)"


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------


def _check_value(attr: AttributeSchema, value: Any) -> Any:
    if attr.is_atomic:
        assert attr.atomic_type is not None
        return attr.atomic_type.validate(value)
    if not isinstance(value, TableValue):
        raise DataError(
            f"attribute {attr.name!r} is table-valued; got {value!r} "
            "(use TableValue.from_plain or pass a TableValue)"
        )
    assert attr.table is not None
    if value.schema.attribute_names != attr.table.attribute_names:
        raise DataError(
            f"attribute {attr.name!r} expects schema "
            f"{attr.table.attribute_names}, got {value.schema.attribute_names}"
        )
    return value


def _canonical_atom(value: AtomicValue) -> Any:
    if isinstance(value, datetime.date):
        return ("date", value.toordinal())
    return value


def _sort_key(item: Any) -> str:
    """Total order over canonical forms of heterogeneous values."""
    return repr(item)
