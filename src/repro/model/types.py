"""Atomic attribute types of the extended NF2 data model.

The AIM-II paper uses integers, character strings, and dates (for the ASOF
temporal queries) in its examples.  We add booleans and floating-point
numbers so realistic schemas can be expressed.
"""

from __future__ import annotations

import datetime
import enum

from repro.errors import DataError


class AtomicType(enum.Enum):
    """The atomic (non-table) attribute types."""

    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"
    BOOL = "BOOL"
    DATE = "DATE"

    @classmethod
    def parse(cls, name: str) -> "AtomicType":
        """Resolve a type name (case-insensitive, with common aliases)."""
        normalized = _ALIASES.get(name.strip().upper())
        if normalized is None:
            raise DataError(f"unknown atomic type: {name!r}")
        return cls(normalized)

    @property
    def python_type(self) -> type:
        return _PYTHON_TYPES[self]

    def validate(self, value: object) -> object:
        """Check *value* against this type, coercing where unambiguous.

        Returns the (possibly coerced) value.  ``None`` is accepted for every
        type (SQL-style null).
        """
        if value is None:
            return None
        if self is AtomicType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise DataError(f"expected INT, got {value!r}")
            return value
        if self is AtomicType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise DataError(f"expected FLOAT, got {value!r}")
            return float(value)
        if self is AtomicType.STRING:
            if not isinstance(value, str):
                raise DataError(f"expected STRING, got {value!r}")
            return value
        if self is AtomicType.BOOL:
            if not isinstance(value, bool):
                raise DataError(f"expected BOOL, got {value!r}")
            return value
        if self is AtomicType.DATE:
            if isinstance(value, datetime.date) and not isinstance(value, datetime.datetime):
                return value
            if isinstance(value, str):
                try:
                    return datetime.date.fromisoformat(value)
                except ValueError as exc:
                    raise DataError(f"invalid DATE literal: {value!r}") from exc
            raise DataError(f"expected DATE, got {value!r}")
        raise DataError(f"unhandled atomic type {self}")  # pragma: no cover


_ALIASES = {
    "INT": "INT",
    "INTEGER": "INT",
    "FLOAT": "FLOAT",
    "REAL": "FLOAT",
    "DOUBLE": "FLOAT",
    "DECIMAL": "FLOAT",
    "STRING": "STRING",
    "TEXT": "STRING",
    "CHAR": "STRING",
    "VARCHAR": "STRING",
    "BOOL": "BOOL",
    "BOOLEAN": "BOOL",
    "DATE": "DATE",
}

_PYTHON_TYPES = {
    AtomicType.INT: int,
    AtomicType.FLOAT: float,
    AtomicType.STRING: str,
    AtomicType.BOOL: bool,
    AtomicType.DATE: datetime.date,
}
