"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  The sub-hierarchy mirrors the
subsystems of the AIM-II reproduction: model / storage / catalog / query /
access paths / temporal support.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


# --------------------------------------------------------------------------
# Logical data model
# --------------------------------------------------------------------------


class SchemaError(ReproError):
    """An invalid schema definition (duplicate attributes, bad names, ...)."""


class DDLError(SchemaError):
    """A syntactically or semantically invalid DDL statement."""


class DataError(ReproError):
    """A value does not conform to the schema it is used with."""


# --------------------------------------------------------------------------
# Storage engine
# --------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-engine failures."""


class PageFullError(StorageError):
    """A record does not fit into the target page."""


class RecordTooLargeError(StorageError):
    """A record exceeds the maximum payload a single page can hold."""


class RecordNotFoundError(StorageError):
    """A TID / Mini TID does not reference a live record."""


class SegmentError(StorageError):
    """Invalid page allocation or addressing within a segment."""


class BufferError_(StorageError):
    """Buffer-manager misuse (e.g. unpinning an unpinned page)."""


class TornPageError(StorageError):
    """A page read back from disk failed its checksum — the write was torn
    (partially applied) or the medium corrupted the page."""


class WalError(StorageError):
    """Write-ahead-log misuse or corruption (bad record, commit outside a
    transaction, checkpoint inside one, ...)."""


# --------------------------------------------------------------------------
# Catalog
# --------------------------------------------------------------------------


class CatalogError(ReproError):
    """Base class for catalog failures."""


class DuplicateTableError(CatalogError):
    """A table with this name already exists."""


class UnknownTableError(CatalogError):
    """No table with this name exists."""


class DuplicateIndexError(CatalogError):
    """An index with this name already exists."""


class UnknownIndexError(CatalogError):
    """No index with this name exists."""


# --------------------------------------------------------------------------
# Query language
# --------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for query-language failures."""


class LexError(QueryError):
    """An unrecognized token in the query text."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ParseError(QueryError):
    """A syntactically invalid query."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class BindError(QueryError):
    """An unresolvable name / path, or a type mismatch, in a query."""


class ExecutionError(QueryError):
    """A run-time failure while evaluating a query."""


# --------------------------------------------------------------------------
# Concurrency control
# --------------------------------------------------------------------------


class ConcurrencyError(ExecutionError):
    """A statement failed because of lock contention.

    Derives from :class:`ExecutionError` so existing clients that catch
    query-execution failures also see concurrency aborts; new code can
    catch the narrower class to retry."""


class LockTimeoutError(ConcurrencyError):
    """A lock could not be granted within the session's lock timeout."""


class DeadlockError(ConcurrencyError):
    """This transaction was chosen as the deadlock victim (youngest waiter
    in the wait-for-graph cycle) and must be retried."""


class SerializationError(ConcurrencyError):
    """A snapshot transaction lost a first-committer-wins write conflict:
    the row it tried to write was modified (and committed) by another
    transaction after this transaction's snapshot was taken.  The
    transaction is rolled back; retry it on a fresh snapshot."""


# --------------------------------------------------------------------------
# Access paths & tuple names
# --------------------------------------------------------------------------


class AccessPathError(ReproError):
    """Invalid index definition or index usage."""


class TupleNameError(ReproError):
    """An invalid or dangling tuple name (t-name)."""


# --------------------------------------------------------------------------
# Temporal support
# --------------------------------------------------------------------------


class TemporalError(ReproError):
    """Invalid use of the time-version support (e.g. ASOF on an
    unversioned table)."""
