"""Per-index statistics for cost-based access-path selection.

System R's access-path selection (Selinger et al., SIGMOD 1979) scores
every applicable index on cheap, incrementally-maintained statistics
instead of probing.  The reproduction keeps three numbers per index:

* ``entry_count`` — total postings (one per indexed occurrence; an NF2
  index can hold many per object);
* ``distinct_keys`` — distinct key values currently in the tree;
* ``max_posting_list`` — high-water mark of any single posting list
  (monotone within one index lifetime; deletes do not shrink it, and a
  rebuild — e.g. on database reopen — re-derives the exact value).

``entry_count`` and ``distinct_keys`` are exact and maintained on every
insert/delete; the derived ``avg_posting_list`` is the equality-estimate
(``entry_count / distinct_keys``).  Range estimates use the classical
Selinger magic fraction (1/3) of all entries — no key histograms are
kept.  Statistics are persisted with the catalog sidecar (they are cheap
to serialize and let tooling inspect a database without opening its
trees), and re-derived exactly when indexes are rebuilt on reopen.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Selinger's magic selectivity for a one-sided range predicate when no
#: histogram is available (System R used 1/3 for ``col > value``).
RANGE_SELECTIVITY = 1.0 / 3.0

#: Selectivity assumed for a masked CONTAINS pattern the text index cannot
#: estimate more precisely (unused when fragment postings give a bound).
CONTAINS_SELECTIVITY = 1.0 / 10.0


@dataclass
class IndexStatistics:
    """A point-in-time statistics snapshot for one index."""

    entry_count: int = 0
    distinct_keys: int = 0
    max_posting_list: int = 0

    @property
    def avg_posting_list(self) -> float:
        """Average posting-list length — the equality-probe estimate."""
        if self.distinct_keys <= 0:
            return 0.0
        return self.entry_count / self.distinct_keys

    # -- cost estimates -----------------------------------------------------

    def estimate_eq(self) -> float:
        """Estimated matching entries for ``attr = literal``."""
        return self.avg_posting_list

    def estimate_range(self) -> float:
        """Estimated matching entries for a one-sided range condition."""
        return self.entry_count * RANGE_SELECTIVITY

    # -- persistence --------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "entry_count": self.entry_count,
            "distinct_keys": self.distinct_keys,
            "max_posting_list": self.max_posting_list,
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "IndexStatistics":
        return cls(
            entry_count=int(data.get("entry_count", 0)),
            distinct_keys=int(data.get("distinct_keys", 0)),
            max_posting_list=int(data.get("max_posting_list", 0)),
        )
