"""Word-fragment text index for masked search (Section 5, /Sch78, KW81/).

The paper's text support evaluates masked patterns like ``'*comput*'``
against STRING attributes, optionally accelerated by a text index built on
word fragments.  We implement the classical fragment scheme: every word of
the indexed text contributes all its *n*-grams (n=3 by default) to an
inverted index.  A masked query is answered by

1. extracting the literal runs of the pattern (the parts between ``*`` /
   ``?`` wildcards),
2. intersecting the posting sets of the runs' fragments → candidates,
3. leaving exact verification of candidates to the caller (the executor
   re-checks the CONTAINS predicate on the fetched object).

If the pattern has no run long enough to produce a fragment, the index
reports that it cannot narrow the search (:meth:`search` returns ``None``)
and the caller falls back to a scan.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.concurrency.locks import Latch
from repro.errors import AccessPathError
from repro.index.addresses import AddressingMode, HierarchicalAddress, IndexAddress
from repro.index.manager import IndexDefinition, NF2Index
from repro.index.stats import IndexStatistics
from repro.model.schema import TableSchema
from repro.model.types import AtomicType
from repro.obs import METRICS
from repro.storage.complex_object import OpenObject
from repro.storage.tid import TID

_WORD_RE = re.compile(r"[0-9A-Za-z]+")


def words_of(text: str) -> list[str]:
    return [w.lower() for w in _WORD_RE.findall(text)]


def fragments_of(word: str, n: int) -> set[str]:
    """All n-grams of a word; short words contribute themselves."""
    if len(word) <= n:
        return {word}
    return {word[i:i + n] for i in range(len(word) - n + 1)}


class TextIndex:
    """Fragment index over one STRING attribute path of an NF2 table."""

    def __init__(self, definition: IndexDefinition, fragment_length: int = 3):
        if fragment_length < 2:
            raise AccessPathError("fragment length must be at least 2")
        self.definition = definition
        self.fragment_length = fragment_length
        self._postings: dict[str, set[int]] = {}
        #: address registry: handle -> address (sets need hashables)
        self._addresses: dict[int, IndexAddress] = {}
        self._next_handle = 0
        self._by_root: dict[TID, list[int]] = {}
        self._max_posting = 0  # high-water mark of one fragment's postings
        # reuse NF2Index's path walking to enumerate (text, address) pairs
        self._walker = NF2Index(definition)
        #: short internal latch: DML re-indexing vs concurrent probes
        self._latch = Latch(f"index:{definition.name}")

    def validate_against(self, schema: TableSchema) -> None:
        self.definition.validate_against(schema)
        attr = schema.resolve_path(self.definition.attribute_path)
        if attr.atomic_type is not AtomicType.STRING:
            raise AccessPathError(
                f"text index {self.definition.name!r} needs a STRING "
                f"attribute, got {attr.atomic_type}"
            )

    # -- maintenance ---------------------------------------------------------------

    def index_object(self, obj: OpenObject) -> None:
        # the object walk reads pages; keep it outside the latch so probe
        # latency is bounded by dictionary work only
        texts = [
            (text, address)
            for text, address in self._walker.compute_entries(obj)
            if isinstance(text, str)
        ]
        with self._latch:
            self._deindex_locked(obj.root_tid)
            handles: list[int] = []
            for text, address in texts:
                handle = self._next_handle
                self._next_handle += 1
                self._addresses[handle] = address
                handles.append(handle)
                for word in words_of(text):
                    for fragment in fragments_of(word, self.fragment_length):
                        postings = self._postings.setdefault(fragment, set())
                        postings.add(handle)
                        if len(postings) > self._max_posting:
                            self._max_posting = len(postings)
            self._by_root[obj.root_tid] = handles

    def deindex_object(self, root_tid: TID) -> None:
        with self._latch:
            self._deindex_locked(root_tid)

    def _deindex_locked(self, root_tid: TID) -> None:
        for handle in self._by_root.pop(root_tid, ()):
            self._addresses.pop(handle, None)
            for postings in self._postings.values():
                postings.discard(handle)

    # -- search ----------------------------------------------------------------------

    def _pattern_fragments(self, pattern: str) -> set[str]:
        """The fragments a masked pattern's literal runs contribute (empty
        when no run is long enough — the index cannot narrow the search)."""
        runs = [run for run in re.split(r"[*?]+", pattern) if run]
        fragments: set[str] = set()
        for run in runs:
            for word in words_of(run):
                if len(word) >= self.fragment_length:
                    fragments |= fragments_of(word, self.fragment_length)
        return fragments

    def estimate(self, pattern: str) -> Optional[int]:
        """Estimated candidate count for *pattern* without materializing
        the intersection: the smallest fragment posting set bounds it from
        above.  ``None`` when the pattern cannot be narrowed (the planner
        must skip this index)."""
        fragments = self._pattern_fragments(pattern)
        if not fragments:
            return None
        with self._latch:
            return min(len(self._postings.get(f, ())) for f in fragments)

    def search(self, pattern: str) -> Optional[list[IndexAddress]]:
        """Candidate addresses for a masked pattern, or ``None`` when the
        pattern cannot be narrowed by fragments (caller must scan).

        Candidates are a superset of the true matches; callers verify.
        """
        if METRICS.enabled:
            METRICS.inc("index.text_probes", index=self.definition.name)
        fragments = self._pattern_fragments(pattern)
        if not fragments:
            return None
        with self._latch:
            candidates: Optional[set[int]] = None
            for fragment in fragments:
                postings = self._postings.get(fragment, set())
                candidates = postings if candidates is None else candidates & postings
                if not candidates:
                    return []
            assert candidates is not None
            return [self._addresses[handle] for handle in sorted(candidates)]

    def candidate_roots(self, pattern: str) -> Optional[list[TID]]:
        addresses = self.search(pattern)
        if addresses is None:
            return None
        roots: list[TID] = []
        for address in addresses:
            root = address.root if isinstance(address, HierarchicalAddress) else address
            if root not in roots:
                roots.append(root)
        return roots

    @property
    def fragment_count(self) -> int:
        return len(self._postings)

    @property
    def stats(self) -> IndexStatistics:
        """Statistics over the fragment postings: entries are indexed text
        occurrences, distinct keys are fragments."""
        return IndexStatistics(
            entry_count=len(self._addresses),
            distinct_keys=len(self._postings),
            max_posting_list=self._max_posting,
        )
