"""Access paths: B+-trees, NF2 index addressing schemes, text index."""

from repro.index.btree import BPlusTree
from repro.index.addresses import AddressingMode, HierarchicalAddress
from repro.index.manager import IndexDefinition, NF2Index, FlatIndex
from repro.index.text import TextIndex

__all__ = [
    "BPlusTree",
    "AddressingMode",
    "HierarchicalAddress",
    "IndexDefinition",
    "NF2Index",
    "FlatIndex",
    "TextIndex",
]
