"""An in-memory B+-tree with duplicate support via posting lists.

Index entries follow the paper's shape ``<key, addr_1, ..., addr_k>``: each
distinct key maps to the list of addresses of the objects containing it.
Leaves are chained for range scans.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.errors import AccessPathError
from repro.index.stats import IndexStatistics
from repro.obs import METRICS


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: list[Any] = []
        self.children: list["_Node"] = []      # internal nodes
        self.values: list[list[Any]] = []      # leaves: posting lists
        self.next_leaf: Optional["_Node"] = None


class BPlusTree:
    """B+-tree mapping keys to posting lists of addresses."""

    def __init__(self, order: int = 32):
        if order < 4:
            raise AccessPathError("B+-tree order must be at least 4")
        self._order = order
        self._root = _Node(is_leaf=True)
        self._size = 0  # number of distinct keys
        self._entries = 0  # total postings across all keys
        self._max_posting = 0  # high-water mark of one posting list

    # -- lookup -----------------------------------------------------------------

    def search(self, key: Any) -> list[Any]:
        """The posting list for *key* (empty if absent)."""
        leaf = self._find_leaf(key)
        index = self._position(leaf, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, list[Any]]]:
        """Iterate (key, posting list) over an inclusive/exclusive range."""
        if low is not None:
            leaf = self._find_leaf(low)
            start = self._position(leaf, low)
        else:
            leaf = self._leftmost_leaf()
            start = 0
        while leaf is not None:
            if METRICS.enabled:
                METRICS.inc("index.btree_leaf_visits")
            for index in range(start, len(leaf.keys)):
                key = leaf.keys[index]
                if low is not None:
                    if key < low or (not include_low and key == low):
                        continue
                if high is not None:
                    if key > high or (not include_high and key == high):
                        return
                yield key, list(leaf.values[index])
            leaf = leaf.next_leaf
            start = 0

    def items(self) -> Iterator[tuple[Any, list[Any]]]:
        return self.range()

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return bool(self.search(key))

    # -- statistics --------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Total postings across all keys (maintained incrementally)."""
        return self._entries

    @property
    def stats(self) -> IndexStatistics:
        """A statistics snapshot (entry count exact, distinct keys exact,
        max posting list a high-water mark — see ``index/stats.py``)."""
        return IndexStatistics(
            entry_count=self._entries,
            distinct_keys=self._size,
            max_posting_list=self._max_posting,
        )

    # -- mutation -----------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Add *value* to the posting list of *key*."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root

    def remove(self, key: Any, value: Any) -> bool:
        """Remove one occurrence of *value* from *key*'s posting list.

        Returns True if removed.  Underflowed leaves are tolerated (keys
        with empty posting lists are dropped; structural rebalancing is
        deliberately lazy — correctness of search/range does not depend on
        minimum fill).
        """
        leaf = self._find_leaf(key)
        index = self._position(leaf, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        postings = leaf.values[index]
        try:
            postings.remove(value)
        except ValueError:
            return False
        self._entries -= 1
        if not postings:
            leaf.keys.pop(index)
            leaf.values.pop(index)
            self._size -= 1
        return True

    # -- internals ---------------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        visits = 1
        while not node.is_leaf:
            index = self._child_index(node, key)
            node = node.children[index]
            visits += 1
        if METRICS.enabled:
            METRICS.inc("index.btree_node_visits", visits)
        return node

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    @staticmethod
    def _position(leaf: _Node, key: Any) -> int:
        import bisect

        return bisect.bisect_left(leaf.keys, key)

    @staticmethod
    def _child_index(node: _Node, key: Any) -> int:
        import bisect

        return bisect.bisect_right(node.keys, key)

    def _insert(self, node: _Node, key: Any, value: Any) -> Optional[tuple[Any, _Node]]:
        if node.is_leaf:
            index = self._position(node, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(value)
                self._entries += 1
                if len(node.values[index]) > self._max_posting:
                    self._max_posting = len(node.values[index])
                return None
            node.keys.insert(index, key)
            node.values.insert(index, [value])
            self._size += 1
            self._entries += 1
            if self._max_posting < 1:
                self._max_posting = 1
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None
        index = self._child_index(node, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) > self._order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> tuple[Any, _Node]:
        middle = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> tuple[Any, _Node]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Node(is_leaf=False)
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return separator, right

    # -- diagnostics ----------------------------------------------------------------------

    def validate(self) -> None:
        """Assert structural invariants (tests call this)."""
        keys = [k for k, _ in self.items()]
        if keys != sorted(keys):
            raise AccessPathError("B+-tree keys out of order")
        if len(keys) != len(set(map(repr, keys))):
            raise AccessPathError("duplicate keys in leaves")
        if len(keys) != self._size:
            raise AccessPathError("size counter out of sync")
        entries = sum(len(postings) for _key, postings in self.items())
        if entries != self._entries:
            raise AccessPathError("entry counter out of sync")
        self._validate_node(self._root)

    def _validate_node(self, node: _Node) -> int:
        if node.is_leaf:
            if len(node.keys) != len(node.values):
                raise AccessPathError("leaf keys/values mismatch")
            return 1
        if len(node.children) != len(node.keys) + 1:
            raise AccessPathError("internal fan-out mismatch")
        depths = {self._validate_node(child) for child in node.children}
        if len(depths) != 1:
            raise AccessPathError("unbalanced tree")
        return depths.pop() + 1
