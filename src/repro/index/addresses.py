"""Index address schemes (Section 4.2).

The paper walks through three ways an index entry's addresses can identify
the place of a key inside NF2 tables:

* :attr:`AddressingMode.DATA_TID` — TIDs of the data subtuples holding the
  key.  Insufficient: data subtuples carry no structural information, so the
  ancestors (and even the owning object) cannot be reached.
* :attr:`AddressingMode.ROOT_TID` — TIDs of root MD subtuples.  Reaches the
  object and deduplicates multiple hits per object, but cannot discriminate
  *where inside* the object the key occurred.
* :attr:`AddressingMode.HIERARCHICAL` — the paper's solution: the root TID
  followed by the Mini TIDs of the *data subtuples* of every complex
  subobject on the path down to the data subtuple holding the key (Fig 7b).
  Address components identify complex subobjects — never subtables — so
  conjunctive conditions anchored in the same subobject can be tested purely
  on index information (``P2 = F2``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.storage.tid import MiniTID, TID


class AddressingMode(enum.Enum):
    DATA_TID = "data-tid"
    ROOT_TID = "root-tid"
    HIERARCHICAL = "hierarchical"


@dataclass(frozen=True)
class HierarchicalAddress:
    """``root`` is a full TID; ``components`` are Mini TIDs of data
    subtuples, one per element level along the indexed path, ending at the
    data subtuple that holds the key value."""

    root: TID
    components: tuple[MiniTID, ...]

    def shares_prefix(self, other: "HierarchicalAddress", levels: int) -> bool:
        """Do two addresses agree on the first *levels* element levels
        (and the object)?  ``levels=1`` asks "same complex subobject at the
        first level" — the paper's ``P2 = F2`` test."""
        if self.root != other.root:
            return False
        return self.components[:levels] == other.components[:levels]

    def __str__(self) -> str:
        parts = [str(self.root)] + [str(c) for c in self.components]
        return " . ".join(parts)


#: What an index stores per hit, depending on the mode.
IndexAddress = Union[TID, HierarchicalAddress]


def address_root(address: IndexAddress) -> TID:
    """The object-identifying part of an address, where it exists.

    For DATA_TID addresses this is *not* the object's root — exactly the
    deficiency the paper describes — so callers must not use this helper on
    DATA_TID entries.
    """
    if isinstance(address, HierarchicalAddress):
        return address.root
    return address
