"""Index definitions and maintenance.

An index is defined on an attribute path, e.g. ``FUNCTION`` reached via
``DEPARTMENTS.PROJECTS.MEMBERS.FUNCTION``.  For NF2 tables the index walks
the stored object's Mini Directory alongside its values and emits one entry
per occurrence; the address stored per entry depends on the
:class:`~repro.index.addresses.AddressingMode` (Section 4.2's comparison).

Maintenance is object-granular: DML re-indexes the affected object
(deindex + index), which keeps every index consistent under partial updates
without per-subtuple bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.concurrency.locks import Latch
from repro.errors import AccessPathError
from repro.index.addresses import AddressingMode, HierarchicalAddress, IndexAddress
from repro.index.btree import BPlusTree
from repro.index.stats import IndexStatistics
from repro.model.schema import TableSchema
from repro.obs import METRICS
from repro.storage.complex_object import OpenObject
from repro.storage.minidirectory import DecodedElement
from repro.storage.tid import MiniTID, TID


@dataclass(frozen=True)
class IndexDefinition:
    name: str
    table: str
    attribute_path: tuple[str, ...]
    mode: AddressingMode = AddressingMode.HIERARCHICAL

    def validate_against(self, schema: TableSchema) -> None:
        """The path must descend through table-valued attributes and end at
        an atomic one."""
        current = schema
        for step in self.attribute_path[:-1]:
            attr = current.attribute(step)
            if not attr.is_table:
                raise AccessPathError(
                    f"index {self.name!r}: {step!r} is atomic; the path must "
                    "descend through subtables"
                )
            assert attr.table is not None
            current = attr.table
        last = current.attribute(self.attribute_path[-1])
        if not last.is_atomic:
            raise AccessPathError(
                f"index {self.name!r}: {self.attribute_path[-1]!r} is not atomic"
            )


class NF2Index:
    """A value index over one attribute path of an NF2 table."""

    def __init__(self, definition: IndexDefinition):
        self.definition = definition
        self.tree = BPlusTree()
        self._by_root: dict[TID, list[tuple[Any, IndexAddress]]] = {}
        #: short internal latch: DML re-indexing vs concurrent probes
        self._latch = Latch(f"index:{definition.name}")

    # -- maintenance ------------------------------------------------------------

    def index_object(self, obj: OpenObject) -> None:
        """Add entries for one stored object."""
        # the object walk reads pages; keep it outside the latch so probe
        # latency is bounded by tree work only
        entries = list(self.compute_entries(obj))
        with self._latch:
            for key, address in self._by_root.pop(obj.root_tid, ()):
                self.tree.remove(key, address)
            for key, address in entries:
                self.tree.insert(key, address)
            self._by_root[obj.root_tid] = entries

    def deindex_object(self, root_tid: TID) -> None:
        with self._latch:
            for key, address in self._by_root.pop(root_tid, ()):
                self.tree.remove(key, address)

    def compute_entries(self, obj: OpenObject) -> Iterator[tuple[Any, IndexAddress]]:
        """Walk the object's Mini Directory along the indexed path."""
        yield from self._walk(
            obj, obj.schema, obj.decoded, self.definition.attribute_path, ()
        )

    def _walk(
        self,
        obj: OpenObject,
        schema: TableSchema,
        element: DecodedElement,
        path: tuple[str, ...],
        components: tuple[MiniTID, ...],
    ) -> Iterator[tuple[Any, IndexAddress]]:
        if len(path) == 1:
            atoms = obj.read_atoms(schema, element)
            key = atoms.get(path[0])
            if key is None:
                return  # NULLs are not indexed
            yield key, self._make_address(obj, element, components)
            return
        index = OpenObject._subtable_index(schema, path[0])
        attr = schema.table_attributes[index]
        assert attr.table is not None
        for child in element.subtables[index].elements:
            yield from self._walk(
                obj, attr.table, child, path[1:], components + (child.data,)
            )

    def _make_address(
        self, obj: OpenObject, element: DecodedElement, components: tuple[MiniTID, ...]
    ) -> IndexAddress:
        mode = self.definition.mode
        if mode is AddressingMode.DATA_TID:
            # The first (broken) alternative: the data subtuple's global TID.
            return obj.space.translate(element.data)
        if mode is AddressingMode.ROOT_TID:
            return obj.root_tid
        # HIERARCHICAL: root TID + data-subtuple Mini TIDs per element level;
        # a top-level attribute's single component is the root element's
        # own data subtuple.
        if not components:
            components = (obj.decoded.data,)
        return HierarchicalAddress(root=obj.root_tid, components=components)

    # -- lookup ----------------------------------------------------------------------

    def search(self, key: Any) -> list[IndexAddress]:
        if METRICS.enabled:
            METRICS.inc("index.probes", index=self.definition.name)
        with self._latch:
            return list(self.tree.search(key))

    def range(self, low: Any = None, high: Any = None, **kwargs) -> Iterator[tuple[Any, list[IndexAddress]]]:
        if METRICS.enabled:
            METRICS.inc("index.range_scans", index=self.definition.name)
        with self._latch:
            # materialized under the latch: a concurrent re-index must not
            # rebalance the tree underneath a lazy leaf walk
            return iter(list(self.tree.range(low, high, **kwargs)))

    def roots_for(self, key: Any) -> list[TID]:
        """Distinct object roots containing *key* — only meaningful for
        ROOT_TID and HIERARCHICAL modes (the paper's first approach cannot
        answer this, which is its whole problem)."""
        if self.definition.mode is AddressingMode.DATA_TID:
            raise AccessPathError(
                "data-subtuple TIDs carry no structural information; the "
                "owning objects cannot be derived (Section 4.2)"
            )
        seen: list[TID] = []
        for address in self.search(key):
            root = address.root if isinstance(address, HierarchicalAddress) else address
            if root not in seen:
                seen.append(root)
        return seen

    @property
    def stats(self) -> IndexStatistics:
        """Incrementally-maintained statistics (see ``index/stats.py``)."""
        return self.tree.stats

    def __len__(self) -> int:
        return len(self.tree)


class FlatIndex:
    """A value index over one attribute of a flat (1NF) heap table —
    ordinary System-R style ``<key, TID...>`` entries."""

    def __init__(self, definition: IndexDefinition):
        if len(definition.attribute_path) != 1:
            raise AccessPathError("flat tables index top-level attributes only")
        self.definition = definition
        self.tree = BPlusTree()
        self._by_tid: dict[TID, Any] = {}
        self._latch = Latch(f"index:{definition.name}")

    def index_row(self, tid: TID, key: Any) -> None:
        with self._latch:
            old = self._by_tid.pop(tid, None)
            if old is not None:
                self.tree.remove(old, tid)
            if key is None:
                return
            self.tree.insert(key, tid)
            self._by_tid[tid] = key

    def deindex_row(self, tid: TID) -> None:
        with self._latch:
            key = self._by_tid.pop(tid, None)
            if key is not None:
                self.tree.remove(key, tid)

    def search(self, key: Any) -> list[TID]:
        if METRICS.enabled:
            METRICS.inc("index.probes", index=self.definition.name)
        with self._latch:
            return list(self.tree.search(key))

    def range(self, low: Any = None, high: Any = None, **kwargs):
        if METRICS.enabled:
            METRICS.inc("index.range_scans", index=self.definition.name)
        with self._latch:
            return iter(list(self.tree.range(low, high, **kwargs)))

    @property
    def stats(self) -> IndexStatistics:
        """Incrementally-maintained statistics (see ``index/stats.py``)."""
        return self.tree.stats

    def __len__(self) -> int:
        return len(self.tree)
