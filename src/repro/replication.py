"""WAL log shipping: one primary streams commits to N read replicas.

The paper's complex objects are physically self-contained (the root MD
subtuple carries the object's page list, §4.1), and the PR 2 write-ahead
log already captures every commit as full page after-images plus a
catalog snapshot.  That makes *physical* replication almost free: a
replica is just another process redoing the primary's commit batches
into its own page file and buffer pool, then serving read-only / ASOF /
snapshot queries from them.

Roles
=====

**Primary** — :class:`ReplicationHub`, created lazily by the server when
the first replica connects.  It registers itself as a WAL *shipper*
(:attr:`~repro.wal.manager.WalManager.shippers`): after every durable
commit it receives the committed page images and the catalog snapshot
the COMMIT record carries, stamps them with a monotonically increasing
**batch sequence number**, and fans the encoded batch out to every
attached replica link.  Attach is atomic with commit publication (both
run under the engine's write latch), so a new replica gets a consistent
full snapshot plus exactly the commits after it.

**Replica** — :func:`open_replica` opens a read-only
:class:`~repro.database.Database` (``wal=False`` — shipped images *are*
the log) and starts a :class:`ReplicaTailer` thread that connects to the
primary's normal line-protocol port, sends the ``REPLICATE <seq>``
handshake, and then applies the JSON-lines stream: page images are
redone through :func:`~repro.wal.recovery.redo_page_image` (the same
primitive crash recovery uses), the buffer pool drops its stale copies,
and changed catalog entries are rebuilt from the shipped snapshot.  Each
applied batch is acknowledged back, which is where the primary's
``SYS.REPLICAS`` lag column comes from.  The tailer reconnects with
backoff until it is stopped or the replica is promoted.

Consistency: apply takes table-``X`` locks (through the shared lock
manager) on every table whose pages or catalog entry a batch touches, so
2PL readers on the replica never observe a half-applied commit.  Readers
queue behind apply exactly like they queue behind a local writer; a
deadlock against a multi-table reader is detected by the lock manager
and apply simply retries.

Failover: :func:`promote` stops the tailer, clears
``Database.read_only``, and (for disk-backed replicas) attaches a fresh
WAL so the promoted database is durable in its own right.  The server
exposes it as the ``PROMOTE`` verb.

Wire format (after the ``REPLICATE`` handshake the connection leaves the
``#<n>`` framing and becomes a JSON-lines stream)::

    primary -> replica  {"type": "snapshot", "seq": S, "pages": [[no, b64(zlib(image))], ...], "catalog": {...}}
    primary -> replica  {"type": "commit",   "seq": S, "pages": [...], "catalog": {...}}
    primary -> replica  {"type": "ping",     "seq": S}
    replica -> primary  {"type": "ack",      "seq": S}

See docs/REPLICATION.md for the operational picture.
"""

from __future__ import annotations

import base64
import json
import socket
import threading
import time
import zlib
from typing import TYPE_CHECKING, Callable, Optional

from repro.concurrency.locks import LockMode
from repro.errors import ConcurrencyError, ExecutionError
from repro.obs import METRICS
from repro.wal.recovery import redo_page_image

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.database import Database


# ---------------------------------------------------------------------------
# Batch codec (page images travel zlib-compressed + base64 inside JSON)
# ---------------------------------------------------------------------------


def _encode_pages(pages) -> list:
    return [
        [page_no, base64.b64encode(zlib.compress(bytes(image))).decode("ascii")]
        for page_no, image in pages
    ]


def _decode_pages(blob) -> list:
    return [
        (int(page_no), zlib.decompress(base64.b64decode(data)))
        for page_no, data in blob
    ]


def _encode_message(message: dict) -> bytes:
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def _table_name(table_state: dict) -> str:
    # the segment state carries the table name — cheaper than re-parsing
    # the DDL text for every table in every batch
    return table_state["segment"]["name"]


# ---------------------------------------------------------------------------
# Primary side
# ---------------------------------------------------------------------------


class ReplicaLink:
    """One attached replica, as the primary sees it."""

    def __init__(self, peer: str, deliver: Callable[[bytes], None]):
        self.peer = peer
        #: enqueue one encoded message for this replica's writer (must be
        #: non-blocking and thread-safe — the async server bridges it
        #: onto the event loop with ``call_soon_threadsafe``)
        self.deliver = deliver
        self.connected_at = time.time()
        self.sent_seq = 0
        self.acked_seq = 0
        self.batches = 0
        self.pages = 0
        self.bytes = 0
        self.alive = True


class ReplicationHub:
    """Primary-side fan-out of committed WAL batches to replica links."""

    role = "primary"

    def __init__(self, db: "Database"):
        if db.wal is None:
            raise ExecutionError(
                "replication needs a WAL-enabled (disk-backed) primary"
            )
        self.db = db
        #: commit-batch sequence number; bumped by every shipped commit
        self.seq = 0
        self._latch = threading.Lock()
        self._links: list[ReplicaLink] = []
        db.wal.shippers.append(self.publish)

    # -- link lifecycle ------------------------------------------------------

    def attach(self, deliver: Callable[[bytes], None], peer: str) -> ReplicaLink:
        """Register a replica and hand it a consistent full snapshot.

        Runs under the engine's write latch so no commit can interleave
        between the snapshot read and the link registration: the replica
        sees snapshot ``seq`` and then every commit ``> seq``, exactly
        once.  The checkpoint first flushes every dirty frame, so the
        page file *is* the current state.
        """
        db = self.db
        with db._write_latch:
            db.checkpoint()
            file = db._file
            pages = [
                (page_no, file.read_page(page_no))
                for page_no in range(file.page_count)
            ]
            link = ReplicaLink(peer, deliver)
            with self._latch:
                self._links.append(link)
            self._send(
                link,
                {
                    "type": "snapshot",
                    "seq": self.seq,
                    "pages": _encode_pages(pages),
                    "catalog": db._catalog_state(),
                },
            )
        if METRICS.enabled:
            METRICS.set_gauge("replication.replicas", len(self.links()))
            METRICS.inc("replication.attaches")
        return link

    def detach(self, link: ReplicaLink) -> None:
        link.alive = False
        with self._latch:
            if link in self._links:
                self._links.remove(link)
        if METRICS.enabled:
            METRICS.set_gauge("replication.replicas", len(self.links()))

    def links(self) -> list[ReplicaLink]:
        with self._latch:
            return list(self._links)

    def ack(self, link: ReplicaLink, seq: int) -> None:
        link.acked_seq = max(link.acked_seq, int(seq))

    # -- shipping --------------------------------------------------------------

    def publish(self, pages, catalog_state) -> None:
        """The WAL shipper hook: one durable commit's page images +
        catalog snapshot.  Runs on the committing thread, under the write
        latch, *after* the log fsync."""
        self.seq += 1
        links = self.links()
        if not links:
            return
        message = {
            "type": "commit",
            "seq": self.seq,
            "pages": _encode_pages(pages),
            "catalog": catalog_state,
        }
        data = _encode_message(message)
        for link in links:
            self._send(link, message, data)

    def ping(self) -> bytes:
        """An idle heartbeat carrying the current sequence number (the
        replica derives observable lag from it)."""
        return _encode_message({"type": "ping", "seq": self.seq})

    def _send(self, link: ReplicaLink, message: dict, data: Optional[bytes] = None) -> None:
        if not link.alive:
            return
        if data is None:
            data = _encode_message(message)
        try:
            link.deliver(data)
        except Exception:
            link.alive = False
            return
        link.sent_seq = message["seq"]
        link.batches += 1
        link.pages += len(message.get("pages", ()))
        link.bytes += len(data)
        if METRICS.enabled:
            METRICS.inc("replication.batches_shipped")
            METRICS.inc("replication.bytes_shipped", len(data))

    def shutdown(self) -> None:
        wal = self.db.wal
        if wal is not None and self.publish in wal.shippers:
            wal.shippers.remove(self.publish)
        for link in self.links():
            self.detach(link)

    # -- observability -----------------------------------------------------------

    def replica_rows(self):
        """SYS.REPLICAS rows: one per attached replica."""
        for link in self.links():
            yield {
                "ROLE": "downstream",
                "PEER": str(link.peer),
                "STATE": "streaming" if link.alive else "dead",
                "CONNECTED_AT": link.connected_at,
                "SHIPPED_SEQ": link.sent_seq,
                "APPLIED_SEQ": link.acked_seq,
                "LAG": max(0, self.seq - link.acked_seq),
                "BATCHES": link.batches,
                "PAGES": link.pages,
                "BYTES": link.bytes,
            }

    def wal_row_fields(self) -> dict:
        links = [link for link in self.links() if link.alive]
        return {
            "ROLE": "primary",
            "SHIPPED_SEQ": self.seq,
            "APPLIED_SEQ": min((l.acked_seq for l in links), default=None),
            "REPLICA_LAG": max(
                (self.seq - l.acked_seq for l in links), default=0
            ),
            "REPLICAS": len(links),
        }


# ---------------------------------------------------------------------------
# Replica side
# ---------------------------------------------------------------------------


class ReplicaState:
    """Replication status of a replica database (``db.replication``)."""

    def __init__(self, primary: str):
        self.primary = primary
        self.role = "replica"
        self.connected = False
        self.connected_at: Optional[float] = None
        self.promoted = False
        #: newest primary sequence number observed (commits + pings)
        self.seen_seq = 0
        #: newest batch fully applied and acknowledged
        self.applied_seq = 0
        self.batches = 0
        self.pages_applied = 0
        self.bytes_received = 0
        self.last_error: Optional[str] = None
        #: per-table catalog-state fingerprints of the installed catalog;
        #: apply diffs against it to rebuild only what a batch changed
        self._table_blobs: dict[str, str] = {}
        self._cond = threading.Condition()
        self._tailer: Optional["ReplicaTailer"] = None

    @property
    def lag(self) -> int:
        return max(0, self.seen_seq - self.applied_seq)

    def _note(self, **fields) -> None:
        with self._cond:
            for key, value in fields.items():
                setattr(self, key, value)
            self._cond.notify_all()

    def wait_for_seq(self, seq: int, timeout: float = 30.0) -> bool:
        """Block until every batch up to *seq* is applied (tests and the
        failover drill use it to bound the catch-up window)."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self.applied_seq >= seq or self.promoted, timeout
            )

    def shutdown(self) -> None:
        tailer = self._tailer
        if tailer is not None:
            tailer.stop()
            tailer.join(timeout=5)

    # -- observability -----------------------------------------------------------

    def replica_rows(self):
        state = (
            "promoted"
            if self.promoted
            else ("tailing" if self.connected else "disconnected")
        )
        yield {
            "ROLE": "upstream",
            "PEER": self.primary,
            "STATE": state,
            "CONNECTED_AT": self.connected_at,
            "SHIPPED_SEQ": self.seen_seq,
            "APPLIED_SEQ": self.applied_seq,
            "LAG": self.lag,
            "BATCHES": self.batches,
            "PAGES": self.pages_applied,
            "BYTES": self.bytes_received,
        }

    def wal_row_fields(self) -> dict:
        return {
            "ROLE": self.role,
            "SHIPPED_SEQ": self.seen_seq,
            "APPLIED_SEQ": self.applied_seq,
            "REPLICA_LAG": self.lag,
            "REPLICAS": 0,
        }


class ReplicaTailer(threading.Thread):
    """The replica's tailing thread: connect, handshake, apply, ack."""

    def __init__(
        self,
        db: "Database",
        host: str,
        port: int,
        state: ReplicaState,
        reconnect_delay: float = 0.2,
    ):
        super().__init__(name=f"repro-replica-{host}:{port}", daemon=True)
        self.db = db
        self.host = host
        self.port = port
        self.state = state
        self.reconnect_delay = reconnect_delay
        self._stop_event = threading.Event()
        self._sock: Optional[socket.socket] = None

    def stop(self) -> None:
        self._stop_event.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def run(self) -> None:  # pragma: no branch - loop structure
        state = self.state
        while not self._stop_event.is_set() and not state.promoted:
            try:
                self._tail_once()
            except (OSError, ValueError, KeyError) as exc:
                state.last_error = f"{type(exc).__name__}: {exc}"
            finally:
                state._note(connected=False)
            if self._stop_event.is_set() or state.promoted:
                break
            time.sleep(self.reconnect_delay)

    def _tail_once(self) -> None:
        state = self.state
        sock = socket.create_connection((self.host, self.port), timeout=10)
        self._sock = sock
        try:
            sock.settimeout(None)
            stream = sock.makefile("rwb")
            stream.write(f"REPLICATE {state.applied_seq}\n".encode("utf-8"))
            stream.flush()
            state._note(connected=True, connected_at=time.time())
            for raw in stream:
                if self._stop_event.is_set() or state.promoted:
                    return
                if raw.startswith(b"#"):
                    # still inside the line protocol: the primary refused
                    # the handshake — read its framed error and bail out
                    count = int(raw[1:])
                    detail = b"".join(
                        stream.readline() for _ in range(count)
                    )
                    raise ValueError(
                        detail.decode("utf-8", "replace").strip()
                        or "REPLICATE rejected"
                    )
                message = json.loads(raw)
                seq = int(message.get("seq", 0))
                if seq > state.seen_seq:
                    state._note(seen_seq=seq)
                if METRICS.enabled:
                    METRICS.set_gauge("replication.lag", state.lag)
                if message["type"] == "ping":
                    continue
                apply_batch(self.db, state, message)
                state._note(
                    applied_seq=seq,
                    batches=state.batches + 1,
                    pages_applied=state.pages_applied
                    + len(message.get("pages", ())),
                    bytes_received=state.bytes_received + len(raw),
                )
                if METRICS.enabled:
                    METRICS.inc("replication.batches_applied")
                    METRICS.set_gauge("replication.lag", state.lag)
                stream.write(_encode_message({"type": "ack", "seq": seq}))
                stream.flush()
        finally:
            self._sock = None
            try:
                sock.close()
            except OSError:
                pass


def apply_batch(db: "Database", state: ReplicaState, message: dict) -> None:
    """Redo one shipped batch into the replica.

    Page images go straight into the page file (crash recovery's redo
    primitive) and the buffer pool forgets its stale copies.  Catalog
    entries are rebuilt only where the batch changed something: where the
    per-table catalog fingerprint moved (insert/delete/DDL change the TID
    list or segment state), or where an *indexed* table's pages changed
    (an in-place UPDATE rewrites page bytes without moving the catalog —
    the in-memory index must be rebuilt to follow).  Table-``X`` locks on
    everything touched keep 2PL readers off half-applied state.
    """
    pages = _decode_pages(message.get("pages", ()))
    catalog_state = message["catalog"]
    snapshot = message["type"] == "snapshot"
    page_set = {page_no for page_no, _ in pages}

    table_states = {
        _table_name(ts): ts for ts in catalog_state["tables"]
    }
    new_blobs = {
        name: json.dumps(ts, sort_keys=True)
        for name, ts in table_states.items()
    }
    cached = state._table_blobs
    if snapshot:
        rebuild = set(table_states)
        dropped = {e.name for e in db.catalog.tables()} - set(table_states)
    else:
        rebuild = {
            name
            for name, blob in new_blobs.items()
            if cached.get(name) != blob
        }
        dropped = set(cached) - set(table_states)
        for name, ts in table_states.items():
            if name in rebuild or not ts["indexes"]:
                continue
            if page_set.intersection(ts["segment"]["pages"]):
                rebuild.add(name)

    # every table whose pages this batch rewrites must be reader-free
    # while the new bytes land, indexed or not
    touched = set(rebuild) | dropped
    for name, ts in table_states.items():
        if name not in touched and page_set.intersection(ts["segment"]["pages"]):
            touched.add(name)
    touched = {name for name in touched if db.catalog.has_table(name)} | (
        rebuild & set(table_states)
    )

    txn = _lock_tables_exclusive(db, sorted(touched))
    db._apply_ctx.active = True
    try:
        with db._write_latch:
            for page_no, image in pages:
                redo_page_image(db._file, page_no, image)
                db.buffer.invalidate(page_no)
            if METRICS.enabled:
                METRICS.inc("replication.pages_applied", len(pages))
            for name in dropped:
                if db.catalog.has_table(name):
                    db.catalog.drop_table(name)
                cached.pop(name, None)
            for ts in catalog_state["tables"]:
                name = _table_name(ts)
                if name in rebuild:
                    if db.catalog.has_table(name):
                        db.catalog.drop_table(name)
                    db._restore_table_entry(ts, current_only=True)
                cached[name] = new_blobs[name]
            if rebuild or dropped:
                db.schema_epoch += 1  # compiled plans must re-resolve
    finally:
        db._apply_ctx.active = False
        if txn is not None:
            db.locks.release_all(txn)


def _lock_tables_exclusive(db: "Database", names: list) -> Optional[int]:
    """Take table-``X`` on *names* for the apply scope, retrying if the
    deadlock detector picks apply as the victim against a reader that
    locked the same tables in the opposite order."""
    if not names:
        return None
    while True:
        txn = db.locks.begin("replica-apply")
        try:
            for name in names:
                db.locks.acquire(txn, ("table", name), LockMode.X)
            return txn
        except ConcurrencyError:
            db.locks.release_all(txn)
            time.sleep(0.02)


# ---------------------------------------------------------------------------
# Role management
# ---------------------------------------------------------------------------


def open_replica(
    primary: str,
    path: Optional[str] = None,
    reconnect_delay: float = 0.2,
    **db_kwargs,
) -> "Database":
    """Open a read-only replica of *primary* (``"host:port"``).

    The returned database starts empty, and the background tailer fills
    it: first the full snapshot, then every commit the primary ships.
    ``db.replication`` (a :class:`ReplicaState`) reports progress;
    :func:`promote` turns the replica into a writable primary.
    """
    from repro.database import Database

    host, _, port_text = primary.rpartition(":")
    if not host or not port_text.isdigit():
        raise ExecutionError(
            f"--replica-of wants host:port, got {primary!r}"
        )
    db = Database(path=path, wal=False, read_only=True, mvcc=False, **db_kwargs)
    state = ReplicaState(primary)
    db.replication = state
    tailer = ReplicaTailer(
        db, host, int(port_text), state, reconnect_delay=reconnect_delay
    )
    state._tailer = tailer
    tailer.start()
    return db


def promote(db: "Database") -> None:
    """Fail over: stop tailing, accept writes, become durable.

    Idempotent-ish by rejection: promoting a non-replica raises.  For a
    disk-backed replica a fresh WAL is attached and checkpointed so the
    promoted database recovers like any primary from here on.
    """
    state = db.replication
    if not isinstance(state, ReplicaState):
        raise ExecutionError(
            "PROMOTE: this database is not a replica (nothing to promote)"
        )
    if state.promoted:
        raise ExecutionError("PROMOTE: replica is already promoted")
    state._note(promoted=True)
    state.shutdown()
    db.read_only = False
    state.role = "promoted"
    if db._path is not None and db.wal is None:
        from repro.wal.manager import WalManager

        db.wal = WalManager(db._wal_path)
        db.buffer.wal = db.wal
        db.checkpoint()
    if METRICS.enabled:
        METRICS.inc("replication.promotions")
