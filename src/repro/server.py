"""A multi-client line-protocol server over one shared database.

::

    python -m repro.server db.aim [--host 127.0.0.1] [--port 7474]

The server opens the database once and hands every TCP connection its own
:class:`~repro.concurrency.session.Session`, so clients run concurrent
statements under the hierarchical lock manager while sharing the buffer
pool, the WAL, and the catalog.  One thread per connection
(:class:`socketserver.ThreadingTCPServer`) keeps the model identical to
the in-process multi-session tests.

Wire protocol (text, UTF-8, newline-framed — telnet/netcat friendly):

* The client sends **one line per statement** (the trailing ``;`` is
  optional).  Shell dot-commands (``.tables``, ``.locks``, ...) work too.
* Three session-control verbs manage an explicit transaction scope:
  ``BEGIN``, ``COMMIT``, ``ROLLBACK`` (see
  :mod:`repro.concurrency.session`).  ``BEGIN SNAPSHOT`` and ``BEGIN 2PL``
  pick the isolation level explicitly (``BEGIN`` alone takes the
  database's default: snapshot isolation under ``mvcc=True``, strict
  two-phase locking otherwise).
* ``METRICS`` returns the live metrics registry rendered in the
  Prometheus text format — the scrape surface
  (``printf 'METRICS\\n' | nc host port`` works like a ``curl`` against
  ``/metrics``); ``SYS.*`` tables offer the same data as queryable NF²
  relations.
* ``TRACE <id>`` arms a client-supplied trace id (a bare token or a W3C
  ``traceparent`` header) for this connection's **next** statement: that
  statement is traced even when tracing is globally off, its trace is
  pinned in the retention buffer, and ``SYS.TRACES`` / ``SYS.SPANS`` /
  ``TRACE EXPORT <id>`` resolve the id back to the span tree.
* ``TRACE EXPORT [id]`` returns the retained trace(s) as one line of
  Chrome ``trace_event`` JSON (all retained traces when *id* is omitted)
  — pipe it into a file and open it in Perfetto.
* The server answers with a header line ``#<n>`` followed by exactly
  *n* payload lines — the same text the shell would have printed.
  Errors are payload lines starting with ``error:``; the connection
  stays usable.
* ``.quit`` (or EOF) ends the connection; the session's locks are
  released and any open transaction is rolled back.

:class:`LineClient` is the matching blocking client used by the tests
and the concurrency benchmark.
"""

from __future__ import annotations

import argparse
import io
import socket
import socketserver
import sys
import threading
from typing import Optional

from repro.concurrency.session import Session
from repro.database import Database
from repro.errors import ReproError
from repro.shell import dot_command, execute_line


def _frame(text: str) -> bytes:
    """Encode a response as ``#<n>`` + n lines."""
    lines = text.splitlines()
    body = "".join(line + "\n" for line in lines)
    return f"#{len(lines)}\n{body}".encode("utf-8")


class _Connection(socketserver.StreamRequestHandler):
    """One client: a session plus an optional explicit transaction."""

    server: "DatabaseServer"

    def handle(self) -> None:
        db = self.server.db
        peer = "%s:%s" % self.client_address[:2]
        session = db.session(name=f"client-{peer}")
        txn = None  # open _SessionTransaction, if any
        try:
            for raw in self.rfile:
                line = raw.decode("utf-8", errors="replace").strip()
                if line.endswith(";"):
                    line = line[:-1].strip()
                if not line:
                    self._reply("")
                    continue
                upper = line.upper()
                out = io.StringIO()
                if line.startswith("."):
                    if line == ".quit":
                        self._reply("bye")
                        break
                    # dot-commands read shared state; route to the real db
                    dot_command(db, line, out=out)
                elif upper == "METRICS":
                    # the scrape verb: Prometheus text exposition
                    from repro.obs import METRICS

                    out.write(METRICS.to_prometheus())
                elif upper == "TRACE EXPORT" or upper.startswith("TRACE EXPORT "):
                    from repro.obs import TRACER, chrome_trace_json

                    from repro.obs import parse_trace_id

                    wanted = line[len("TRACE EXPORT"):].strip()
                    if wanted:
                        try:
                            wanted = parse_trace_id(wanted)
                        except ValueError:
                            pass  # fall through: lookup simply misses
                        trace = TRACER.get(wanted)
                        selected = [trace] if trace is not None else []
                    else:
                        selected = list(TRACER.traces)
                    if not selected:
                        print(
                            f"error: no retained trace"
                            + (f" {wanted!r}" if wanted else "s"),
                            file=out,
                        )
                    else:
                        print(chrome_trace_json(selected), file=out)
                elif upper.startswith("TRACE "):
                    # arm a trace id for this connection's next statement
                    from repro.obs import TRACER

                    try:
                        armed = TRACER.arm_trace_id(line[len("TRACE "):])
                        print(f"trace armed {armed}", file=out)
                    except ValueError as exc:
                        print(f"error: {exc}", file=out)
                elif upper == "BEGIN" or upper.startswith("BEGIN "):
                    if txn is not None:
                        print("error: transaction already open", file=out)
                    else:
                        isolation = line[len("BEGIN"):].strip().lower() or None
                        try:
                            txn = session.transaction(isolation=isolation)
                            txn.__enter__()
                            if isolation is None:
                                print("begin", file=out)
                            else:
                                print(f"begin ({txn.isolation})", file=out)
                        except ReproError as exc:
                            txn = None
                            print(f"error: {exc}", file=out)
                elif upper in ("COMMIT", "ROLLBACK"):
                    if txn is None:
                        print("error: no open transaction", file=out)
                    else:
                        try:
                            if upper == "COMMIT":
                                txn.__exit__(None, None, None)
                                print("commit", file=out)
                            else:
                                exc = ReproError("client rollback")
                                txn.__exit__(type(exc), exc, None)
                                print("rollback", file=out)
                        except ReproError as exc:
                            print(f"error: {exc}", file=out)
                        finally:
                            txn = None
                else:
                    # statement dispatch: the shell's printer over a
                    # session (same rendering as the interactive shell)
                    execute_line(session, line, out=out)
                self._reply(out.getvalue())
        finally:
            if txn is not None:
                exc = ReproError("connection closed")
                try:
                    txn.__exit__(type(exc), exc, None)
                except ReproError:
                    pass
            session.close()

    def _reply(self, text: str) -> None:
        try:
            self.wfile.write(_frame(text))
            self.wfile.flush()
        except OSError:  # client went away mid-reply
            pass


class DatabaseServer(socketserver.ThreadingTCPServer):
    """Thread-per-connection TCP server owning one :class:`Database`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, db: Database, host: str = "127.0.0.1", port: int = 7474):
        self.db = db
        super().__init__((host, port), _Connection)

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[:2]

    def serve_background(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a daemon thread (for tests)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-server", daemon=True
        )
        thread.start()
        return thread


class LineClient:
    """Blocking client for the line protocol (tests + benchmark)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def send(self, statement: str) -> str:
        """Send one statement; return the response payload as text."""
        self._file.write((statement.strip() + "\n").encode("utf-8"))
        self._file.flush()
        header = self._file.readline()
        if not header.startswith(b"#"):
            raise ConnectionError(f"bad response header: {header!r}")
        count = int(header[1:])
        lines = [
            self._file.readline().decode("utf-8") for _ in range(count)
        ]
        return "".join(lines)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "LineClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="serve one NF2 database to concurrent line-protocol clients",
    )
    parser.add_argument("database", nargs="?", default=None,
                        help="database file (omit for in-memory)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7474)
    parser.add_argument("--init", default=None,
                        help="';'-separated statements to run before serving")
    parser.add_argument("--mvcc", action="store_true",
                        help="open with MVCC snapshot reads "
                             "(enables BEGIN SNAPSHOT)")
    args = parser.parse_args(argv)

    db = Database(path=args.database, mvcc=args.mvcc)
    if args.init:
        from repro.shell import run_script

        run_script(db, args.init, out=sys.stderr)
    server = DatabaseServer(db, host=args.host, port=args.port)
    host, port = server.address
    print(f"serving {args.database or 'in-memory database'} on {host}:{port}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        if args.database:
            db.save()
        db.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
