"""A multi-client line-protocol server over one shared database.

::

    python -m repro.server db.aim [--host 127.0.0.1] [--port 7474]
    python -m repro.server replica.aim --replica-of 127.0.0.1:7474

The server opens the database once and hands every TCP connection its own
:class:`~repro.concurrency.session.Session`, so clients run concurrent
statements under the hierarchical lock manager while sharing the buffer
pool, the WAL, and the catalog.

Two server engines speak the same protocol:

* :class:`AsyncDatabaseServer` (the default) — an asyncio event loop
  with **request pipelining**: each connection's reader accepts
  statements as fast as the client sends them, a bounded worker pool
  executes them (statements still run on threads against the ``Session``
  layer, so locking semantics are unchanged), and responses are framed
  back **in send order** per connection.  Admission control sheds load:
  when more than ``--queue`` statements are outstanding server-wide, new
  statements are answered immediately with an ``error: server
  overloaded`` line instead of queueing without bound
  (``server.queue_depth`` / ``server.rejected`` / ``server.requests``
  metrics; queued time shows up as the ``Server/Queue`` wait event).
* :class:`DatabaseServer` (``--threaded``) — the original
  thread-per-connection :class:`socketserver.ThreadingTCPServer`, kept
  as the ablation baseline (``benchmarks/test_ablation_server.py``).

Wire protocol (text, UTF-8, newline-framed — telnet/netcat friendly):

* The client sends **one line per statement** (the trailing ``;`` is
  optional).  Shell dot-commands (``.tables``, ``.locks``, ...) work too.
* Three session-control verbs manage an explicit transaction scope:
  ``BEGIN``, ``COMMIT``, ``ROLLBACK`` (see
  :mod:`repro.concurrency.session`).  ``BEGIN SNAPSHOT`` and ``BEGIN 2PL``
  pick the isolation level explicitly (``BEGIN`` alone takes the
  database's default: snapshot isolation under ``mvcc=True``, strict
  two-phase locking otherwise).
* ``METRICS`` returns the live metrics registry rendered in the
  Prometheus text format — the scrape surface
  (``printf 'METRICS\\n' | nc host port`` works like a ``curl`` against
  ``/metrics``); ``SYS.*`` tables offer the same data as queryable NF²
  relations.
* ``TRACE <id>`` arms a client-supplied trace id (a bare token or a W3C
  ``traceparent`` header) for this connection's **next** statement;
  ``TRACE EXPORT [id]`` returns retained trace(s) as Chrome
  ``trace_event`` JSON.
* ``PROMOTE`` fails a replica over: it stops tailing the primary,
  accepts writes, and (disk-backed) attaches its own WAL
  (see :mod:`repro.replication` and docs/REPLICATION.md).
* ``REPLICATE <seq>`` is the log-shipping handshake sent by a replica's
  tailer, never by interactive clients: the connection leaves the
  ``#<n>`` framing and becomes a JSON-lines stream of commit batches
  (async server only).
* The server answers with a header line ``#<n>`` followed by exactly
  *n* payload lines — the same text the shell would have printed.
  Errors are payload lines starting with ``error:``; the connection
  stays usable.
* ``.quit`` / ``.exit`` (any case, like every other verb) or EOF ends
  the connection; the session's locks are released and any open
  transaction is rolled back.  The server also hangs up — and rolls the
  open transaction back — when a reply cannot be delivered: a client
  that vanished mid-statement must not keep executing statements.

:class:`LineClient` is the matching blocking client used by the tests
and the benchmarks; :meth:`LineClient.pipeline` sends a batch of
statements before reading any response (the pipelining fast path).
"""

from __future__ import annotations

import argparse
import asyncio
import io
import json
import os
import socket
import socketserver
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.concurrency.session import Session
from repro.database import Database
from repro.errors import ReproError
from repro.obs import METRICS, WAITS
from repro.shell import dot_command, execute_line

#: longest accepted protocol line (statements and replication acks)
_LINE_LIMIT = 4 * 1024 * 1024


def _frame(text: str) -> bytes:
    """Encode a response as ``#<n>`` + n lines.

    Splits on ``"\\n"`` **only**: ``str.splitlines`` also breaks on
    ``\\x0b``/``\\x0c``/``\\x1c``-``\\x1e``/``\\x85``/U+2028/U+2029, while
    the reading side (:class:`LineClient`, ``readline``) only honours
    ``\\n`` — a string value containing a vertical tab used to desync the
    framing (the header promised more lines than ``readline`` could
    find).
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # a trailing newline is framing, not content
    body = "".join(line + "\n" for line in lines)
    return f"#{len(lines)}\n{body}".encode("utf-8")


class _ClientState:
    """Per-connection protocol state (the open explicit transaction)."""

    __slots__ = ("txn",)

    def __init__(self) -> None:
        self.txn = None  # open _SessionTransaction, if any


def process_statement(
    db: Database, session: Session, state: _ClientState, line: str
) -> tuple[str, bool]:
    """Run one protocol line; returns ``(payload, connection_stays_open)``.

    Shared by both server engines so the threaded baseline and the async
    pipeline answer byte-identically.
    """
    line = line.strip()
    if line.endswith(";"):
        line = line[:-1].strip()
    if not line:
        return "", True
    upper = line.upper()
    out = io.StringIO()
    if line.startswith("."):
        # dot-commands match case-insensitively, exactly like the verbs
        # (`.QUIT` must hang up just as `.quit` does)
        word = line.split(None, 1)[0].lower()
        if word in (".quit", ".exit"):
            return "bye", False
        # dot-commands read shared state; route to the real db
        dot_command(db, line, out=out)
    elif upper == "METRICS":
        # the scrape verb: Prometheus text exposition
        out.write(METRICS.to_prometheus())
    elif upper == "HEALTH":
        # the readiness probe: first line is "health: ok|pending|alerting";
        # orchestration gates replica promotion / traffic on it
        from repro.obs.slo import render_health

        out.write(render_health(db))
    elif upper == "PROMOTE":
        from repro.replication import promote

        try:
            promote(db)
            print("promoted: accepting writes", file=out)
        except ReproError as exc:
            print(f"error: {exc}", file=out)
    elif upper == "TRACE EXPORT" or upper.startswith("TRACE EXPORT "):
        from repro.obs import TRACER, chrome_trace_json, parse_trace_id

        wanted = line[len("TRACE EXPORT"):].strip()
        if wanted:
            try:
                wanted = parse_trace_id(wanted)
            except ValueError:
                pass  # fall through: lookup simply misses
            trace = TRACER.get(wanted)
            selected = [trace] if trace is not None else []
        else:
            selected = list(TRACER.traces)
        if not selected:
            print(
                f"error: no retained trace"
                + (f" {wanted!r}" if wanted else "s"),
                file=out,
            )
        else:
            print(chrome_trace_json(selected), file=out)
    elif upper.startswith("TRACE "):
        # arm a trace id for this connection's next statement
        from repro.obs import TRACER

        try:
            armed = TRACER.arm_trace_id(line[len("TRACE "):])
            print(f"trace armed {armed}", file=out)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
    elif upper == "BEGIN" or upper.startswith("BEGIN "):
        if state.txn is not None:
            print("error: transaction already open", file=out)
        else:
            isolation = line[len("BEGIN"):].strip().lower() or None
            try:
                txn = session.transaction(isolation=isolation)
                txn.__enter__()
                state.txn = txn
                if isolation is None:
                    print("begin", file=out)
                else:
                    print(f"begin ({txn.isolation})", file=out)
            except ReproError as exc:
                print(f"error: {exc}", file=out)
    elif upper in ("COMMIT", "ROLLBACK"):
        if state.txn is None:
            print("error: no open transaction", file=out)
        else:
            try:
                if upper == "COMMIT":
                    state.txn.__exit__(None, None, None)
                    print("commit", file=out)
                else:
                    exc = ReproError("client rollback")
                    state.txn.__exit__(type(exc), exc, None)
                    print("rollback", file=out)
            except ReproError as exc:
                print(f"error: {exc}", file=out)
            finally:
                state.txn = None
    else:
        # statement dispatch: the shell's printer over a session (same
        # rendering as the interactive shell)
        execute_line(session, line, out=out)
    return out.getvalue(), True


def _hangup(session: Session, state: _ClientState) -> None:
    """Connection teardown: roll back the open transaction (its locks
    must not outlive the client) and close the session."""
    if state.txn is not None:
        exc = ReproError("connection closed")
        try:
            state.txn.__exit__(type(exc), exc, None)
        except ReproError:
            pass
        state.txn = None
    session.close()


# ---------------------------------------------------------------------------
# The threaded baseline (ablation arm; kept protocol-identical)
# ---------------------------------------------------------------------------


class _Connection(socketserver.StreamRequestHandler):
    """One client: a session plus an optional explicit transaction."""

    server: "DatabaseServer"

    def handle(self) -> None:
        db = self.server.db
        peer = "%s:%s" % self.client_address[:2]
        session = db.session(name=f"client-{peer}")
        state = _ClientState()
        try:
            for raw in self.rfile:
                line = raw.decode("utf-8", errors="replace").strip()
                if line.upper().startswith("REPLICATE"):
                    self._reply(
                        "error: REPLICATE needs the async server "
                        "(run without --threaded)"
                    )
                    break
                payload, keep = process_statement(db, session, state, line)
                if not self._reply(payload) or not keep:
                    break
        finally:
            _hangup(session, state)

    def _reply(self, text: str) -> bool:
        """Deliver one framed response; False when the client is gone —
        the caller must hang up instead of executing further statements
        for a dead peer."""
        try:
            self.wfile.write(_frame(text))
            self.wfile.flush()
            return True
        except OSError:  # client went away mid-reply
            return False


class DatabaseServer(socketserver.ThreadingTCPServer):
    """Thread-per-connection TCP server owning one :class:`Database`.

    The pre-pipelining engine: one blocking statement per round trip.
    Kept as the A/B baseline — ``python -m repro.server --threaded``.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, db: Database, host: str = "127.0.0.1", port: int = 7474):
        self.db = db
        super().__init__((host, port), _Connection)

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[:2]

    def serve_background(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a daemon thread (for tests)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-server", daemon=True
        )
        thread.start()
        return thread


# ---------------------------------------------------------------------------
# The async pipelined server
# ---------------------------------------------------------------------------


class AsyncDatabaseServer:
    """Asyncio event-loop server with request pipelining + log shipping.

    Per connection, a reader coroutine accepts statements as fast as the
    client sends them and a responder coroutine executes them one at a
    time (sessions are single-statement engines) on a **shared bounded
    worker pool**, framing responses back strictly in send order.  A
    client that writes N statements before reading anything therefore
    pays one round trip for the whole batch instead of N.

    Admission control: at most *max_queue* statements may be outstanding
    (queued or running) server-wide.  Beyond that, new statements are
    answered — still in order — with ``error: server overloaded ...``
    and counted in ``server.rejected``; the live backlog is the
    ``server.queue_depth`` gauge, and time spent queued is attributed to
    the ``Server/Queue`` wait event.

    A ``REPLICATE <seq>`` first line switches the connection into WAL
    log shipping (see :mod:`repro.replication`): the server attaches the
    peer to the database's :class:`~repro.replication.ReplicationHub`
    (created on first use), streams the snapshot + every committed batch
    as JSON lines, and consumes acks to surface per-replica lag in
    ``SYS.REPLICAS``.
    """

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 7474,
        workers: Optional[int] = None,
        max_queue: int = 128,
        ping_interval: float = 0.5,
    ):
        self.db = db
        self.workers = workers or min(8, (os.cpu_count() or 2))
        self.max_queue = max_queue
        self.ping_interval = ping_interval
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping: Optional[asyncio.Event] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._address: Optional[tuple[str, int]] = None
        self._started = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        #: statements admitted and not yet finished (server-wide)
        self._queued = 0
        self._queued_latch = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("server is not listening yet")
        return self._address

    def serve_forever(self) -> None:
        """Run the event loop on the calling thread until :meth:`shutdown`."""
        try:
            asyncio.run(self._main())
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)

    def serve_background(self) -> threading.Thread:
        """Run the event loop on a daemon thread; returns once bound."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-async-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self._thread

    def shutdown(self) -> None:
        loop, stopping = self._loop, self._stopping
        if loop is not None and stopping is not None:
            try:
                loop.call_soon_threadsafe(stopping.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=10)

    def server_close(self) -> None:
        """socketserver API parity — everything closes in :meth:`shutdown`."""

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-worker"
        )
        try:
            server = await asyncio.start_server(
                self._client, self._host, self._port, limit=_LINE_LIMIT
            )
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            raise
        self._address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._stopping.wait()

    # -- per-connection plumbing -------------------------------------------

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername") or ("?", 0)
        peer = "%s:%s" % tuple(peername[:2])
        db = self.db
        session = db.session(name=f"client-{peer}")
        state = _ClientState()
        queue: asyncio.Queue = asyncio.Queue()
        responder = asyncio.ensure_future(
            self._respond_loop(queue, writer, session, state)
        )
        try:
            await self._client_reader(reader, writer, queue, responder, peer)
        except asyncio.CancelledError:
            pass  # server shutdown: fall through to the hangup below
        finally:
            responder.cancel()
            self._drain_queue(queue)
            _hangup(session, state)
            writer.close()

    async def _client_reader(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        queue: asyncio.Queue,
        responder: "asyncio.Future",
        peer: str,
    ) -> None:
        """Accept statements as fast as the client sends them (the
        pipelining half); the responder drains the queue in order."""
        while not responder.done():
            raw = await reader.readline()
            if not raw:
                break
            line = raw.decode("utf-8", errors="replace").strip()
            upper = line.upper()
            if upper == "REPLICATE" or upper.startswith("REPLICATE "):
                # drain the pipeline, then switch to log shipping
                await queue.put(None)
                await responder
                await self._stream_wal(reader, writer, peer)
                return
            if METRICS.enabled:
                METRICS.inc("server.requests")
            with self._queued_latch:
                admit = self._queued < self.max_queue
                if admit:
                    self._queued += 1
                depth = self._queued
            if METRICS.enabled:
                METRICS.set_gauge("server.queue_depth", depth)
            if admit:
                await queue.put((line, time.perf_counter()))
            else:
                if METRICS.enabled:
                    METRICS.inc("server.rejected")
                await queue.put(
                    (
                        "error: server overloaded: admission queue is "
                        f"full ({self.max_queue} statements outstanding);"
                        " retry",
                        None,
                    )
                )
        await queue.put(None)
        await responder

    async def _respond_loop(
        self,
        queue: asyncio.Queue,
        writer: asyncio.StreamWriter,
        session: Session,
        state: _ClientState,
    ) -> None:
        """Write framed responses strictly in arrival order.

        Whatever is already queued behind the head item runs with it in
        one worker hop, and the batch's replies go out in one coalesced
        write — a pipelined client pays the loop/executor round-trip and
        the socket write per *batch*, not per statement.
        """
        loop = asyncio.get_running_loop()
        while True:
            item = await queue.get()
            closing = item is None
            batch = [] if closing else [item]
            while not closing:
                try:
                    extra = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    closing = True
                else:
                    batch.append(extra)
            if batch:
                results = await loop.run_in_executor(
                    self._pool, self._execute_batch, session, state, batch
                )
                try:
                    writer.write(
                        b"".join(_frame(text) for text, _ in results)
                    )
                    await writer.drain()
                except (ConnectionError, OSError):
                    # dead client: stop executing its backlog; closing the
                    # transport pops the reader loop out of readline()
                    writer.close()
                    return
                if not results[-1][1]:  # a .quit ended the batch
                    writer.close()
                    return
            if closing:
                return

    def _execute_batch(
        self,
        session: Session,
        state: _ClientState,
        batch: list,
    ) -> list:
        """Worker-thread entry: run a run of queued statements back to
        back.  Every admitted item is un-admitted here, even when a
        ``.quit`` earlier in the batch stops execution of the rest."""
        results = []
        done = False
        for line, enqueued in batch:
            if enqueued is None:
                if not done:  # pre-rendered admission reject
                    results.append((line, True))
                continue
            try:
                if done:
                    continue  # statements pipelined after a .quit
                token = WAITS.enter("Server/Queue")
                token.started = enqueued  # waited since admission
                WAITS.exit(token)
                payload, keep = process_statement(
                    self.db, session, state, line
                )
                results.append((payload, keep))
                if not keep:
                    done = True
            finally:
                self._unadmit()
        return results

    def _unadmit(self) -> None:
        with self._queued_latch:
            self._queued -= 1
            depth = self._queued
        if METRICS.enabled:
            METRICS.set_gauge("server.queue_depth", depth)

    def _drain_queue(self, queue: asyncio.Queue) -> None:
        """Un-admit statements a dead connection left behind: they were
        counted at admission but will never reach a worker."""
        while True:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is not None and item[1] is not None:
                self._unadmit()

    # -- log shipping (primary side) ---------------------------------------

    async def _stream_wal(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer: str,
    ) -> None:
        from repro.replication import ReplicationHub, ReplicaState

        db = self.db
        loop = asyncio.get_running_loop()
        hub = db.replication
        problem = None
        if isinstance(hub, ReplicaState):
            problem = "this server is itself a replica; replicate from the primary"
        elif db.wal is None:
            problem = "replication needs a WAL-enabled (disk-backed) primary"
        if problem is not None:
            try:
                writer.write(_frame(f"error: {problem}"))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        if hub is None:
            hub = ReplicationHub(db)
            db.replication = hub
        outgoing: asyncio.Queue = asyncio.Queue()

        def deliver(data: bytes) -> None:
            # commit threads hand batches to the event loop; the pump
            # coroutine owns the socket
            loop.call_soon_threadsafe(outgoing.put_nowait, data)

        # attach checkpoints + snapshots the whole database — off-loop
        link = await loop.run_in_executor(self._pool, hub.attach, deliver, peer)
        pump = asyncio.ensure_future(self._pump_batches(outgoing, writer, hub))
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                try:
                    message = json.loads(raw)
                except ValueError:
                    continue
                if message.get("type") == "ack":
                    hub.ack(link, message.get("seq", 0))
        finally:
            hub.detach(link)
            pump.cancel()
            writer.close()

    async def _pump_batches(
        self, outgoing: asyncio.Queue, writer: asyncio.StreamWriter, hub
    ) -> None:
        """Drain shipped batches to one replica; heartbeat when idle so
        the replica can observe lag (and liveness) without traffic."""
        try:
            while True:
                try:
                    data = await asyncio.wait_for(
                        outgoing.get(), timeout=self.ping_interval
                    )
                except asyncio.TimeoutError:
                    data = hub.ping()
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError):
            pass


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


class LineClient:
    """Blocking client for the line protocol (tests + benchmarks)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def _write_statement(self, statement: str) -> None:
        self._file.write((statement.strip() + "\n").encode("utf-8"))

    def _read_reply(self) -> str:
        header = self._file.readline()
        if not header:
            raise ConnectionError("connection closed by server (no header)")
        if not header.startswith(b"#"):
            raise ConnectionError(f"bad response header: {header!r}")
        count = int(header[1:])
        lines = []
        for _ in range(count):
            line = self._file.readline()
            if not line.endswith(b"\n"):
                # readline() returns b"" (or a partial line) at EOF — a
                # short payload must be an error, never silent truncation
                raise ConnectionError(
                    f"connection closed mid-payload "
                    f"(got {len(lines)} of {count} lines)"
                )
            lines.append(line.decode("utf-8"))
        return "".join(lines)

    def send(self, statement: str) -> str:
        """Send one statement; return the response payload as text."""
        self._write_statement(statement)
        self._file.flush()
        return self._read_reply()

    def pipeline(self, statements) -> list[str]:
        """Send a batch of statements before reading any response.

        Against the async server the whole batch costs one round trip;
        responses come back in statement order.  Keep batches under the
        server's admission bound or the tail gets ``error: server
        overloaded`` replies.
        """
        statements = list(statements)
        for statement in statements:
            self._write_statement(statement)
        self._file.flush()
        return [self._read_reply() for _ in statements]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "LineClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="serve one NF2 database to concurrent line-protocol clients",
    )
    parser.add_argument("database", nargs="?", default=None,
                        help="database file (omit for in-memory)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7474)
    parser.add_argument("--init", default=None,
                        help="';'-separated statements to run before serving")
    parser.add_argument("--mvcc", action="store_true",
                        help="open with MVCC snapshot reads "
                             "(enables BEGIN SNAPSHOT)")
    parser.add_argument("--replica-of", default=None, metavar="HOST:PORT",
                        help="serve a read-only replica tailing this "
                             "primary's WAL (PROMOTE fails it over)")
    parser.add_argument("--threaded", action="store_true",
                        help="legacy thread-per-connection engine "
                             "(one blocking statement per round trip; "
                             "the ablation baseline)")
    parser.add_argument("--workers", type=int, default=None,
                        help="async engine: statement worker threads "
                             "(default: min(8, cpus))")
    parser.add_argument("--queue", type=int, default=128,
                        help="async engine: admission-control bound on "
                             "outstanding statements (default 128)")
    parser.add_argument("--monitor", action="store_true",
                        help="start the metric time-series recorder and "
                             "install the default SLO objectives "
                             "(REPRO_SLO_* env knobs); HEALTH reports "
                             "burn-rate alert state")
    args = parser.parse_args(argv)

    if args.replica_of:
        if args.threaded:
            parser.error("--replica-of needs the async engine (drop --threaded)")
        from repro.replication import open_replica

        db = open_replica(args.replica_of, path=args.database)
        role = f"replica of {args.replica_of}"
    else:
        db = Database(path=args.database, mvcc=args.mvcc)
        role = "primary"
    if args.init:
        from repro.shell import run_script

        run_script(db, args.init, out=sys.stderr)
    if args.monitor:
        METRICS.enable()
        db.slo.install_default_objectives()
        db.ts.start()
    if args.threaded:
        server: "DatabaseServer | AsyncDatabaseServer" = DatabaseServer(
            db, host=args.host, port=args.port
        )
    else:
        server = AsyncDatabaseServer(
            db,
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_queue=args.queue,
        )
        # bind before announcing (serve_forever binds lazily)
        server.serve_background()
    host, port = server.address
    engine = "threaded" if args.threaded else "async"
    print(
        f"serving {args.database or 'in-memory database'} "
        f"({role}, {engine}) on {host}:{port}",
        flush=True,
    )
    try:
        if args.threaded:
            server.serve_forever()
        else:
            assert isinstance(server, AsyncDatabaseServer)
            server._thread.join()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        if args.database and not db.read_only:
            db.save()
        db.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
