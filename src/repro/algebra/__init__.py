"""NF2 algebra operators (nest / unnest / project / select / join), plus
the recursive algebra (operators applied inside subtables)."""

from repro.algebra.ops import nest, unnest, project, select_rows, natural_join
from repro.algebra.recursive import (
    apply_at,
    nest_at,
    project_at,
    select_at,
    unnest_at,
)

__all__ = [
    "nest",
    "unnest",
    "project",
    "select_rows",
    "natural_join",
    "apply_at",
    "nest_at",
    "project_at",
    "select_at",
    "unnest_at",
]
