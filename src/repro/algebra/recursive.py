"""The recursive NF2 algebra (/Jae85b/: "Recursive Algebra for Relations
with Relation Valued Attributes").

Jaeschke's non-recursive operators (:mod:`repro.algebra.ops`) act on a
table's top level; the recursive algebra lets any operator act *inside* a
table-valued attribute, at any depth, by mapping it over the subtable
instances.  We provide the general :func:`apply_at` combinator plus the
derived recursive nest / unnest / select / project.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.algebra.ops import nest, project, select_rows, unnest
from repro.errors import SchemaError
from repro.model.schema import AttributeSchema, TableSchema, nested
from repro.model.values import TableValue, TupleValue


def apply_at(
    table: TableValue,
    path: Sequence[str],
    operator: Callable[[TableValue], TableValue],
) -> TableValue:
    """Apply *operator* to the subtable instances at *path*.

    ``path`` names table-valued attributes from the top level down; an
    empty path applies the operator to the table itself.  The operator
    receives each subtable instance (a TableValue) and returns its
    replacement; the first replacement determines the new subtable schema
    (an empty input keeps the transformed schema via a probe on an empty
    instance).
    """
    if not path:
        return operator(table)
    head, rest = path[0], list(path[1:])
    attr = table.schema.attribute(head)
    if not attr.is_table:
        raise SchemaError(f"{head!r} is not a table-valued attribute")
    assert attr.table is not None

    # Determine the transformed inner schema with an empty probe so that
    # heterogeneous results are impossible and empty tables work.
    probe = apply_at(TableValue(attr.table), rest, operator)
    new_inner = probe.schema.rename(head)
    new_attrs = tuple(
        nested(head, new_inner) if a.name == head else a
        for a in table.schema.attributes
    )
    new_schema = TableSchema(
        name=table.schema.name, attributes=new_attrs, ordered=table.schema.ordered
    )
    out = TableValue(new_schema)
    for row in table:
        transformed = apply_at(row[head], rest, operator)
        if transformed.schema.attribute_names != new_inner.attribute_names:
            raise SchemaError(
                "operator produced differing schemas across subtable instances"
            )
        values = {a.name: row[a.name] for a in table.schema.attributes if a.name != head}
        retagged = TableValue(new_inner)
        retagged.rows.extend(
            TupleValue(new_inner, {n: r[n] for n in new_inner.attribute_names})
            for r in transformed.rows
        )
        values[head] = retagged
        out.rows.append(TupleValue(new_schema, values))
    return out


def select_at(
    table: TableValue,
    path: Sequence[str],
    predicate: Callable[[TupleValue], bool],
) -> TableValue:
    """Recursive selection: filter the subtable instances at *path*."""
    return apply_at(table, path, lambda t: select_rows(t, predicate))


def project_at(
    table: TableValue, path: Sequence[str], attributes: Sequence[str]
) -> TableValue:
    """Recursive projection inside the subtables at *path*."""
    return apply_at(table, path, lambda t: project(t, attributes))


def unnest_at(
    table: TableValue, path: Sequence[str], attribute: str
) -> TableValue:
    """Recursive unnest: flatten *attribute* inside the subtables at
    *path* (e.g. flatten MEMBERS within each department's PROJECTS,
    leaving the departments nested)."""
    return apply_at(table, path, lambda t: unnest(t, attribute))


def nest_at(
    table: TableValue,
    path: Sequence[str],
    group_attributes: Sequence[str],
    new_attribute: str,
    ordered: bool = False,
) -> TableValue:
    """Recursive nest inside the subtables at *path*."""
    return apply_at(
        table, path, lambda t: nest(t, group_attributes, new_attribute, ordered)
    )
