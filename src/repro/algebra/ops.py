"""The NF2 algebra of Jaeschke/Schek: nest, unnest, and friends.

These operators work on in-memory :class:`~repro.model.values.TableValue`
objects.  They are the algebraic backbone of the paper's Examples 3 (nest:
building Table 5 from Tables 1-4) and 4 (unnest: flattening Table 5 into
Table 7), and they are what the query executor's nested sub-SELECTs and
cross-products compute.

Classical properties (tested in ``tests/test_algebra.py``):

* ``unnest(nest(R, group, X), X) == R`` for any 1NF relation ``R``;
* ``nest(unnest(S, X), group, X) == S`` only when ``S`` is *partitioned* on
  the remaining attributes (nest is not generally the inverse of unnest).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.errors import DataError, SchemaError
from repro.model.schema import AttributeSchema, TableSchema, nested
from repro.model.values import TableValue, TupleValue


def project(table: TableValue, attributes: Sequence[str], name: Optional[str] = None) -> TableValue:
    """Project a table onto a subset of its (top-level) attributes.

    Set semantics for unordered tables: duplicate result tuples are removed,
    as in the relational algebra.  Ordered tables keep duplicates and order.
    """
    schema = table.schema
    attrs = tuple(schema.attribute(a) for a in attributes)
    out_schema = TableSchema(
        name=name or schema.name,
        attributes=attrs,
        ordered=schema.ordered,
    )
    out = TableValue(out_schema)
    seen: set = set()
    for row in table:
        value = TupleValue(out_schema, {a.name: row[a.name] for a in attrs})
        if not out_schema.ordered:
            key = value.canonical()
            if key in seen:
                continue
            seen.add(key)
        out.rows.append(value)
    return out


def select_rows(table: TableValue, predicate: Callable[[TupleValue], bool]) -> TableValue:
    """Filter a table by a Python predicate."""
    out = TableValue(table.schema)
    out.rows.extend(row for row in table if predicate(row))
    return out


def unnest(table: TableValue, attribute: str, name: Optional[str] = None) -> TableValue:
    """Unnest one table-valued attribute.

    Every outer tuple is combined with each tuple of its subtable; the
    subtable's attributes replace the table-valued attribute in place.
    Outer tuples whose subtable is empty produce no output (the classical
    unnest, which is why nest/unnest are not mutually inverse in general).
    """
    schema = table.schema
    attr = schema.attribute(attribute)
    if not attr.is_table:
        raise SchemaError(f"attribute {attribute!r} of {schema.name!r} is atomic")
    assert attr.table is not None
    inner = attr.table
    new_attrs: list[AttributeSchema] = []
    for a in schema.attributes:
        if a.name == attribute:
            for b in inner.attributes:
                if schema.has_attribute(b.name) and b.name != attribute:
                    raise SchemaError(
                        f"unnest would duplicate attribute name {b.name!r}"
                    )
                new_attrs.append(b)
        else:
            new_attrs.append(a)
    out_schema = TableSchema(
        name=name or schema.name,
        attributes=tuple(new_attrs),
        ordered=schema.ordered and inner.ordered,
    )
    out = TableValue(out_schema)
    for row in table:
        subtable: TableValue = row[attribute]
        for sub in subtable:
            values = {}
            for a in schema.attributes:
                if a.name != attribute:
                    values[a.name] = row[a.name]
            for b in inner.attributes:
                values[b.name] = sub[b.name]
            out.rows.append(TupleValue(out_schema, values))
    return out


def outer_unnest(table: TableValue, attribute: str, name: Optional[str] = None) -> TableValue:
    """Unnest that preserves outer tuples with empty subtables by padding
    the inner attributes with NULLs (the 'outer' variant later literature
    added because classical unnest loses information — and the reason
    nest/unnest are not mutually inverse)."""
    schema = table.schema
    attr = schema.attribute(attribute)
    if not attr.is_table:
        raise SchemaError(f"attribute {attribute!r} of {schema.name!r} is atomic")
    assert attr.table is not None
    flattened = unnest(table, attribute, name=name)
    out = TableValue(flattened.schema)
    inner_names = attr.table.attribute_names
    for row in table:
        subtable: TableValue = row[attribute]
        if len(subtable):
            for sub in subtable:
                values = {
                    a.name: row[a.name]
                    for a in schema.attributes
                    if a.name != attribute
                }
                for b in attr.table.attributes:
                    values[b.name] = sub[b.name]
                out.rows.append(TupleValue(flattened.schema, values))
        else:
            values = {
                a.name: row[a.name]
                for a in schema.attributes
                if a.name != attribute
            }
            for b in attr.table.attributes:
                # atomic attributes pad with NULL; nested ones with an
                # empty subtable (there is no NULL table value)
                values[b.name] = None if b.is_atomic else TableValue(b.table)
            out.rows.append(TupleValue(flattened.schema, values))
    return out


def nest(
    table: TableValue,
    group_attributes: Sequence[str],
    new_attribute: str,
    ordered: bool = False,
    name: Optional[str] = None,
) -> TableValue:
    """Nest *group_attributes* into a new table-valued attribute.

    Rows agreeing on all remaining attributes are merged into a single output
    tuple whose *new_attribute* collects the grouped projections.  This is
    the Jaeschke/Schek ``nu`` operator.
    """
    schema = table.schema
    group = tuple(schema.attribute(a) for a in group_attributes)
    if not group:
        raise SchemaError("nest needs at least one attribute to group")
    rest = tuple(a for a in schema.attributes if a.name not in set(group_attributes))
    if not rest:
        raise SchemaError("nest must leave at least one attribute ungrouped")
    if schema.has_attribute(new_attribute) and new_attribute not in group_attributes:
        raise SchemaError(f"attribute {new_attribute!r} already exists")
    inner_schema = TableSchema(name=new_attribute, attributes=group, ordered=ordered)
    out_schema = TableSchema(
        name=name or schema.name,
        attributes=rest + (nested(new_attribute, inner_schema),),
        ordered=False,
    )
    groups: dict[tuple, TableValue] = {}
    order: list[tuple] = []
    keys: dict[tuple, TupleValue] = {}
    for row in table:
        key_value = TupleValue(
            TableSchema("nest_key", rest, ordered=False)
            if rest
            else schema,  # pragma: no cover - rest is never empty here
            {a.name: row[a.name] for a in rest},
        )
        key = key_value.canonical()
        if key not in groups:
            groups[key] = TableValue(inner_schema)
            order.append(key)
            keys[key] = row
        groups[key].rows.append(
            TupleValue(inner_schema, {a.name: row[a.name] for a in group})
        )
    out = TableValue(out_schema)
    for key in order:
        row = keys[key]
        values = {a.name: row[a.name] for a in rest}
        values[new_attribute] = groups[key]
        out.rows.append(TupleValue(out_schema, values))
    return out


def natural_join(
    left: TableValue,
    right: TableValue,
    on: Optional[Sequence[tuple[str, str]]] = None,
    name: str = "JOIN",
) -> TableValue:
    """Equi-join two tables on pairs of (left-attr, right-attr).

    With ``on=None`` the join is natural: all identically-named top-level
    attributes are matched, and the duplicates are projected away.
    """
    if on is None:
        shared = [a for a in left.schema.attribute_names if right.schema.has_attribute(a)]
        if not shared:
            raise SchemaError("natural join found no shared attributes")
        on = [(a, a) for a in shared]
        drop_right = set(shared)
    else:
        drop_right = set()
    for left_name, right_name in on:
        if left.schema.attribute(left_name).is_table:
            raise DataError(f"cannot join on table-valued attribute {left_name!r}")
        if right.schema.attribute(right_name).is_table:
            raise DataError(f"cannot join on table-valued attribute {right_name!r}")
    attrs: list[AttributeSchema] = list(left.schema.attributes)
    for attr in right.schema.attributes:
        if attr.name in drop_right:
            continue
        if any(a.name == attr.name for a in attrs):
            raise SchemaError(f"join would duplicate attribute {attr.name!r}")
        attrs.append(attr)
    out_schema = TableSchema(name=name, attributes=tuple(attrs), ordered=False)
    out = TableValue(out_schema)
    # Hash join on the key pairs.
    buckets: dict[tuple, list[TupleValue]] = {}
    for row in right:
        key = tuple(_atom_key(row[r]) for (_l, r) in on)
        buckets.setdefault(key, []).append(row)
    for row in left:
        key = tuple(_atom_key(row[l]) for (l, _r) in on)
        for match in buckets.get(key, ()):
            values = {a.name: row[a.name] for a in left.schema.attributes}
            for attr in right.schema.attributes:
                if attr.name not in drop_right:
                    values[attr.name] = match[attr.name]
            out.rows.append(TupleValue(out_schema, values))
    return out


def _atom_key(value: object) -> object:
    if isinstance(value, TableValue):
        raise DataError("cannot join on a table-valued attribute")
    return value
