"""The system catalog: tables, their storage, and their access paths.

Each table owns a :class:`~repro.storage.segment.Segment` of the shared
paged file.  Flat (1NF) tables store tuples in a heap (no Mini Directories
— Section 4.1); nested tables store complex objects through a
:class:`~repro.storage.complex_object.ComplexObjectManager`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import (
    DuplicateIndexError,
    DuplicateTableError,
    UnknownIndexError,
    UnknownTableError,
)
from repro.index.manager import FlatIndex, NF2Index
from repro.index.stats import IndexStatistics
from repro.index.text import TextIndex
from repro.model.schema import TableSchema
from repro.storage.complex_object import ComplexObjectManager
from repro.storage.heap import HeapFile
from repro.storage.segment import Segment
from repro.storage.tid import TID
from repro.temporal.versions import VersionStore

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.mvcc.store import MvccStore
    from repro.temporal.subtuple_versions import TemporalObjectManager

AnyIndex = Union[FlatIndex, NF2Index, TextIndex]


@dataclass
class TableEntry:
    schema: TableSchema
    segment: Segment
    versioned: bool = False
    #: temporal strategy: None, "object" (copy-on-write chains), or
    #: "subtuple" (the paper's subtuple-manager versioning)
    versioning: Optional[str] = None
    heap: Optional[HeapFile] = None                      # flat tables
    manager: Optional[ComplexObjectManager] = None       # nested tables
    #: subtuple-level temporal storage (versioning == "subtuple")
    temporal_manager: Optional["TemporalObjectManager"] = None
    #: current top-level tuples, in insertion (= list) order
    tids: list[TID] = field(default_factory=list)
    #: logically deleted objects still readable via ASOF (subtuple mode)
    history_tids: list[TID] = field(default_factory=list)
    version_store: Optional[VersionStore] = None
    #: root TID -> version-store object id (object-versioned tables)
    object_ids: dict[TID, int] = field(default_factory=dict)
    indexes: dict[str, AnyIndex] = field(default_factory=dict)
    #: MVCC version metadata (populated when the database runs with
    #: ``mvcc=True``; None under plain 2PL)
    mvcc: Optional["MvccStore"] = None
    #: axis of explicit temporal write stamps ("date"/"logical"); tracked
    #: at the entry level for subtuple-versioned tables, whose manager
    #: keeps no cross-restart state of its own
    timestamp_axis: Optional[str] = None

    @property
    def is_flat(self) -> bool:
        return self.heap is not None

    @property
    def name(self) -> str:
        return self.schema.name

    def value_indexes(self) -> list[Union[FlatIndex, NF2Index]]:
        return [i for i in self.indexes.values() if not isinstance(i, TextIndex)]

    def text_indexes(self) -> list[TextIndex]:
        return [i for i in self.indexes.values() if isinstance(i, TextIndex)]

    def index_stats(self) -> dict[str, "IndexStatistics"]:
        """Cost-model statistics per index (see ``index/stats.py``) — what
        the planner scores and the shell's ``.indexes`` displays."""
        return {name: index.stats for name, index in self.indexes.items()}


class Catalog:
    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}
        self._index_owner: dict[str, str] = {}  # index name -> table name
        # short internal latch: concurrent sessions resolve table/index
        # names while DDL statements mutate the maps
        self._latch = threading.RLock()

    # -- tables -------------------------------------------------------------------

    def add_table(self, entry: TableEntry) -> None:
        with self._latch:
            if entry.name in self._tables:
                raise DuplicateTableError(f"table {entry.name!r} already exists")
            self._tables[entry.name] = entry

    def table(self, name: str) -> TableEntry:
        with self._latch:
            entry = self._tables.get(name)
        if entry is None:
            raise UnknownTableError(f"no table named {name!r}")
        return entry

    def has_table(self, name: str) -> bool:
        with self._latch:
            return name in self._tables

    def drop_table(self, name: str) -> TableEntry:
        with self._latch:
            entry = self.table(name)
            for index_name in list(entry.indexes):
                self._index_owner.pop(index_name, None)
            del self._tables[name]
            return entry

    def tables(self) -> list[TableEntry]:
        with self._latch:
            return list(self._tables.values())

    # -- indexes ----------------------------------------------------------------------

    def add_index(self, table_name: str, index_name: str, index: AnyIndex) -> None:
        with self._latch:
            entry = self.table(table_name)
            if index_name in self._index_owner:
                raise DuplicateIndexError(f"index {index_name!r} already exists")
            entry.indexes[index_name] = index
            self._index_owner[index_name] = table_name

    def drop_index(self, index_name: str) -> None:
        with self._latch:
            owner = self._index_owner.pop(index_name, None)
            if owner is None:
                raise UnknownIndexError(f"no index named {index_name!r}")
            del self._tables[owner].indexes[index_name]

    def index(self, index_name: str) -> AnyIndex:
        with self._latch:
            owner = self._index_owner.get(index_name)
            if owner is None:
                raise UnknownIndexError(f"no index named {index_name!r}")
            return self._tables[owner].indexes[index_name]

    def index_owner(self, index_name: str) -> str:
        with self._latch:
            owner = self._index_owner.get(index_name)
            if owner is None:
                raise UnknownIndexError(f"no index named {index_name!r}")
            return owner
