"""The system catalog."""

from repro.catalog.catalog import Catalog, TableEntry

__all__ = ["Catalog", "TableEntry"]
