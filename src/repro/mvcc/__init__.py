"""Multi-version concurrency control (MVCC) over LSN-stamped versions.

The subsystem generalizes :mod:`repro.temporal` — the paper's Section-5
time-version chains — into a concurrency mechanism: every committed
mutation scope produces object versions stamped with a **commit LSN**,
session reads run against a consistent *snapshot* (the highest committed
LSN when the statement or transaction started) without taking any shared
locks, and ``ASOF t`` becomes the degenerate "snapshot at an old
timestamp" case answered through the very same visibility predicate.

Modules:

``visibility``
    the one half-open-interval containment predicate every version read
    (temporal ``ASOF`` *and* MVCC snapshots) decides through
``snapshot``
    :class:`Snapshot` (an axis + a point on it) and :class:`MvccManager`
    (commit-LSN allocation, active-snapshot registry, write scopes,
    first-committer-wins bookkeeping, the GC queue)
``store``
    :class:`MvccStore` — per-table ``TID -> MvccVersion`` records with
    pending (uncommitted) begin/end transaction overlays
``read``
    :func:`snapshot_roots` — the shared read path that turns a snapshot
    (either axis) into the set of visible root TIDs
``gc``
    :func:`collect` — watermark-driven reclamation of versions no active
    or future snapshot can see

Enable it per database with ``Database(mvcc=True)``; see
``docs/CONCURRENCY.md`` for the protocol.
"""
