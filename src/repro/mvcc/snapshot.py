"""Snapshots and the per-database MVCC manager.

A :class:`Snapshot` is a point on a version axis:

* ``AXIS_LSN`` — the MVCC axis.  The point is a **commit sequence number**
  and the snapshot sees exactly the versions committed at or before it.
* ``AXIS_TIME`` — the temporal axis.  The point is a canonical timestamp
  (:func:`repro.temporal.versions.canonical_timestamp`) and the snapshot
  is what ``ASOF t`` has always meant: the table as of *t*.

Both are answered by :func:`repro.mvcc.read.snapshot_roots` through the
same visibility predicate — ``ASOF`` is literally a snapshot at an old
point on a different axis.

Commit sequence vs WAL byte LSN
-------------------------------

The WAL's record LSNs are byte offsets and reset to the file header when a
checkpoint truncates the log, so they are not monotonic over the life of a
database.  The manager therefore allocates its own strictly increasing
*commit sequence* (one tick per committed write scope) to stamp versions
with, and merely remembers the WAL LSN of the latest commit record for
observability (``SYS.TRANSACTIONS``).  Version chains are not persisted:
on open every committed row is bootstrapped as "visible since commit 0",
which is exact — an offline database has no active snapshots to preserve
history for.

Write scopes
------------

The session layer's global WAL writer token means at most one writing
transaction runs at a time, so the manager tracks a single current write
scope: ``begin_scope`` opens it (allocating a transaction id and linking
the writer's snapshot for read-your-own-writes), nested statement scopes
just increase the depth, and the depth-0 ``end_scope`` atomically stamps
every pending version with the next commit sequence number, queues closed
versions for GC, and publishes the new ``committed_lsn`` — all under the
manager latch so a concurrently acquired snapshot sees either none or all
of a transaction's versions.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.obs import METRICS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mvcc.store import MvccStore, MvccVersion

#: version axes a snapshot can live on
AXIS_LSN = "lsn"
AXIS_TIME = "time"


class Snapshot:
    """A consistent read point: an axis, a point on it, and (for writers)
    the transaction whose uncommitted versions the snapshot may see."""

    __slots__ = ("axis", "point", "txn", "pinned", "isolation", "session", "sid")

    def __init__(
        self,
        axis: str,
        point: float,
        *,
        txn: Optional[int] = None,
        pinned: bool = False,
        isolation: str = "statement",
        session: Optional[str] = None,
        sid: int = 0,
    ):
        self.axis = axis
        self.point = point
        self.txn = txn
        self.pinned = pinned
        self.isolation = isolation
        self.session = session
        self.sid = sid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Snapshot({self.axis}={self.point!r}, isolation={self.isolation},"
            f" pinned={self.pinned}, txn={self.txn})"
        )


class MvccManager:
    """Per-database MVCC state: commit sequencing, the active-snapshot
    registry, the single write scope, and the version GC queue."""

    def __init__(self) -> None:
        self._latch = threading.Lock()
        #: highest committed commit-sequence number; new snapshots read here
        self.committed_lsn = 0.0
        #: WAL byte LSN of the latest commit record (observability only)
        self.last_wal_lsn: Optional[int] = None
        self._next_sid = 0
        self._next_txn = 0
        self._active: dict[int, Snapshot] = {}
        # current write scope (at most one writer thanks to the WAL token)
        self._scope_depth = 0
        self._scope_txn: Optional[int] = None
        self._scope_snapshot: Optional[Snapshot] = None
        # versions written by the current scope, awaiting their commit stamp
        self._pending: list[tuple["MvccStore", "MvccVersion"]] = []
        # (end_lsn, store, tid) of closed versions, FIFO by end_lsn
        self._gc_queue: deque[tuple[float, "MvccStore", object]] = deque()

    # -- snapshots -----------------------------------------------------------

    def acquire(
        self,
        *,
        pinned: bool = False,
        isolation: str = "statement",
        session: Optional[str] = None,
    ) -> Snapshot:
        """Register a new snapshot at the current committed LSN."""
        with self._latch:
            self._next_sid += 1
            snap = Snapshot(
                AXIS_LSN,
                self.committed_lsn,
                pinned=pinned,
                isolation=isolation,
                session=session,
                sid=self._next_sid,
            )
            self._active[snap.sid] = snap
        METRICS.inc("mvcc.snapshots", isolation=isolation)
        return snap

    def release(self, snapshot: Snapshot) -> None:
        with self._latch:
            self._active.pop(snapshot.sid, None)

    def refresh(self, snapshot: Snapshot) -> None:
        """Advance an (unpinned) snapshot to the latest committed LSN.

        Used by write statements after they win the WAL writer token: a
        commit may have landed between statement start and token grant, and
        a read-committed write must see it (pinned snapshots instead rely
        on first-committer-wins conflict detection)."""
        if snapshot.pinned:
            return
        with self._latch:
            snapshot.point = self.committed_lsn

    def active_snapshots(self) -> list[Snapshot]:
        with self._latch:
            return list(self._active.values())

    def watermark(self) -> float:
        """Oldest point any active snapshot reads at; versions whose life
        ended at or before it are invisible to every present and future
        snapshot."""
        with self._latch:
            return self._watermark_locked()

    def _watermark_locked(self) -> float:
        w = self.committed_lsn
        for snap in self._active.values():
            if snap.point < w:
                w = snap.point
        return w

    # -- write scopes --------------------------------------------------------

    def begin_scope(self, snapshot: Optional[Snapshot] = None) -> int:
        """Enter a write scope; returns the scope's transaction id.

        *snapshot* is the writing session's current snapshot (if any); it
        is tagged with the transaction id so the writer reads its own
        uncommitted versions."""
        with self._latch:
            self._scope_depth += 1
            if self._scope_depth == 1:
                self._next_txn += 1
                self._scope_txn = self._next_txn
            if snapshot is not None:
                # tag at any depth: a statement snapshot acquired inside
                # an already-open transaction scope must also read the
                # transaction's pending versions
                snapshot.txn = self._scope_txn
                self._scope_snapshot = snapshot
            return self._scope_txn  # type: ignore[return-value]

    def current_txn(self) -> Optional[int]:
        return self._scope_txn

    def scope_depth(self) -> int:
        return self._scope_depth

    def note_pending(self, store: "MvccStore", version: "MvccVersion") -> None:
        # only the (single) writer thread appends; list.append is atomic
        self._pending.append((store, version))
        METRICS.inc("mvcc.versions_created")

    def end_scope(self, wal_lsn: Optional[int] = None) -> Optional[float]:
        """Leave a write scope.  At depth 0 the scope *commits*: every
        pending version is stamped with the next commit sequence number and
        becomes visible to snapshots acquired from now on.  (Statement and
        transaction rollback is performed by compensating writes inside the
        scope, so the scope itself always commits.)  Returns the commit
        sequence number at depth 0, else ``None``."""
        with self._latch:
            self._scope_depth -= 1
            if self._scope_depth > 0:
                return None
            lsn = self.committed_lsn + 1.0
            seen: set[int] = set()
            stamped = False
            for store, version in self._pending:
                if id(version) in seen:
                    continue
                seen.add(id(version))
                if version.begin is None:
                    version.begin = lsn
                version.begin_txn = 0
                if version.end is None:
                    version.end = lsn
                version.end_txn = 0
                if version.end != float("inf"):
                    self._gc_queue.append((version.end, store, version.tid))
                stamped = True
            self._pending.clear()
            if stamped:
                self.committed_lsn = lsn
            if wal_lsn is not None:
                self.last_wal_lsn = wal_lsn
            if self._scope_snapshot is not None:
                self._scope_snapshot.txn = None
            self._scope_txn = None
            self._scope_snapshot = None
            if stamped:
                METRICS.inc("mvcc.commits")
                return lsn
            return None

    # -- garbage collection --------------------------------------------------

    def gc_backlog(self) -> int:
        with self._latch:
            return len(self._gc_queue)

    def pop_reclaimable(
        self, limit: Optional[int] = None
    ) -> tuple[list[tuple[float, "MvccStore", object]], float]:
        """Dequeue versions whose end LSN is at or below the watermark."""
        out: list[tuple[float, "MvccStore", object]] = []
        with self._latch:
            w = self._watermark_locked()
            while self._gc_queue and self._gc_queue[0][0] <= w:
                out.append(self._gc_queue.popleft())
                if limit is not None and len(out) >= limit:
                    break
        return out, w

    def forget_table(self, store: "MvccStore") -> None:
        """Drop all pending/GC bookkeeping for *store* (table rewrite/drop)."""
        with self._latch:
            self._pending = [(s, v) for s, v in self._pending if s is not store]
            self._gc_queue = deque(
                item for item in self._gc_queue if item[1] is not store
            )
