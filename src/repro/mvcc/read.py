"""The shared snapshot read path.

``snapshot_roots(entry, snapshot)`` answers "which root TIDs does this
snapshot see?" for **both** axes:

* ``AXIS_TIME`` — walks the table's temporal
  :class:`~repro.temporal.versions.VersionStore` chains (``ASOF t``);
* ``AXIS_LSN`` — walks the table's :class:`~repro.mvcc.store.MvccStore`
  records (MVCC statement/transaction snapshots).

Either way each candidate version is admitted by the single
:func:`repro.mvcc.visibility.interval_contains` predicate, which is the
unification the tentpole asks for: ``ASOF`` *is* a snapshot read at an
old point on the time axis.  ``Database`` calls through this module's
attributes (``read.snapshot_roots`` / ``visibility.interval_contains``)
so the shared-path test can intercept them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import TemporalError
from repro.mvcc import visibility
from repro.mvcc.snapshot import AXIS_LSN, AXIS_TIME

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.catalog import TableEntry
    from repro.mvcc.snapshot import Snapshot
    from repro.storage.tid import TID


def snapshot_roots(entry: "TableEntry", snapshot: "Snapshot") -> list["TID"]:
    """Root TIDs of every object version *snapshot* sees in *entry*."""
    out: list["TID"] = []
    if snapshot.axis == AXIS_TIME:
        store = entry.version_store
        if store is None:
            raise TemporalError(f"table {entry.name} is not versioned")
        for chain in store._chains.values():
            for version in chain.versions:
                if version.root_tid is not None and visibility.interval_contains(
                    version.valid_from, version.valid_to, snapshot.point
                ):
                    out.append(version.root_tid)
        return out
    if snapshot.axis != AXIS_LSN:  # pragma: no cover - defensive
        raise TemporalError(f"unknown snapshot axis {snapshot.axis!r}")
    mvcc = entry.mvcc
    if mvcc is None:
        raise TemporalError(f"table {entry.name} has no MVCC store")
    for version in mvcc.versions():
        begin, end = mvcc.interval_for(version, snapshot.txn)
        if visibility.interval_contains(begin, end, snapshot.point):
            out.append(version.tid)
    return out


def tid_visible(entry: "TableEntry", snapshot: "Snapshot", tid: "TID") -> bool:
    """Point probe used by index lookups: does *snapshot* see *tid*?"""
    if snapshot.axis == AXIS_TIME:
        return tid in snapshot_roots(entry, snapshot)
    mvcc = entry.mvcc
    if mvcc is None:
        return True
    version = mvcc.get(tid)
    if version is None:
        return True
    begin, end = mvcc.interval_for(version, snapshot.txn)
    return visibility.interval_contains(begin, end, snapshot.point)
