"""Version garbage collection.

A version whose life ended at commit LSN *e* is unreachable once every
active snapshot reads at a point ``>= e`` (ends are exclusive) — the
manager's *watermark* (min over active snapshot points and the committed
LSN) is exactly that bound, so the FIFO GC queue can be drained from the
front while ``end <= watermark``.

Reclaiming a version means finally doing the work the write path deferred:
dropping its index entries and (for plain tables) deleting the heap
record.  Tables that also keep a temporal :class:`VersionStore` retain the
record itself — it is still history that ``ASOF`` must reach — and only
shed the index entries.  After a round that reclaimed anything, the new
watermark is logged to the WAL (``GC_WATERMARK``) so the log records how
far version history has been truncated.

``collect`` runs opportunistically at moments the database already holds
the write latch (start of a write scope, close); a failure to reclaim one
version is counted (``mvcc.gc_errors``) and skipped, never raised — GC
must not fail a user statement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs import METRICS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.database import Database


def collect(db: "Database", limit: Optional[int] = None) -> int:
    """Reclaim versions below the snapshot watermark; returns the count."""
    manager = db.mvcc
    if manager is None:
        return 0
    claimed, watermark = manager.pop_reclaimable(limit)
    reclaimed = 0
    for end_lsn, store, tid in claimed:
        if not store.reclaimable(tid, end_lsn):
            continue  # superseded entry (defensive; TIDs aren't reused early)
        try:
            db._mvcc_reclaim(store.entry, tid)
        except Exception:
            METRICS.inc("mvcc.gc_errors")
            continue
        store.discard(tid)
        reclaimed += 1
    if reclaimed:
        METRICS.inc("mvcc.gc_reclaimed", reclaimed)
        if db.wal is not None:
            try:
                db.wal.log_gc_watermark(watermark)
            except Exception:  # pragma: no cover - WAL poisoned/closed
                METRICS.inc("mvcc.gc_errors")
    return reclaimed
