"""Per-table MVCC version records.

Storage is copy-on-write at the object level (like the temporal layer):
every physical root TID is exactly one version of one logical object, so a
table's MVCC state is a flat ``TID -> MvccVersion`` map.  A version's life
is the half-open commit-LSN interval ``[begin, end)``:

* ``begin`` — commit LSN of the scope that created it, or ``None`` while
  that scope is still running (``begin_txn`` then names the writer);
* ``end`` — ``inf`` while current, the commit LSN of the scope that
  overwrote/deleted it, or ``None`` while a delete is pending
  (``end_txn`` names the deleter).

``interval_for`` resolves the pending ``None`` ends against a reader's
transaction id — a writer sees its own uncommitted inserts (begin → -inf)
and not its own pending deletes (end → -inf ⇒ empty interval), everyone
else sees the committed state — after which visibility is the plain
:func:`repro.mvcc.visibility.interval_contains` test.

Old versions keep their heap record *and* their index entries until GC
decides no snapshot can reach them (deferred deindexing, as in a
PostgreSQL vacuum); ``live_tids`` is what lets ``Database.verify`` tell
those retained heap records from genuine orphans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.mvcc.visibility import INF, NEG_INF, interval_contains

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.catalog import TableEntry
    from repro.mvcc.snapshot import MvccManager, Snapshot
    from repro.storage.tid import TID


class MvccVersion:
    __slots__ = ("tid", "begin", "end", "begin_txn", "end_txn")

    def __init__(
        self,
        tid: "TID",
        begin: Optional[float],
        end: Optional[float],
        begin_txn: int = 0,
        end_txn: int = 0,
    ):
        self.tid = tid
        self.begin = begin
        self.end = end
        self.begin_txn = begin_txn
        self.end_txn = end_txn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MvccVersion({self.tid}, [{self.begin}, {self.end}))"


class MvccStore:
    """MVCC version records for one table."""

    def __init__(self, manager: "MvccManager", entry: "TableEntry"):
        self.manager = manager
        self.entry = entry
        self._by_tid: dict["TID", MvccVersion] = {}

    # -- bootstrap -----------------------------------------------------------

    def bootstrap(self, tids: Iterator["TID"]) -> None:
        """Seed every already-committed row as visible since commit 0."""
        for tid in tids:
            self._by_tid[tid] = MvccVersion(tid, 0.0, INF)

    # -- writer notifications (called under the table's exclusive locks) -----

    def note_insert(self, tid: "TID", txn: int) -> None:
        version = MvccVersion(tid, None, INF, begin_txn=txn)
        self._by_tid[tid] = version
        self.manager.note_pending(self, version)

    def note_delete(self, tid: "TID", txn: int) -> None:
        version = self._by_tid.get(tid)
        if version is None:
            # row predates MVCC bookkeeping (shouldn't happen after
            # bootstrap); treat as committed-since-0 then close it
            version = MvccVersion(tid, 0.0, INF)
            self._by_tid[tid] = version
        version.end = None
        version.end_txn = txn
        self.manager.note_pending(self, version)

    # -- conflict detection ---------------------------------------------------

    def committed_after(self, tid: "TID", point: float) -> bool:
        """First-committer-wins test: was this row's version created or
        ended by a commit *after* the snapshot point?  (Pending versions
        can only belong to the caller — the WAL token admits one writer.)"""
        version = self._by_tid.get(tid)
        if version is None:
            return False
        if version.begin is not None and version.begin > point:
            return True
        if version.end is not None and version.end != INF and version.end > point:
            return True
        return False

    # -- reading --------------------------------------------------------------

    def interval_for(
        self, version: MvccVersion, txn: Optional[int]
    ) -> tuple[float, float]:
        """Resolve a version's interval as seen by reader transaction *txn*."""
        begin = version.begin
        if begin is None:
            begin = NEG_INF if (txn is not None and version.begin_txn == txn) else INF
        end = version.end
        if end is None:
            end = NEG_INF if (txn is not None and version.end_txn == txn) else INF
        return begin, end

    def visible(self, tid: "TID", snapshot: "Snapshot") -> bool:
        version = self._by_tid.get(tid)
        if version is None:
            return True  # untracked ⇒ committed before MVCC began watching
        begin, end = self.interval_for(version, snapshot.txn)
        return interval_contains(begin, end, snapshot.point)

    def versions(self) -> list[MvccVersion]:
        # list() over dict.values() copies atomically under the GIL, so
        # lock-free readers never see a half-updated view
        return list(self._by_tid.values())

    def get(self, tid: "TID") -> Optional[MvccVersion]:
        return self._by_tid.get(tid)

    def live_tids(self) -> set["TID"]:
        """Every TID that still has a version record (current, pending, or
        awaiting GC) — their heap records are intentionally retained."""
        return set(self._by_tid)

    @property
    def version_count(self) -> int:
        return len(self._by_tid)

    # -- garbage collection ----------------------------------------------------

    def reclaimable(self, tid: "TID", end_lsn: float) -> bool:
        """Is the queued (tid, end_lsn) entry still the version to reclaim?"""
        version = self._by_tid.get(tid)
        return (
            version is not None
            and version.end is not None
            and version.end == end_lsn
        )

    def discard(self, tid: "TID") -> None:
        self._by_tid.pop(tid, None)
