"""The one version-visibility predicate.

Every versioned read in the engine — the paper's ``ASOF t`` time travel
over :class:`repro.temporal.versions.VersionChain` *and* MVCC snapshot
reads over :class:`repro.mvcc.store.MvccStore` — decides visibility by the
same half-open interval test::

    valid_from <= point < valid_to

``valid_from`` is **inclusive** (a version is visible at the exact instant
it was committed) and ``valid_to`` is **exclusive** (at the instant an
object is overwritten, the *new* version is the visible one).  Both axes —
wall-clock/logical timestamps and commit LSNs — resolve open interval ends
to ``±inf`` floats before calling in, so the predicate itself stays a pure
three-float comparison with no special cases.

Keeping the predicate in one place is the point of the unification: the
shared-path test monkeypatches this function and asserts both ``ASOF`` and
``transaction(isolation="snapshot")`` reads flow through it.
"""

from __future__ import annotations

#: open interval ends resolve to these before the predicate runs
INF = float("inf")
NEG_INF = float("-inf")


def interval_contains(valid_from: float, valid_to: float, point: float) -> bool:
    """True iff *point* lies in the half-open interval ``[valid_from, valid_to)``."""
    return valid_from <= point < valid_to
