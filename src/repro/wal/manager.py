"""The write-ahead-log manager.

``WalManager`` owns the log file of one database and enforces the two
classic invariants on behalf of the engine:

* **WAL-before-data** — the buffer manager calls :meth:`ensure_durable`
  before any physical page write, which fsyncs unsynced log records first;
  pages dirtied by the *active* (not yet committed) transaction are
  reported through :attr:`protected_pages` and must not be written or
  evicted at all (a no-steal policy: redo-only recovery never needs undo
  on the data file).
* **log-then-commit** — :meth:`log_commit` appends the after-images of
  every page the transaction dirtied, stamps each frame's pageLSN, appends
  the ``COMMIT`` record carrying the catalog snapshot, and fsyncs; only
  after the fsync returns is the commit acknowledged.

Checkpoints truncate the log: after the caller has flushed all dirty pages
and synced the data file, :meth:`checkpoint` atomically replaces the log
with a single ``CHECKPOINT`` record holding the catalog snapshot.
``should_checkpoint`` drives the auto-checkpoint policy (log bytes since
the last checkpoint exceed a threshold).

The file I/O runs through a small :class:`WalIO` seam so that the fault
harness (:mod:`repro.wal.faults`) can interpose staged writes, torn tails,
and injected crashes without touching the manager's logic.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Optional

from repro.errors import WalError
from repro.obs import METRICS, WAITS
from repro.wal.record import (
    REC_ABORT,
    REC_BEGIN,
    REC_CHECKPOINT,
    REC_COMMIT,
    REC_GC_WATERMARK,
    REC_PAGE_IMAGE,
    encode_catalog,
    encode_gc_watermark,
    encode_page_image,
    encode_record,
)


class WalIO:
    """Append-only log file with explicit fsync and atomic truncation."""

    def __init__(self, path: str):
        self.path = path
        if not os.path.exists(path):
            with open(path, "wb"):
                pass
        self._file = open(path, "r+b")
        self._file.seek(0, os.SEEK_END)
        self._size = self._file.tell()

    @property
    def size(self) -> int:
        return self._size

    def append(self, data: bytes) -> int:
        """Append *data*; returns the offset it was written at."""
        offset = self._size
        self._file.seek(offset)
        self._file.write(data)
        self._size += len(data)
        return offset

    def fsync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def reset_with(self, data: bytes) -> None:
        """Atomically replace the log's contents with *data* (durably)."""
        temp = self.path + ".tmp"
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
        self._file.close()
        self._file = open(self.path, "r+b")
        self._file.seek(0, os.SEEK_END)
        self._size = self._file.tell()

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()


class WalManager:
    """Transactional redo logging over one :class:`WalIO`."""

    def __init__(
        self,
        path: str,
        io: Optional[WalIO] = None,
        auto_checkpoint_bytes: int = 1 << 20,
    ):
        self.path = path
        self._io = io if io is not None else WalIO(path)
        #: serializes log appends against fsyncs — commit scopes are
        #: already serialized by the engine's write latch, but a *reader*
        #: thread evicting a dirty page calls :meth:`ensure_durable`
        #: concurrently with a writer appending records
        self._latch = threading.RLock()
        self.auto_checkpoint_bytes = auto_checkpoint_bytes
        self._prev_lsn = 0
        self._txn: Optional[int] = None
        self._next_txn = 1
        #: byte LSN of the latest COMMIT record (observability; resets on
        #: checkpoint truncation, so MVCC stamps versions with its own
        #: commit sequence instead)
        self.last_commit_lsn: Optional[int] = None
        #: pages dirtied since the last commit/checkpoint — not yet covered
        #: by a durable log record, so the buffer must not write them out
        self._dirty: set[int] = set()
        self._pending_sync = False
        self._bytes_since_checkpoint = self._io.size
        #: first unrecoverable failure of the commit path (a crashed or
        #: failing log device).  Once set, the manager is *poisoned*:
        #: every further WAL operation re-raises it, so no mutation can
        #: slip past a log that stopped recording — exactly like a real
        #: engine panicking when it cannot write its log.
        self.failure: Optional[BaseException] = None
        #: log-shipping subscribers: callables ``(pages, catalog_state)``
        #: invoked after every durable commit with the committed page
        #: after-images ``[(page_no, image), ...]`` and the catalog
        #: snapshot the COMMIT record carries.  The replication hub
        #: registers here (see :mod:`repro.replication`).
        self.shippers: list[Callable[[list, Any], None]] = []
        #: cumulative counters (mirrored into METRICS when enabled)
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        self.commits = 0
        self.aborts = 0
        self.checkpoints = 0

    # -- transaction lifecycle ------------------------------------------------

    @property
    def in_txn(self) -> bool:
        return self._txn is not None

    @property
    def protected_pages(self) -> set[int]:
        """Pages with unlogged changes — the buffer's no-steal set."""
        return self._dirty

    def poison(self, exc: BaseException) -> None:
        """Mark the WAL as failed; keeps the *first* failure."""
        if self.failure is None:
            self.failure = exc

    def _check_alive(self) -> None:
        if self.failure is not None:
            raise self.failure

    def begin(self) -> int:
        self._check_alive()
        if self._txn is not None:
            raise WalError("a WAL transaction is already active")
        self._txn = self._next_txn
        self._next_txn += 1
        self._append(REC_BEGIN, self._txn, b"")
        return self._txn

    def note_dirty(self, page_no: int) -> None:
        """Record that *page_no* was dirtied (called from the buffer)."""
        with self._latch:
            self._dirty.add(page_no)

    def log_commit(
        self,
        catalog_state: Any,
        get_image: Callable[[int, int], bytes],
    ) -> bool:
        """Make the active transaction durable.

        *get_image(page_no, lsn)* must stamp *lsn* into the page's header
        and return the page's current bytes.  Returns True when the caller
        should run an auto-checkpoint (log grew past the threshold).
        """
        self._check_alive()
        if self._txn is None:
            raise WalError("log_commit outside a WAL transaction")
        txn = self._txn
        shipped: Optional[list] = [] if self.shippers else None
        for page_no in sorted(self._dirty):
            lsn = self._io.size
            image = get_image(page_no, lsn)
            self._append(REC_PAGE_IMAGE, txn, encode_page_image(page_no, image))
            if shipped is not None:
                shipped.append((page_no, image))
        self.last_commit_lsn = self._append(
            REC_COMMIT, txn, encode_catalog(catalog_state)
        )
        self.flush()
        self._dirty.clear()
        self._txn = None
        self.commits += 1
        if METRICS.enabled:
            METRICS.inc("wal.commits")
        if shipped is not None:
            # ship the committed batch only after the fsync above: a
            # replica must never apply state the primary could lose.  A
            # failing subscriber must not fail the commit — the hub marks
            # the dead link and the commit stands.
            for shipper in list(self.shippers):
                try:
                    shipper(shipped, catalog_state)
                except Exception:  # pragma: no cover - defensive
                    pass
        return self._bytes_since_checkpoint >= self.auto_checkpoint_bytes

    def convert_abort(self) -> int:
        """Abort the active transaction and open a successor that inherits
        its dirty pages.

        The in-memory effects of an aborted scope are either rolled back
        (explicit transactions) or left as-is (a failed auto-commit
        operation); in both cases the caller next re-commits the pages'
        *current* state under the successor transaction so the durable
        state converges with memory.  A crash before that commit makes the
        successor a loser — recovery discards it and the disk keeps the
        pre-transaction state (no-steal guarantees none of these pages
        were flushed).
        """
        self._check_alive()
        if self._txn is None:
            raise WalError("convert_abort outside a WAL transaction")
        self._append(REC_ABORT, self._txn, b"")
        self.aborts += 1
        if METRICS.enabled:
            METRICS.inc("wal.aborts")
        self._txn = self._next_txn
        self._next_txn += 1
        self._append(REC_BEGIN, self._txn, b"")
        return self._txn

    def log_gc_watermark(self, watermark: float) -> int:
        """Record how far MVCC version GC has advanced (informational —
        redo skips it, recovery merely reports the last one seen)."""
        self._check_alive()
        return self._append(REC_GC_WATERMARK, 0, encode_gc_watermark(watermark))

    # -- durability ------------------------------------------------------------

    def flush(self) -> None:
        """fsync appended records (no-op when everything is durable)."""
        self._check_alive()
        with self._latch:
            if not self._pending_sync:
                return
            with WAITS.wait("WAL/Fsync"):
                self._io.fsync()
            self._pending_sync = False
            self.fsyncs += 1
        if METRICS.enabled:
            METRICS.inc("wal.fsyncs")

    def ensure_durable(self) -> None:
        """The WAL-before-data hook: called by the buffer manager right
        before it writes any page to the data file."""
        self.flush()

    # -- checkpointing -----------------------------------------------------------

    def should_checkpoint(self) -> bool:
        return self._bytes_since_checkpoint >= self.auto_checkpoint_bytes

    def checkpoint(self, catalog_state: Any) -> None:
        """Truncate the log to a single CHECKPOINT record.

        The caller must already have flushed every dirty page and synced
        the data file — after that, the old log is redundant: replaying it
        would only rewrite pages with the bytes they already hold.
        """
        self._check_alive()
        if self._txn is not None:
            raise WalError("cannot checkpoint inside a transaction")
        payload = encode_catalog(catalog_state)
        record = encode_record(0, 0, REC_CHECKPOINT, 0, payload)
        with self._latch:
            with WAITS.wait("WAL/Checkpoint"):
                self._io.reset_with(record)
            self._prev_lsn = 0
            self._dirty.clear()
            self._pending_sync = False
            self._bytes_since_checkpoint = 0
        self.checkpoints += 1
        self.records_appended += 1
        self.bytes_appended += len(record)
        if METRICS.enabled:
            METRICS.inc("wal.checkpoints")
            METRICS.inc("wal.records_appended")
            METRICS.inc("wal.bytes_appended", len(record))

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "path": self.path,
            "size_bytes": self._io.size,
            "bytes_since_checkpoint": self._bytes_since_checkpoint,
            "auto_checkpoint_bytes": self.auto_checkpoint_bytes,
            "records_appended": self.records_appended,
            "bytes_appended": self.bytes_appended,
            "fsyncs": self.fsyncs,
            "commits": self.commits,
            "aborts": self.aborts,
            "checkpoints": self.checkpoints,
            "in_txn": self.in_txn,
            "unlogged_dirty_pages": len(self._dirty),
        }

    def close(self) -> None:
        self._io.close()

    # -- internal ----------------------------------------------------------------

    def _append(self, rtype: int, txn: int, payload: bytes) -> int:
        with self._latch:
            lsn = self._io.size
            data = encode_record(lsn, self._prev_lsn, rtype, txn, payload)
            self._io.append(data)
            self._prev_lsn = lsn
            self._pending_sync = True
            self._bytes_since_checkpoint += len(data)
        self.records_appended += 1
        self.bytes_appended += len(data)
        if METRICS.enabled:
            METRICS.inc("wal.records_appended")
            METRICS.inc("wal.bytes_appended", len(data))
        return lsn
