"""Crash fault injection for durability testing.

The harness models the two things a real crash does that ordinary tests
cannot: **unsynced writes vanish** and **in-flight writes may tear**.

* :class:`CrashClock` — a countdown over I/O events.  Every page write,
  page sync, WAL append, and WAL fsync ticks the clock; when the countdown
  reaches zero the clock goes dead and raises :class:`CrashPoint` — from
  then on *every* faulted operation raises, so the engine object is
  poisoned exactly like a killed process.
* :class:`FaultyPagedFile` — wraps a real :class:`DiskPagedFile` with a
  write-back cache: ``write_page`` stages in memory; only ``sync`` applies
  staged pages to the underlying file and fsyncs it.  A crash therefore
  discards everything not yet synced — if the engine forgets an fsync, the
  test sees the data loss.  In ``torn`` mode, the write in flight at crash
  time half-applies (first half new bytes, second half old) to the real
  file, simulating a torn sector write for the checksum machinery to catch.
* :class:`FaultyWalIO` — the same discipline for the log: appends stage in
  memory, ``fsync`` persists.  A crash during fsync can leave a torn tail
  (a prefix of the staged bytes) for the recovery scan to truncate.

Typical use::

    clock = CrashClock(countdown=17, torn=True)
    inner = DiskPagedFile(path)
    db = Database(
        path=path,
        pagedfile=FaultyPagedFile(inner, clock),
        wal_io=FaultyWalIO(path + ".wal", clock),
    )
    try:
        workload(db)
    except CrashPoint:
        pass                      # the "process" died here
    recovered = Database(path=path)   # replays the WAL
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ReproError
from repro.storage.constants import PAGE_SIZE
from repro.storage.pagedfile import PagedFile
from repro.wal.manager import WalIO


class CrashPoint(ReproError):
    """An injected crash: the simulated process is dead."""


class CrashClock:
    """Countdown over faulted I/O events.

    *countdown* is the number of I/O events to allow before crashing
    (None = never crash spontaneously).  *torn* makes the I/O in flight at
    crash time half-apply.  *fail_sync* restricts the crash to sync/fsync
    events (modelling a device that drops its cache on power loss).
    """

    def __init__(
        self,
        countdown: Optional[int] = None,
        torn: bool = False,
        fail_sync: bool = False,
    ):
        self.countdown = countdown
        self.torn = torn
        self.fail_sync = fail_sync
        self.dead = False
        self.ops = 0
        self.crashed_on: Optional[str] = None

    def check(self) -> None:
        """Raise immediately if the clock is already dead."""
        if self.dead:
            raise CrashPoint(f"crashed earlier on {self.crashed_on}")

    def tick(self, kind: str) -> bool:
        """Count one I/O event; returns True when this event must crash
        (the caller applies torn semantics first, then raises)."""
        self.check()
        self.ops += 1
        if self.countdown is None:
            return False
        if self.fail_sync and "sync" not in kind:
            return False
        self.countdown -= 1
        if self.countdown <= 0:
            self.dead = True
            self.crashed_on = kind
            return True
        return False


class FaultyPagedFile(PagedFile):
    """Write-back cache over a real paged file, driven by a CrashClock."""

    def __init__(self, inner: PagedFile, clock: CrashClock):
        self._inner = inner
        self._clock = clock
        #: staged page writes not yet synced to the real file
        self._staged: dict[int, bytes] = {}
        self.path = getattr(inner, "path", None)

    def read_page(self, page_no: int) -> bytearray:
        self._clock.check()
        staged = self._staged.get(page_no)
        if staged is not None:
            return bytearray(staged)
        return self._inner.read_page(page_no)

    def write_page(self, page_no: int, data: bytes) -> None:
        if self._clock.tick("write_page"):
            if self._clock.torn and page_no < self._inner.page_count:
                half = PAGE_SIZE // 2
                old = self._inner.read_page(page_no)
                self._inner.write_page(
                    page_no, bytes(data[:half]) + bytes(old[half:])
                )
                self._inner.sync()
            raise CrashPoint(f"crash during write of page {page_no}")
        self._staged[page_no] = bytes(data)

    def allocate_page(self) -> int:
        # File growth is forwarded eagerly: a grown-but-unsynced file keeps
        # zero pages, which carry no checksum and no catalog references —
        # harmless after a crash, exactly like a real filesystem extend.
        self._clock.check()
        return self._inner.allocate_page()

    @property
    def page_count(self) -> int:
        return self._inner.page_count

    def sync(self) -> None:
        if self._clock.tick("page_sync"):
            # a crash mid-sync persists an arbitrary subset: model "some
            # staged pages made it" by applying half of them
            for page_no in sorted(self._staged)[: max(0, len(self._staged) // 2)]:
                self._inner.write_page(page_no, self._staged[page_no])
            self._inner.sync()
            raise CrashPoint("crash during data-file sync")
        for page_no, data in sorted(self._staged.items()):
            self._inner.write_page(page_no, data)
        self._staged.clear()
        self._inner.sync()

    def close(self) -> None:
        if not self._clock.dead:
            self.sync()
        self._inner.close()

    def abandon(self) -> None:
        """Release the OS handle after a crash without flushing staged
        writes (the simulated process is gone; its cache is lost)."""
        self._staged.clear()
        self._inner.close()


class FaultyWalIO(WalIO):
    """WAL I/O with staged appends and crash/torn-tail injection."""

    def __init__(self, path: str, clock: CrashClock):
        super().__init__(path)
        self._clock = clock
        self._staged = bytearray()

    @property
    def size(self) -> int:
        return self._size + len(self._staged)

    def append(self, data: bytes) -> int:
        if self._clock.tick("wal_append"):
            raise CrashPoint("crash during WAL append")
        offset = self.size
        self._staged += data
        return offset

    def fsync(self) -> None:
        if self._clock.tick("wal_fsync"):
            if self._clock.torn and self._staged:
                # a torn tail: a prefix of the staged bytes reached disk
                torn = bytes(self._staged[: max(1, len(self._staged) // 2)])
                self._file.seek(self._size)
                self._file.write(torn)
                self._file.flush()
                os.fsync(self._file.fileno())
            raise CrashPoint("crash during WAL fsync")
        if self._staged:
            self._file.seek(self._size)
            self._file.write(bytes(self._staged))
            self._size += len(self._staged)
            self._staged.clear()
        self._file.flush()
        os.fsync(self._file.fileno())

    def reset_with(self, data: bytes) -> None:
        if self._clock.tick("wal_reset"):
            raise CrashPoint("crash during WAL checkpoint truncation")
        self._staged.clear()
        super().reset_with(data)

    def close(self) -> None:
        if self._clock.dead:
            self._file.close()
            return
        self.fsync()
        self._file.close()

    def abandon(self) -> None:
        self._staged.clear()
        self._file.close()
