"""Redo recovery: rebuild the committed state from the log on open.

The algorithm is the redo half of ARIES, specialised to full-page-image
records and a no-steal buffer policy (so no undo pass is ever needed):

1. **Scan** the log from the start, validating every record (length, CRC,
   LSN-equals-offset).  The scan stops at the first invalid record — the
   torn tail a crash mid-append leaves behind — which cleanly truncates
   any partially durable transaction.
2. **Analyze** the suffix from the last checkpoint: transactions with a
   ``COMMIT`` record are winners; transactions with a ``BEGIN`` but no
   ``COMMIT`` are losers and are discarded wholesale (their page images
   never reached the data file thanks to no-steal).
3. **Redo** the winners' page images in LSN order, extending the data file
   as needed and re-stamping each page's checksum.  Before overwriting, the
   existing page is checksum-verified — a mismatch is a detected torn write,
   repaired by the logged image.
4. The catalog snapshot of the newest ``COMMIT`` (or, failing that, the
   checkpoint) becomes the recovered catalog.

Recovery is idempotent: crashing during recovery and re-running it reaches
the same state, because redo writes are pure functions of the log.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs import METRICS
from repro.storage.page import checksum_ok, stamp_checksum
from repro.storage.pagedfile import PagedFile
from repro.wal.record import (
    REC_BEGIN,
    REC_CHECKPOINT,
    REC_COMMIT,
    REC_GC_WATERMARK,
    REC_PAGE_IMAGE,
    decode_catalog,
    decode_gc_watermark,
    decode_page_image,
    iter_records,
)


@dataclass
class RecoveryResult:
    """What one recovery pass did (surfaced as ``db.last_recovery``)."""

    #: catalog snapshot to install, or None (fall back to the sidecar)
    catalog_state: Optional[Any] = None
    records_scanned: int = 0
    checkpoint_found: bool = False
    pages_replayed: int = 0
    committed_txns: int = 0
    losers_discarded: int = 0
    torn_pages_repaired: int = 0
    #: ids of loser transactions, for diagnostics
    loser_ids: list = field(default_factory=list)
    #: last MVCC version-GC watermark logged before the crash (or None)
    gc_watermark: Optional[float] = None

    @property
    def replayed_anything(self) -> bool:
        return self.pages_replayed > 0

    def summary(self) -> str:
        return (
            f"recovery: scanned {self.records_scanned} record(s), "
            f"replayed {self.pages_replayed} page image(s) from "
            f"{self.committed_txns} committed txn(s), discarded "
            f"{self.losers_discarded} loser(s), repaired "
            f"{self.torn_pages_repaired} torn page(s)"
        )


def redo_page_image(file: PagedFile, page_no: int, image: bytes) -> bool:
    """Install one logged after-image into *file* (the redo primitive).

    Extends the file as needed, re-stamps the page checksum, and writes.
    Returns True when the existing page failed its checksum (a torn write
    the image just repaired).  Shared by crash recovery and by replica
    apply (:mod:`repro.replication`), which redoes shipped commit batches
    into the replica's own page file.
    """
    torn = False
    if page_no < file.page_count:
        current = file.read_page(page_no)
        if not checksum_ok(current):
            torn = True
    while file.page_count <= page_no:
        file.allocate_page()
    buffer = bytearray(image)
    stamp_checksum(buffer)
    file.write_page(page_no, bytes(buffer))
    return torn


def recover(wal_path: str, file: PagedFile) -> Optional[RecoveryResult]:
    """Replay the WAL at *wal_path* into *file*; returns None when there is
    no log to recover from."""
    if not os.path.exists(wal_path):
        return None
    with open(wal_path, "rb") as handle:
        data = handle.read()
    result = RecoveryResult()
    if not data:
        return result
    records = list(iter_records(data))
    result.records_scanned = len(records)
    if not records:
        return result

    # start the redo scan at the last complete checkpoint
    start = 0
    for index, record in enumerate(records):
        if record.type == REC_CHECKPOINT:
            start = index
            result.checkpoint_found = True
            result.catalog_state = decode_catalog(record.payload)
    tail = records[start:]

    winners = {r.txn for r in tail if r.type == REC_COMMIT}
    losers = sorted(
        {r.txn for r in tail if r.type == REC_BEGIN and r.txn not in winners}
    )
    result.committed_txns = len(winners)
    result.losers_discarded = len(losers)
    result.loser_ids = losers

    for record in tail:
        if record.type == REC_COMMIT and record.txn in winners:
            result.catalog_state = decode_catalog(record.payload)
        if record.type == REC_GC_WATERMARK:
            result.gc_watermark = decode_gc_watermark(record.payload)
        if record.type != REC_PAGE_IMAGE or record.txn not in winners:
            continue
        page_no, image = decode_page_image(record.payload)
        if redo_page_image(file, page_no, image):
            result.torn_pages_repaired += 1
        result.pages_replayed += 1

    if result.pages_replayed:
        file.sync()
    if METRICS.enabled:
        METRICS.inc("wal.recovery.runs")
        METRICS.inc("wal.recovery.records_scanned", result.records_scanned)
        METRICS.inc("wal.recovery.pages_replayed", result.pages_replayed)
        METRICS.inc("wal.recovery.committed_txns", result.committed_txns)
        METRICS.inc("wal.recovery.losers_discarded", result.losers_discarded)
        METRICS.inc(
            "wal.recovery.torn_pages_repaired", result.torn_pages_repaired
        )
    return result
