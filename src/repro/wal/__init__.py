"""Write-ahead logging, crash recovery, checkpoints, and fault injection.

The paper's AIM-II prototype ran single-user with *no recovery component*;
this package is the reproduction's step beyond it: redo-only write-ahead
logging with full-page after-images, a no-steal buffer policy (so losers
never reach the data file and no undo pass exists), fuzzy-free sharp
checkpoints that truncate the log, per-page torn-write checksums, and a
crash fault-injection harness that the recovery tests drive.

See ``docs/DURABILITY.md`` for the record format and the recovery
algorithm, and :mod:`repro.wal.faults` for the crash-simulation model.
"""

from repro.wal.manager import WalIO, WalManager
from repro.wal.record import (
    REC_ABORT,
    REC_BEGIN,
    REC_CHECKPOINT,
    REC_COMMIT,
    REC_PAGE_IMAGE,
    WalRecord,
    encode_record,
    iter_records,
)
from repro.wal.recovery import RecoveryResult, recover

__all__ = [
    "WalIO",
    "WalManager",
    "WalRecord",
    "RecoveryResult",
    "recover",
    "encode_record",
    "iter_records",
    "REC_BEGIN",
    "REC_COMMIT",
    "REC_ABORT",
    "REC_PAGE_IMAGE",
    "REC_CHECKPOINT",
]
