"""Binary WAL record format.

Every record is self-describing and self-validating::

    0..4    payload length (u32)
    4..8    CRC32 over (lsn, prev_lsn, type, txn_id, payload) (u32)
    8..16   LSN — the record's byte offset in the log file (u64)
    16..24  prev LSN — backward chain to the previous record (u64)
    24..25  record type (u8)
    25..33  transaction id (u64; 0 for checkpoint records)
    33..    payload

The LSN doubling as the file offset makes the log self-locating: a scan
rejects any record whose stored LSN disagrees with its position, which —
together with the CRC and the length bound — cleanly truncates torn tails
left by a crash mid-append.

Record types and payloads:

``BEGIN``
    empty — opens transaction *txn_id*.
``PAGE_IMAGE``
    ``u32 page_no + u8 codec + image`` — a physiological redo record: the
    full after-image of one page as dirtied by *txn_id* (codec 1 = zlib).
``COMMIT``
    zlib-compressed catalog JSON — the committed catalog snapshot.  Redo
    replays the page images of committed transactions and installs the
    newest committed catalog.
``ABORT``
    empty — the transaction's in-memory effects were rolled back; its page
    images (if any) must not be replayed on their own.
``CHECKPOINT``
    zlib-compressed catalog JSON — written after all dirty pages reached
    the data file; recovery starts its redo scan at the last checkpoint.
``GC_WATERMARK``
    ``f64`` — the MVCC version-GC watermark (oldest snapshot point still
    reachable) after a reclamation round.  Informational: redo skips it;
    recovery reports the last one seen (``RecoveryResult.gc_watermark``).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, Union

from repro.errors import WalError

REC_BEGIN = 1
REC_COMMIT = 2
REC_ABORT = 3
REC_PAGE_IMAGE = 4
REC_CHECKPOINT = 5
REC_GC_WATERMARK = 6

RECORD_NAMES = {
    REC_BEGIN: "BEGIN",
    REC_COMMIT: "COMMIT",
    REC_ABORT: "ABORT",
    REC_PAGE_IMAGE: "PAGE_IMAGE",
    REC_CHECKPOINT: "CHECKPOINT",
    REC_GC_WATERMARK: "GC_WATERMARK",
}

_HEADER = struct.Struct(">IIQQBQ")  # length, crc, lsn, prev_lsn, type, txn
HEADER_SIZE = _HEADER.size

_CRC_BODY = struct.Struct(">QQBQ")

_IMAGE_HEADER = struct.Struct(">IB")  # page_no, codec
_CODEC_RAW = 0
_CODEC_ZLIB = 1


@dataclass(frozen=True)
class WalRecord:
    lsn: int
    prev_lsn: int
    type: int
    txn: int
    payload: bytes

    @property
    def name(self) -> str:
        return RECORD_NAMES.get(self.type, f"?{self.type}")

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"<WalRecord {self.name} lsn={self.lsn} txn={self.txn} {len(self.payload)}B>"


def _crc(lsn: int, prev_lsn: int, rtype: int, txn: int, payload: bytes) -> int:
    crc = zlib.crc32(_CRC_BODY.pack(lsn, prev_lsn, rtype, txn))
    return zlib.crc32(payload, crc) & 0xFFFFFFFF


def encode_record(
    lsn: int, prev_lsn: int, rtype: int, txn: int, payload: bytes = b""
) -> bytes:
    """Serialize one record (header + payload) for appending at *lsn*."""
    crc = _crc(lsn, prev_lsn, rtype, txn, payload)
    return _HEADER.pack(len(payload), crc, lsn, prev_lsn, rtype, txn) + payload


def iter_records(data: Union[bytes, bytearray]) -> Iterator[WalRecord]:
    """Yield valid records from the start of *data*, stopping at the first
    incomplete, corrupt, or misplaced record (the torn tail of a crash)."""
    offset = 0
    size = len(data)
    while offset + HEADER_SIZE <= size:
        length, crc, lsn, prev_lsn, rtype, txn = _HEADER.unpack_from(data, offset)
        end = offset + HEADER_SIZE + length
        if end > size:
            break  # torn tail: the payload never fully reached the disk
        if lsn != offset:
            break  # garbage or a half-overwritten region
        if rtype not in RECORD_NAMES:
            break
        payload = bytes(data[offset + HEADER_SIZE:end])
        if crc != _crc(lsn, prev_lsn, rtype, txn, payload):
            break  # torn or bit-rotted record
        yield WalRecord(lsn, prev_lsn, rtype, txn, payload)
        offset = end


# ---------------------------------------------------------------------------
# payload codecs
# ---------------------------------------------------------------------------


def encode_page_image(page_no: int, image: bytes) -> bytes:
    compressed = zlib.compress(image, 1)
    if len(compressed) < len(image):
        return _IMAGE_HEADER.pack(page_no, _CODEC_ZLIB) + compressed
    return _IMAGE_HEADER.pack(page_no, _CODEC_RAW) + image


def decode_page_image(payload: bytes) -> tuple[int, bytes]:
    page_no, codec = _IMAGE_HEADER.unpack_from(payload, 0)
    body = payload[_IMAGE_HEADER.size:]
    if codec == _CODEC_ZLIB:
        return page_no, zlib.decompress(body)
    if codec == _CODEC_RAW:
        return page_no, body
    raise WalError(f"unknown page-image codec {codec}")


def encode_catalog(state: Any) -> bytes:
    return zlib.compress(json.dumps(state).encode("utf-8"), 6)


def decode_catalog(payload: bytes) -> Any:
    return json.loads(zlib.decompress(payload).decode("utf-8"))


_F64 = struct.Struct(">d")


def encode_gc_watermark(watermark: float) -> bytes:
    return _F64.pack(watermark)


def decode_gc_watermark(payload: bytes) -> float:
    if len(payload) != _F64.size:
        raise WalError("malformed GC_WATERMARK payload")
    return _F64.unpack(payload)[0]
